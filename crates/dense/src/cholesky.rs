//! Tiled Cholesky factorization, dataflow and fork-join engines.
//!
//! Right-looking tile algorithm (PLASMA `dpotrf`): for each step `k`
//!
//! * `POTRF  A[k][k]`
//! * `TRSM   A[i][k] <- A[i][k] * A[k][k]^-T`           for `i > k`
//! * `SYRK   A[i][i] <- A[i][i] - A[i][k]*A[i][k]^T`    for `i > k`
//! * `GEMM   A[i][j] <- A[i][j] - A[i][k]*A[j][k]^T`    for `i > j > k`
//!
//! The dataflow engine submits all `O(nt³)` tasks up front with tile-level
//! read/write declarations; the fork-join engine synchronizes after every
//! step (panel barrier, update barrier), which is exactly the utilization
//! loss experiment E02 measures.

use crate::poison::Poison;
use rayon::prelude::*;
use xsc_core::{factor, flops, gemm, syrk, trsm};
use xsc_core::{Error, Matrix, Result, Scalar, TileMatrix, Transpose};
use xsc_runtime::{trace::Trace, Access, Executor, TaskGraph};

/// Builds the tiled-Cholesky task graph over `a` (overwriting its lower
/// triangle of tiles with `L`). Exposed so the discrete-event simulator in
/// `xsc-machine` can replay the same DAG on a modeled machine.
pub fn build_graph<T: Scalar>(a: &TileMatrix<T>, poison: &Poison) -> TaskGraph {
    let nt = a.tile_cols();
    assert_eq!(a.tile_rows(), nt, "cholesky requires a square tile grid");
    let nb = a.nb();
    let mut g = TaskGraph::new();
    for k in 0..nt {
        // Every task of step k reads the column-k panel tiles, so tag the
        // whole step with affinity k: a stealing worker then prefers tasks
        // whose inputs it already has cached.
        let (kb, _) = a.tile_dims(k, k);
        let tkk = a.tile(k, k);
        let p = poison.clone();
        let base = k * nb;
        let id = g.add_task_with_cost(
            format!("potrf({k})"),
            [Access::Write(a.data_id(k, k))],
            flops::cholesky(kb),
            move || {
                if p.is_set() {
                    return;
                }
                if let Err(e) = factor::potrf_unblocked(&mut tkk.write()) {
                    p.set(shift_pivot(e, base));
                }
            },
        );
        g.set_affinity(id, k as u64);
        for i in k + 1..nt {
            let tkk = a.tile(k, k);
            let tik = a.tile(i, k);
            let p = poison.clone();
            let (ib, _) = a.tile_dims(i, k);
            let id = g.add_task_with_cost(
                format!("trsm({i},{k})"),
                [
                    Access::Read(a.data_id(k, k)),
                    Access::Write(a.data_id(i, k)),
                ],
                flops::trsm(kb, ib),
                move || {
                    if p.is_set() {
                        return;
                    }
                    let l = tkk.read();
                    trsm::trsm(
                        trsm::Side::Right,
                        trsm::Uplo::Lower,
                        Transpose::Yes,
                        trsm::Diag::NonUnit,
                        T::one(),
                        &l,
                        &mut tik.write(),
                    );
                },
            );
            g.set_affinity(id, k as u64);
        }
        for i in k + 1..nt {
            let tik = a.tile(i, k);
            let tii = a.tile(i, i);
            let p = poison.clone();
            let (ib, _) = a.tile_dims(i, k);
            let id = g.add_task_with_cost(
                format!("syrk({i},{k})"),
                [
                    Access::Read(a.data_id(i, k)),
                    Access::Write(a.data_id(i, i)),
                ],
                flops::syrk(ib, kb),
                move || {
                    if p.is_set() {
                        return;
                    }
                    let lik = tik.read();
                    syrk::syrk(
                        trsm::Uplo::Lower,
                        Transpose::No,
                        -T::one(),
                        &lik,
                        T::one(),
                        &mut tii.write(),
                    );
                },
            );
            g.set_affinity(id, k as u64);
            for j in k + 1..i {
                let tik = a.tile(i, k);
                let tjk = a.tile(j, k);
                let tij = a.tile(i, j);
                let p = poison.clone();
                let (ib2, _) = a.tile_dims(i, k);
                let (jb, _) = a.tile_dims(j, k);
                let id = g.add_task_with_cost(
                    format!("gemm({i},{j},{k})"),
                    [
                        Access::Read(a.data_id(i, k)),
                        Access::Read(a.data_id(j, k)),
                        Access::Write(a.data_id(i, j)),
                    ],
                    flops::gemm(ib2, jb, kb),
                    move || {
                        if p.is_set() {
                            return;
                        }
                        let lik = tik.read();
                        let ljk = tjk.read();
                        gemm::gemm(
                            Transpose::No,
                            Transpose::Yes,
                            -T::one(),
                            &lik,
                            &ljk,
                            T::one(),
                            &mut tij.write(),
                        );
                    },
                );
                g.set_affinity(id, k as u64);
            }
        }
    }
    g
}

fn shift_pivot(e: Error, base: usize) -> Error {
    match e {
        Error::NotPositiveDefinite { pivot } => Error::NotPositiveDefinite {
            pivot: base + pivot,
        },
        other => other,
    }
}

/// Dataflow tiled Cholesky: factors `a` in place (lower tiles become `L`)
/// using `executor`, returning the execution trace.
pub fn cholesky_dag<T: Scalar>(a: &TileMatrix<T>, executor: &Executor) -> Result<Trace> {
    let _scope = xsc_metrics::record(
        "cholesky",
        xsc_metrics::traffic::cholesky_blocked(a.rows(), a.nb(), std::mem::size_of::<T>() as u64),
    );
    let poison = Poison::new();
    let g = build_graph(a, &poison);
    let trace = executor.execute_traced(g);
    poison.into_result()?;
    Ok(trace)
}

/// Fork-join (bulk-synchronous) tiled Cholesky: the same tile kernels, but
/// with a rayon barrier after the panel and after the trailing update of
/// every step `k`.
pub fn cholesky_forkjoin<T: Scalar>(a: &TileMatrix<T>) -> Result<()> {
    let nt = a.tile_cols();
    assert_eq!(a.tile_rows(), nt, "cholesky requires a square tile grid");
    let _scope = xsc_metrics::record(
        "cholesky",
        xsc_metrics::traffic::cholesky_blocked(a.rows(), a.nb(), std::mem::size_of::<T>() as u64),
    );
    for k in 0..nt {
        {
            let tkk = a.tile(k, k);
            let mut tile = tkk.write();
            factor::potrf_unblocked(&mut tile).map_err(|e| shift_pivot(e, k * a.nb()))?;
        }
        // Panel: all TRSMs in parallel, then barrier.
        let tkk = a.tile(k, k);
        let l = tkk.read();
        (k + 1..nt).into_par_iter().for_each(|i| {
            let tik = a.tile(i, k);
            trsm::trsm(
                trsm::Side::Right,
                trsm::Uplo::Lower,
                Transpose::Yes,
                trsm::Diag::NonUnit,
                T::one(),
                &l,
                &mut tik.write(),
            );
        });
        drop(l);
        // Trailing update: all SYRK/GEMMs in parallel, then barrier.
        let updates: Vec<(usize, usize)> = (k + 1..nt)
            .flat_map(|i| (k + 1..=i).map(move |j| (i, j)))
            .collect();
        updates.into_par_iter().for_each(|(i, j)| {
            let tik = a.tile(i, k);
            let lik = tik.read();
            if i == j {
                let tii = a.tile(i, i);
                syrk::syrk(
                    trsm::Uplo::Lower,
                    Transpose::No,
                    -T::one(),
                    &lik,
                    T::one(),
                    &mut tii.write(),
                );
            } else {
                let tjk = a.tile(j, k);
                let ljk = tjk.read();
                let tij = a.tile(i, j);
                gemm::gemm(
                    Transpose::No,
                    Transpose::Yes,
                    -T::one(),
                    &lik,
                    &ljk,
                    T::one(),
                    &mut tij.write(),
                );
            }
        });
    }
    Ok(())
}

/// Solves `A x = b` using the tiled factor produced by either engine;
/// gathers `L` and runs the two triangular solves. `b` is overwritten.
pub fn solve<T: Scalar>(l_tiles: &TileMatrix<T>, b: &mut [T]) {
    let l = lower_from_tiles(l_tiles);
    factor::potrf_solve(&l, b);
}

/// Gathers the tiled factor into a dense matrix whose lower triangle is `L`
/// (upper triangle zeroed — the tiled algorithm never touches upper tiles).
pub fn lower_from_tiles<T: Scalar>(a: &TileMatrix<T>) -> Matrix<T> {
    let full = a.to_matrix();
    let n = full.rows();
    Matrix::from_fn(n, n, |i, j| if i >= j { full.get(i, j) } else { T::zero() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::{gen, norms};
    use xsc_runtime::SchedPolicy;

    fn reference_lower(a: &Matrix<f64>, nb: usize) -> Matrix<f64> {
        let mut f = a.clone();
        factor::potrf_blocked(&mut f, nb).unwrap();
        let n = a.rows();
        Matrix::from_fn(n, n, |i, j| if i >= j { f.get(i, j) } else { 0.0 })
    }

    #[test]
    fn dag_matches_reference() {
        for (n, nb) in [(32, 8), (40, 12), (33, 16)] {
            let a = gen::random_spd::<f64>(n, 1);
            let tiles = TileMatrix::from_matrix(&a, nb);
            let exec = Executor::new(4, SchedPolicy::CriticalPath);
            cholesky_dag(&tiles, &exec).unwrap();
            let got = lower_from_tiles(&tiles);
            let expect = reference_lower(&a, nb);
            assert!(
                got.approx_eq(&expect, 1e-9),
                "n={n} nb={nb} diff {}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn forkjoin_matches_reference() {
        for (n, nb) in [(32, 8), (37, 10)] {
            let a = gen::random_spd::<f64>(n, 2);
            let tiles = TileMatrix::from_matrix(&a, nb);
            cholesky_forkjoin(&tiles).unwrap();
            let got = lower_from_tiles(&tiles);
            let expect = reference_lower(&a, nb);
            assert!(got.approx_eq(&expect, 1e-9), "n={n} nb={nb}");
        }
    }

    #[test]
    fn dag_solve_end_to_end() {
        let n = 48;
        let a = gen::random_spd::<f64>(n, 3);
        let b = gen::rhs_for_unit_solution(&a);
        let tiles = TileMatrix::from_matrix(&a, 16);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        cholesky_dag(&tiles, &exec).unwrap();
        let mut x = b.clone();
        solve(&tiles, &mut x);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn dag_reports_not_spd_with_global_pivot() {
        let n = 24;
        let mut a = gen::random_spd::<f64>(n, 4);
        // Poison a diagonal entry deep in the matrix.
        a.set(17, 17, -100.0);
        let tiles = TileMatrix::from_matrix(&a, 8);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        let err = cholesky_dag(&tiles, &exec).unwrap_err();
        match err {
            Error::NotPositiveDefinite { pivot } => assert!(pivot >= 16, "pivot {pivot}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn forkjoin_reports_not_spd() {
        let mut a = gen::random_spd::<f64>(16, 5);
        a.set(3, 3, -1.0);
        let tiles = TileMatrix::from_matrix(&a, 8);
        assert!(cholesky_forkjoin(&tiles).is_err());
    }

    #[test]
    fn trace_utilization_is_sane() {
        let a = gen::random_spd::<f64>(64, 6);
        let tiles = TileMatrix::from_matrix(&a, 16);
        let exec = Executor::new(2, SchedPolicy::CriticalPath);
        let trace = cholesky_dag(&tiles, &exec).unwrap();
        assert!(trace.tasks_run() > 0);
        let u = trace.utilization();
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn graph_task_count_is_nt_choose_formula() {
        // nt tiles: potrf nt, trsm nt(nt-1)/2, syrk nt(nt-1)/2,
        // gemm nt(nt-1)(nt-2)/6.
        let a = TileMatrix::<f64>::zeros(64, 64, 16); // nt = 4
        let g = build_graph(&a, &Poison::new());
        let nt = 4u64;
        let expect = nt + nt * (nt - 1) / 2 + nt * (nt - 1) / 2 + nt * (nt - 1) * (nt - 2) / 6;
        assert_eq!(g.len() as u64, expect);
    }
}
