//! Tiled Householder QR (PLASMA-style flat-tree elimination), with a
//! dataflow engine and a sequential reference engine.
//!
//! For each step `k`:
//!
//! * `GEQRT` — QR of the diagonal tile `A[k][k]` (V + R in place, τ aside);
//! * `GEMQRT` — apply Qᵀ to the row tiles `A[k][j]`, `j > k`;
//! * `TPQRT` — annihilate `A[i][k]` against the triangle in `A[k][k]`, `i > k`;
//! * `TPMQRT` — apply each of those Qᵀs to the tile pairs `(A[k][j], A[i][j])`.
//!
//! The reflector tiles (`V`) and `τ` vectors are retained in [`TiledQr`], so
//! `Q` and `Qᵀ` can be applied later (solves, orthogonality tests).
//!
//! Limitation: the tiled engine requires `rows` and `cols` to be multiples
//! of the tile size `nb` with `rows >= cols` (edge-tile TPQRT needs
//! rectangular-pentagonal kernels the paper's evaluation does not exercise).

use crate::poison::Poison;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use xsc_core::householder::{geqrf, ormqr, tpmqrt, tpqrt};
use xsc_core::{flops, trsm};
use xsc_core::{Matrix, Result, Scalar, TileMatrix, Transpose};
use xsc_runtime::{trace::Trace, Access, Executor, TaskGraph};

type TauSlot<T> = Arc<Mutex<Vec<T>>>;

/// A tiled QR factorization: reflectors and `R` packed in the tiles, `τ`
/// scalars stored per tile.
pub struct TiledQr<T> {
    /// Tiles holding `R` (upper part) and the reflector tails (`V`).
    pub tiles: TileMatrix<T>,
    taus_diag: Vec<TauSlot<T>>,
    taus_ts: BTreeMap<(usize, usize), TauSlot<T>>,
}

fn check_shape<T: Scalar>(a: &TileMatrix<T>) {
    assert!(
        a.rows().is_multiple_of(a.nb()) && a.cols().is_multiple_of(a.nb()),
        "tiled QR requires dimensions divisible by the tile size"
    );
    assert!(a.rows() >= a.cols(), "tiled QR requires rows >= cols");
}

/// Builds the task graph for the tiled QR of `a`, allocating the `τ` slots
/// that the returned [`TiledQr`] will own.
pub fn build_graph<T: Scalar>(a: TileMatrix<T>, poison: &Poison) -> (TaskGraph, TiledQr<T>) {
    check_shape(&a);
    let mt = a.tile_rows();
    let nt = a.tile_cols();
    let nb = a.nb();
    let kt = nt.min(mt);
    let taus_diag: Vec<TauSlot<T>> = (0..kt).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let mut taus_ts: BTreeMap<(usize, usize), TauSlot<T>> = BTreeMap::new();
    for k in 0..kt {
        for i in k + 1..mt {
            taus_ts.insert((i, k), Arc::new(Mutex::new(Vec::new())));
        }
    }

    let mut g = TaskGraph::new();
    for k in 0..kt {
        {
            let tkk = a.tile(k, k);
            let tau = Arc::clone(&taus_diag[k]);
            let p = poison.clone();
            g.add_task_with_cost(
                format!("geqrt({k})"),
                [Access::Write(a.data_id(k, k))],
                flops::qr(nb, nb),
                move || {
                    if p.is_set() {
                        return;
                    }
                    let mut tile = tkk.write();
                    *tau.lock() = geqrf(&mut tile);
                },
            );
        }
        for j in k + 1..nt {
            let tkk = a.tile(k, k);
            let tkj = a.tile(k, j);
            let tau = Arc::clone(&taus_diag[k]);
            let p = poison.clone();
            g.add_task_with_cost(
                format!("gemqrt({k},{j})"),
                [
                    Access::Read(a.data_id(k, k)),
                    Access::Write(a.data_id(k, j)),
                ],
                flops::gemm(nb, nb, nb),
                move || {
                    if p.is_set() {
                        return;
                    }
                    let v = tkk.read();
                    let tau = tau.lock();
                    ormqr(Transpose::Yes, &v, &tau, &mut tkj.write());
                },
            );
        }
        for i in k + 1..mt {
            {
                let tkk = a.tile(k, k);
                let tik = a.tile(i, k);
                let tau = Arc::clone(&taus_ts[&(i, k)]);
                let p = poison.clone();
                g.add_task_with_cost(
                    format!("tpqrt({i},{k})"),
                    [
                        Access::Write(a.data_id(k, k)),
                        Access::Write(a.data_id(i, k)),
                    ],
                    2 * flops::gemm(nb, nb, nb),
                    move || {
                        if p.is_set() {
                            return;
                        }
                        let mut r = tkk.write();
                        let mut b = tik.write();
                        *tau.lock() = tpqrt(&mut r, &mut b);
                    },
                );
            }
            for j in k + 1..nt {
                let tik = a.tile(i, k);
                let tkj = a.tile(k, j);
                let tij = a.tile(i, j);
                let tau = Arc::clone(&taus_ts[&(i, k)]);
                let p = poison.clone();
                g.add_task_with_cost(
                    format!("tpmqrt({i},{j},{k})"),
                    [
                        Access::Read(a.data_id(i, k)),
                        Access::Write(a.data_id(k, j)),
                        Access::Write(a.data_id(i, j)),
                    ],
                    2 * flops::gemm(nb, nb, nb),
                    move || {
                        if p.is_set() {
                            return;
                        }
                        let v2 = tik.read();
                        let tau = tau.lock();
                        tpmqrt(
                            Transpose::Yes,
                            &v2,
                            &tau,
                            &mut tkj.write(),
                            &mut tij.write(),
                        );
                    },
                );
            }
        }
    }
    (
        g,
        TiledQr {
            tiles: a,
            taus_diag,
            taus_ts,
        },
    )
}

/// Dataflow tiled QR: consumes `a` and returns the factorization plus the
/// execution trace.
pub fn qr_dag<T: Scalar>(a: TileMatrix<T>, executor: &Executor) -> Result<(TiledQr<T>, Trace)> {
    let poison = Poison::new();
    let (g, fact) = build_graph(a, &poison);
    let trace = executor.execute_traced(g);
    poison.into_result()?;
    Ok((fact, trace))
}

/// Sequential tiled QR (serial execution of the same kernel sequence) —
/// the reference the DAG engine is tested against.
pub fn qr_seq<T: Scalar>(a: TileMatrix<T>) -> Result<TiledQr<T>> {
    let poison = Poison::new();
    let (g, fact) = build_graph(a, &poison);
    g.execute_serial();
    poison.into_result()?;
    Ok(fact)
}

/// Fork-join (bulk-synchronous) tiled QR: the same kernels with a rayon
/// barrier after every row of updates. The flat-tree `TPQRT` chain down
/// each panel is inherently sequential — precisely the dependence the DAG
/// engine overlaps with trailing updates and fork-join cannot.
pub fn qr_forkjoin<T: Scalar>(a: TileMatrix<T>) -> Result<TiledQr<T>> {
    use rayon::prelude::*;
    check_shape(&a);
    let mt = a.tile_rows();
    let nt = a.tile_cols();
    let kt = nt.min(mt);
    let taus_diag: Vec<TauSlot<T>> = (0..kt).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let mut taus_ts: BTreeMap<(usize, usize), TauSlot<T>> = BTreeMap::new();
    for k in 0..kt {
        for i in k + 1..mt {
            taus_ts.insert((i, k), Arc::new(Mutex::new(Vec::new())));
        }
    }
    for k in 0..kt {
        {
            let tkk = a.tile(k, k);
            let mut tile = tkk.write();
            *taus_diag[k].lock() = geqrf(&mut tile);
        }
        // Row updates in parallel, then barrier.
        {
            let tkk = a.tile(k, k);
            let v = tkk.read();
            let tau = taus_diag[k].lock().clone();
            (k + 1..nt).into_par_iter().for_each(|j| {
                let tkj = a.tile(k, j);
                ormqr(Transpose::Yes, &v, &tau, &mut tkj.write());
            });
        }
        for i in k + 1..mt {
            {
                let tkk = a.tile(k, k);
                let tik = a.tile(i, k);
                let mut r = tkk.write();
                let mut b = tik.write();
                *taus_ts[&(i, k)].lock() = tpqrt(&mut r, &mut b);
            }
            let tik = a.tile(i, k);
            let v2 = tik.read();
            let tau = taus_ts[&(i, k)].lock().clone();
            (k + 1..nt).into_par_iter().for_each(|j| {
                let tkj = a.tile(k, j);
                let tij = a.tile(i, j);
                tpmqrt(
                    Transpose::Yes,
                    &v2,
                    &tau,
                    &mut tkj.write(),
                    &mut tij.write(),
                );
            });
        }
    }
    Ok(TiledQr {
        tiles: a,
        taus_diag,
        taus_ts,
    })
}

impl<T: Scalar> TiledQr<T> {
    /// Applies `Qᵀ` (trans = Yes) or `Q` (trans = No) to a tiled block `b`
    /// with the same row tiling as the factored matrix.
    pub fn apply_q(&self, trans: Transpose, b: &TileMatrix<T>) {
        let a = &self.tiles;
        let mt = a.tile_rows();
        let nt = a.tile_cols();
        let kt = nt.min(mt);
        assert_eq!(b.tile_rows(), mt, "rhs row tiling mismatch");
        assert_eq!(b.nb(), a.nb(), "rhs tile size mismatch");
        let bn = b.tile_cols();
        match trans {
            Transpose::Yes => {
                for k in 0..kt {
                    for j in 0..bn {
                        let v = a.tile(k, k);
                        let v = v.read();
                        let tau = self.taus_diag[k].lock();
                        let bkj = b.tile(k, j);
                        ormqr(Transpose::Yes, &v, &tau, &mut bkj.write());
                    }
                    for i in k + 1..mt {
                        for j in 0..bn {
                            let v2 = a.tile(i, k);
                            let v2 = v2.read();
                            let tau = self.taus_ts[&(i, k)].lock();
                            let bkj = b.tile(k, j);
                            let bij = b.tile(i, j);
                            tpmqrt(
                                Transpose::Yes,
                                &v2,
                                &tau,
                                &mut bkj.write(),
                                &mut bij.write(),
                            );
                        }
                    }
                }
            }
            Transpose::No => {
                for k in (0..kt).rev() {
                    for i in (k + 1..mt).rev() {
                        for j in 0..bn {
                            let v2 = a.tile(i, k);
                            let v2 = v2.read();
                            let tau = self.taus_ts[&(i, k)].lock();
                            let bkj = b.tile(k, j);
                            let bij = b.tile(i, j);
                            tpmqrt(Transpose::No, &v2, &tau, &mut bkj.write(), &mut bij.write());
                        }
                    }
                    for j in 0..bn {
                        let v = a.tile(k, k);
                        let v = v.read();
                        let tau = self.taus_diag[k].lock();
                        let bkj = b.tile(k, j);
                        ormqr(Transpose::No, &v, &tau, &mut bkj.write());
                    }
                }
            }
        }
    }

    /// Gathers the `n × n` upper-triangular `R` factor.
    pub fn r_matrix(&self) -> Matrix<T> {
        let full = self.tiles.to_matrix();
        let n = self.tiles.cols();
        Matrix::from_fn(n, n, |i, j| if i <= j { full.get(i, j) } else { T::zero() })
    }

    /// Least-squares solve `min ‖A x − b‖₂`: applies `Qᵀ`, then solves with
    /// `R`. Returns `x` of length `cols`.
    pub fn solve_ls(&self, b: &[T]) -> Vec<T> {
        let m = self.tiles.rows();
        let n = self.tiles.cols();
        assert_eq!(b.len(), m, "rhs length mismatch");
        let bm = Matrix::from_col_major(m, 1, b.to_vec());
        let bt = TileMatrix::from_matrix(&bm, self.tiles.nb());
        self.apply_q(Transpose::Yes, &bt);
        let qtb = bt.to_matrix();
        let mut x: Vec<T> = (0..n).map(|i| qtb.get(i, 0)).collect();
        let r = self.r_matrix();
        trsm::trsv(
            trsm::Uplo::Upper,
            Transpose::No,
            trsm::Diag::NonUnit,
            &r,
            &mut x,
        );
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::{gemm::gemm, gen, norms};
    use xsc_runtime::SchedPolicy;

    fn gram(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut g = Matrix::zeros(n, n);
        gemm(Transpose::Yes, Transpose::No, 1.0, a, a, 0.0, &mut g);
        g
    }

    #[test]
    fn r_gram_matches_a_gram() {
        // R from QR satisfies RᵀR = AᵀA regardless of sign conventions.
        for (m, n, nb) in [(32, 32, 8), (48, 16, 16), (40, 24, 8)] {
            let a = gen::random_matrix::<f64>(m, n, 1);
            let tiles = TileMatrix::from_matrix(&a, nb);
            let f = qr_seq(tiles).unwrap();
            let r = f.r_matrix();
            let ga = gram(&a);
            let gr = gram(&r);
            assert!(
                gr.approx_eq(&ga, 1e-9 * m as f64),
                "({m},{n},{nb}) diff {}",
                gr.max_abs_diff(&ga)
            );
        }
    }

    #[test]
    fn dag_matches_sequential() {
        let m = 48;
        let n = 32;
        let nb = 16;
        let a = gen::random_matrix::<f64>(m, n, 2);
        let f_seq = qr_seq(TileMatrix::from_matrix(&a, nb)).unwrap();
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        let (f_dag, trace) = qr_dag(TileMatrix::from_matrix(&a, nb), &exec).unwrap();
        assert!(trace.tasks_run() > 0);
        let got = f_dag.tiles.to_matrix();
        let expect = f_seq.tiles.to_matrix();
        assert!(
            got.approx_eq(&expect, 1e-10),
            "diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn forkjoin_matches_sequential() {
        let m = 48;
        let n = 32;
        let nb = 16;
        let a = gen::random_matrix::<f64>(m, n, 11);
        let f_seq = qr_seq(TileMatrix::from_matrix(&a, nb)).unwrap();
        let f_fj = qr_forkjoin(TileMatrix::from_matrix(&a, nb)).unwrap();
        let got = f_fj.tiles.to_matrix();
        let expect = f_seq.tiles.to_matrix();
        assert!(
            got.approx_eq(&expect, 0.0),
            "identical kernel order must be bitwise equal"
        );
        // And the factorization solves.
        let b = gen::random_vector::<f64>(m, 12);
        let x = f_fj.solve_ls(&b);
        let x_ref = f_seq.solve_ls(&b);
        for (p, q) in x.iter().zip(x_ref.iter()) {
            assert_eq!(p, q);
        }
    }

    #[test]
    fn apply_qt_then_q_is_identity() {
        let m = 32;
        let n = 32;
        let a = gen::random_matrix::<f64>(m, n, 3);
        let f = qr_seq(TileMatrix::from_matrix(&a, 8)).unwrap();
        let b = gen::random_matrix::<f64>(m, 3, 4);
        let bt = TileMatrix::from_matrix(&b, 8);
        f.apply_q(Transpose::Yes, &bt);
        f.apply_q(Transpose::No, &bt);
        assert!(bt.to_matrix().approx_eq(&b, 1e-11));
    }

    #[test]
    fn q_times_r_reconstructs_a() {
        let m = 40;
        let n = 24;
        let nb = 8;
        let a = gen::random_matrix::<f64>(m, n, 5);
        let f = qr_seq(TileMatrix::from_matrix(&a, nb)).unwrap();
        // Build [R; 0] as a tiled matrix and apply Q to it.
        let r = f.r_matrix();
        let mut stacked = Matrix::<f64>::zeros(m, n);
        r.copy_block_into(0, 0, n, n, &mut stacked, 0, 0);
        let st = TileMatrix::from_matrix(&stacked, nb);
        f.apply_q(Transpose::No, &st);
        let qr_product = st.to_matrix();
        assert!(
            qr_product.approx_eq(&a, 1e-10),
            "diff {}",
            qr_product.max_abs_diff(&a)
        );
    }

    #[test]
    fn solve_square_system() {
        let n = 32;
        let a = gen::random_matrix::<f64>(n, n, 6);
        let b = gen::rhs_for_unit_solution(&a);
        let f = qr_seq(TileMatrix::from_matrix(&a, 8)).unwrap();
        let x = f.solve_ls(&b);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn solve_overdetermined_normal_equations() {
        let m = 64;
        let n = 16;
        let a = gen::random_matrix::<f64>(m, n, 7);
        let b = gen::random_vector::<f64>(m, 8);
        let f = qr_seq(TileMatrix::from_matrix(&a, 16)).unwrap();
        let x = f.solve_ls(&b);
        let mut resid = b.clone();
        let mut ax = vec![0.0; m];
        xsc_core::gemm::gemv(Transpose::No, 1.0, &a, &x, 0.0, &mut ax);
        for (r, axi) in resid.iter_mut().zip(ax.iter()) {
            *r -= axi;
        }
        let mut atr = vec![0.0; n];
        xsc_core::gemm::gemv(Transpose::Yes, 1.0, &a, &resid, 0.0, &mut atr);
        assert!(norms::vec_inf_norm(&atr) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn ragged_tiles_rejected() {
        let a = gen::random_matrix::<f64>(33, 32, 9);
        let _ = qr_seq(TileMatrix::from_matrix(&a, 8));
    }
}
