//! Communication-avoiding tall-skinny QR (TSQR).
//!
//! The keynote's "flops are free, words are expensive" rule: for an
//! `m × n` matrix with `m ≫ n` split over `P` processors, classic
//! Householder QR communicates `O(n · log P)` *messages* with `O(m n)`
//! total words streamed through the panel holder, while TSQR reduces
//! `n × n` triangles pairwise up a binary tree — `O(log P)` messages of
//! `O(n²)` words each. This module implements both and counts the words so
//! experiment E04 can report the crossover.

use rayon::prelude::*;
use xsc_core::householder::{extract_r, geqrf, tpqrt};
use xsc_core::{Matrix, Scalar};

/// Result of a TSQR reduction: the `R` factor plus the modeled
/// communication volume.
#[derive(Debug)]
pub struct TsqrResult<T: Scalar> {
    /// The `n × n` upper-triangular factor (unique up to row signs).
    pub r: Matrix<T>,
    /// Words (matrix elements) exchanged between blocks during the tree
    /// reduction — the distributed-memory communication this algorithm
    /// is designed to minimize.
    pub comm_words: u64,
    /// Number of tree levels executed.
    pub levels: usize,
    /// Number of leaf blocks.
    pub blocks: usize,
}

/// TSQR of `a` (`m × n`, `m >= n`), with leaf blocks of about `block_rows`
/// rows (clamped so every leaf has at least `n` rows). Leaf factorizations
/// and each tree level run in parallel.
pub fn tsqr<T: Scalar>(a: &Matrix<T>, block_rows: usize) -> TsqrResult<T> {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "tsqr requires m >= n");
    let br = block_rows.max(n);
    let nblocks = (m / br).max(1);

    // Leaf stage: independent QR of each row block.
    let mut rs: Vec<Matrix<T>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let r0 = b * br;
            let r1 = if b + 1 == nblocks { m } else { (b + 1) * br };
            let mut blk = a.block(r0, 0, r1 - r0, n);
            geqrf(&mut blk);
            extract_r(&blk)
        })
        .collect();
    let blocks = rs.len();

    // Tree stage: pairwise TPQRT merges; each merge "sends" the lower R
    // (n² words in the dense-tile model HPL-style codes use).
    let mut levels = 0;
    let mut comm_words = 0u64;
    while rs.len() > 1 {
        levels += 1;
        let merges = rs.len() / 2;
        comm_words += (merges as u64) * (n as u64) * (n as u64);
        let leftover = if rs.len() % 2 == 1 { rs.pop() } else { None };
        let mut next: Vec<Matrix<T>> = rs
            .par_chunks_mut(2)
            .map(|pair| {
                let (top, bottom) = pair.split_at_mut(1);
                // The bottom R is upper-triangular but enters TPQRT as a
                // dense block (pentagonal kernels would save half the flops;
                // flops are free here, words are not).
                tpqrt(&mut top[0], &mut bottom[0]);
                top[0].clone()
            })
            .collect();
        if let Some(l) = leftover {
            next.push(l);
        }
        rs = next;
    }

    TsqrResult {
        r: extract_upper(&rs.pop().expect("at least one block")),
        comm_words,
        levels,
        blocks,
    }
}

fn extract_upper<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let n = a.cols();
    Matrix::from_fn(n, n, |i, j| if i <= j { a.get(i, j) } else { T::zero() })
}

/// Flat Householder QR baseline: returns `R` and the modeled communication
/// volume of the panel-cyclic distributed algorithm (every column of the
/// matrix passes through the reduction owner once: `m · n` words).
pub fn flat_qr_r<T: Scalar>(a: &Matrix<T>) -> (Matrix<T>, u64) {
    let mut f = a.clone();
    geqrf(&mut f);
    let words = (a.rows() as u64) * (a.cols() as u64);
    (extract_r(&f), words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::gemm::{gemm, Transpose};
    use xsc_core::gen;

    fn gram(x: &Matrix<f64>) -> Matrix<f64> {
        let n = x.cols();
        let mut g = Matrix::zeros(n, n);
        gemm(Transpose::Yes, Transpose::No, 1.0, x, x, 0.0, &mut g);
        g
    }

    #[test]
    fn tsqr_r_gram_matches_a_gram() {
        for (m, n, br) in [(200, 8, 32), (333, 5, 40), (64, 16, 16)] {
            let a = gen::random_matrix::<f64>(m, n, 1);
            let res = tsqr(&a, br);
            let ga = gram(&a);
            let gr = gram(&res.r);
            assert!(
                gr.approx_eq(&ga, 1e-9 * m as f64),
                "({m},{n},{br}) diff {}",
                gr.max_abs_diff(&ga)
            );
        }
    }

    #[test]
    fn tsqr_matches_flat_qr_up_to_signs() {
        let a = gen::random_matrix::<f64>(256, 8, 2);
        let res = tsqr(&a, 32);
        let (rf, _) = flat_qr_r(&a);
        // Rows of R are unique up to sign: compare |R| entries.
        for i in 0..8 {
            for j in i..8 {
                assert!(
                    (res.r.get(i, j).abs() - rf.get(i, j).abs()).abs() < 1e-9,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn tsqr_r_is_upper_triangular() {
        let a = gen::random_matrix::<f64>(100, 6, 3);
        let res = tsqr(&a, 25);
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(res.r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn communication_is_logarithmic_in_blocks() {
        let n = 8usize;
        let a = gen::random_matrix::<f64>(1024, n, 4);
        let res = tsqr(&a, 64); // 16 blocks -> 15 merges over 4 levels
        assert_eq!(res.blocks, 16);
        assert_eq!(res.levels, 4);
        assert_eq!(res.comm_words, 15 * (n * n) as u64);
        let (_, flat_words) = flat_qr_r(&a);
        assert!(
            res.comm_words < flat_words / 5,
            "TSQR must move far fewer words"
        );
    }

    #[test]
    fn single_block_degenerates_to_flat_qr() {
        let a = gen::random_matrix::<f64>(50, 10, 5);
        let res = tsqr(&a, 1000);
        assert_eq!(res.blocks, 1);
        assert_eq!(res.levels, 0);
        assert_eq!(res.comm_words, 0);
        let (rf, _) = flat_qr_r(&a);
        assert!(res.r.approx_eq(&rf, 1e-12));
    }

    #[test]
    fn odd_block_counts_handled() {
        let a = gen::random_matrix::<f64>(70, 4, 6);
        let res = tsqr(&a, 10); // 7 blocks
        assert_eq!(res.blocks, 7);
        let ga = gram(&a);
        let gr = gram(&res.r);
        assert!(gr.approx_eq(&ga, 1e-8));
    }
}
