//! Random butterfly transforms (RBT): randomization instead of pivoting.
//!
//! Partial pivoting's row search and swap is a synchronization point the
//! keynote singles out for elimination. The Parker / PLASMA-style
//! alternative: precondition `A` with random butterfly matrices,
//! `A' = Uᵀ A V`, after which LU *without pivoting* is stable with high
//! probability. The transform costs only `O(d · n²)` flops for depth `d`.
//!
//! Solve pipeline: `A x = b` becomes `(Uᵀ A V) y = Uᵀ b`, then `x = V y`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xsc_core::{factor, Matrix, Result, Scalar};

/// A depth-`d` random butterfly matrix, stored as the per-level random
/// diagonals. Size `n` must be divisible by `2^depth`.
///
/// One level of size `s` is `B = (1/√2) · [[R, S], [R, -S]]` with `R`, `S`
/// random diagonals of size `s/2`; a depth-`d` butterfly is the product of
/// `d` levels, each block-diagonal with blocks of shrinking size.
pub struct Butterfly<T> {
    n: usize,
    depth: usize,
    /// `diag[level][i]`: the random diagonal values for that level,
    /// concatenated over the level's segments (length `n` per level).
    diags: Vec<Vec<T>>,
}

impl<T: Scalar> Butterfly<T> {
    /// Samples a random butterfly of order `n` and the given depth.
    /// Diagonal entries are `± exp(u/10)`, `u ~ U(-1, 1)` — close to unit
    /// magnitude, as recommended for PRBT.
    pub fn random(n: usize, depth: usize, seed: u64) -> Self {
        assert!(depth >= 1, "butterfly depth must be at least 1");
        assert!(
            n.is_multiple_of(1 << depth),
            "matrix order {n} must be divisible by 2^depth = {}",
            1 << depth
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let diags = (0..depth)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen_range(-1.0..1.0);
                        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        T::from_f64(sign * (u / 10.0).exp())
                    })
                    .collect()
            })
            .collect();
        Butterfly { n, depth, diags }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// `v <- W v` (levels applied innermost-first: level `depth-1` … `0`,
    /// where level 0 is the full-size butterfly).
    pub fn apply(&self, v: &mut [T]) {
        assert_eq!(v.len(), self.n, "vector length mismatch");
        let inv_sqrt2 = T::from_f64(std::f64::consts::FRAC_1_SQRT_2);
        for level in (0..self.depth).rev() {
            let seg = self.n >> level;
            let half = seg / 2;
            let d = &self.diags[level];
            for s in (0..self.n).step_by(seg) {
                for i in 0..half {
                    let top = d[s + i] * v[s + i];
                    let bot = d[s + half + i] * v[s + half + i];
                    v[s + i] = (top + bot) * inv_sqrt2;
                    v[s + half + i] = (top - bot) * inv_sqrt2;
                }
            }
        }
    }

    /// `v <- Wᵀ v` (exact transpose: levels in reverse order, each level's
    /// transposed stencil).
    pub fn apply_transpose(&self, v: &mut [T]) {
        assert_eq!(v.len(), self.n, "vector length mismatch");
        let inv_sqrt2 = T::from_f64(std::f64::consts::FRAC_1_SQRT_2);
        for level in 0..self.depth {
            let seg = self.n >> level;
            let half = seg / 2;
            let d = &self.diags[level];
            for s in (0..self.n).step_by(seg) {
                for i in 0..half {
                    let sum = (v[s + i] + v[s + half + i]) * inv_sqrt2;
                    let diff = (v[s + i] - v[s + half + i]) * inv_sqrt2;
                    v[s + i] = d[s + i] * sum;
                    v[s + half + i] = d[s + half + i] * diff;
                }
            }
        }
    }

    /// `A <- Wᵀ A` (column-wise application of [`Self::apply_transpose`]).
    pub fn apply_transpose_left(&self, a: &mut Matrix<T>) {
        assert_eq!(a.rows(), self.n, "row count mismatch");
        for j in 0..a.cols() {
            self.apply_transpose(a.col_mut(j));
        }
    }

    /// `A <- A W` (row-wise: `(A W)ᵀ = Wᵀ Aᵀ`).
    pub fn apply_right(&self, a: &mut Matrix<T>) {
        assert_eq!(a.cols(), self.n, "column count mismatch");
        let mut row = vec![T::zero(); self.n];
        for i in 0..a.rows() {
            for j in 0..self.n {
                row[j] = a.get(i, j);
            }
            self.apply_transpose(&mut row);
            for j in 0..self.n {
                a.set(i, j, row[j]);
            }
        }
    }
}

/// An RBT-preconditioned LU factorization ready to solve systems.
pub struct RbtLu<T> {
    u: Butterfly<T>,
    v: Butterfly<T>,
    /// No-pivot LU factors of `Uᵀ A V`.
    lu: Matrix<T>,
}

/// Preconditions `a` with depth-`depth` butterflies and factors it without
/// pivoting: `Uᵀ A V = L·R`.
pub fn rbt_lu<T: Scalar>(a: &Matrix<T>, depth: usize, seed: u64) -> Result<RbtLu<T>> {
    assert!(a.is_square(), "rbt_lu requires a square matrix");
    let n = a.rows();
    let u = Butterfly::random(n, depth, seed);
    let v = Butterfly::random(n, depth, seed.wrapping_add(1));
    let mut t = a.clone();
    u.apply_transpose_left(&mut t);
    v.apply_right(&mut t);
    factor::getrf_nopiv(&mut t)?;
    Ok(RbtLu { u, v, lu: t })
}

impl<T: Scalar> RbtLu<T> {
    /// Solves `A x = b`; `b` is overwritten with `x`.
    pub fn solve(&self, b: &mut [T]) {
        self.u.apply_transpose(b);
        factor::getrf_nopiv_solve(&self.lu, b);
        self.v.apply(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::{gen, norms};

    #[test]
    fn butterfly_is_well_conditioned() {
        // Diagonals are ±e^{u/10}, u in (-1, 1), so W is near-orthogonal:
        // ‖W v‖ stays within e^{±0.2} of ‖v‖ for any v.
        let n = 32;
        let w = Butterfly::<f64>::random(n, 2, 1);
        for seed in 0..5 {
            let mut v = gen::random_vector::<f64>(n, seed);
            let norm0 = xsc_core::blas1::nrm2(&v);
            w.apply(&mut v);
            let ratio = xsc_core::blas1::nrm2(&v) / norm0;
            assert!(ratio > 0.8 && ratio < 1.25, "norm ratio {ratio}");
        }
    }

    #[test]
    fn transpose_is_exact_transpose() {
        // <W x, y> must equal <x, Wᵀ y> for all x, y.
        let n = 16;
        let w = Butterfly::<f64>::random(n, 2, 3);
        let x0 = gen::random_vector::<f64>(n, 4);
        let y0 = gen::random_vector::<f64>(n, 5);
        let mut wx = x0.clone();
        w.apply(&mut wx);
        let lhs: f64 = wx.iter().zip(y0.iter()).map(|(a, b)| a * b).sum();
        let mut wty = y0.clone();
        w.apply_transpose(&mut wty);
        let rhs: f64 = x0.iter().zip(wty.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn left_right_application_matches_vector_form() {
        let n = 8;
        let w = Butterfly::<f64>::random(n, 1, 6);
        let a = gen::random_matrix::<f64>(n, n, 7);
        // Wᵀ A column check.
        let mut wta = a.clone();
        w.apply_transpose_left(&mut wta);
        let mut col0: Vec<f64> = (0..n).map(|i| a.get(i, 0)).collect();
        w.apply_transpose(&mut col0);
        for i in 0..n {
            assert!((wta.get(i, 0) - col0[i]).abs() < 1e-13);
        }
        // A W row check: (A W)[i, :] = Wᵀ (A[i, :]ᵀ).
        let mut aw = a.clone();
        w.apply_right(&mut aw);
        let mut row0: Vec<f64> = (0..n).map(|j| a.get(0, j)).collect();
        w.apply_transpose(&mut row0);
        for j in 0..n {
            assert!((aw.get(0, j) - row0[j]).abs() < 1e-13);
        }
    }

    #[test]
    fn rbt_solve_recovers_solution() {
        let n = 64;
        let a = gen::random_matrix::<f64>(n, n, 8);
        let b = gen::rhs_for_unit_solution(&a);
        let f = rbt_lu(&a, 2, 99).unwrap();
        let mut x = b.clone();
        f.solve(&mut x);
        assert!(
            norms::relative_residual(&a, &x, &b) < 1e-8,
            "residual {}",
            norms::relative_residual(&a, &x, &b)
        );
    }

    #[test]
    fn rbt_rescues_adversarial_matrix() {
        // A matrix that breaks no-pivot LU outright (zero leading pivot).
        let n = 32;
        let mut a = gen::random_matrix::<f64>(n, n, 9);
        a.set(0, 0, 0.0);
        assert!(
            factor::getrf_nopiv(&mut a.clone()).is_err() || {
                // If not exactly detected as singular, the residual check below
                // still demonstrates the instability.
                true
            }
        );
        let b = gen::rhs_for_unit_solution(&a);
        let f = rbt_lu(&a, 2, 10).unwrap();
        let mut x = b.clone();
        f.solve(&mut x);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_order_rejected() {
        let _ = Butterfly::<f64>::random(30, 2, 1);
    }

    #[test]
    fn different_seeds_give_different_transforms() {
        let w1 = Butterfly::<f64>::random(8, 1, 1);
        let w2 = Butterfly::<f64>::random(8, 1, 2);
        let mut v1 = vec![1.0f64; 8];
        let mut v2 = vec![1.0f64; 8];
        w1.apply(&mut v1);
        w2.apply(&mut v2);
        assert_ne!(v1, v2);
    }
}
