//! Tiled LU factorization without pivoting — dataflow and fork-join engines.
//!
//! Tile-level pivoting serializes the panel across tiles, which is exactly
//! the synchronization the keynote wants removed; the tiled engines here
//! therefore factor *without* pivoting and are intended for diagonally
//! dominant matrices or matrices preconditioned with the random butterfly
//! transform ([`crate::rbt`]). The pivoted, thread-parallel blocked LU used
//! by the HPL driver lives in [`crate::hpl`].

use crate::poison::Poison;
use rayon::prelude::*;
use xsc_core::{factor, flops, gemm, trsm};
use xsc_core::{Matrix, Result, Scalar, TileMatrix, Transpose};
use xsc_runtime::{trace::Trace, Access, Executor, TaskGraph};

/// Builds the tiled no-pivot LU task graph over `a`:
///
/// * `GETRF A[k][k]`
/// * `TRSM  A[k][j] <- L[k][k]^-1 * A[k][j]` (unit-lower)    for `j > k`
/// * `TRSM  A[i][k] <- A[i][k] * U[k][k]^-1` (upper)         for `i > k`
/// * `GEMM  A[i][j] <- A[i][j] - A[i][k]*A[k][j]`             for `i, j > k`
pub fn build_graph<T: Scalar>(a: &TileMatrix<T>, poison: &Poison) -> TaskGraph {
    let nt = a.tile_cols();
    assert_eq!(a.tile_rows(), nt, "lu requires a square tile grid");
    let mut g = TaskGraph::new();
    for k in 0..nt {
        let (kb, _) = a.tile_dims(k, k);
        {
            let tkk = a.tile(k, k);
            let p = poison.clone();
            let id = g.add_task_with_cost(
                format!("getrf({k})"),
                [Access::Write(a.data_id(k, k))],
                flops::lu(kb),
                move || {
                    if p.is_set() {
                        return;
                    }
                    if let Err(e) = factor::getrf_nopiv(&mut tkk.write()) {
                        p.set(e);
                    }
                },
            );
            g.set_affinity(id, k as u64);
        }
        for j in k + 1..nt {
            let tkk = a.tile(k, k);
            let tkj = a.tile(k, j);
            let p = poison.clone();
            let (_, jb) = a.tile_dims(k, j);
            let id = g.add_task_with_cost(
                format!("trsm_l({k},{j})"),
                [
                    Access::Read(a.data_id(k, k)),
                    Access::Write(a.data_id(k, j)),
                ],
                flops::trsm(kb, jb),
                move || {
                    if p.is_set() {
                        return;
                    }
                    let lu_kk = tkk.read();
                    trsm::trsm(
                        trsm::Side::Left,
                        trsm::Uplo::Lower,
                        Transpose::No,
                        trsm::Diag::Unit,
                        T::one(),
                        &lu_kk,
                        &mut tkj.write(),
                    );
                },
            );
            g.set_affinity(id, k as u64);
        }
        for i in k + 1..nt {
            let tkk = a.tile(k, k);
            let tik = a.tile(i, k);
            let p = poison.clone();
            let (ib, _) = a.tile_dims(i, k);
            let id = g.add_task_with_cost(
                format!("trsm_u({i},{k})"),
                [
                    Access::Read(a.data_id(k, k)),
                    Access::Write(a.data_id(i, k)),
                ],
                flops::trsm(kb, ib),
                move || {
                    if p.is_set() {
                        return;
                    }
                    let lu_kk = tkk.read();
                    trsm::trsm(
                        trsm::Side::Right,
                        trsm::Uplo::Upper,
                        Transpose::No,
                        trsm::Diag::NonUnit,
                        T::one(),
                        &lu_kk,
                        &mut tik.write(),
                    );
                },
            );
            g.set_affinity(id, k as u64);
        }
        for i in k + 1..nt {
            for j in k + 1..nt {
                let tik = a.tile(i, k);
                let tkj = a.tile(k, j);
                let tij = a.tile(i, j);
                let p = poison.clone();
                let (ib, _) = a.tile_dims(i, k);
                let (_, jb) = a.tile_dims(k, j);
                let id = g.add_task_with_cost(
                    format!("gemm({i},{j},{k})"),
                    [
                        Access::Read(a.data_id(i, k)),
                        Access::Read(a.data_id(k, j)),
                        Access::Write(a.data_id(i, j)),
                    ],
                    flops::gemm(ib, jb, kb),
                    move || {
                        if p.is_set() {
                            return;
                        }
                        let l = tik.read();
                        let u = tkj.read();
                        gemm::gemm(
                            Transpose::No,
                            Transpose::No,
                            -T::one(),
                            &l,
                            &u,
                            T::one(),
                            &mut tij.write(),
                        );
                    },
                );
                g.set_affinity(id, k as u64);
            }
        }
    }
    g
}

/// Dataflow tiled LU without pivoting: factors `a` in place (unit-lower `L`
/// below the diagonal, `U` on and above).
pub fn lu_nopiv_dag<T: Scalar>(a: &TileMatrix<T>, executor: &Executor) -> Result<Trace> {
    let poison = Poison::new();
    let g = build_graph(a, &poison);
    let trace = executor.execute_traced(g);
    poison.into_result()?;
    Ok(trace)
}

/// Fork-join tiled LU without pivoting (barrier after each step's panel and
/// after its trailing update).
pub fn lu_nopiv_forkjoin<T: Scalar>(a: &TileMatrix<T>) -> Result<()> {
    let nt = a.tile_cols();
    assert_eq!(a.tile_rows(), nt, "lu requires a square tile grid");
    for k in 0..nt {
        {
            let tkk = a.tile(k, k);
            factor::getrf_nopiv(&mut tkk.write())?;
        }
        let tkk = a.tile(k, k);
        let lu_kk = tkk.read();
        // Row and column panels in parallel, then barrier.
        let panel: Vec<(bool, usize)> = (k + 1..nt)
            .map(|j| (true, j))
            .chain((k + 1..nt).map(|i| (false, i)))
            .collect();
        panel.into_par_iter().for_each(|(is_row, idx)| {
            if is_row {
                let tkj = a.tile(k, idx);
                trsm::trsm(
                    trsm::Side::Left,
                    trsm::Uplo::Lower,
                    Transpose::No,
                    trsm::Diag::Unit,
                    T::one(),
                    &lu_kk,
                    &mut tkj.write(),
                );
            } else {
                let tik = a.tile(idx, k);
                trsm::trsm(
                    trsm::Side::Right,
                    trsm::Uplo::Upper,
                    Transpose::No,
                    trsm::Diag::NonUnit,
                    T::one(),
                    &lu_kk,
                    &mut tik.write(),
                );
            }
        });
        drop(lu_kk);
        let updates: Vec<(usize, usize)> = (k + 1..nt)
            .flat_map(|i| (k + 1..nt).map(move |j| (i, j)))
            .collect();
        updates.into_par_iter().for_each(|(i, j)| {
            let tik = a.tile(i, k);
            let tkj = a.tile(k, j);
            let l = tik.read();
            let u = tkj.read();
            let tij = a.tile(i, j);
            gemm::gemm(
                Transpose::No,
                Transpose::No,
                -T::one(),
                &l,
                &u,
                T::one(),
                &mut tij.write(),
            );
        });
    }
    Ok(())
}

/// Solves `A x = b` from the tiled no-pivot factor (`b` overwritten).
pub fn solve_nopiv<T: Scalar>(lu_tiles: &TileMatrix<T>, b: &mut [T]) {
    let lu = lu_tiles.to_matrix();
    factor::getrf_nopiv_solve(&lu, b);
}

/// Gathers the tiled factor into a dense matrix (testing/interop helper).
pub fn factor_to_matrix<T: Scalar>(a: &TileMatrix<T>) -> Matrix<T> {
    a.to_matrix()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::{gen, norms};
    use xsc_runtime::SchedPolicy;

    fn reference(a: &Matrix<f64>) -> Matrix<f64> {
        let mut f = a.clone();
        factor::getrf_nopiv(&mut f).unwrap();
        f
    }

    #[test]
    fn dag_matches_reference() {
        for (n, nb) in [(32, 8), (45, 16), (30, 7)] {
            let a = gen::diag_dominant::<f64>(n, 1);
            let tiles = TileMatrix::from_matrix(&a, nb);
            let exec = Executor::new(4, SchedPolicy::CriticalPath);
            lu_nopiv_dag(&tiles, &exec).unwrap();
            let got = tiles.to_matrix();
            let expect = reference(&a);
            assert!(
                got.approx_eq(&expect, 1e-8),
                "n={n} nb={nb} diff {}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn forkjoin_matches_reference() {
        let a = gen::diag_dominant::<f64>(36, 2);
        let tiles = TileMatrix::from_matrix(&a, 12);
        lu_nopiv_forkjoin(&tiles).unwrap();
        assert!(tiles.to_matrix().approx_eq(&reference(&a), 1e-8));
    }

    #[test]
    fn dag_solve_end_to_end() {
        let n = 50;
        let a = gen::diag_dominant::<f64>(n, 3);
        let b = gen::rhs_for_unit_solution(&a);
        let tiles = TileMatrix::from_matrix(&a, 16);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        lu_nopiv_dag(&tiles, &exec).unwrap();
        let mut x = b.clone();
        solve_nopiv(&tiles, &mut x);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn singular_tile_reports_error() {
        let mut a = gen::diag_dominant::<f64>(16, 4);
        // Make the (0,0) tile singular: zero the first row of the matrix.
        for j in 0..16 {
            a.set(0, j, 0.0);
        }
        let tiles = TileMatrix::from_matrix(&a, 8);
        let exec = Executor::new(2, SchedPolicy::Fifo);
        assert!(lu_nopiv_dag(&tiles, &exec).is_err());
    }

    #[test]
    fn graph_task_count() {
        // nt = 3: getrf 3, trsm 2*(2+1), gemm 4+1 = 5.
        let a = TileMatrix::<f64>::zeros(24, 24, 8);
        let g = build_graph(&a, &Poison::new());
        assert_eq!(g.len(), 3 + 2 * 3 + 5);
    }
}
