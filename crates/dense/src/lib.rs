//! # xsc-dense — tiled dense factorizations, two ways
//!
//! This crate implements the keynote's algorithmic program for dense linear
//! algebra at scale:
//!
//! * [`cholesky`], [`lu`], [`qr`] — PLASMA-style **tiled algorithms**, each
//!   in two engines: a **DAG-dataflow** version driven by `xsc-runtime`
//!   (tasks fire the moment their input tiles are ready) and a
//!   **fork-join / bulk-synchronous** baseline (a barrier after every
//!   algorithmic step — the model the keynote argues is obsolete).
//! * [`tsqr`] — the **communication-avoiding** tall-skinny QR: a reduction
//!   tree of small factorizations that moves `O(n²·log P)` words where the
//!   flat algorithm moves `O(m·n)`.
//! * [`rbt`] — **random butterfly transforms**: randomization in place of
//!   pivoting, removing the pivot search's synchronization point.
//! * [`calu`] — **communication-avoiding LU**: tournament pivoting (TSLU)
//!   replaces the panel's O(n) pivot reductions with O(log P) tournament
//!   rounds.
//! * [`hpl`] — the HPL-like benchmark driver (thread-parallel blocked LU
//!   with partial pivoting, HPL flop accounting and the HPL acceptance
//!   residual), one half of the headline HPL-vs-HPCG experiment.
//! * [`resilient`] — **ABFT-guarded resilient Cholesky**: each tile kernel
//!   verifies an `O(nb²)` checksum identity over its output and fails the
//!   task on mismatch, letting the resilient runtime re-execute exactly the
//!   corrupted tile operation (E17).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-coupled updates across multiple slices are the clearest form for these kernels

pub mod calu;
pub mod cholesky;
pub mod hpl;
pub mod lu;
pub mod qr;
pub mod rbt;
pub mod resilient;
pub mod tsqr;

pub mod poison;

pub use hpl::HplResult;
