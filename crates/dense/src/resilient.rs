//! ABFT-guarded resilient tiled Cholesky: checksum verification as the
//! *detector*, task re-execution as the *corrector*.
//!
//! The classic ABFT recipe (see `xsc-ft::abft`) corrects a corrupted entry
//! algebraically from row/column checksums. Combined with a resilient
//! runtime there is a simpler and more general corrector: **run the task
//! again**. Each tile kernel here
//!
//! 1. snapshots its output tile on attempt 1 (and restores it on a retry,
//!    making the read-modify-write kernels idempotent),
//! 2. computes the normal `O(nb³)` tile operation,
//! 3. verifies an `O(nb²)` checksum identity over its inputs and outputs,
//!    and returns [`TaskFault`] on mismatch.
//!
//! The resilient executor then re-executes exactly the faulted task — the
//! fault domain is one tile kernel, not the factorization. The checksum
//! identities (with `e` the all-ones vector, sums restricted to the live
//! lower triangle where only that triangle is stored):
//!
//! * `POTRF`: `L(Lᵀe) = Ae`
//! * `TRSM` (`X = B·L⁻ᵀ`): `X(Lᵀe) = Be`
//! * `SYRK` (`C' = C − A·Aᵀ`): `eᵀ(C − C') = eᵀ(A·Aᵀ)` column-wise
//! * `GEMM` (`C' = C − A·Bᵀ`): `C'e = Ce − A(Bᵀe)`
//!
//! Detection catches large corruptions (bit flips in high bits, stuck or
//! zeroed values) — a corruption below the roundoff-scaled tolerance
//! escapes, exactly as with classic ABFT.
//!
//! Fault injection for chaos testing comes from an optional
//! [`FaultPlan`]; injected panics land after the tile update (the most
//! adversarial moment: output clobbered, then the "crash"), and injected
//! silent corruption lands between the update and the verification, where
//! real silent errors live.

use crate::poison::Poison;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use xsc_core::{factor, flops, gemm, norms, syrk, trsm};
use xsc_core::{Error, Matrix, Result, TileMatrix, Transpose};
use xsc_ft::abft::checksum_tolerance;
use xsc_ft::inject::FaultKind;
use xsc_ft::plan::{FaultPlan, Injection};
use xsc_runtime::{trace::Trace, Access, Executor, RecoveryPolicy, TaskFault, TaskGraph};

/// Outcome of a resilient ABFT-guarded factorization.
#[derive(Debug)]
pub struct ResilientCholesky {
    /// Execution trace; [`Trace::resilience`] carries retry/recovery/skip
    /// telemetry. `stats.completed()` is the "factorization finished"
    /// signal — under an exhausted [`RecoveryPolicy`] the run may abort or
    /// skip a subtree, in which case the tiles are *not* a valid factor.
    pub trace: Trace,
    /// Checksum mismatches detected by the tile guards (each one turned a
    /// silent error into a task retry).
    pub detections: usize,
}

struct Ctx {
    poison: Poison,
    plan: Option<Arc<FaultPlan>>,
    detections: Arc<AtomicUsize>,
}

/// Factors `a` (SPD, square tile grid) in place with ABFT-guarded,
/// re-executable tile kernels, under `policy`. An optional [`FaultPlan`]
/// injects chaos (panics / silent corruption / stalls) for testing.
///
/// Returns the math errors of the underlying factorization
/// ([`Error::NotPositiveDefinite`]) as `Err`; *fault* handling is
/// reported through the trace's [`ResilienceStats`] instead — check
/// `trace.resilience().unwrap().completed()` before trusting the factor.
///
/// [`ResilienceStats`]: xsc_runtime::ResilienceStats
pub fn cholesky_resilient_abft(
    a: &TileMatrix<f64>,
    executor: &Executor,
    policy: RecoveryPolicy,
    plan: Option<Arc<FaultPlan>>,
) -> Result<ResilientCholesky> {
    let ctx = Ctx {
        poison: Poison::new(),
        plan,
        detections: Arc::new(AtomicUsize::new(0)),
    };
    let g = build_resilient_graph(a, &ctx);
    let trace = executor.execute_resilient_traced(g, policy);
    ctx.poison.into_result()?;
    Ok(ResilientCholesky {
        trace,
        detections: ctx.detections.load(Ordering::Relaxed),
    })
}

/// Builds the ABFT-guarded Cholesky task graph (same DAG shape as
/// [`crate::cholesky::build_graph`], fallible kernels instead).
fn build_resilient_graph(a: &TileMatrix<f64>, ctx: &Ctx) -> TaskGraph {
    let nt = a.tile_cols();
    assert_eq!(a.tile_rows(), nt, "cholesky requires a square tile grid");
    let nb = a.nb();
    let mut g = TaskGraph::new();
    for k in 0..nt {
        let (kb, _) = a.tile_dims(k, k);
        add_potrf(&mut g, a, ctx, k, kb, k * nb);
        for i in k + 1..nt {
            add_trsm(&mut g, a, ctx, i, k, kb);
        }
        for i in k + 1..nt {
            add_syrk(&mut g, a, ctx, i, k, kb);
            for j in k + 1..i {
                add_gemm(&mut g, a, ctx, i, j, k, kb);
            }
        }
    }
    g
}

fn add_potrf(g: &mut TaskGraph, a: &TileMatrix<f64>, ctx: &Ctx, k: usize, kb: usize, base: usize) {
    let tkk = a.tile(k, k);
    let poison = ctx.poison.clone();
    let plan = ctx.plan.clone();
    let detections = Arc::clone(&ctx.detections);
    let snap: Mutex<Option<(Matrix<f64>, Vec<f64>)>> = Mutex::new(None);
    g.add_fallible_task_with_cost(
        format!("potrf({k})"),
        [Access::Write(a.data_id(k, k))],
        flops::cholesky(kb),
        move |at| {
            if poison.is_set() {
                return Ok(());
            }
            let injection = plan.as_ref().and_then(|p| p.decide(at.task, at.attempt));
            if let Some(Injection::Stall(d)) = injection {
                std::thread::sleep(d);
            }
            let mut tile = tkk.write();
            let (scale_in, rhs) = {
                let mut s = snap.lock();
                if at.is_retry() {
                    let (saved, _) = s.as_ref().expect("retry implies snapshot");
                    *tile = saved.clone();
                } else {
                    *s = Some((tile.clone(), sym_lower_rowsums(&tile)));
                }
                let (saved, rhs) = s.as_ref().unwrap();
                (norms::max_abs(saved), rhs.clone())
            };
            if let Err(e) = factor::potrf_unblocked(&mut tile) {
                poison.set(shift_pivot(e, base));
                return Ok(());
            }
            if let Some(Injection::Panic) = injection {
                panic!("chaos: injected panic in potrf({at:?})");
            }
            if let Some(Injection::Corrupt(kind)) = injection {
                if let Some(p) = plan.as_deref() {
                    corrupt_lower(p, kind, &mut tile, at.task, at.attempt);
                }
            }
            // Verify L(Lᵀe) = Ae over the live lower triangle.
            let w = lower_colsums(&tile);
            let got = lower_matvec(&tile, &w);
            let scale = scale_in.max(norms::max_abs(&tile).powi(2));
            let tol = checksum_tolerance(kb, kb, kb, scale);
            check(&got, &rhs, tol, "potrf", &detections)
        },
    );
}

fn add_trsm(g: &mut TaskGraph, a: &TileMatrix<f64>, ctx: &Ctx, i: usize, k: usize, kb: usize) {
    let tkk = a.tile(k, k);
    let tik = a.tile(i, k);
    let poison = ctx.poison.clone();
    let plan = ctx.plan.clone();
    let detections = Arc::clone(&ctx.detections);
    let (ib, _) = a.tile_dims(i, k);
    let snap: Mutex<Option<(Matrix<f64>, Vec<f64>)>> = Mutex::new(None);
    g.add_fallible_task_with_cost(
        format!("trsm({i},{k})"),
        [
            Access::Read(a.data_id(k, k)),
            Access::Write(a.data_id(i, k)),
        ],
        flops::trsm(kb, ib),
        move |at| {
            if poison.is_set() {
                return Ok(());
            }
            let injection = plan.as_ref().and_then(|p| p.decide(at.task, at.attempt));
            if let Some(Injection::Stall(d)) = injection {
                std::thread::sleep(d);
            }
            let l = tkk.read();
            let mut x = tik.write();
            let rhs = {
                let mut s = snap.lock();
                if at.is_retry() {
                    let (saved, _) = s.as_ref().expect("retry implies snapshot");
                    *x = saved.clone();
                } else {
                    *s = Some((x.clone(), full_rowsums(&x)));
                }
                s.as_ref().unwrap().1.clone()
            };
            trsm::trsm(
                trsm::Side::Right,
                trsm::Uplo::Lower,
                Transpose::Yes,
                trsm::Diag::NonUnit,
                1.0,
                &l,
                &mut x,
            );
            if let Some(Injection::Panic) = injection {
                panic!("chaos: injected panic in trsm({at:?})");
            }
            if let Some(Injection::Corrupt(kind)) = injection {
                if let Some(p) = plan.as_deref() {
                    p.corrupt_slice(x.as_mut_slice(), kind, at.task, at.attempt);
                }
            }
            // Verify X(Lᵀe) = Be.
            let w = lower_colsums(&l);
            let got = matvec(&x, &w);
            let scale = norms::max_abs(&l) * norms::max_abs(&x);
            let tol = checksum_tolerance(ib, kb, kb, scale);
            check(&got, &rhs, tol, "trsm", &detections)
        },
    );
}

fn add_syrk(g: &mut TaskGraph, a: &TileMatrix<f64>, ctx: &Ctx, i: usize, k: usize, kb: usize) {
    let tik = a.tile(i, k);
    let tii = a.tile(i, i);
    let poison = ctx.poison.clone();
    let plan = ctx.plan.clone();
    let detections = Arc::clone(&ctx.detections);
    let (ib, _) = a.tile_dims(i, k);
    let snap: Mutex<Option<Matrix<f64>>> = Mutex::new(None);
    g.add_fallible_task_with_cost(
        format!("syrk({i},{k})"),
        [
            Access::Read(a.data_id(i, k)),
            Access::Write(a.data_id(i, i)),
        ],
        flops::syrk(ib, kb),
        move |at| {
            if poison.is_set() {
                return Ok(());
            }
            let injection = plan.as_ref().and_then(|p| p.decide(at.task, at.attempt));
            if let Some(Injection::Stall(d)) = injection {
                std::thread::sleep(d);
            }
            let lik = tik.read();
            let mut c = tii.write();
            let c_before = {
                let mut s = snap.lock();
                if at.is_retry() {
                    *c = s.as_ref().expect("retry implies snapshot").clone();
                } else {
                    *s = Some(c.clone());
                }
                s.as_ref().unwrap().clone()
            };
            syrk::syrk(trsm::Uplo::Lower, Transpose::No, -1.0, &lik, 1.0, &mut c);
            if let Some(Injection::Panic) = injection {
                panic!("chaos: injected panic in syrk({at:?})");
            }
            if let Some(Injection::Corrupt(kind)) = injection {
                if let Some(p) = plan.as_deref() {
                    corrupt_lower(p, kind, &mut c, at.task, at.attempt);
                }
            }
            // Verify column-wise over the updated (lower) triangle:
            //   Σ_{r>=j} (C_before − C')_{r,j}  =  Σ_t A_{j,t} · SS_t(j),
            // with SS_t(j) = Σ_{r>=j} A_{r,t} maintained by a descending
            // suffix sweep — O(nb·kb), no recompute of A·Aᵀ.
            let n = c.rows();
            let kd = lik.cols();
            let mut suffix = vec![0.0f64; kd];
            let mut measured = vec![0.0f64; n];
            let mut predicted = vec![0.0f64; n];
            for j in (0..n).rev() {
                for t in 0..kd {
                    suffix[t] += lik.get(j, t);
                }
                let mut acc = 0.0;
                for t in 0..kd {
                    acc += lik.get(j, t) * suffix[t];
                }
                predicted[j] = acc;
                let mut m = 0.0;
                for r in j..n {
                    m += c_before.get(r, j) - c.get(r, j);
                }
                measured[j] = m;
            }
            let scale = norms::max_abs(&c_before).max(norms::max_abs(&lik).powi(2));
            let tol = checksum_tolerance(ib, ib, kb, scale);
            check(&measured, &predicted, tol, "syrk", &detections)
        },
    );
}

fn add_gemm(
    g: &mut TaskGraph,
    a: &TileMatrix<f64>,
    ctx: &Ctx,
    i: usize,
    j: usize,
    k: usize,
    kb: usize,
) {
    let tik = a.tile(i, k);
    let tjk = a.tile(j, k);
    let tij = a.tile(i, j);
    let poison = ctx.poison.clone();
    let plan = ctx.plan.clone();
    let detections = Arc::clone(&ctx.detections);
    let (ib, _) = a.tile_dims(i, k);
    let (jb, _) = a.tile_dims(j, k);
    let snap: Mutex<Option<(Matrix<f64>, Vec<f64>)>> = Mutex::new(None);
    g.add_fallible_task_with_cost(
        format!("gemm({i},{j},{k})"),
        [
            Access::Read(a.data_id(i, k)),
            Access::Read(a.data_id(j, k)),
            Access::Write(a.data_id(i, j)),
        ],
        flops::gemm(ib, jb, kb),
        move |at| {
            if poison.is_set() {
                return Ok(());
            }
            let injection = plan.as_ref().and_then(|p| p.decide(at.task, at.attempt));
            if let Some(Injection::Stall(d)) = injection {
                std::thread::sleep(d);
            }
            let lik = tik.read();
            let ljk = tjk.read();
            let mut c = tij.write();
            let c_rows_before = {
                let mut s = snap.lock();
                if at.is_retry() {
                    let (saved, _) = s.as_ref().expect("retry implies snapshot");
                    *c = saved.clone();
                } else {
                    *s = Some((c.clone(), full_rowsums(&c)));
                }
                s.as_ref().unwrap().1.clone()
            };
            gemm::gemm(Transpose::No, Transpose::Yes, -1.0, &lik, &ljk, 1.0, &mut c);
            if let Some(Injection::Panic) = injection {
                panic!("chaos: injected panic in gemm({at:?})");
            }
            if let Some(Injection::Corrupt(kind)) = injection {
                if let Some(p) = plan.as_deref() {
                    p.corrupt_slice(c.as_mut_slice(), kind, at.task, at.attempt);
                }
            }
            // Verify C'e = Ce − A(Bᵀe).
            let bte = colsums(&ljk);
            let abe = matvec(&lik, &bte);
            let rhs: Vec<f64> = c_rows_before
                .iter()
                .zip(abe.iter())
                .map(|(ce, u)| ce - u)
                .collect();
            let got = full_rowsums(&c);
            let scale = norms::max_abs(&lik) * norms::max_abs(&ljk);
            let tol = checksum_tolerance(ib, jb, kb, scale.max(1.0));
            check(&got, &rhs, tol, "gemm", &detections)
        },
    );
}

/// Compares a computed checksum vector against its prediction; a mismatch
/// counts a detection and fails the attempt.
fn check(
    got: &[f64],
    expect: &[f64],
    tol: f64,
    kernel: &str,
    detections: &AtomicUsize,
) -> std::result::Result<(), TaskFault> {
    for (idx, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
        let diff = (g - e).abs();
        if diff > tol || diff.is_nan() {
            detections.fetch_add(1, Ordering::Relaxed);
            return Err(TaskFault::new(format!(
                "{kernel} checksum mismatch at {idx}: |{g:.6e} - {e:.6e}| = {diff:.3e} > {tol:.3e}"
            )));
        }
    }
    Ok(())
}

/// Corrupts a deterministically chosen element of the *live* (lower)
/// triangle — corruption in the stale upper triangle of a diagonal tile
/// would be both undetectable and harmless, i.e. not a fault at all.
fn corrupt_lower(
    plan: &FaultPlan,
    kind: FaultKind,
    m: &mut Matrix<f64>,
    task: usize,
    attempt: u32,
) {
    let n = m.rows();
    let count = n * (n + 1) / 2;
    if let Some(mut v) = plan.victim_index(count, task, attempt) {
        for j in 0..n {
            let col = n - j;
            if v < col {
                let i = j + v;
                m.set(i, j, kind.apply(m.get(i, j)));
                return;
            }
            v -= col;
        }
    }
}

fn shift_pivot(e: Error, base: usize) -> Error {
    match e {
        Error::NotPositiveDefinite { pivot } => Error::NotPositiveDefinite {
            pivot: base + pivot,
        },
        other => other,
    }
}

/// `Ae` — full row sums.
fn full_rowsums(m: &Matrix<f64>) -> Vec<f64> {
    let mut r = vec![0.0; m.rows()];
    for j in 0..m.cols() {
        for i in 0..m.rows() {
            r[i] += m.get(i, j);
        }
    }
    r
}

/// `Aᵀe` — column sums.
fn colsums(m: &Matrix<f64>) -> Vec<f64> {
    let mut r = vec![0.0; m.cols()];
    for j in 0..m.cols() {
        for i in 0..m.rows() {
            r[j] += m.get(i, j);
        }
    }
    r
}

/// `Lᵀe` restricted to the lower triangle: `w_j = Σ_{i>=j} L_ij`.
fn lower_colsums(m: &Matrix<f64>) -> Vec<f64> {
    let n = m.rows();
    let mut r = vec![0.0; n];
    for j in 0..n {
        for i in j..n {
            r[j] += m.get(i, j);
        }
    }
    r
}

/// `Lv` for lower-triangular `L`: `(Lv)_i = Σ_{j<=i} L_ij v_j`.
fn lower_matvec(m: &Matrix<f64>, v: &[f64]) -> Vec<f64> {
    let n = m.rows();
    let mut r = vec![0.0; n];
    for j in 0..n {
        for i in j..n {
            r[i] += m.get(i, j) * v[j];
        }
    }
    r
}

/// `Mv` — full mat-vec.
fn matvec(m: &Matrix<f64>, v: &[f64]) -> Vec<f64> {
    let mut r = vec![0.0; m.rows()];
    for j in 0..m.cols() {
        for i in 0..m.rows() {
            r[i] += m.get(i, j) * v[j];
        }
    }
    r
}

/// Row sums of the symmetrized lower triangle — the effective `Ae` for a
/// diagonal tile whose upper triangle holds stale data.
fn sym_lower_rowsums(m: &Matrix<f64>) -> Vec<f64> {
    let n = m.rows();
    let mut r = vec![0.0; n];
    for j in 0..n {
        for i in j..n {
            let v = m.get(i, j);
            r[i] += v;
            if i != j {
                r[j] += v;
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::lower_from_tiles;
    use xsc_core::gen;
    use xsc_ft::plan::ChaosKind;
    use xsc_runtime::{Backoff, ExhaustedAction, SchedPolicy};

    fn reference_lower(a: &Matrix<f64>, nb: usize) -> Matrix<f64> {
        let mut f = a.clone();
        factor::potrf_blocked(&mut f, nb).unwrap();
        let n = a.rows();
        Matrix::from_fn(n, n, |i, j| if i >= j { f.get(i, j) } else { 0.0 })
    }

    fn policy() -> RecoveryPolicy {
        RecoveryPolicy::with_max_attempts(6)
            .backoff(Backoff::Fixed(std::time::Duration::from_micros(50)))
    }

    #[test]
    fn fault_free_matches_reference() {
        for (n, nb) in [(48, 16), (40, 12)] {
            let a = gen::random_spd::<f64>(n, 21);
            let tiles = TileMatrix::from_matrix(&a, nb);
            let exec = Executor::new(4, SchedPolicy::CriticalPath);
            let run = cholesky_resilient_abft(&tiles, &exec, policy(), None).unwrap();
            let stats = run.trace.resilience().unwrap();
            assert!(stats.completed(), "{}", stats.summary());
            assert_eq!(stats.retries, 0, "no faults -> no retries");
            assert_eq!(run.detections, 0, "guards must not false-positive");
            let got = lower_from_tiles(&tiles);
            let expect = reference_lower(&a, nb);
            assert!(
                got.approx_eq(&expect, 1e-9),
                "diff {}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn silent_corruption_is_detected_and_healed() {
        let n = 64;
        let nb = 16;
        let a = gen::random_spd::<f64>(n, 22);
        let tiles = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        let plan = Arc::new(FaultPlan::new(
            7,
            0.15,
            ChaosKind::SilentCorrupt(FaultKind::BitFlip),
        ));
        let run =
            cholesky_resilient_abft(&tiles, &exec, policy(), Some(Arc::clone(&plan))).unwrap();
        let stats = run.trace.resilience().unwrap();
        assert!(stats.completed(), "{}", stats.summary());
        assert!(plan.fired().1 > 0, "rate 0.15 must fire on this DAG");
        assert!(run.detections > 0, "corruptions must be detected");
        assert!(stats.retries >= run.detections as u64 - 1);
        let got = lower_from_tiles(&tiles);
        let expect = reference_lower(&a, nb);
        assert!(
            got.approx_eq(&expect, 1e-9),
            "diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn panics_are_contained_and_result_is_bitwise_clean() {
        let n = 64;
        let nb = 16;
        let a = gen::random_spd::<f64>(n, 23);

        // Fault-free resilient run as the bitwise reference.
        let clean = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        cholesky_resilient_abft(&clean, &exec, policy(), None).unwrap();

        let tiles = TileMatrix::from_matrix(&a, nb);
        let plan = Arc::new(FaultPlan::new(11, 0.3, ChaosKind::Panic));
        let run =
            cholesky_resilient_abft(&tiles, &exec, policy(), Some(Arc::clone(&plan))).unwrap();
        let stats = run.trace.resilience().unwrap();
        assert!(stats.completed(), "{}", stats.summary());
        assert!(plan.fired().0 > 0);
        assert!(stats.recoveries > 0);
        // Snapshot/restore + deterministic kernels: the healed factor is
        // *bit-identical* to the fault-free one.
        let got = lower_from_tiles(&tiles);
        let expect = lower_from_tiles(&clean);
        assert_eq!(
            got.max_abs_diff(&expect),
            0.0,
            "retries must be bitwise transparent"
        );
    }

    #[test]
    fn zero_kind_dead_tile_entries_are_detected() {
        let n = 48;
        let nb = 12;
        let a = gen::random_spd::<f64>(n, 24);
        let tiles = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(2, SchedPolicy::Fifo);
        let plan = Arc::new(FaultPlan::new(
            13,
            0.2,
            ChaosKind::SilentCorrupt(FaultKind::Zero),
        ));
        let run =
            cholesky_resilient_abft(&tiles, &exec, policy(), Some(Arc::clone(&plan))).unwrap();
        let stats = run.trace.resilience().unwrap();
        assert!(stats.completed(), "{}", stats.summary());
        assert!(run.detections > 0);
        let got = lower_from_tiles(&tiles);
        let expect = reference_lower(&a, nb);
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn exhausted_budget_skips_subtree_not_whole_run() {
        let n = 64;
        let nb = 16;
        let a = gen::random_spd::<f64>(n, 25);
        let tiles = TileMatrix::from_matrix(&a, nb);
        let exec = Executor::new(4, SchedPolicy::CriticalPath);
        // Rate 1.0: every attempt of every task is corrupted — recovery
        // can never succeed, so the budget exhausts immediately.
        let plan = Arc::new(FaultPlan::new(
            17,
            1.0,
            ChaosKind::SilentCorrupt(FaultKind::BitFlip),
        ));
        let pol = RecoveryPolicy::with_max_attempts(2).on_exhausted(ExhaustedAction::SkipSubtree);
        let run = cholesky_resilient_abft(&tiles, &exec, pol, Some(plan)).unwrap();
        let stats = run.trace.resilience().unwrap();
        assert!(!stats.completed());
        assert!(
            !stats.aborted,
            "skip-subtree must run the DAG to completion"
        );
        assert!(stats.permanent_failures > 0);
        assert!(stats.skipped > 0, "everything depends on potrf(0)");
    }

    #[test]
    fn not_spd_is_a_math_error_not_a_fault() {
        let n = 32;
        let mut a = gen::random_spd::<f64>(n, 26);
        a.set(20, 20, -50.0);
        let tiles = TileMatrix::from_matrix(&a, 8);
        let exec = Executor::new(2, SchedPolicy::Fifo);
        let err = cholesky_resilient_abft(&tiles, &exec, policy(), None).unwrap_err();
        match err {
            Error::NotPositiveDefinite { pivot } => assert!(pivot >= 16, "pivot {pivot}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn acceptance_gate_8x8_tiles_5pct_mixed_faults() {
        // The PR's chaos gate: >= 8x8 tile grid, 5% per-task fault rate,
        // panic and silent-corruption kinds; the factorization must
        // complete with at least one retry and pass the HPL-style
        // residual bound on the solved system.
        let n = 128;
        let nb = 16; // 8x8 tiles
        let a = gen::random_spd::<f64>(n, 27);
        let b = gen::rhs_for_unit_solution(&a);
        let mut total_retries = 0u64;
        for (seed, kind) in [
            (101, ChaosKind::Panic),
            (102, ChaosKind::SilentCorrupt(FaultKind::BitFlip)),
        ] {
            let tiles = TileMatrix::from_matrix(&a, nb);
            let exec = Executor::new(4, SchedPolicy::CriticalPath);
            let plan = Arc::new(FaultPlan::new(seed, 0.05, kind));
            let run =
                cholesky_resilient_abft(&tiles, &exec, policy(), Some(Arc::clone(&plan))).unwrap();
            let stats = run.trace.resilience().unwrap();
            assert!(stats.completed(), "kind {kind:?}: {}", stats.summary());
            total_retries += stats.retries;
            let mut x = b.clone();
            crate::cholesky::solve(&tiles, &mut x);
            let r = xsc_core::norms::hpl_scaled_residual(&a, &x, &b);
            assert!(r < 16.0, "HPL residual {r} for {kind:?}");
        }
        assert!(total_retries >= 1, "5% over 120 tasks must retry somewhere");
    }
}
