//! HPL-like benchmark core: thread-parallel blocked LU with partial
//! pivoting, HPL flop accounting, and the HPL acceptance residual.
//!
//! This is the "old rules" side of the keynote's headline figure: dense LU
//! is compute-bound, so it runs at a large fraction of machine peak — the
//! number the Top500 ranks by. The HPCG-like driver in `xsc-sparse` is the
//! "new rules" counterpart.

use rayon::prelude::*;
use xsc_core::{factor, flops, gen, norms};
use xsc_core::{Matrix, Result, Scalar, Transpose};
use xsc_metrics::Stopwatch;

/// Thread-parallel blocked right-looking LU with partial pivoting.
///
/// The panel factors sequentially (with full-row swaps, as HPL does); the
/// `L11⁻¹`-solve and trailing `gemm` update of each step run column-parallel
/// over the trailing submatrix.
pub fn par_getrf<T: Scalar>(a: &mut Matrix<T>, nb: usize) -> Result<Vec<usize>> {
    assert!(a.is_square(), "par_getrf requires a square matrix");
    assert!(nb > 0, "block size must be positive");
    let n = a.rows();
    if n == 0 {
        // A 0x0 system is vacuously factored; bail before the trailing-update
        // machinery (par_chunks_mut rejects zero-sized chunks).
        return Ok(Vec::new());
    }
    let _scope = xsc_metrics::record(
        "hpl_lu",
        xsc_metrics::traffic::lu_blocked(n, nb, std::mem::size_of::<T>() as u64),
    );
    let mut piv = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        factor::getrf_panel(a, k, kb, &mut piv)?;
        let ntrail = n - k - kb;
        if ntrail > 0 {
            // Split the column-major buffer: `left` holds columns
            // [0, k+kb) — including the freshly factored panel (read-only
            // below) — and `right` the trailing columns we update in
            // parallel.
            let (left, right) = a.as_mut_slice().split_at_mut((k + kb) * n);
            let left = &*left;
            // Column c of the panel (global column k+c), rows k..n.
            let panel_col = |c: usize| -> &[T] { &left[(k + c) * n + k..(k + c + 1) * n] };
            right.par_chunks_mut(n).for_each(|col| {
                // 1) x <- L11^{-1} x  (unit lower, forward substitution).
                for c in 0..kb {
                    let xc = col[k + c];
                    if xc == T::zero() {
                        continue;
                    }
                    let lc = panel_col(c);
                    for r in c + 1..kb {
                        col[k + r] = (-xc).mul_add(lc[r], col[k + r]);
                    }
                }
                // 2) y <- y - L21 * x  (trailing rows).
                for c in 0..kb {
                    let xc = col[k + c];
                    if xc == T::zero() {
                        continue;
                    }
                    let lc = panel_col(c);
                    for r in kb..n - k {
                        col[k + r] = (-xc).mul_add(lc[r], col[k + r]);
                    }
                }
            });
        }
        k += kb;
    }
    Ok(piv)
}

/// Outcome of one HPL-like run.
#[derive(Debug, Clone)]
pub struct HplResult {
    /// Problem size.
    pub n: usize,
    /// Blocking factor used.
    pub nb: usize,
    /// Wall-clock seconds for factor + solve.
    pub seconds: f64,
    /// Benchmark rate using the HPL flop formula `2n³/3 + 3n²/2`.
    pub gflops: f64,
    /// The HPL scaled residual
    /// `‖b−Ax‖∞ / (ε · (‖A‖∞‖x‖∞ + ‖b‖∞) · n)`.
    pub scaled_residual: f64,
    /// HPL acceptance: scaled residual below 16.
    pub passed: bool,
}

/// Runs the HPL-like benchmark at size `n` with blocking `nb`: random
/// uniform matrix (the distribution HPL generates), parallel pivoted LU,
/// two triangular solves, residual check.
pub fn run_hpl(n: usize, nb: usize, seed: u64) -> Result<HplResult> {
    let a = gen::random_matrix::<f64>(n, n, seed);
    let b = gen::random_vector::<f64>(n, seed.wrapping_add(1));
    let start = Stopwatch::start();
    let mut lu = a.clone();
    let piv = par_getrf(&mut lu, nb)?;
    let mut x = b.clone();
    factor::getrf_solve(&lu, &piv, &mut x);
    let seconds = start.seconds();
    let scaled_residual = norms::hpl_scaled_residual(&a, &x, &b);
    Ok(HplResult {
        n,
        nb,
        seconds,
        gflops: flops::gflops(flops::hpl(n), seconds),
        scaled_residual,
        passed: scaled_residual < 16.0,
    })
}

/// Measures the machine's effective peak as the best parallel `dgemm` rate
/// (the cache-blocked packed kernel, parallel over column macro-tiles) over
/// `reps` runs of an `s × s × s` multiply — the denominator of every
/// "% of peak" number in the experiment suite (HPL itself defines peak from
/// the hardware spec sheet; measured-gemm peak is the honest single-node
/// equivalent).
pub fn measure_peak_gflops(s: usize, reps: usize) -> f64 {
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    let mut best = 0.0f64;
    for _ in 0..reps.max(1) {
        let t = Stopwatch::start();
        xsc_core::gemm::par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        let rate = flops::gflops(flops::gemm(s, s, s), t.seconds());
        best = best.max(rate);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_getrf_matches_sequential() {
        for (n, nb) in [(37, 8), (64, 16), (50, 64)] {
            let a = gen::random_matrix::<f64>(n, n, 1);
            let mut f_seq = a.clone();
            let p_seq = factor::getrf_blocked(&mut f_seq, nb).unwrap();
            let mut f_par = a.clone();
            let p_par = par_getrf(&mut f_par, nb).unwrap();
            assert_eq!(p_seq, p_par, "pivots differ n={n} nb={nb}");
            assert!(
                f_seq.approx_eq(&f_par, 1e-11),
                "factors differ n={n} nb={nb}: {}",
                f_seq.max_abs_diff(&f_par)
            );
        }
    }

    #[test]
    fn hpl_run_passes_residual_check() {
        let res = run_hpl(96, 32, 42).unwrap();
        assert!(res.passed, "scaled residual {}", res.scaled_residual);
        assert!(res.gflops > 0.0);
        assert_eq!(res.n, 96);
    }

    #[test]
    fn hpl_rejects_wrong_solution_metric() {
        // Sanity: the acceptance threshold actually discriminates.
        let a = gen::random_matrix::<f64>(32, 32, 7);
        let b = gen::random_vector::<f64>(32, 8);
        let x = vec![0.5; 32];
        assert!(norms::hpl_scaled_residual(&a, &x, &b) > 16.0);
    }

    #[test]
    fn peak_measurement_is_positive() {
        let p = measure_peak_gflops(64, 2);
        assert!(p > 0.0);
    }

    #[test]
    fn par_getrf_handles_empty_matrix() {
        let mut a = Matrix::<f64>::zeros(0, 0);
        let piv = par_getrf(&mut a, 8).unwrap();
        assert!(piv.is_empty());
    }

    #[test]
    fn par_getrf_detects_singular() {
        let mut a = Matrix::<f64>::zeros(16, 16);
        for i in 0..15 {
            a.set(i, i, 1.0);
        }
        // Last column all zero -> singular at the last pivot.
        assert!(par_getrf(&mut a, 4).is_err());
    }
}
