//! Error propagation out of DAG task kernels.
//!
//! Task closures cannot return `Result`, so factorization failures (e.g. a
//! non-SPD pivot) are recorded in a shared slot; every subsequent kernel
//! checks the flag and becomes a no-op, and the driver surfaces the first
//! recorded error after the graph drains.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xsc_core::Error;

/// Shared first-error slot for a task graph execution.
#[derive(Clone, Default)]
pub struct Poison {
    inner: Arc<PoisonInner>,
}

#[derive(Default)]
struct PoisonInner {
    flag: AtomicBool,
    first: Mutex<Option<Error>>,
}

impl Poison {
    /// Creates an empty (no-error) slot.
    pub fn new() -> Self {
        Poison::default()
    }

    /// `true` if some kernel already failed — kernels use this to bail out
    /// early instead of operating on garbage.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// Records `err` if it is the first failure.
    pub fn set(&self, err: Error) {
        let mut slot = self.inner.first.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Converts the recorded state into a `Result`.
    pub fn into_result(self) -> Result<(), Error> {
        match self.inner.first.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_wins() {
        let p = Poison::new();
        assert!(!p.is_set());
        p.set(Error::Singular { pivot: 1 });
        p.set(Error::Singular { pivot: 2 });
        assert!(p.is_set());
        assert_eq!(p.into_result(), Err(Error::Singular { pivot: 1 }));
    }

    #[test]
    fn clean_poison_is_ok() {
        let p = Poison::new();
        assert_eq!(p.into_result(), Ok(()));
    }

    #[test]
    fn clones_share_state() {
        let p = Poison::new();
        let q = p.clone();
        q.set(Error::Singular { pivot: 0 });
        assert!(p.is_set());
    }
}
