//! Communication-avoiding LU (CALU) with tournament pivoting.
//!
//! Partial pivoting searches one column of the whole panel per step —
//! `O(n)` sequential reductions per panel, the latency bottleneck of
//! distributed LU. CALU (Grigori, Demmel, Xiang) replaces it with
//! **tournament pivoting** (TSLU): row blocks elect `b` local candidate
//! pivot rows each via a small pivoted factorization, candidates meet in a
//! binary tournament, and the `b` winners pivot the *entire* panel at once
//! — `O(log P)` reductions per panel. Stability is slightly weaker than
//! GEPP's in theory but comparable in practice, which the tests check.

use rayon::prelude::*;
use xsc_core::{factor, gemm, trsm};
use xsc_core::{Error, Matrix, Result, Scalar, Transpose};

/// Selects `b = panel.cols()` pivot rows for a tall panel by tournament:
/// returns the winners' row indices *within the panel* (ascending order
/// not guaranteed; the first index corresponds to pivot position 0, etc.).
///
/// `block_rows` is the leaf block height (clamped to at least `b`).
pub fn tournament_pivot_rows<T: Scalar>(
    panel: &Matrix<T>,
    block_rows: usize,
) -> Result<Vec<usize>> {
    let m = panel.rows();
    let b = panel.cols();
    assert!(m >= b, "panel must be at least as tall as wide");
    let br = block_rows.max(b);
    let nblocks = (m / br).max(1);

    // Leaf round: each block elects b candidates via local GEPP.
    let mut contenders: Vec<(Vec<usize>, Matrix<T>)> = (0..nblocks)
        .into_par_iter()
        .map(|blk| {
            let r0 = blk * br;
            let r1 = if blk + 1 == nblocks {
                m
            } else {
                (blk + 1) * br
            };
            let rows: Vec<usize> = (r0..r1).collect();
            let data = panel.block(r0, 0, r1 - r0, b);
            elect(rows, data)
        })
        .collect::<Result<Vec<_>>>()?;

    // Tournament rounds: stack two candidate sets, re-elect.
    while contenders.len() > 1 {
        let leftover = if contenders.len() % 2 == 1 {
            contenders.pop()
        } else {
            None
        };
        let mut next: Vec<(Vec<usize>, Matrix<T>)> = contenders
            .par_chunks(2)
            .map(|pair| {
                let (rows_a, top) = &pair[0];
                let (rows_b, bottom) = &pair[1];
                let mut stacked = Matrix::zeros(2 * b, b);
                top.copy_block_into(0, 0, b, b, &mut stacked, 0, 0);
                bottom.copy_block_into(0, 0, b, b, &mut stacked, b, 0);
                let mut rows = rows_a.clone();
                rows.extend_from_slice(rows_b);
                elect(rows, stacked)
            })
            .collect::<Result<Vec<_>>>()?;
        if let Some(l) = leftover {
            next.push(l);
        }
        contenders = next;
    }
    let (winners, _) = contenders.pop().expect("at least one contender");
    Ok(winners)
}

/// Local election: pivoted LU of `data` reorders `rows`; the first `b`
/// rows (and their matrix values) are the candidates passed upward.
fn elect<T: Scalar>(mut rows: Vec<usize>, mut data: Matrix<T>) -> Result<(Vec<usize>, Matrix<T>)> {
    let b = data.cols();
    let snapshot = data.clone();
    let piv = factor::getrf_unblocked_rect(&mut data)?;
    for (k, &p) in piv.iter().enumerate() {
        rows.swap(k, p);
    }
    // Pass up the *original values* of the winning rows (candidates must
    // carry unfactored data into the next round).
    let mut winners_data = Matrix::zeros(b, b);
    // Reconstruct which original local row ended up at position k: the
    // swap replay above already reordered `rows`; mirror it for values.
    let mut local: Vec<usize> = (0..snapshot.rows()).collect();
    for (k, &p) in piv.iter().enumerate() {
        local.swap(k, p);
    }
    for k in 0..b {
        for j in 0..b {
            winners_data.set(k, j, snapshot.get(local[k], j));
        }
    }
    rows.truncate(b);
    Ok((rows, winners_data))
}

/// Blocked CALU: LU with tournament pivoting. Overwrites `a` with the
/// factors and returns pivots in the same swap-sequence format as
/// [`xsc_core::factor::getrf_blocked`] (compatible with
/// [`xsc_core::factor::getrf_solve`]).
pub fn calu<T: Scalar>(a: &mut Matrix<T>, nb: usize, block_rows: usize) -> Result<Vec<usize>> {
    assert!(a.is_square(), "calu requires a square matrix");
    assert!(nb > 0, "block size must be positive");
    let n = a.rows();
    let mut piv = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        // Tournament over the panel rows [k, n).
        let panel = a.block(k, k, n - k, kb);
        let winners = tournament_pivot_rows(&panel, block_rows)?;
        // Apply the winners as a swap sequence (full-row swaps), keeping
        // later winner indices consistent as earlier swaps displace rows.
        let mut winners: Vec<usize> = winners.iter().map(|w| w + k).collect();
        for j in 0..kb {
            let target = k + j;
            let w = winners[j];
            piv[target] = w;
            if w != target {
                a.swap_rows(target, w);
                // A later winner pointing at the displaced row follows it.
                for later in winners.iter_mut().skip(j + 1) {
                    if *later == target {
                        *later = w;
                    }
                }
            }
        }
        // Panel factorization without further pivoting.
        panel_nopiv(a, k, kb)?;
        let ntrail = n - k - kb;
        if ntrail > 0 {
            let l11 = a.block(k, k, kb, kb);
            let mut a12 = a.block(k, k + kb, kb, ntrail);
            trsm::trsm(
                trsm::Side::Left,
                trsm::Uplo::Lower,
                Transpose::No,
                trsm::Diag::Unit,
                T::one(),
                &l11,
                &mut a12,
            );
            a12.copy_block_into(0, 0, kb, ntrail, a, k, k + kb);
            let m2 = n - k - kb;
            let l21 = a.block(k + kb, k, m2, kb);
            let mut a22 = a.block(k + kb, k + kb, m2, ntrail);
            gemm::gemm(
                Transpose::No,
                Transpose::No,
                -T::one(),
                &l21,
                &a12,
                T::one(),
                &mut a22,
            );
            a22.copy_block_into(0, 0, m2, ntrail, a, k + kb, k + kb);
        }
        k += kb;
    }
    Ok(piv)
}

/// Panel factorization without pivoting on columns `[j0, j0+ncols)` over
/// rows `[j0, m)` (the tournament already placed the pivots on top).
fn panel_nopiv<T: Scalar>(a: &mut Matrix<T>, j0: usize, ncols: usize) -> Result<()> {
    let m = a.rows();
    for jj in 0..ncols {
        let j = j0 + jj;
        let pivval = a.get(j, j);
        if pivval.abs().to_f64() == 0.0 {
            return Err(Error::Singular { pivot: j });
        }
        {
            let col = &mut a.col_mut(j)[j..m];
            let inv = T::one() / col[0];
            for v in col[1..].iter_mut() {
                *v *= inv;
            }
        }
        for c in jj + 1..ncols {
            let jc = j0 + c;
            let (lcol, ccol) = a.two_cols_mut(j, jc);
            let s = ccol[j];
            if s == T::zero() {
                continue;
            }
            let l = &lcol[j + 1..m];
            let x = &mut ccol[j + 1..m];
            for (xi, &li) in x.iter_mut().zip(l.iter()) {
                *xi = (-s).mul_add(li, *xi);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_core::{gen, norms};

    #[test]
    fn calu_solves_random_systems_stably() {
        for (n, nb, br) in [(48, 8, 16), (64, 16, 16), (60, 12, 24)] {
            let a = gen::random_matrix::<f64>(n, n, 1);
            let b = gen::rhs_for_unit_solution(&a);
            let mut f = a.clone();
            let piv = calu(&mut f, nb, br).unwrap();
            let mut x = b.clone();
            factor::getrf_solve(&f, &piv, &mut x);
            let resid = norms::hpl_scaled_residual(&a, &x, &b);
            assert!(resid < 16.0, "n={n} nb={nb}: scaled residual {resid}");
        }
    }

    #[test]
    fn calu_stability_comparable_to_gepp() {
        let n = 64;
        let a = gen::random_matrix::<f64>(n, n, 2);
        let b = gen::rhs_for_unit_solution(&a);

        let mut f1 = a.clone();
        let p1 = factor::getrf_blocked(&mut f1, 16).unwrap();
        let mut x1 = b.clone();
        factor::getrf_solve(&f1, &p1, &mut x1);
        let r_gepp = norms::relative_residual(&a, &x1, &b);

        let mut f2 = a.clone();
        let p2 = calu(&mut f2, 16, 16).unwrap();
        let mut x2 = b.clone();
        factor::getrf_solve(&f2, &p2, &mut x2);
        let r_calu = norms::relative_residual(&a, &x2, &b);

        assert!(
            r_calu < r_gepp * 100.0 + 1e-12,
            "CALU residual {r_calu} vs GEPP {r_gepp}"
        );
    }

    #[test]
    fn calu_handles_adversarial_leading_pivot() {
        let n = 32;
        let mut a = gen::random_matrix::<f64>(n, n, 3);
        a.set(0, 0, 1e-14);
        let b = gen::rhs_for_unit_solution(&a);
        let mut f = a.clone();
        let piv = calu(&mut f, 8, 8).unwrap();
        let mut x = b.clone();
        factor::getrf_solve(&f, &piv, &mut x);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn tournament_picks_the_large_rows() {
        // Panel where rows 10..14 are scaled 1000x: the tournament should
        // elect exactly those as pivots.
        let m = 40;
        let b = 4;
        let mut panel = gen::random_matrix::<f64>(m, b, 4);
        for i in 10..14 {
            for j in 0..b {
                let v = panel.get(i, j) * 1000.0 + 500.0 * ((i + j) as f64 % 2.0 + 0.5);
                panel.set(i, j, v);
            }
        }
        let winners = tournament_pivot_rows(&panel, 8).unwrap();
        assert_eq!(winners.len(), b);
        for w in &winners {
            assert!(
                (10..14).contains(w),
                "winner {w} should be one of the dominant rows; got {winners:?}"
            );
        }
    }

    #[test]
    fn single_block_degenerates_to_gepp_selection() {
        let m = 16;
        let b = 4;
        let panel = gen::random_matrix::<f64>(m, b, 5);
        // One leaf covering all rows: winners = GEPP's first b pivot rows.
        let winners = tournament_pivot_rows(&panel, m).unwrap();
        let mut f = panel.clone();
        let piv = factor::getrf_unblocked_rect(&mut f).unwrap();
        let mut rows: Vec<usize> = (0..m).collect();
        for (k, &p) in piv.iter().enumerate() {
            rows.swap(k, p);
        }
        assert_eq!(winners, rows[..b].to_vec());
    }

    #[test]
    fn calu_detects_singularity() {
        let mut a = Matrix::<f64>::zeros(16, 16);
        for i in 0..16 {
            a.set(i, 0, 1.0); // rank-1 matrix
            a.set(0, i, 1.0);
        }
        assert!(calu(&mut a, 4, 8).is_err());
    }
}
