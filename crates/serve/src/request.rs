//! Validated job requests: the service's admission contract.
//!
//! Everything that can be wrong with a job is rejected **here, at
//! construction** — a [`Request`] that exists is well-formed, its problem
//! is solvable by construction (SPD matrices, coarsenable grids), and the
//! hot path behind the queue never sees a malformed job. This is the
//! "push errors to setup" idiom from ROADMAP: the submission boundary is
//! fallible and descriptive, the execution boundary is infallible.

use std::fmt;
use xsc_sparse::Geometry;

/// Identifier assigned to a job when the queue admits it (monotonically
/// increasing in admission order).
pub type JobId = u64;

/// Largest tiny-solve dimension the coalescer will batch. Matches the
/// keynote's "millions of 4×4…32×32 problems" band that batched BLAS
/// (E07) exists for.
pub const MAX_TINY_DIM: usize = 32;

/// Largest dense factorization the service accepts.
pub const MAX_DENSE_N: usize = 2048;

/// Largest stencil grid edge the service accepts (a 64³ Poisson problem).
pub const MAX_GRID: usize = 64;

/// Iteration-budget ceiling for sparse solves.
pub const MAX_SOLVE_ITERS: usize = 10_000;

/// Longest accepted tenant name.
pub const MAX_TENANT_LEN: usize = 32;

/// Scheduling class of a request. Higher classes drain first; within a
/// class the queue is FIFO in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Throughput traffic: runs when nothing more urgent is queued.
    Batch,
    /// Default class.
    Normal,
    /// Latency-sensitive traffic: drains ahead of everything else.
    Interactive,
}

impl Priority {
    /// Numeric level (higher = more urgent), the value handed to the
    /// executor's explicit-priority scheduling policy.
    pub fn level(self) -> u64 {
        match self {
            Priority::Batch => 0,
            Priority::Normal => 1,
            Priority::Interactive => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Normal => "normal",
            Priority::Interactive => "interactive",
        }
    }
}

/// What the job computes. Parameters here are *requested*; they only
/// become a [`Request`] after validation.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Solve the 27-point Poisson stencil on a `grid³` domain with
    /// MG-preconditioned CG (`levels` multigrid levels).
    SparseSolve {
        /// Grid edge length (the problem has `grid³` unknowns).
        grid: usize,
        /// Multigrid hierarchy depth (1 = fine level only).
        levels: usize,
        /// Relative residual convergence tolerance.
        tol: f64,
        /// Iteration budget.
        max_iters: usize,
    },
    /// Cholesky-factor a seeded random SPD `n × n` matrix.
    DenseFactor {
        /// Matrix dimension.
        n: usize,
        /// Generator seed (any value is valid).
        seed: u64,
    },
    /// Solve one seeded tiny SPD system (`dim ≤` [`MAX_TINY_DIM`]) —
    /// the coalescible request kind: many of these become one batched
    /// launch.
    TinySolve {
        /// System dimension.
        dim: usize,
        /// Generator seed (any value is valid).
        seed: u64,
    },
}

/// Why a request was rejected at construction.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// Tenant name is empty.
    EmptyTenant,
    /// Tenant name exceeds [`MAX_TENANT_LEN`] characters.
    TenantTooLong {
        /// Offending length.
        len: usize,
    },
    /// Tenant name contains a character outside `[a-z0-9_-]`.
    BadTenantChar {
        /// First offending character.
        ch: char,
    },
    /// Grid edge is below 2 or above [`MAX_GRID`].
    BadGrid {
        /// Requested edge length.
        grid: usize,
    },
    /// Multigrid depth is 0 or deeper than the grid can coarsen.
    BadLevels {
        /// Requested grid edge.
        grid: usize,
        /// Requested depth.
        levels: usize,
    },
    /// Tolerance is not a finite value in `(0, 1)`.
    BadTolerance {
        /// Requested tolerance.
        tol: f64,
    },
    /// Iteration budget is 0 or above [`MAX_SOLVE_ITERS`].
    BadIterationBudget {
        /// Requested budget.
        max_iters: usize,
    },
    /// Dense dimension is 0 or above [`MAX_DENSE_N`].
    BadDenseDim {
        /// Requested dimension.
        n: usize,
    },
    /// Tiny-solve dimension is 0 or above [`MAX_TINY_DIM`].
    BadTinyDim {
        /// Requested dimension.
        dim: usize,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::EmptyTenant => write!(f, "tenant name is empty"),
            RequestError::TenantTooLong { len } => {
                write!(f, "tenant name has {len} chars (max {MAX_TENANT_LEN})")
            }
            RequestError::BadTenantChar { ch } => {
                write!(f, "tenant name contains {ch:?} (allowed: [a-z0-9_-])")
            }
            RequestError::BadGrid { grid } => {
                write!(f, "grid edge {grid} outside 2..={MAX_GRID}")
            }
            RequestError::BadLevels { grid, levels } => {
                write!(
                    f,
                    "{levels} multigrid levels unreachable from a {grid}^3 grid"
                )
            }
            RequestError::BadTolerance { tol } => {
                write!(f, "tolerance {tol} is not a finite value in (0, 1)")
            }
            RequestError::BadIterationBudget { max_iters } => {
                write!(
                    f,
                    "iteration budget {max_iters} outside 1..={MAX_SOLVE_ITERS}"
                )
            }
            RequestError::BadDenseDim { n } => {
                write!(f, "dense dimension {n} outside 1..={MAX_DENSE_N}")
            }
            RequestError::BadTinyDim { dim } => {
                write!(f, "tiny-solve dimension {dim} outside 1..={MAX_TINY_DIM}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// A validated job submission. Constructing one is the only fallible step
/// of the service: if a `Request` exists, the queue, the coalescer, and
/// the launch path can all run infallibly against it.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    tenant: String,
    priority: Priority,
    spec: JobSpec,
}

impl Request {
    /// Validates `spec` under `tenant`'s name and builds the request, or
    /// explains what is malformed. See [`RequestError`] for the rules.
    pub fn new(
        tenant: impl Into<String>,
        priority: Priority,
        spec: JobSpec,
    ) -> Result<Request, RequestError> {
        let tenant = tenant.into();
        if tenant.is_empty() {
            return Err(RequestError::EmptyTenant);
        }
        if tenant.chars().count() > MAX_TENANT_LEN {
            return Err(RequestError::TenantTooLong {
                len: tenant.chars().count(),
            });
        }
        if let Some(ch) = tenant
            .chars()
            .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-' || *c == '_'))
        {
            return Err(RequestError::BadTenantChar { ch });
        }
        match spec {
            JobSpec::SparseSolve {
                grid,
                levels,
                tol,
                max_iters,
            } => {
                if !(2..=MAX_GRID).contains(&grid) {
                    return Err(RequestError::BadGrid { grid });
                }
                if levels == 0 || !coarsenable_depth(grid, levels) {
                    return Err(RequestError::BadLevels { grid, levels });
                }
                if !tol.is_finite() || tol <= 0.0 || tol >= 1.0 {
                    return Err(RequestError::BadTolerance { tol });
                }
                if max_iters == 0 || max_iters > MAX_SOLVE_ITERS {
                    return Err(RequestError::BadIterationBudget { max_iters });
                }
            }
            JobSpec::DenseFactor { n, .. } => {
                if n == 0 || n > MAX_DENSE_N {
                    return Err(RequestError::BadDenseDim { n });
                }
            }
            JobSpec::TinySolve { dim, .. } => {
                if dim == 0 || dim > MAX_TINY_DIM {
                    return Err(RequestError::BadTinyDim { dim });
                }
            }
        }
        Ok(Request {
            tenant,
            priority,
            spec,
        })
    }

    /// Tenant that submitted the job.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Scheduling class.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The validated job description.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// `Some(dim)` when the job is a tiny solve the coalescer may merge
    /// with others of the same dimension.
    pub fn coalescible_dim(&self) -> Option<usize> {
        match self.spec {
            JobSpec::TinySolve { dim, .. } => Some(dim),
            _ => None,
        }
    }

    /// Static kind name, used as the kernel label in the `xsc-metrics`
    /// registry (which requires `&'static str` keys).
    pub fn kind_name(&self) -> &'static str {
        match self.spec {
            JobSpec::SparseSolve { .. } => "serve_sparse_solve",
            JobSpec::DenseFactor { .. } => "serve_dense_factor",
            JobSpec::TinySolve { .. } => "serve_tiny_solve",
        }
    }

    /// Analytic (flops, bytes) estimate of the job's work, used both as
    /// the scheduling cost and as the deterministic service-time input of
    /// the E21 virtual-time replay. Sparse solves are modeled memory-bound
    /// (HPCG-style, ~0.5 flop/byte); the dense kinds compute-bound.
    pub fn est_traffic(&self) -> (u64, u64) {
        match self.spec {
            JobSpec::TinySolve { dim, .. } => {
                let n = dim as u64;
                // Cholesky n³/3 plus two triangular solves at n² each.
                let flops = n * n * n / 3 + 2 * n * n;
                let bytes = 8 * (n * n + 2 * n) * 2;
                (flops.max(1), bytes.max(1))
            }
            JobSpec::DenseFactor { n, .. } => {
                let n = n as u64;
                let flops = n * n * n / 3;
                let bytes = 8 * n * n * 3;
                (flops.max(1), bytes.max(1))
            }
            JobSpec::SparseSolve {
                grid, max_iters, ..
            } => {
                // ~27-point stencil: nnz ≈ 27·n unknowns; an MG-PCG
                // iteration streams the operator a handful of times.
                let unknowns = (grid as u64).pow(3);
                let iters = max_iters.min(20) as u64;
                let flops = 540 * unknowns * iters;
                let bytes = 2 * flops;
                (flops.max(1), bytes.max(1))
            }
        }
    }
}

/// `true` when a `grid³` geometry supports a `levels`-deep multigrid
/// hierarchy (i.e. survives `levels − 1` coarsenings).
fn coarsenable_depth(grid: usize, levels: usize) -> bool {
    let mut g = Geometry::new(grid, grid, grid);
    for _ in 1..levels {
        if !g.coarsenable() {
            return false;
        }
        g = g.coarsen();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(dim: usize) -> JobSpec {
        JobSpec::TinySolve { dim, seed: 7 }
    }

    #[test]
    fn valid_requests_construct() {
        for spec in [
            tiny(1),
            tiny(MAX_TINY_DIM),
            JobSpec::DenseFactor { n: 64, seed: 1 },
            JobSpec::SparseSolve {
                grid: 8,
                levels: 3,
                tol: 1e-8,
                max_iters: 50,
            },
        ] {
            let r = Request::new("tenant-a", Priority::Normal, spec.clone());
            assert!(r.is_ok(), "{spec:?}: {r:?}");
        }
    }

    #[test]
    fn tenant_names_are_validated() {
        assert_eq!(
            Request::new("", Priority::Normal, tiny(4)).unwrap_err(),
            RequestError::EmptyTenant
        );
        let long = "x".repeat(MAX_TENANT_LEN + 1);
        assert!(matches!(
            Request::new(long, Priority::Normal, tiny(4)).unwrap_err(),
            RequestError::TenantTooLong { .. }
        ));
        assert_eq!(
            Request::new("Tenant", Priority::Normal, tiny(4)).unwrap_err(),
            RequestError::BadTenantChar { ch: 'T' }
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let bad = [
            (tiny(0), "zero tiny dim"),
            (tiny(MAX_TINY_DIM + 1), "oversized tiny dim"),
            (JobSpec::DenseFactor { n: 0, seed: 0 }, "zero dense dim"),
            (
                JobSpec::DenseFactor {
                    n: MAX_DENSE_N + 1,
                    seed: 0,
                },
                "oversized dense dim",
            ),
            (
                JobSpec::SparseSolve {
                    grid: 1,
                    levels: 1,
                    tol: 1e-8,
                    max_iters: 10,
                },
                "grid too small",
            ),
            (
                JobSpec::SparseSolve {
                    grid: 8,
                    levels: 0,
                    tol: 1e-8,
                    max_iters: 10,
                },
                "zero levels",
            ),
            (
                JobSpec::SparseSolve {
                    grid: 6,
                    levels: 4,
                    tol: 1e-8,
                    max_iters: 10,
                },
                "hierarchy deeper than the grid coarsens",
            ),
            (
                JobSpec::SparseSolve {
                    grid: 8,
                    levels: 2,
                    tol: f64::NAN,
                    max_iters: 10,
                },
                "NaN tolerance",
            ),
            (
                JobSpec::SparseSolve {
                    grid: 8,
                    levels: 2,
                    tol: 0.0,
                    max_iters: 10,
                },
                "zero tolerance",
            ),
            (
                JobSpec::SparseSolve {
                    grid: 8,
                    levels: 2,
                    tol: 1e-8,
                    max_iters: 0,
                },
                "zero iteration budget",
            ),
        ];
        for (spec, why) in bad {
            assert!(
                Request::new("t", Priority::Normal, spec.clone()).is_err(),
                "{why}: {spec:?} must be rejected"
            );
        }
    }

    #[test]
    fn coalescible_only_for_tiny() {
        let t = Request::new("t", Priority::Batch, tiny(8)).unwrap();
        assert_eq!(t.coalescible_dim(), Some(8));
        let d = Request::new(
            "t",
            Priority::Batch,
            JobSpec::DenseFactor { n: 32, seed: 0 },
        )
        .unwrap();
        assert_eq!(d.coalescible_dim(), None);
    }

    #[test]
    fn traffic_estimates_are_positive_and_monotone_in_size() {
        let (f4, b4) = Request::new("t", Priority::Normal, tiny(4))
            .unwrap()
            .est_traffic();
        let (f16, b16) = Request::new("t", Priority::Normal, tiny(16))
            .unwrap()
            .est_traffic();
        assert!(f4 >= 1 && b4 >= 1);
        assert!(f16 > f4 && b16 > b4);
    }

    #[test]
    fn priority_levels_are_ordered() {
        assert!(Priority::Interactive.level() > Priority::Normal.level());
        assert!(Priority::Normal.level() > Priority::Batch.level());
        assert!(Priority::Interactive > Priority::Batch);
    }
}
