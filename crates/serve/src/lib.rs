//! # xsc-serve — solve-as-a-service front-end
//!
//! The keynote's north star is algorithms serving "millions of users";
//! ROADMAP open item 1 is the consumption boundary that makes the
//! workspace's kernels *servable*. This crate is that boundary:
//!
//! * [`request`] — job submissions (sparse MG-PCG solve, dense Cholesky
//!   factorization, tiny SPD solve) **validated at construction**: a
//!   [`Request`] that exists is well-formed, so everything behind the
//!   queue is infallible;
//! * [`queue`] — a multi-tenant admission/priority queue with per-tenant
//!   quotas and bounded-capacity backpressure, draining in a total
//!   deterministic order (priority class, then admission order);
//! * [`coalesce`] — small-problem coalescing: many tiny solves waiting in
//!   the queue become one `xsc-batched` launch (E07's argument, applied
//!   to traffic) — bit-identical to launching them alone;
//! * [`server`] — the executor handoff: launches become tasks on the
//!   `xsc-runtime` executor, scheduled by tenant priority class via
//!   [`SchedPolicy::Explicit`](xsc_runtime::SchedPolicy);
//! * [`loadgen`] / [`sim`] — a seeded open-loop load generator and a
//!   virtual-time replay that measures p50/p99 latency and throughput
//!   **deterministically** (experiment E21 `cmp`s its JSON byte-for-byte
//!   across runs).
//!
//! ## Quickstart
//!
//! ```
//! use xsc_serve::{JobSpec, Priority, Request, Server, ServerConfig};
//!
//! let mut server = Server::new(ServerConfig::default());
//! for seed in 0..16 {
//!     let req = Request::new(
//!         "quickstart",
//!         Priority::Normal,
//!         JobSpec::TinySolve { dim: 8, seed },
//!     )
//!     .expect("valid request");
//!     server.submit(req).expect("admitted");
//! }
//! let outcomes = server.run_pending();
//! assert_eq!(outcomes.len(), 16);
//! // All 16 tiny solves shared one coalesced batched launch.
//! assert!(outcomes.iter().all(|o| o.launch_width == 16));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coalesce;
pub mod loadgen;
pub mod queue;
pub mod request;
pub mod server;
pub mod sim;

pub use coalesce::{next_launch, plan, CoalescePolicy, Launch};
pub use loadgen::{generate, Arrival, LoadProfile};
pub use queue::{AdmissionQueue, AdmitError, QueueConfig, QueuedJob};
pub use request::{
    JobId, JobSpec, Priority, Request, RequestError, MAX_DENSE_N, MAX_GRID, MAX_SOLVE_ITERS,
    MAX_TENANT_LEN, MAX_TINY_DIM,
};
pub use server::{execute_launch, JobOutcome, Server, ServerConfig, TenantStats};
pub use sim::{replay, ArmReport, ServiceModel};
