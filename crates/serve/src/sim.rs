//! Virtual-time replay: deterministic latency/throughput measurement.
//!
//! Wall-clock latency percentiles are schedule noise incarnate, and the
//! repo's reproducibility bar (CI `cmp`s the E21 JSON byte-for-byte
//! across two runs) rules them out. The replay therefore runs a
//! discrete-event simulation in **virtual nanoseconds**: arrivals come
//! from the open-loop timeline, service times come from each job's
//! analytic traffic estimate pushed through a fixed [`ServiceModel`]
//! envelope (rate terms plus a per-*launch* overhead — the quantity
//! coalescing amortizes), and the queue/coalescer logic is exactly the
//! production code in [`crate::queue`]/[`crate::coalesce`]. The jobs are
//! still **really executed** (checksums come from real solves); only the
//! clock is modeled. This is the same honest substitution the repo's
//! other experiments use: deterministic counts in the report, wall clock
//! never.

use crate::coalesce::{next_launch, CoalescePolicy, Launch};
use crate::loadgen::Arrival;
use crate::queue::{AdmissionQueue, QueueConfig};
use crate::server::{execute_launch, JobOutcome};
use std::collections::BTreeMap;
use xsc_metrics::LatencySummary;

/// The fixed analytic machine the replay serves on. The absolute numbers
/// are a stylized node (a few Gflop/s and tens of GB/s per worker, a few
/// tens of microseconds per launch); what matters for E21 is the *ratio*:
/// a tiny solve's arithmetic is hundreds of flops, so its launch overhead
/// dominates end-to-end service unless it shares a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Virtual workers draining the queue.
    pub workers: usize,
    /// Fixed cost charged once per launch (dispatch, scheduling,
    /// cache warm-up), in virtual nanoseconds.
    pub launch_overhead_ns: u64,
    /// Compute rate, flops per virtual nanosecond.
    pub flops_per_ns: u64,
    /// Memory rate, bytes per virtual nanosecond.
    pub bytes_per_ns: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            workers: 4,
            launch_overhead_ns: 50_000,
            flops_per_ns: 16,
            bytes_per_ns: 32,
        }
    }
}

impl ServiceModel {
    /// Virtual service time of a launch: one overhead plus the summed
    /// compute and memory terms of its jobs (integer arithmetic only, so
    /// the replay is exactly reproducible).
    pub fn service_ns(&self, launch: &Launch) -> u64 {
        let (flops, bytes) = launch.jobs().iter().fold((0u64, 0u64), |(f, b), j| {
            let (jf, jb) = j.request.est_traffic();
            (f + jf, b + jb)
        });
        self.launch_overhead_ns
            + flops.div_ceil(self.flops_per_ns.max(1))
            + bytes.div_ceil(self.bytes_per_ns.max(1))
    }
}

/// Everything the replay measured for one arm (coalescing on or off).
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// Jobs completed (== admitted; the E21 profile sizes the queue so
    /// nothing bounces, keeping the two arms' job sets identical).
    pub completed: usize,
    /// Submissions refused by backpressure (asserted 0 in E21).
    pub rejected: usize,
    /// Launches executed.
    pub launches: usize,
    /// Mean jobs per launch.
    pub mean_launch_width: f64,
    /// End-to-end (queue wait + service) latency summary, virtual ns.
    pub latency: LatencySummary,
    /// Virtual time from origin to the last completion.
    pub makespan_ns: u64,
    /// Completed jobs per virtual second.
    pub throughput_rps: f64,
    /// Per-job outcomes (real solves), sorted by job id — used to assert
    /// cross-arm bit-identity.
    pub outcomes: Vec<JobOutcome>,
    /// Completions per tenant, in name order.
    pub per_tenant_completed: BTreeMap<String, usize>,
}

/// Replays an arrival timeline against the admission queue + coalescer +
/// service model, really executing every launch. Workers are a virtual
/// pool: each takes the next launch when free; ties break toward the
/// lowest worker index, so the replay is deterministic.
pub fn replay(
    arrivals: &[Arrival],
    queue_cfg: QueueConfig,
    coalesce: &CoalescePolicy,
    model: &ServiceModel,
) -> ArmReport {
    debug_assert!(
        arrivals.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
        "arrivals must be time-ordered"
    );
    let mut queue = AdmissionQueue::new(queue_cfg);
    let mut arrival_ns: BTreeMap<u64, u64> = BTreeMap::new(); // job id → arrival
    let mut free_at = vec![0u64; model.workers.max(1)];
    let mut next = 0usize;
    let mut rejected = 0usize;
    let mut launches = 0usize;
    let mut width_sum = 0usize;
    let mut latencies = Vec::new();
    let mut outcomes = Vec::new();
    let mut per_tenant: BTreeMap<String, usize> = BTreeMap::new();
    let mut makespan_ns = 0u64;

    let mut admit_until = |queue: &mut AdmissionQueue,
                           arrival_ns: &mut BTreeMap<u64, u64>,
                           next: &mut usize,
                           now: u64| {
        while *next < arrivals.len() && arrivals[*next].at_ns <= now {
            match queue.submit(arrivals[*next].request.clone()) {
                Ok(id) => {
                    arrival_ns.insert(id, arrivals[*next].at_ns);
                }
                Err(_) => rejected += 1,
            }
            *next += 1;
        }
    };

    loop {
        // Earliest-free worker, lowest index on ties.
        let (w, t) = free_at
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("at least one worker");
        let mut now = t;
        admit_until(&mut queue, &mut arrival_ns, &mut next, now);
        if queue.is_empty() {
            if next < arrivals.len() {
                // Idle until the next arrival.
                now = arrivals[next].at_ns;
                admit_until(&mut queue, &mut arrival_ns, &mut next, now);
            } else {
                break;
            }
        }
        let launch = next_launch(&mut queue, coalesce).expect("queue checked non-empty");
        let finish = now + model.service_ns(&launch);
        free_at[w] = finish;
        makespan_ns = makespan_ns.max(finish);
        launches += 1;
        width_sum += launch.width();
        for out in execute_launch(&launch) {
            let arrived = arrival_ns[&out.id];
            latencies.push(finish - arrived);
            queue.complete(&out.tenant);
            *per_tenant.entry(out.tenant.clone()).or_insert(0) += 1;
            outcomes.push(out);
        }
    }

    outcomes.sort_by_key(|o| o.id);
    let completed = outcomes.len();
    ArmReport {
        completed,
        rejected,
        launches,
        mean_launch_width: if launches == 0 {
            0.0
        } else {
            width_sum as f64 / launches as f64
        },
        latency: LatencySummary::from_samples(&latencies),
        makespan_ns,
        throughput_rps: if makespan_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / makespan_ns as f64
        },
        outcomes,
        per_tenant_completed: per_tenant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, LoadProfile};

    fn profile() -> LoadProfile {
        LoadProfile::many_tiny(0x5E21, 120, 2_000)
    }

    fn cfg() -> QueueConfig {
        QueueConfig {
            capacity: 10_000,
            per_tenant_quota: 10_000,
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let arrivals = generate(&profile());
        let a = replay(
            &arrivals,
            cfg(),
            &CoalescePolicy::default(),
            &ServiceModel::default(),
        );
        let b = replay(
            &arrivals,
            cfg(),
            &CoalescePolicy::default(),
            &ServiceModel::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn coalescing_cuts_launches_and_latency_with_identical_answers() {
        let arrivals = generate(&profile());
        let off = CoalescePolicy {
            enabled: false,
            max_batch: 64,
        };
        let unc = replay(&arrivals, cfg(), &off, &ServiceModel::default());
        let coa = replay(
            &arrivals,
            cfg(),
            &CoalescePolicy::default(),
            &ServiceModel::default(),
        );
        assert_eq!(unc.completed, arrivals.len());
        assert_eq!(coa.completed, arrivals.len());
        assert!(coa.launches < unc.launches);
        assert!(coa.latency.p99_ns < unc.latency.p99_ns);
        assert!(coa.throughput_rps > unc.throughput_rps);
        for (c, u) in coa.outcomes.iter().zip(&unc.outcomes) {
            assert_eq!(c.id, u.id);
            assert_eq!(c.checksum.to_bits(), u.checksum.to_bits());
        }
    }

    #[test]
    fn tight_queue_rejects_under_overload() {
        let arrivals = generate(&profile());
        let tight = QueueConfig {
            capacity: 4,
            per_tenant_quota: 10_000,
        };
        let off = CoalescePolicy {
            enabled: false,
            max_batch: 64,
        };
        let rep = replay(&arrivals, tight, &off, &ServiceModel::default());
        assert!(rep.rejected > 0, "overloaded tight queue must bounce");
        assert_eq!(rep.completed + rep.rejected, arrivals.len());
    }
}
