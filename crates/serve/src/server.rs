//! The server: queue → coalescer → `xsc-runtime` executor.
//!
//! [`Server`] owns an [`AdmissionQueue`], a [`CoalescePolicy`], and an
//! [`Executor`]; [`Server::run_pending`] drains the queue into launches
//! and hands them to the executor as one task each, scheduled under
//! [`SchedPolicy::Explicit`] with the launch's tenant priority class as
//! its urgency. Launches touch disjoint data, so the graph is embarrassed
//! parallelism — the point of the handoff is the *scheduling* (priority
//! classes drain first) and the shared worker pool, not dependence
//! analysis. All results are returned sorted by job id, so the output is
//! deterministic on any thread count.

use crate::coalesce::{plan, CoalescePolicy, Launch};
use crate::queue::{AdmissionQueue, AdmitError, QueueConfig, QueuedJob};
use crate::request::{JobId, JobSpec, Request};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use xsc_batched::{batched_cholesky_solve, Batch};
use xsc_core::{gen, Matrix};
use xsc_metrics::{record_untimed, Stopwatch, Traffic};
use xsc_runtime::{Access, Executor, SchedPolicy, TaskGraph};
use xsc_sparse::mg::{MgPreconditioner, Smoother};
use xsc_sparse::stencil::{build_matrix, build_rhs};
use xsc_sparse::{pcg, Geometry, SparseFormat};

/// Server knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Executor worker threads.
    pub threads: usize,
    /// Admission-queue limits.
    pub queue: QueueConfig,
    /// Coalescing policy.
    pub coalesce: CoalescePolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 2,
            queue: QueueConfig::default(),
            coalesce: CoalescePolicy::default(),
        }
    }
}

/// What the service reports back for one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's admission id.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Static job-kind label (also the metrics-registry kernel name).
    pub kind: &'static str,
    /// Number of jobs that shared this job's launch (1 = uncoalesced).
    pub launch_width: usize,
    /// Deterministic digest of the computed answer (sum of the solution
    /// or factor entries) — equal bits mean equal answers.
    pub checksum: f64,
    /// Analytic flop estimate of the job ([`Request::est_traffic`]).
    pub flops: u64,
    /// Analytic byte estimate of the job ([`Request::est_traffic`]).
    pub bytes: u64,
}

/// Per-tenant service accounting, timed through the `xsc-metrics`
/// [`Stopwatch`] chokepoint.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantStats {
    /// Requests the tenant submitted (admitted + rejected).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests refused by backpressure or quota.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Analytic flops executed for the tenant.
    pub flops: u64,
    /// Analytic bytes moved for the tenant.
    pub bytes: u64,
    /// Wall-clock nanoseconds of `run_pending` batches that contained at
    /// least one of the tenant's jobs (measured with [`Stopwatch`];
    /// informational — never part of a deterministic report).
    pub busy_ns: u64,
}

/// Executes one launch, returning an outcome per job (in drain order).
///
/// Infallible by construction: every failure mode was rejected at
/// [`Request::new`] — grids are coarsenable, matrices are SPD by
/// generation, budgets are positive. The launch also records its analytic
/// traffic into the `xsc-metrics` registry under the job-kind name.
pub fn execute_launch(launch: &Launch) -> Vec<JobOutcome> {
    let outcomes = match launch {
        Launch::Coalesced { dim, jobs } => execute_coalesced(*dim, jobs),
        Launch::Single(job) => vec![execute_single(job)],
    };
    for o in &outcomes {
        record_untimed(
            o.kind,
            Traffic {
                flops: o.flops,
                bytes_read: o.bytes / 2,
                bytes_written: o.bytes - o.bytes / 2,
            },
        );
    }
    outcomes
}

fn outcome(job: &QueuedJob, launch_width: usize, checksum: f64) -> JobOutcome {
    let (flops, bytes) = job.request.est_traffic();
    JobOutcome {
        id: job.id,
        tenant: job.request.tenant().to_string(),
        kind: job.request.kind_name(),
        launch_width,
        checksum,
        flops,
        bytes,
    }
}

/// Generates the tiny-solve problem for `(dim, seed)`: a seeded SPD
/// matrix and the right-hand side whose exact solution is all-ones.
fn tiny_problem(dim: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let a = gen::random_spd::<f64>(dim, seed);
    let b = gen::rhs_for_unit_solution(&a);
    // xsc-lint: allow(P03, reason = "rhs_for_unit_solution returns exactly dim entries for a dim x dim matrix")
    let rhs = Matrix::from_fn(dim, 1, |i, _| b[i]);
    (a, rhs)
}

fn execute_coalesced(dim: usize, jobs: &[QueuedJob]) -> Vec<JobOutcome> {
    let mut mats = Vec::with_capacity(jobs.len());
    let mut rhss = Vec::with_capacity(jobs.len());
    for job in jobs {
        let JobSpec::TinySolve { dim: d, seed } = *job.request.spec() else {
            // xsc-lint: allow(P02, reason = "plan() groups coalesced launches by kind at admission; mixed kinds cannot reach here")
            unreachable!("coalesced launches carry only tiny solves");
        };
        debug_assert_eq!(d, dim);
        let (a, b) = tiny_problem(d, seed);
        mats.push(a);
        rhss.push(b);
    }
    let mut a = Batch::from_matrices(&mats);
    let mut x = Batch::from_matrices(&rhss);
    // xsc-lint: allow(P01, reason = "admission validated dim >= 1; random_spd output is SPD by construction")
    batched_cholesky_solve(&mut a, &mut x).expect("validated tiny solves are SPD by construction");
    jobs.iter()
        .enumerate()
        .map(|(k, job)| outcome(job, jobs.len(), x.matrix(k).iter().sum()))
        .collect()
}

fn execute_single(job: &QueuedJob) -> JobOutcome {
    let checksum = match *job.request.spec() {
        JobSpec::TinySolve { dim, seed } => {
            // Same kernels as the coalesced path, batch of one — which is
            // what makes coalescing bit-transparent.
            let (a, b) = tiny_problem(dim, seed);
            let mut a = Batch::from_matrices(std::slice::from_ref(&a));
            let mut x = Batch::from_matrices(std::slice::from_ref(&b));
            batched_cholesky_solve(&mut a, &mut x)
                // xsc-lint: allow(P01, reason = "admission validated dim >= 1; random_spd output is SPD by construction")
                .expect("validated tiny solves are SPD by construction");
            x.matrix(0).iter().sum()
        }
        JobSpec::DenseFactor { n, seed } => {
            let a = gen::random_spd::<f64>(n, seed);
            let mut f = Batch::from_matrices(std::slice::from_ref(&a));
            let mut rhs = Batch::<f64>::zeros(n, 0, 1);
            batched_cholesky_solve(&mut f, &mut rhs)
                // xsc-lint: allow(P01, reason = "admission validated n >= 1; random_spd output is SPD by construction")
                .expect("validated dense factors are SPD by construction");
            f.matrix(0).iter().sum()
        }
        JobSpec::SparseSolve {
            grid,
            levels,
            tol,
            max_iters,
        } => {
            let geom = Geometry::new(grid, grid, grid);
            let a = build_matrix(geom);
            let (b, _) = build_rhs(&a);
            let mg = MgPreconditioner::try_with_format(
                geom,
                levels,
                Smoother::SymGs,
                SparseFormat::CsrUsize,
            )
            // xsc-lint: allow(P01, reason = "admission validated grid/levels against the coarsening rule before enqueue")
            .expect("validated grids are coarsenable to the requested depth");
            let mut x = vec![0.0; a.nrows()];
            pcg(&a, &b, &mut x, max_iters, tol, &mg);
            x.iter().sum()
        }
    };
    outcome(job, 1, checksum)
}

/// The serving front-end. See the module docs for the data flow.
pub struct Server {
    queue: AdmissionQueue,
    coalesce: CoalescePolicy,
    exec: Executor,
    ledger: BTreeMap<String, TenantStats>,
}

impl Server {
    /// Builds a server from its configuration.
    pub fn new(cfg: ServerConfig) -> Self {
        Server {
            queue: AdmissionQueue::new(cfg.queue),
            coalesce: cfg.coalesce,
            exec: Executor::new(cfg.threads, SchedPolicy::Explicit),
            ledger: BTreeMap::new(),
        }
    }

    /// Submits a request: admission or backpressure. Ledger counters are
    /// updated either way.
    pub fn submit(&mut self, request: Request) -> Result<JobId, AdmitError> {
        let entry = self.ledger.entry(request.tenant().to_string()).or_default();
        entry.submitted += 1;
        match self.queue.submit(request) {
            Ok(id) => {
                entry.admitted += 1;
                Ok(id)
            }
            Err(e) => {
                entry.rejected += 1;
                Err(e)
            }
        }
    }

    /// Drains everything queued, coalesces, executes on the runtime
    /// executor (one task per launch, scheduled by tenant priority
    /// class), and returns the outcomes sorted by job id.
    pub fn run_pending(&mut self) -> Vec<JobOutcome> {
        let watch = Stopwatch::start();
        let launches = plan(&mut self.queue, &self.coalesce);
        if launches.is_empty() {
            return Vec::new();
        }
        let slots: Arc<Vec<Mutex<Option<Vec<JobOutcome>>>>> =
            Arc::new(launches.iter().map(|_| Mutex::new(None)).collect());
        let mut graph = TaskGraph::new();
        for (i, launch) in launches.into_iter().enumerate() {
            let urgency = launch.priority().level();
            let cost: u64 = launch
                .jobs()
                .iter()
                .map(|j| j.request.est_traffic().0)
                .sum();
            let slots = Arc::clone(&slots);
            let id = graph.add_task_with_cost(
                format!("launch{i}"),
                [Access::Write(i)],
                cost.max(1),
                move || {
                    // Hoisted out of the assignment so the slot guard never
                    // covers kernel execution (lint rule C02).
                    let out = execute_launch(&launch);
                    *slots[i].lock().expect("launch slot poisoned") = Some(out);
                },
            );
            graph.set_priority(id, urgency);
        }
        self.exec.execute(graph);

        let slots = Arc::try_unwrap(slots).expect("workers joined; sole owner");
        let mut outcomes: Vec<JobOutcome> = slots
            .into_iter()
            .flat_map(|s| {
                s.into_inner()
                    .expect("launch slot poisoned")
                    .expect("every launch task ran")
            })
            .collect();
        outcomes.sort_by_key(|o| o.id);

        let elapsed_ns = watch.elapsed().as_nanos() as u64;
        let mut touched: BTreeMap<&str, ()> = BTreeMap::new();
        for o in &outcomes {
            self.queue.complete(&o.tenant);
            let entry = self.ledger.entry(o.tenant.clone()).or_default();
            entry.completed += 1;
            entry.flops += o.flops;
            entry.bytes += o.bytes;
            touched.insert(&o.tenant, ());
        }
        let tenants: Vec<String> = touched.into_keys().map(String::from).collect();
        for t in tenants {
            if let Some(entry) = self.ledger.get_mut(&t) {
                entry.busy_ns += elapsed_ns;
            }
        }
        outcomes
    }

    /// Accounting for one tenant (zeroed default if never seen).
    pub fn tenant_stats(&self, tenant: &str) -> TenantStats {
        self.ledger.get(tenant).copied().unwrap_or_default()
    }

    /// All tenants seen so far, with their accounting, in name order.
    pub fn ledger(&self) -> &BTreeMap<String, TenantStats> {
        &self.ledger
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn tiny(tenant: &str, dim: usize, seed: u64) -> Request {
        Request::new(tenant, Priority::Normal, JobSpec::TinySolve { dim, seed }).unwrap()
    }

    #[test]
    fn run_pending_solves_everything_and_sorts_by_id() {
        let mut s = Server::new(ServerConfig::default());
        for seed in 0..6 {
            s.submit(tiny("alpha", 8, seed)).unwrap();
        }
        s.submit(
            Request::new(
                "beta",
                Priority::Interactive,
                JobSpec::SparseSolve {
                    grid: 4,
                    levels: 2,
                    tol: 1e-8,
                    max_iters: 50,
                },
            )
            .unwrap(),
        )
        .unwrap();
        let outcomes = s.run_pending();
        assert_eq!(outcomes.len(), 7);
        assert!(outcomes.windows(2).all(|w| w[0].id < w[1].id));
        // Tiny solves of all-ones systems: checksum ≈ dim.
        for o in outcomes.iter().filter(|o| o.kind == "serve_tiny_solve") {
            assert!((o.checksum - 8.0).abs() < 1e-6, "checksum {}", o.checksum);
            assert_eq!(o.launch_width, 6);
        }
        assert_eq!(s.queued(), 0);
        assert_eq!(s.tenant_stats("alpha").completed, 6);
        assert_eq!(s.tenant_stats("beta").completed, 1);
    }

    #[test]
    fn coalesced_and_uncoalesced_outcomes_are_bit_identical() {
        let run = |enabled: bool| {
            let mut s = Server::new(ServerConfig {
                coalesce: CoalescePolicy {
                    enabled,
                    max_batch: 64,
                },
                ..ServerConfig::default()
            });
            for seed in 0..10 {
                s.submit(tiny("t", 12, seed)).unwrap();
            }
            s.run_pending()
        };
        let coalesced = run(true);
        let solo = run(false);
        assert_eq!(coalesced.len(), solo.len());
        for (c, u) in coalesced.iter().zip(&solo) {
            assert_eq!(c.id, u.id);
            assert_eq!(
                c.checksum.to_bits(),
                u.checksum.to_bits(),
                "job {} differs between arms",
                c.id
            );
        }
        assert!(coalesced.iter().all(|o| o.launch_width == 10));
        assert!(solo.iter().all(|o| o.launch_width == 1));
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut s = Server::new(ServerConfig {
                threads,
                ..ServerConfig::default()
            });
            for seed in 0..8 {
                s.submit(tiny("t", 6, seed)).unwrap();
            }
            s.submit(
                Request::new(
                    "t",
                    Priority::Batch,
                    JobSpec::DenseFactor { n: 24, seed: 3 },
                )
                .unwrap(),
            )
            .unwrap();
            s.run_pending()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
    }

    #[test]
    fn ledger_tracks_rejections() {
        let mut s = Server::new(ServerConfig {
            queue: QueueConfig {
                capacity: 2,
                per_tenant_quota: 64,
            },
            ..ServerConfig::default()
        });
        for seed in 0..4 {
            let _ = s.submit(tiny("t", 4, seed));
        }
        let st = s.tenant_stats("t");
        assert_eq!(st.submitted, 4);
        assert_eq!(st.admitted, 2);
        assert_eq!(st.rejected, 2);
    }
}
