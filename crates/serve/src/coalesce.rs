//! Small-problem coalescing: many tiny solves, one batched launch.
//!
//! The keynote's batched-BLAS argument (E07) restated as a serving
//! concern: a tiny solve's *launch overhead* (dispatch, scheduling, cache
//! warm-up) dwarfs its arithmetic, so a server that launches each tiny
//! request alone burns its capacity on overhead. The coalescer gathers
//! same-shaped tiny jobs that are waiting in the queue into one
//! [`xsc_batched::batched_cholesky_solve`] launch; every other job kind
//! launches alone. Because the batched kernels process each element with
//! identical sequential arithmetic, a coalesced solve is bit-identical to
//! an uncoalesced one — batching changes *when* work runs, never *what*
//! it computes.

use crate::queue::{AdmissionQueue, QueuedJob};
use crate::request::Priority;

/// Coalescing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Master switch: disabled means every job launches alone (the E21
    /// baseline arm).
    pub enabled: bool,
    /// Largest number of tiny solves merged into one launch.
    pub max_batch: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy {
            enabled: true,
            max_batch: 64,
        }
    }
}

/// One unit of executor work: either a lone job or a coalesced batch of
/// same-dimension tiny solves.
#[derive(Debug, Clone, PartialEq)]
pub enum Launch {
    /// A job launched alone.
    Single(QueuedJob),
    /// `jobs.len()` tiny solves of dimension `dim` sharing one batched
    /// launch, in drain order.
    Coalesced {
        /// Common tiny-solve dimension.
        dim: usize,
        /// The merged jobs, in drain order.
        jobs: Vec<QueuedJob>,
    },
}

impl Launch {
    /// Jobs carried by this launch, in drain order.
    pub fn jobs(&self) -> &[QueuedJob] {
        match self {
            Launch::Single(j) => std::slice::from_ref(j),
            Launch::Coalesced { jobs, .. } => jobs,
        }
    }

    /// Number of jobs in the launch.
    pub fn width(&self) -> usize {
        self.jobs().len()
    }

    /// Scheduling urgency of the launch: its most urgent member (a batch
    /// holding one interactive job drains like interactive work).
    pub fn priority(&self) -> Priority {
        self.jobs()
            .iter()
            .map(|j| j.request.priority())
            .max()
            .expect("a launch is never empty")
    }
}

/// Forms the next launch from the head of the queue: pops the next job in
/// drain order and, when it is a tiny solve and `policy.enabled`, gathers
/// up to `max_batch − 1` further tiny jobs of the same dimension from
/// anywhere in the queue (they skip ahead — amortizing the launch is
/// worth reordering work that is all overhead-bound anyway).
pub fn next_launch(queue: &mut AdmissionQueue, policy: &CoalescePolicy) -> Option<Launch> {
    let head = queue.pop()?;
    match head.request.coalescible_dim() {
        Some(dim) if policy.enabled && policy.max_batch > 1 => {
            let mut jobs = vec![head];
            jobs.extend(queue.take_tiny(dim, policy.max_batch - 1));
            Some(Launch::Coalesced { dim, jobs })
        }
        _ => Some(Launch::Single(head)),
    }
}

/// Drains the whole queue into launches (repeated [`next_launch`]).
pub fn plan(queue: &mut AdmissionQueue, policy: &CoalescePolicy) -> Vec<Launch> {
    std::iter::from_fn(|| next_launch(queue, policy)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueConfig;
    use crate::request::{JobSpec, Request};

    fn tiny(dim: usize, seed: u64) -> Request {
        Request::new("t", Priority::Normal, JobSpec::TinySolve { dim, seed }).unwrap()
    }

    fn dense(n: usize) -> Request {
        Request::new("t", Priority::Normal, JobSpec::DenseFactor { n, seed: 0 }).unwrap()
    }

    #[test]
    fn tiny_jobs_of_same_dim_coalesce() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        for s in 0..5 {
            q.submit(tiny(8, s)).unwrap();
        }
        let launches = plan(&mut q, &CoalescePolicy::default());
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].width(), 5);
    }

    #[test]
    fn max_batch_splits_launches() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        for s in 0..7 {
            q.submit(tiny(8, s)).unwrap();
        }
        let policy = CoalescePolicy {
            enabled: true,
            max_batch: 3,
        };
        let widths: Vec<usize> = plan(&mut q, &policy).iter().map(Launch::width).collect();
        assert_eq!(widths, [3, 3, 1]);
    }

    #[test]
    fn different_dims_and_kinds_do_not_merge() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.submit(tiny(4, 0)).unwrap();
        q.submit(tiny(8, 1)).unwrap();
        q.submit(dense(32)).unwrap();
        q.submit(tiny(4, 2)).unwrap();
        let launches = plan(&mut q, &CoalescePolicy::default());
        assert_eq!(launches.len(), 3);
        assert!(matches!(
            &launches[0],
            Launch::Coalesced { dim: 4, jobs } if jobs.len() == 2
        ));
        assert!(matches!(
            &launches[1],
            Launch::Coalesced { dim: 8, jobs } if jobs.len() == 1
        ));
        assert!(matches!(&launches[2], Launch::Single(_)));
    }

    #[test]
    fn disabled_policy_launches_everything_alone() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        for s in 0..4 {
            q.submit(tiny(8, s)).unwrap();
        }
        let policy = CoalescePolicy {
            enabled: false,
            max_batch: 64,
        };
        let launches = plan(&mut q, &policy);
        assert_eq!(launches.len(), 4);
        assert!(launches.iter().all(|l| l.width() == 1));
    }

    #[test]
    fn launch_priority_is_most_urgent_member() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.submit(
            Request::new(
                "t",
                Priority::Interactive,
                JobSpec::TinySolve { dim: 4, seed: 0 },
            )
            .unwrap(),
        )
        .unwrap();
        q.submit(
            Request::new("t", Priority::Batch, JobSpec::TinySolve { dim: 4, seed: 1 }).unwrap(),
        )
        .unwrap();
        let launches = plan(&mut q, &CoalescePolicy::default());
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].priority(), Priority::Interactive);
    }
}
