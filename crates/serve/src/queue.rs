//! Multi-tenant admission queue: priority ordering, per-tenant quotas,
//! and bounded-capacity backpressure.
//!
//! Admission is where the service says *no*: a full queue or an exhausted
//! tenant quota rejects the submission immediately (backpressure the
//! client can see) instead of letting an unbounded backlog destroy every
//! tenant's latency. Drain order is **total and deterministic**: higher
//! [`Priority`] classes first, FIFO (admission order) within a class —
//! independent of how submissions from different tenants interleave with
//! pops, a property the proptests in `tests/` exercise.

use crate::request::{JobId, Priority, Request};
use std::collections::BTreeMap;

/// Queue limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum queued jobs before submissions bounce with
    /// [`AdmitError::QueueFull`].
    pub capacity: usize,
    /// Maximum *outstanding* (queued or executing) jobs per tenant before
    /// its submissions bounce with [`AdmitError::QuotaExhausted`].
    pub per_tenant_quota: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 1024,
            per_tenant_quota: 256,
        }
    }
}

/// Why a submission was refused (backpressure, not failure: the request
/// itself is valid and may be resubmitted later).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The tenant has too many outstanding jobs.
    QuotaExhausted {
        /// The refusing tenant.
        tenant: String,
        /// The configured per-tenant quota that was hit.
        quota: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            AdmitError::QuotaExhausted { tenant, quota } => {
                write!(f, "tenant {tenant:?} has {quota} outstanding jobs (quota)")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// An admitted job: the request plus its queue-assigned id.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// Admission-order id.
    pub id: JobId,
    /// The validated request.
    pub request: Request,
}

/// Drain key: ascending `BTreeMap` order must give highest priority
/// first, FIFO within a class — so the class is stored inverted.
fn drain_key(priority: Priority, seq: u64) -> (u64, u64) {
    (u64::MAX - priority.level(), seq)
}

/// The admission/priority queue. Not a lock-free marvel — admission is a
/// control-plane operation; the data plane is the launch path behind it.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    cfg: QueueConfig,
    next_id: u64,
    entries: BTreeMap<(u64, u64), QueuedJob>,
    /// Outstanding (queued or executing) job count per tenant.
    outstanding: BTreeMap<String, usize>,
}

impl AdmissionQueue {
    /// Creates an empty queue with the given limits.
    pub fn new(cfg: QueueConfig) -> Self {
        AdmissionQueue {
            cfg,
            ..AdmissionQueue::default()
        }
    }

    /// Admits a request or applies backpressure. On success the job is
    /// queued and its id returned; the tenant's outstanding count stays
    /// raised until [`AdmissionQueue::complete`] is called for it.
    pub fn submit(&mut self, request: Request) -> Result<JobId, AdmitError> {
        if self.entries.len() >= self.cfg.capacity {
            return Err(AdmitError::QueueFull {
                capacity: self.cfg.capacity,
            });
        }
        let used = self.outstanding.get(request.tenant()).copied().unwrap_or(0);
        if used >= self.cfg.per_tenant_quota {
            return Err(AdmitError::QuotaExhausted {
                tenant: request.tenant().to_string(),
                quota: self.cfg.per_tenant_quota,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        *self
            .outstanding
            .entry(request.tenant().to_string())
            .or_insert(0) += 1;
        self.entries
            .insert(drain_key(request.priority(), id), QueuedJob { id, request });
        Ok(id)
    }

    /// Removes and returns the next job in drain order (highest priority,
    /// FIFO within a class), or `None` when empty. The job stays counted
    /// against its tenant's quota until [`AdmissionQueue::complete`].
    pub fn pop(&mut self) -> Option<QueuedJob> {
        let key = *self.entries.keys().next()?;
        self.entries.remove(&key)
    }

    /// Removes up to `limit` tiny-solve jobs of dimension `dim`, in drain
    /// order, from anywhere in the queue — the coalescer's gather
    /// primitive. Non-tiny jobs and other dimensions are untouched.
    pub fn take_tiny(&mut self, dim: usize, limit: usize) -> Vec<QueuedJob> {
        let keys: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|(_, j)| j.request.coalescible_dim() == Some(dim))
            .take(limit)
            .map(|(k, _)| *k)
            .collect();
        keys.iter()
            .map(|k| self.entries.remove(k).expect("key collected above"))
            .collect()
    }

    /// Releases one unit of `tenant`'s quota — call when a job finishes
    /// (or is abandoned after a pop).
    pub fn complete(&mut self, tenant: &str) {
        if let Some(n) = self.outstanding.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.outstanding.remove(tenant);
            }
        }
    }

    /// Number of queued (not yet popped) jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Outstanding (queued or executing) jobs for `tenant`.
    pub fn outstanding(&self, tenant: &str) -> usize {
        self.outstanding.get(tenant).copied().unwrap_or(0)
    }

    /// The configured limits.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobSpec;

    fn req(tenant: &str, priority: Priority) -> Request {
        Request::new(tenant, priority, JobSpec::TinySolve { dim: 4, seed: 0 }).unwrap()
    }

    #[test]
    fn drains_by_priority_then_fifo() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.submit(req("a", Priority::Batch)).unwrap();
        q.submit(req("b", Priority::Interactive)).unwrap();
        q.submit(req("c", Priority::Normal)).unwrap();
        q.submit(req("d", Priority::Interactive)).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| q.pop())
            .map(|j| j.request.tenant().to_string())
            .collect();
        assert_eq!(order, ["b", "d", "c", "a"]);
    }

    #[test]
    fn capacity_backpressure() {
        let mut q = AdmissionQueue::new(QueueConfig {
            capacity: 2,
            per_tenant_quota: 10,
        });
        q.submit(req("a", Priority::Normal)).unwrap();
        q.submit(req("a", Priority::Normal)).unwrap();
        assert_eq!(
            q.submit(req("a", Priority::Normal)).unwrap_err(),
            AdmitError::QueueFull { capacity: 2 }
        );
        // Popping frees capacity (even before complete()).
        q.pop().unwrap();
        q.submit(req("a", Priority::Normal)).unwrap();
    }

    #[test]
    fn quota_counts_outstanding_not_queued() {
        let mut q = AdmissionQueue::new(QueueConfig {
            capacity: 100,
            per_tenant_quota: 2,
        });
        q.submit(req("a", Priority::Normal)).unwrap();
        q.submit(req("a", Priority::Normal)).unwrap();
        // Popping does NOT release quota — the job is still executing.
        let j = q.pop().unwrap();
        assert!(matches!(
            q.submit(req("a", Priority::Normal)).unwrap_err(),
            AdmitError::QuotaExhausted { .. }
        ));
        // Another tenant is unaffected.
        q.submit(req("b", Priority::Normal)).unwrap();
        // Completion releases it.
        q.complete(j.request.tenant());
        q.submit(req("a", Priority::Normal)).unwrap();
    }

    #[test]
    fn take_tiny_gathers_only_matching_dim_in_drain_order() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        let t = |dim: usize, p: Priority| {
            Request::new("t", p, JobSpec::TinySolve { dim, seed: 0 }).unwrap()
        };
        q.submit(t(4, Priority::Batch)).unwrap();
        q.submit(t(8, Priority::Normal)).unwrap();
        q.submit(t(4, Priority::Interactive)).unwrap();
        q.submit(t(4, Priority::Batch)).unwrap();
        let got = q.take_tiny(4, 2);
        // Drain order: the interactive dim-4 job first, then the first
        // batch-class one.
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id, 2);
        assert_eq!(got[1].id, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn ids_are_admission_ordered() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        let a = q.submit(req("a", Priority::Normal)).unwrap();
        let b = q.submit(req("b", Priority::Interactive)).unwrap();
        assert!(b > a);
    }
}
