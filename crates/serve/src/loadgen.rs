//! Seeded open-loop load generator.
//!
//! Open-loop means arrivals do **not** wait for completions — the
//! generator fixes a timeline of request arrivals up front (the
//! coordinated-omission-free methodology of serving benchmarks), and the
//! replay in [`crate::sim`] measures how far completions lag behind it.
//! Everything is derived from one seed through the workspace's
//! deterministic `SmallRng`, so the same profile always produces the
//! same traffic, byte for byte.

use crate::request::{JobSpec, Priority, Request};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tiny-solve dimensions the generator draws from (all within
/// [`crate::request::MAX_TINY_DIM`]).
pub const TINY_DIMS: [usize; 4] = [4, 6, 8, 12];

/// Stencil grid edges the generator draws from.
pub const SPARSE_GRIDS: [usize; 2] = [4, 8];

/// Dense factorization sizes the generator draws from.
pub const DENSE_DIMS: [usize; 2] = [24, 32];

/// A workload description: who sends how much of what, how fast.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Master seed; every arrival derives from it.
    pub seed: u64,
    /// Total requests on the timeline.
    pub requests: usize,
    /// Mean inter-arrival gap in virtual nanoseconds (arrivals are
    /// uniform on `[0, 2·mean]`, so the mean rate is `1/mean`).
    pub mean_interarrival_ns: u64,
    /// Tenants and their priority class; requests round-robin by a
    /// seeded draw.
    pub tenants: Vec<(String, Priority)>,
    /// Per-mille of requests that are tiny solves (the coalescible kind).
    pub tiny_permille: u32,
    /// Per-mille that are sparse MG-PCG solves (the rest, after tiny and
    /// sparse, are dense factorizations).
    pub sparse_permille: u32,
}

impl LoadProfile {
    /// The E21 workload: many tiny requests (90 %) from three tenants of
    /// different priority classes, seasoned with sparse solves (6 %) and
    /// dense factorizations (4 %).
    pub fn many_tiny(seed: u64, requests: usize, mean_interarrival_ns: u64) -> LoadProfile {
        LoadProfile {
            seed,
            requests,
            mean_interarrival_ns,
            tenants: vec![
                ("dashboard".to_string(), Priority::Interactive),
                ("pipeline".to_string(), Priority::Normal),
                ("nightly".to_string(), Priority::Batch),
            ],
            tiny_permille: 900,
            sparse_permille: 60,
        }
    }
}

/// One point on the open-loop timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival time in nanoseconds from the timeline origin.
    pub at_ns: u64,
    /// The (already validated) request.
    pub request: Request,
}

/// Generates the arrival timeline for a profile: nondecreasing times,
/// every request valid by construction. Panics if the profile has no
/// tenants or an impossible mix (> 1000 ‰).
pub fn generate(profile: &LoadProfile) -> Vec<Arrival> {
    assert!(!profile.tenants.is_empty(), "profile needs tenants");
    assert!(
        profile.tiny_permille + profile.sparse_permille <= 1000,
        "mix exceeds 1000 permille"
    );
    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let mut at_ns = 0u64;
    let mut out = Vec::with_capacity(profile.requests);
    for _ in 0..profile.requests {
        at_ns += rng.gen_range(0..2 * profile.mean_interarrival_ns.max(1) + 1);
        let (tenant, priority) = &profile.tenants[rng.gen_range(0..profile.tenants.len())];
        let mix = rng.gen_range(0u32..1000);
        let spec = if mix < profile.tiny_permille {
            JobSpec::TinySolve {
                dim: TINY_DIMS[rng.gen_range(0..TINY_DIMS.len())],
                seed: rng.gen_range(0u64..1 << 48),
            }
        } else if mix < profile.tiny_permille + profile.sparse_permille {
            JobSpec::SparseSolve {
                grid: SPARSE_GRIDS[rng.gen_range(0..SPARSE_GRIDS.len())],
                levels: 2,
                tol: 1e-8,
                max_iters: 50,
            }
        } else {
            JobSpec::DenseFactor {
                n: DENSE_DIMS[rng.gen_range(0..DENSE_DIMS.len())],
                seed: rng.gen_range(0u64..1 << 48),
            }
        };
        let request = Request::new(tenant.clone(), *priority, spec)
            .expect("the generator emits only valid requests");
        out.push(Arrival { at_ns, request });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_timeline() {
        let p = LoadProfile::many_tiny(0xE21, 200, 1000);
        assert_eq!(generate(&p), generate(&p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&LoadProfile::many_tiny(1, 100, 1000));
        let b = generate(&LoadProfile::many_tiny(2, 100, 1000));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_nondecreasing_and_mostly_tiny() {
        let arrivals = generate(&LoadProfile::many_tiny(7, 500, 1000));
        assert_eq!(arrivals.len(), 500);
        assert!(arrivals.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let tiny = arrivals
            .iter()
            .filter(|a| a.request.coalescible_dim().is_some())
            .count();
        // 90% nominal; leave generous slack for the draw.
        assert!(tiny > 400, "only {tiny}/500 tiny requests");
    }

    #[test]
    fn all_tenants_appear() {
        let arrivals = generate(&LoadProfile::many_tiny(3, 300, 1000));
        for t in ["dashboard", "pipeline", "nightly"] {
            assert!(arrivals.iter().any(|a| a.request.tenant() == t));
        }
    }
}
