//! Fixture for the suppression grammar and its meta-rules (L00–L02).

// xsc-lint: allow(D01, reason = "fixture: sorted drain two lines down")
use std::collections::HashMap; // line 4: suppressed by line 3

use std::collections::HashSet; // xsc-lint: allow(D01, reason = "fixture: same-line allow on line 6")

// xsc-lint: allow(D01)
use std::collections::HashMap as ReasonlessMap; // line 9: D01 survives; line 8 is L00

// xsc-lint: allow(Z99, reason = "no such rule")
use std::collections::HashSet as UnknownRuleSet; // line 12: D01 survives; line 11 is L01

// xsc-lint: allow(D03, reason = "stale: nothing random below")
pub fn quiet() {} // line 15: line 14 is L02 (unused suppression)
