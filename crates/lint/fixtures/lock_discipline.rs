//! Fixture for the lock tracker (linted under the executor.rs path):
//! order inversions, undeclared locks, and guards held across calls.

pub fn inverted(shared: &Shared) {
    let mut q = shared.queues[0].lock(); // declared, rank 2 — held below
    let s = shared.sleep.lock(); // line 6: C03 (sleep ranks before queues)
    drop(s);
    drop(q);
}

pub fn undeclared(shared: &Shared) {
    let g = shared.mystery.lock(); // line 12: C03 (not in the manifest)
}

pub fn wake_under_queue_guard(shared: &Shared) {
    let mut q = shared.queues[1].lock();
    shared.wake_all(); // line 17: C03 (wake_all takes `sleep` internally)
}

pub fn guard_across_execute(shared: &Shared, g: TaskGraph) {
    let held = shared.sleep.lock();
    shared.pool.execute(g); // line 22: C02 (kernel call under a live guard)
}

pub fn scoped_is_fine(shared: &Shared, g: TaskGraph) {
    {
        let _held = shared.sleep.lock();
    } // guard closed before the call: no finding
    shared.pool.execute(g);
}
