//! Fixture for A01: index narrowing in a sparse-crate path.

pub fn narrow(i: usize) -> u32 {
    i as u32 // line 4: A01
}

pub fn widen(i: u32) -> usize {
    i as usize // line 8: widening — no finding
}

pub fn checked(i: usize) -> u32 {
    u32::try_from(i).expect("caller-checked") // line 12: sanctioned form
}
