//! Fixture for A01: index narrowing in a sparse-crate path.

pub fn narrow(i: usize) -> u32 {
    i as u32 // line 4: A01
}

pub fn widen_here(i: u32) -> usize {
    i as usize // line 8: X01 (bare `as usize` outside a chokepoint fn)
}

pub fn checked(i: usize) -> u32 {
    u32::try_from(i).expect("caller-checked") // line 12: sanctioned form
}
