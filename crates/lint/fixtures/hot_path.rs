//! Fixture for the panic-freedom rules (linted under the server.rs path):
//! the declared hot functions must not panic; everything else may.

pub fn execute_single(x: &Request) -> Outcome {
    let v = x.cache.get().unwrap(); // line 5: P01
    unreachable!("mixed batch"); // line 6: P02
    let picked = x.items[x.cursor]; // line 7: P03 (runtime index can panic)
}

pub fn admission(x: &Request) -> Outcome {
    // Validation boundary: fallible code is the POINT here — no findings.
    let v = x.cache.get().unwrap();
    assert!(x.items.len() > x.cursor);
    x.items[x.cursor]
}
