//! Fixture for D04: implicit reductions in a kernel-crate path.

pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum() // line 4: D04
}

pub fn norm_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).product() // line 8: D04 (product too)
}

pub fn pinned_dot(x: &[f64], y: &[f64]) -> f64 {
    // Explicit left fold: the sanctioned form, no finding.
    x.iter().zip(y.iter()).fold(0.0, |acc, (a, b)| acc + a * b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn sums_are_fine_in_tests() {
        let total: f64 = [1.0, 2.0].iter().sum(); // line 20: exempt
        assert!(total > 0.0);
    }
}
