//! Fixture: one violation per determinism rule, at known line numbers
//! (the test asserts rule ids AND exact lines — renumber carefully).

use std::collections::HashMap; // line 4: D01
use std::collections::HashSet; // line 5: D01
use std::time::Instant; // line 6: D02
use std::time::SystemTime; // line 7: D02

pub fn entropy() {
    let rng = thread_rng(); // line 10: D03
    let other = OsRng; // line 11: D03
}

pub fn clock() {
    let t = Instant::now(); // line 15: D02
}

pub fn raw_pointer(p: *const u8) -> u8 {
    unsafe { *p } // line 19: S01 (no SAFETY comment)
}

pub fn sound_pointer(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid (fixture) — silences S01.
    unsafe { *p } // line 24: no finding
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap; // line 29: D01 (test code is held to it)
    use std::time::Instant; // line 30: D02 (test code is held to it)

    #[test]
    fn uses_wall_clock_freely() {
        let _ = Instant::now(); // line 34: D02
        let _ = thread_rng(); // line 35: D03 fires even in tests
    }
}
