//! Fixture: every hazard name appears only where the lexer must NOT see
//! it — strings, raw strings, chars, comments, lifetimes. A naive grep
//! flags this file everywhere; the token-aware linter must report ZERO
//! findings.

// HashMap thread_rng Instant::now unsafe .sum() as u32 — comment, ignored.

/* block comment with /* nested */ HashMap and thread_rng survive */

pub fn clean() -> usize {
    let a = "HashMap::new() and thread_rng() and Instant::now()";
    let b = r#"unsafe { OsRng } and SystemTime"#;
    let c = r##"raw with "# inside: from_entropy()"##;
    let d = b"byte HashSet";
    let e = 'u'; // not the start of `unsafe`
    let f: &'static str = "lifetime, not a char literal";
    a.len() + b.len() + c.len() + d.len() + (e as usize) + f.len()
}
