//! The project-specific rule set and the token-pattern engine behind it.
//!
//! Every rule guards an invariant the repo's experiments *assert at
//! runtime* (bit-identical residual histories across sparse formats in
//! E19, schedule-independent chaos campaigns in E17, deterministic
//! left-fold reductions everywhere) but that the source could silently
//! lose again through an innocent-looking edit. The linter moves those
//! invariants from convention to tooling — see `DESIGN.md`, "Static
//! analysis & invariants", for the full rule catalog.
//!
//! Three generations of rules share one engine:
//!
//! * **D/A/S/M rules** (PR 5) are token-pattern rules scoped by
//!   [`CrateClass`];
//! * **C rules** (concurrency) consume the [`crate::context::ItemCtx`]
//!   structural pass and a lexical lock-guard tracker to police condvar
//!   predicate loops, guards held across kernel calls, and the executor's
//!   declared lock-acquisition order ([`C03_LOCK_ORDER`]);
//! * **P rules** (panic-freedom) and **X rules** (numeric-cast hygiene)
//!   are *manifest* rules: [`HOT_PATHS`] declares the infallible hot
//!   paths, [`X01_CHOKEPOINTS`] the only functions allowed to spell a
//!   bare `as f32` / `as f64` / `as usize` in kernel crates — the
//!   auditable substrate the mixed-precision roadmap item builds on.
//!
//! Rules skip `#[cfg(test)]` / `#[test]` regions where noted, so test
//! code may use hash maps, indexing, and unwraps freely while library
//! code may not.

use crate::context::ItemCtx;
use crate::lexer::{Tok, Token};

/// Which part of the workspace a file belongs to; decides which rules
/// apply (see the table in `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Library crates whose results must be deterministic (`xsc-core`,
    /// `xsc-sparse`, ... — everything not listed below).
    Numeric,
    /// The benchmark crate (`crates/bench`): timing is its job.
    Bench,
    /// Offline stand-ins for external crates (`crates/shims/*`).
    Shim,
    /// Test and bench sources (`tests/` crate, `*/tests/`, `*/benches/`).
    TestCode,
    /// Runnable examples (`examples/`).
    Example,
    /// The linter itself (`crates/lint`): held to Numeric rules.
    Lint,
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D01`, ..., `L02`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` and the JSON report.
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule the engine knows, including the meta-rules (`L00`–`L02`)
/// that police the suppression mechanism itself.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D01",
        summary: "no HashMap/HashSet outside shims: iteration order is nondeterministic; \
                  use BTreeMap/BTreeSet or a sorted drain",
    },
    RuleInfo {
        id: "D02",
        summary: "no raw Instant/SystemTime outside bench/timing modules: wall clock reads go \
                  through xsc_metrics::stopwatch::Stopwatch",
    },
    RuleInfo {
        id: "D03",
        summary: "no unseeded RNG (thread_rng/from_entropy/OsRng/getrandom) anywhere, tests \
                  included: every random stream carries an explicit seed",
    },
    RuleInfo {
        id: "D04",
        summary: "no implicit .sum()/.product() reductions in kernel crates: write the fold \
                  explicitly so the pinned order is visible",
    },
    RuleInfo {
        id: "A01",
        summary: "no unchecked `as` narrowing on sparse indices: use try_from (the Csr32 \
                  overflow lesson)",
    },
    RuleInfo {
        id: "S01",
        summary: "every unsafe block needs a // SAFETY: comment just above; unsafe fn/impl/trait \
                  items need that or a `# Safety` doc section",
    },
    RuleInfo {
        id: "M01",
        summary: "public kernel files in core/sparse/dense install an xsc-metrics recorder",
    },
    RuleInfo {
        id: "C01",
        summary: "condvar wait() must sit inside a predicate re-check loop: a bare wait turns \
                  every spurious wakeup into a logic bug",
    },
    RuleInfo {
        id: "C02",
        summary: "no lock guard held across a kernel/executor call: kernels run for \
                  milliseconds and a held guard turns them into a convoy (or deadlock)",
    },
    RuleInfo {
        id: "C03",
        summary: "executor lock acquisitions must follow the declared order manifest \
                  (panicked < sleep < queues < kernels) and name only declared locks",
    },
    RuleInfo {
        id: "P01",
        summary: "no .unwrap()/.expect() in the declared infallible hot paths (executor worker \
                  loop, microkernel, serve post-admission): validate at the boundary instead",
    },
    RuleInfo {
        id: "P02",
        summary: "no panic!/unreachable!/todo!/assert! macros in the declared infallible hot \
                  paths (debug_assert! compiles out and is allowed)",
    },
    RuleInfo {
        id: "P03",
        summary: "no fallible slice indexing in the declared infallible hot paths: iterate or \
                  chunk instead (constant indices into fixed arrays are allowed)",
    },
    RuleInfo {
        id: "X01",
        summary: "bare `as f32`/`as f64`/`as usize` in kernel crates only inside the named \
                  cast chokepoints: every numeric representation change must be auditable \
                  before mixed precision lands",
    },
    RuleInfo {
        id: "L00",
        summary: "suppressions must carry a reason: xsc-lint: allow(RULE, reason = \"...\")",
    },
    RuleInfo {
        id: "L01",
        summary: "suppressions must name a known rule id",
    },
    RuleInfo {
        id: "L02",
        summary: "suppressions must match a finding (stale allows rot the audit trail)",
    },
];

/// `true` if `id` names a rule the engine knows.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Kernel-crate path prefixes for D04 and X01 (crates that promise pinned
/// fold order and auditable numeric casts in their results).
const KERNEL_CRATES: &[&str] = &[
    "crates/core/",
    "crates/sparse/",
    "crates/dense/",
    "crates/batched/",
    "crates/precision/",
];

/// The one file allowed to read the wall clock directly: the sanctioned
/// chokepoint every other crate's timing goes through.
const TIMING_CHOKEPOINT: &str = "crates/metrics/src/stopwatch.rs";

/// Files that implement public kernels and therefore must install an
/// `xsc_metrics::record` scope (rule M01). Kept explicit so removing
/// instrumentation from a hot kernel is a lint failure, not a silent
/// observability regression.
const M01_KERNEL_FILES: &[&str] = &[
    "crates/core/src/blas1.rs",
    "crates/core/src/gemm.rs",
    "crates/core/src/syrk.rs",
    "crates/core/src/trsm.rs",
    "crates/sparse/src/csr.rs",
    "crates/sparse/src/csr32.rs",
    "crates/sparse/src/sell.rs",
    "crates/sparse/src/symgs.rs",
    "crates/sparse/src/mg.rs",
    "crates/sparse/src/coloring.rs",
    "crates/dense/src/hpl.rs",
    "crates/dense/src/cholesky.rs",
];

// ---------------------------------------------------------------------------
// C03 manifest: the executor's declared lock world.
// ---------------------------------------------------------------------------

/// The file rule C03 audits (the only file in the workspace where more
/// than one lock class can be held at once).
const C03_FILE: &str = "crates/runtime/src/executor.rs";

/// Declared lock-acquisition order for `executor.rs`, outermost first.
/// Acquiring a lock while holding one that appears *later* in this list
/// is a C03 finding; so is acquiring a lock the manifest does not name.
pub const C03_LOCK_ORDER: &[&str] = &["panicked", "sleep", "queues", "kernels"];

/// Local-variable aliases for declared locks (`|q| q.lock()` closures over
/// the queue vector).
const C03_LOCK_ALIASES: &[(&str, &str)] = &[("q", "queues")];

/// Functions that acquire a lock internally, so calling them *is* an
/// acquisition for ordering purposes. `wake_all` takes the sleep lock —
/// calling it while holding a queue guard would invert the order.
const C03_FN_ACQUIRES: &[(&str, &str)] = &[("wake_all", "sleep")];

// ---------------------------------------------------------------------------
// C02 manifest: guard-across-kernel-call hazards.
// ---------------------------------------------------------------------------

/// Files where lock guards and kernel/executor calls coexist.
const C02_FILES: &[&str] = &[
    "crates/runtime/src/executor.rs",
    "crates/serve/src/server.rs",
];

/// Long-running callees that must never see a caller-held lock guard:
/// graph executions and the serve-side solve entry points.
const C02_CALLEES: &[&str] = &[
    "run",
    "run_resilient",
    "execute",
    "execute_traced",
    "execute_resilient",
    "execute_resilient_traced",
    "execute_launch",
    "execute_coalesced",
    "execute_single",
    "batched_cholesky_solve",
];

// ---------------------------------------------------------------------------
// P-rule manifest: the declared infallible hot paths.
// ---------------------------------------------------------------------------

/// One declared infallible hot path: a file, the functions in it that are
/// post-validation (empty = the whole file), and whether slice indexing
/// (P03) is policed there too.
struct HotPath {
    file: &'static str,
    /// Function names (closures inside them count); empty = whole file.
    fns: &'static [&'static str],
    /// Whether P03 (slice indexing) applies. The executor indexes its
    /// per-task slot vectors by construction-bounded task ids everywhere,
    /// so P03 there would be suppression noise; the microkernel and the
    /// serve solve path have no such excuse.
    indexing: bool,
}

/// The declared infallible hot paths. Admission/validation is the fallible
/// boundary; past it, these functions must not be able to panic.
const HOT_PATHS: &[HotPath] = &[
    HotPath {
        file: "crates/core/src/microkernel.rs",
        fns: &[],
        indexing: true,
    },
    HotPath {
        file: "crates/runtime/src/executor.rs",
        fns: &["run", "run_resilient", "try_steal", "wake_all", "finished"],
        indexing: false,
    },
    HotPath {
        file: "crates/serve/src/server.rs",
        fns: &[
            "execute_launch",
            "execute_coalesced",
            "execute_single",
            "tiny_problem",
            "outcome",
        ],
        indexing: true,
    },
];

// ---------------------------------------------------------------------------
// X01 manifest: the named numeric-cast chokepoints.
// ---------------------------------------------------------------------------

/// The only (file, fn) pairs in kernel crates allowed to spell a bare
/// `as f32` / `as f64` / `as usize`. Everything else converts through
/// these, so a future mixed-precision pass can find every representation
/// change by reading this list.
pub const X01_CHOKEPOINTS: &[(&str, &str)] = &[
    ("crates/core/src/cast.rs", "count_f64"),
    ("crates/core/src/cast.rs", "demote_f32"),
    ("crates/core/src/scalar.rs", "to_f64"),
    ("crates/core/src/scalar.rs", "from_f64"),
    ("crates/sparse/src/idx.rs", "widen"),
    ("crates/sparse/src/csr32.rs", "check_compact_bounds"),
    ("crates/precision/src/half.rs", "to_f64"),
    ("crates/precision/src/half.rs", "from_f64"),
];

/// A lexed file plus everything the rules need to scope themselves.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Workspace classification of the file.
    pub class: CrateClass,
    /// Full token stream (comments included).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment ("significant") tokens.
    pub sig: Vec<usize>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: Vec<bool>,
    /// Structural context: enclosing fn, loop bodies, brace depth.
    pub item: ItemCtx,
}

impl FileCtx {
    /// Builds the context for one file: lex, index, and mark test regions.
    pub fn new(path: String, class: CrateClass, src: &str) -> FileCtx {
        let tokens = crate::lexer::lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment { .. }))
            .map(|(i, _)| i)
            .collect();
        let in_test = mark_test_regions(&tokens, &sig);
        let item = ItemCtx::new(&tokens, &sig);
        FileCtx {
            path,
            class,
            tokens,
            sig,
            in_test,
            item,
        }
    }

    // All accessors are total in `k`: rules routinely probe `k + 1`/`k + 3`
    // lookaheads, and a file that ends mid-pattern (`foo.` at EOF) must
    // read as "no match", never as a bounds panic.

    fn ident_at(&self, k: usize) -> Option<&str> {
        match &self.tokens[*self.sig.get(k)?].tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, k: usize, c: char) -> bool {
        self.sig
            .get(k)
            .is_some_and(|&i| self.tokens[i].tok == Tok::Punct(c))
    }

    fn line_at(&self, k: usize) -> u32 {
        self.sig.get(k).map_or(0, |&i| self.tokens[i].line)
    }

    fn in_test_at(&self, k: usize) -> bool {
        self.sig.get(k).is_some_and(|&i| self.in_test[i])
    }

    fn fn_name_at(&self, k: usize) -> Option<&str> {
        self.item.fn_name_at(*self.sig.get(k)?)
    }

    fn depth_at(&self, k: usize) -> u32 {
        self.sig.get(k).map_or(0, |&i| self.item.depth[i])
    }

    fn is_kernel_crate(&self) -> bool {
        KERNEL_CRATES.iter().any(|p| self.path.starts_with(p))
    }
}

/// Marks, for every token index, whether it sits inside a region gated by
/// `#[cfg(test)]` or `#[test]` (a `mod`, `fn`, or single `use`/item).
/// Attributes like `#[cfg(not(test))]` do **not** mark a region.
fn mark_test_regions(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut depth: i64 = 0;
    // Stack of depths at which a test region's opening brace sits; the
    // region ends when `depth` drops back below the recorded value.
    let mut region_floor: Option<i64> = None;
    let mut pending_test = false;
    let mut k = 0usize;
    while k < sig.len() {
        let i = sig[k];
        if region_floor.is_some() {
            flags[i] = true;
        }
        match &tokens[i].tok {
            Tok::Punct('#') if k + 1 < sig.len() && tokens[sig[k + 1]].tok == Tok::Punct('[') => {
                // Scan the attribute to its matching `]`, collecting idents.
                let mut brackets = 0i64;
                let mut idents: Vec<&str> = Vec::new();
                let mut j = k + 1;
                while j < sig.len() {
                    let t = sig[j];
                    if region_floor.is_some() {
                        flags[t] = true;
                    }
                    match &tokens[t].tok {
                        Tok::Punct('[') => brackets += 1,
                        Tok::Punct(']') => {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) => idents.push(s.as_str()),
                        _ => {}
                    }
                    j += 1;
                }
                let has_test = idents.contains(&"test");
                let negated = idents.contains(&"not");
                if has_test && !negated {
                    pending_test = true;
                }
                k = j + 1;
                continue;
            }
            Tok::Punct('{') => {
                depth += 1;
                if pending_test && region_floor.is_none() {
                    region_floor = Some(depth);
                    pending_test = false;
                    flags[i] = true;
                }
            }
            Tok::Punct('}') => {
                depth -= 1;
                if let Some(floor) = region_floor {
                    if depth < floor {
                        region_floor = None;
                    }
                }
            }
            // `#[cfg(test)] use ...;` — the attribute covered one
            // braceless item.
            Tok::Punct(';') if pending_test && region_floor.is_none() => {
                flags[i] = true;
                pending_test = false;
            }
            _ => {}
        }
        if pending_test && region_floor.is_none() {
            flags[i] = true;
        }
        k += 1;
    }
    flags
}

/// Runs every rule against one file and returns the raw findings
/// (suppressions are applied later, by the driver).
pub fn check_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_d01(ctx, &mut out);
    rule_d02(ctx, &mut out);
    rule_d03(ctx, &mut out);
    rule_d04(ctx, &mut out);
    rule_a01(ctx, &mut out);
    rule_s01(ctx, &mut out);
    rule_m01(ctx, &mut out);
    rule_c01(ctx, &mut out);
    rule_c02_c03(ctx, &mut out);
    rule_p(ctx, &mut out);
    rule_x01(ctx, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, rule: &'static str, ctx: &FileCtx, line: u32, message: String) {
    out.push(Finding {
        rule,
        file: ctx.path.clone(),
        line,
        message,
    });
}

/// D01 — hash-order iteration hazard. Applies everywhere except shims
/// (which re-implement external APIs): test assertions built on hash-order
/// iteration flake exactly like library code does.
fn rule_d01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class == CrateClass::Shim {
        return;
    }
    for k in 0..ctx.sig.len() {
        if let Some(name @ ("HashMap" | "HashSet")) = ctx.ident_at(k) {
            push(
                out,
                "D01",
                ctx,
                ctx.line_at(k),
                format!(
                    "`{name}`: iteration order is nondeterministic and can leak into results \
                     (or test expectations); use BTreeMap/BTreeSet or drain through a sorted Vec"
                ),
            );
        }
    }
}

/// D02 — ad-hoc wall-clock reads outside the sanctioned timing chokepoint.
/// Test code is held to the rule too (a test that times itself with a raw
/// `Instant` flakes under load); the bench crate is exempt — timing is
/// its job.
fn rule_d02(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(
        ctx.class,
        CrateClass::Numeric | CrateClass::Lint | CrateClass::Example | CrateClass::TestCode
    ) || ctx.path == TIMING_CHOKEPOINT
    {
        return;
    }
    for k in 0..ctx.sig.len() {
        if let Some(name @ ("Instant" | "SystemTime")) = ctx.ident_at(k) {
            push(
                out,
                "D02",
                ctx,
                ctx.line_at(k),
                format!(
                    "raw `{name}` outside a timing module: wall clock must never influence \
                     results; time through xsc_metrics::stopwatch::Stopwatch (the one audited \
                     chokepoint)"
                ),
            );
        }
    }
}

/// D03 — unseeded randomness, flagged everywhere including test code.
fn rule_d03(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for k in 0..ctx.sig.len() {
        if let Some(name @ ("thread_rng" | "ThreadRng" | "from_entropy" | "OsRng" | "getrandom")) =
            ctx.ident_at(k)
        {
            push(
                out,
                "D03",
                ctx,
                ctx.line_at(k),
                format!(
                    "`{name}` is an unseeded entropy source: every random stream must thread \
                     an explicit seed (SmallRng::seed_from_u64) so runs replay bit-identically"
                ),
            );
        }
    }
}

/// D04 — implicit iterator reductions in kernel crates.
fn rule_d04(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class != CrateClass::Numeric || !ctx.is_kernel_crate() {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(2) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.punct_at(k, '.')
            && matches!(ctx.ident_at(k + 1), Some("sum" | "product"))
            && ctx.punct_at(k + 2, '(')
        {
            let name = ctx.ident_at(k + 1).unwrap_or("sum");
            push(
                out,
                "D04",
                ctx,
                ctx.line_at(k + 1),
                format!(
                    "implicit `.{name}()` in a kernel crate that promises pinned fold order: \
                     write the reduction as an explicit left fold \
                     (`.fold(0.0, |acc, x| acc + x)`), or suppress with the element type's \
                     justification if the sum is order-independent (integers)"
                ),
            );
        }
    }
}

/// A01 — unchecked `as` narrowing on sparse indices.
fn rule_a01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class != CrateClass::Numeric || !ctx.path.starts_with("crates/sparse/") {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(1) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.ident_at(k) == Some("as") {
            if let Some(target @ ("u8" | "u16" | "u32" | "i8" | "i16" | "i32")) =
                ctx.ident_at(k + 1)
            {
                push(
                    out,
                    "A01",
                    ctx,
                    ctx.line_at(k),
                    format!(
                        "unchecked `as {target}` narrowing on a sparse index: silent truncation \
                         is how Csr32 overflow bugs are born; use try_from (or suppress citing \
                         the bound that makes the cast safe)"
                    ),
                );
            }
        }
    }
}

/// S01 — `unsafe` without a stated soundness argument. An `unsafe { ... }`
/// block (or `unsafe` in any expression position) needs a `// SAFETY:`
/// comment within the 3 lines above. An `unsafe fn` / `unsafe impl` /
/// `unsafe trait` *item* may instead carry a `/// # Safety` doc section
/// (the rustdoc convention) within the 12 lines above — the section
/// documents the caller obligation, which *is* the soundness argument at
/// the declaration site.
fn rule_s01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let mut safety_lines: Vec<u32> = Vec::new();
    let mut safety_doc_lines: Vec<u32> = Vec::new();
    for t in &ctx.tokens {
        if let Tok::Comment { text, .. } = &t.tok {
            if text.contains("SAFETY:") {
                safety_lines.push(t.line);
            }
            if text.contains("# Safety") {
                safety_doc_lines.push(t.line);
            }
        }
    }
    for k in 0..ctx.sig.len() {
        if ctx.ident_at(k) != Some("unsafe") {
            continue;
        }
        let line = ctx.line_at(k);
        let is_item = matches!(ctx.ident_at(k + 1), Some("fn" | "impl" | "trait"));
        let by_comment = safety_lines
            .iter()
            .any(|&l| l <= line && line.saturating_sub(l) <= 3);
        let by_doc = is_item
            && safety_doc_lines
                .iter()
                .any(|&l| l <= line && line.saturating_sub(l) <= 12);
        if !(by_comment || by_doc) {
            let hint = if is_item {
                "document the caller obligation in a `# Safety` doc section (or a // SAFETY: \
                 comment just above)"
            } else {
                "state the invariant that makes this sound in a // SAFETY: comment within the \
                 3 lines above"
            };
            push(
                out,
                "S01",
                ctx,
                line,
                format!("`unsafe` without a stated soundness argument: {hint}"),
            );
        }
    }
}

/// M01 — kernel files must install an `xsc_metrics` recorder.
fn rule_m01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !M01_KERNEL_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(3) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.ident_at(k) == Some("xsc_metrics")
            && ctx.punct_at(k + 1, ':')
            && ctx.punct_at(k + 2, ':')
            && matches!(ctx.ident_at(k + 3), Some("record" | "record_untimed"))
        {
            return; // instrumented — rule satisfied
        }
    }
    push(
        out,
        "M01",
        ctx,
        1,
        "kernel file installs no xsc-metrics recorder: public kernels in core/sparse/dense \
         must open an `xsc_metrics::record(...)` scope so roofline attribution stays complete"
            .to_string(),
    );
}

/// C01 — `.wait(...)` on a condvar must sit inside a loop that re-checks
/// its predicate: condition variables wake spuriously by contract, and the
/// executor's no-lost-wakeup argument (DESIGN.md) assumes the sleeper
/// re-evaluates the world after every return from `wait`.
fn rule_c01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class == CrateClass::Shim {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(2) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.punct_at(k, '.')
            && ctx.ident_at(k + 1) == Some("wait")
            && ctx.punct_at(k + 2, '(')
            && !ctx.item.in_loop[ctx.sig[k + 1]]
        {
            push(
                out,
                "C01",
                ctx,
                ctx.line_at(k + 1),
                "condvar `wait` outside a predicate loop: spurious wakeups are allowed by \
                 contract, so the caller must loop and re-check the condition after every \
                 return from wait"
                    .to_string(),
            );
        }
    }
}

/// A lock guard the lexical tracker currently believes is held.
struct HeldGuard {
    /// Canonical lock name (alias-resolved; `"?"` for unrecognized).
    lock: String,
    /// Binding name, for `drop(guard)` tracking.
    var: Option<String>,
    /// Held while the current brace depth is `>= floor`.
    floor: u32,
    /// Line of the acquisition (for diagnostics).
    line: u32,
}

/// Resolves the lock name for a `.lock()` whose `.` is at sig index `k`:
/// the identifier before the dot, skipping one `[...]` index group
/// (`queues[worker].lock()` → `queues`).
fn lock_name(ctx: &FileCtx, k: usize) -> Option<String> {
    let mut j = k;
    if j == 0 {
        return None;
    }
    j -= 1;
    if ctx.punct_at(j, ']') {
        let mut depth = 1i32;
        while j > 0 && depth > 0 {
            j -= 1;
            if ctx.punct_at(j, ']') {
                depth += 1;
            } else if ctx.punct_at(j, '[') {
                depth -= 1;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    ctx.ident_at(j).map(|s| {
        let canon = C03_LOCK_ALIASES
            .iter()
            .find(|(a, _)| *a == s)
            .map(|(_, c)| *c)
            .unwrap_or(s);
        canon.to_string()
    })
}

/// Classification of one `.lock()` acquisition site.
enum GuardKind {
    /// `let g = x.lock();` (possibly through `.expect(..)`/`.unwrap()`):
    /// held until the enclosing block closes.
    Named(Option<String>),
    /// `if let` / `while let` condition: the guard temporary lives through
    /// the body (edition-2021 temporary scopes).
    CondExtended,
    /// Part of a larger statement: dropped at the statement's end.
    Transient,
}

/// Classifies the `.lock()` whose `.` is at sig index `k`, returning the
/// kind and the sig-index where its statement starts.
fn classify_guard(ctx: &FileCtx, k: usize) -> (GuardKind, usize) {
    // Find the statement start: the token after the previous `;`/`{`/`}`.
    let mut s = k;
    while s > 0 {
        let p = s - 1;
        if ctx.punct_at(p, ';') || ctx.punct_at(p, '{') || ctx.punct_at(p, '}') {
            break;
        }
        s = p;
    }
    let first = ctx.ident_at(s);
    let second = ctx.ident_at(s + 1);
    if matches!(first, Some("if" | "while")) && second == Some("let") {
        return (GuardKind::CondExtended, s);
    }
    if first == Some("let") {
        // Named only if `.lock()` ends the initializer (modulo a trailing
        // `.expect(..)` / `.unwrap()` for std mutexes); further calls
        // (`.pop()`, `.take()`) make the guard a statement temporary.
        let mut j = k + 4; // sig index just past `lock ( )`
        loop {
            if j >= ctx.sig.len() {
                break;
            }
            if ctx.punct_at(j, ';') {
                // Binding name: last ident before the `=`.
                let mut var = None;
                let mut i = s;
                while i < k {
                    if ctx.punct_at(i, '=') {
                        break;
                    }
                    if let Some(id) = ctx.ident_at(i) {
                        if !matches!(id, "let" | "mut") {
                            var = Some(id.to_string());
                        }
                    }
                    i += 1;
                }
                return (GuardKind::Named(var), s);
            }
            // Allow `.expect("...")` / `.unwrap()` and keep scanning.
            if ctx.punct_at(j, '.')
                && matches!(ctx.ident_at(j + 1), Some("expect" | "unwrap"))
                && ctx.punct_at(j + 2, '(')
            {
                let mut d = 1i32;
                let mut i = j + 3;
                while i < ctx.sig.len() && d > 0 {
                    if ctx.punct_at(i, '(') {
                        d += 1;
                    } else if ctx.punct_at(i, ')') {
                        d -= 1;
                    }
                    i += 1;
                }
                j = i;
                continue;
            }
            return (GuardKind::Transient, s);
        }
    }
    (GuardKind::Transient, s)
}

/// C02 + C03 — the lexical lock tracker. One pass over the file maintains
/// the set of held guards (named `let` bindings and `if let` condition
/// temporaries), then:
///
/// * **C03** (executor.rs only): every acquisition — including the virtual
///   ones in [`C03_FN_ACQUIRES`] — must respect [`C03_LOCK_ORDER`], and
///   every lock must be declared there;
/// * **C02** (files in [`C02_FILES`]): no [`C02_CALLEES`] call while a
///   guard is held, and no statement that both acquires a lock and calls
///   a kernel (evaluation order makes some such statements technically
///   safe, but they are one refactor away from a convoy — hoist the call).
fn rule_c02_c03(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let check_c03 = ctx.path == C03_FILE;
    let check_c02 = C02_FILES.contains(&ctx.path.as_str());
    if !check_c03 && !check_c02 {
        return;
    }
    let order_of = |lock: &str| C03_LOCK_ORDER.iter().position(|l| *l == lock);

    let mut held: Vec<HeldGuard> = Vec::new();
    let mut k = 0usize;
    while k < ctx.sig.len() {
        let depth = ctx.depth_at(k);
        held.retain(|g| depth >= g.floor);
        if ctx.in_test_at(k) {
            k += 1;
            continue;
        }

        // drop(guard) releases a named guard early.
        if ctx.ident_at(k) == Some("drop")
            && k + 3 < ctx.sig.len()
            && ctx.punct_at(k + 1, '(')
            && ctx.punct_at(k + 3, ')')
        {
            if let Some(v) = ctx.ident_at(k + 2) {
                held.retain(|g| g.var.as_deref() != Some(v));
            }
        }

        // A kernel/executor call while a guard is held (C02).
        if check_c02 {
            if let Some(name) = ctx.ident_at(k) {
                if C02_CALLEES.contains(&name) && k + 1 < ctx.sig.len() && ctx.punct_at(k + 1, '(')
                {
                    if let Some(g) = held.first() {
                        push(
                            out,
                            "C02",
                            ctx,
                            ctx.line_at(k),
                            format!(
                                "`{name}(...)` called while the `{}` guard from line {} is \
                                 held: kernels run long and a held lock turns them into a \
                                 convoy (or a deadlock through wake paths); drop or scope the \
                                 guard first",
                                g.lock, g.line
                            ),
                        );
                    }
                }
            }
        }

        // A virtual acquisition through a callee (C03).
        if check_c03 {
            if let Some(name) = ctx.ident_at(k) {
                if let Some((_, acquired)) = C03_FN_ACQUIRES.iter().find(|(f, _)| *f == name) {
                    if k + 1 < ctx.sig.len() && ctx.punct_at(k + 1, '(') {
                        check_order(ctx, out, &held, acquired, ctx.line_at(k), &order_of);
                    }
                }
            }
        }

        // A literal `.lock()` acquisition.
        if ctx.punct_at(k, '.')
            && ctx.ident_at(k + 1) == Some("lock")
            && k + 3 < ctx.sig.len()
            && ctx.punct_at(k + 2, '(')
            && ctx.punct_at(k + 3, ')')
        {
            let lock = lock_name(ctx, k).unwrap_or_else(|| "?".to_string());
            let line = ctx.line_at(k + 1);
            if check_c03 {
                if order_of(&lock).is_none() {
                    push(
                        out,
                        "C03",
                        ctx,
                        line,
                        format!(
                            "lock `{lock}` is not in the declared order manifest \
                             ({:?}); add it to C03_LOCK_ORDER at its correct rank or rename \
                             the binding to a declared alias",
                            C03_LOCK_ORDER
                        ),
                    );
                } else {
                    check_order(ctx, out, &held, &lock, line, &order_of);
                }
            }
            let (kind, stmt_start) = classify_guard(ctx, k);
            match kind {
                GuardKind::Named(var) => held.push(HeldGuard {
                    lock,
                    var,
                    floor: ctx.depth_at(stmt_start),
                    line,
                }),
                GuardKind::CondExtended => held.push(HeldGuard {
                    lock,
                    var: None,
                    floor: ctx.depth_at(stmt_start) + 1,
                    line,
                }),
                GuardKind::Transient => {
                    // C02 also flags single statements that both lock and
                    // call a kernel: evaluation order may save today's
                    // spelling, but the pattern is one edit from a convoy.
                    if check_c02 {
                        let mut j = stmt_start;
                        while j < ctx.sig.len() && !ctx.punct_at(j, ';') {
                            if let Some(name) = ctx.ident_at(j) {
                                if C02_CALLEES.contains(&name)
                                    && j + 1 < ctx.sig.len()
                                    && ctx.punct_at(j + 1, '(')
                                {
                                    push(
                                        out,
                                        "C02",
                                        ctx,
                                        ctx.line_at(j),
                                        format!(
                                            "statement both takes the `{lock}` lock and calls \
                                             `{name}(...)`: hoist the call out so the guard \
                                             provably never covers it"
                                        ),
                                    );
                                }
                            }
                            j += 1;
                        }
                    }
                }
            }
        }
        k += 1;
    }
}

/// Reports a C03 ordering violation if acquiring `lock` while any held
/// guard ranks after it in [`C03_LOCK_ORDER`].
fn check_order(
    ctx: &FileCtx,
    out: &mut Vec<Finding>,
    held: &[HeldGuard],
    lock: &str,
    line: u32,
    order_of: &dyn Fn(&str) -> Option<usize>,
) {
    let Some(rank) = order_of(lock) else { return };
    for g in held {
        if let Some(held_rank) = order_of(&g.lock) {
            if held_rank > rank {
                push(
                    out,
                    "C03",
                    ctx,
                    line,
                    format!(
                        "acquires `{lock}` while holding `{}` (from line {}): violates the \
                         declared order {:?} — inversions here are the deadlock the \
                         schedule checker hunts dynamically",
                        g.lock, g.line, C03_LOCK_ORDER
                    ),
                );
            }
        }
    }
}

/// Rust keywords (and binding modifiers) that can directly precede a `[`
/// without it being an indexing expression (`&mut [T]`, `-> [f64; 4]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "impl", "where", "as", "in", "return", "break", "continue", "else", "move",
    "ref", "box", "await", "const", "static", "crate", "pub", "let", "fn", "if", "match", "loop",
    "while", "for", "unsafe", "use", "type", "enum", "struct", "trait", "mod", "extern",
];

/// P01/P02/P03 — panic-freedom in the declared infallible hot paths.
fn rule_p(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let Some(hp) = HOT_PATHS.iter().find(|hp| hp.file == ctx.path) else {
        return;
    };
    let in_hot = |ctx: &FileCtx, k: usize| -> bool {
        if ctx.in_test_at(k) {
            return false;
        }
        if hp.fns.is_empty() {
            return true;
        }
        match ctx.fn_name_at(k) {
            Some(name) => hp.fns.contains(&name),
            None => false,
        }
    };
    for k in 0..ctx.sig.len() {
        if !in_hot(ctx, k) {
            continue;
        }
        // P01: .unwrap() / .expect() family.
        if ctx.punct_at(k, '.')
            && k + 2 < ctx.sig.len()
            && matches!(
                ctx.ident_at(k + 1),
                Some("unwrap" | "expect" | "unwrap_err" | "expect_err" | "unwrap_unchecked")
            )
            && ctx.punct_at(k + 2, '(')
        {
            let name = ctx.ident_at(k + 1).unwrap_or("unwrap");
            push(
                out,
                "P01",
                ctx,
                ctx.line_at(k + 1),
                format!(
                    "`.{name}()` in a declared infallible hot path: a panic here tears down a \
                     worker mid-graph; make the invariant a type (or suppress with the proof \
                     it cannot fire)"
                ),
            );
        }
        // P02: panicking macros (debug_assert* compiles out: allowed).
        if let Some(
            name @ ("panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
            | "assert_ne"),
        ) = ctx.ident_at(k)
        {
            if k + 1 < ctx.sig.len() && ctx.punct_at(k + 1, '!') {
                push(
                    out,
                    "P02",
                    ctx,
                    ctx.line_at(k),
                    format!(
                        "`{name}!` in a declared infallible hot path: validation belongs at \
                         the admission boundary; use debug_assert! for invariants (or \
                         suppress with the proof the branch is dead)"
                    ),
                );
            }
        }
        // P03: fallible slice indexing (constant indices into fixed-size
        // arrays are compile-time checked and allowed).
        if hp.indexing && ctx.punct_at(k, '[') && k > 0 {
            let prev_is_indexable = match &ctx.tokens[ctx.sig[k - 1]].tok {
                Tok::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                Tok::Punct(']') | Tok::Punct(')') => true,
                _ => false,
            };
            let const_index = k + 2 < ctx.sig.len()
                && matches!(ctx.tokens[ctx.sig[k + 1]].tok, Tok::Num)
                && ctx.punct_at(k + 2, ']');
            if prev_is_indexable && !const_index {
                push(
                    out,
                    "P03",
                    ctx,
                    ctx.line_at(k),
                    "slice indexing in a declared infallible hot path: an out-of-bounds panic \
                     here is a worker death; iterate/chunk/zip instead (or suppress citing the \
                     bound that was validated at admission)"
                        .to_string(),
                );
            }
        }
    }
}

/// X01 — numeric-cast hygiene in kernel crates: bare `as f32` / `as f64` /
/// `as usize` only inside the [`X01_CHOKEPOINTS`] functions.
fn rule_x01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class != CrateClass::Numeric || !ctx.is_kernel_crate() {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(1) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.ident_at(k) != Some("as") {
            continue;
        }
        let Some(target @ ("f32" | "f64" | "usize")) = ctx.ident_at(k + 1) else {
            continue;
        };
        let in_chokepoint = X01_CHOKEPOINTS
            .iter()
            .any(|(f, func)| *f == ctx.path && ctx.fn_name_at(k) == Some(func));
        if !in_chokepoint {
            push(
                out,
                "X01",
                ctx,
                ctx.line_at(k),
                format!(
                    "bare `as {target}` outside the named cast chokepoints: route the \
                     conversion through xsc_core::cast / Scalar::to_f64/from_f64 / \
                     xsc_sparse idx::widen so every representation change stays auditable \
                     (mixed-precision prerequisite), or suppress citing the invariant"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, class: CrateClass, src: &str) -> FileCtx {
        FileCtx::new(path.to_string(), class, src)
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn cfg_test_mod_is_exempt_for_d04_but_not_d01() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum() }\n\
                   #[cfg(test)]\nmod tests {\n    fn g(v: &[f64]) -> f64 { v.iter().sum() }\n}\n";
        let c = ctx("crates/core/src/x.rs", CrateClass::Numeric, src);
        let f = check_file(&c);
        assert_eq!(rules_of(&f), vec!["D04"], "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d01_now_fires_in_test_code_too() {
        let src = "use std::collections::HashMap;\n";
        let c = ctx("tests/tests/x.rs", CrateClass::TestCode, src);
        assert_eq!(rules_of(&check_file(&c)), vec!["D01"]);
        let shim = ctx("crates/shims/rand/src/lib.rs", CrateClass::Shim, src);
        assert!(check_file(&shim).is_empty(), "shims stay exempt");
    }

    #[test]
    fn d02_fires_in_test_code_but_not_bench() {
        let src = "use std::time::Instant;\n";
        let t = ctx("crates/core/tests/perf.rs", CrateClass::TestCode, src);
        assert_eq!(rules_of(&check_file(&t)), vec!["D02"]);
        let b = ctx("crates/bench/src/lib.rs", CrateClass::Bench, src);
        assert!(check_file(&b).is_empty());
    }

    #[test]
    fn d03_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let r = thread_rng(); }\n}\n";
        let c = ctx("crates/core/src/x.rs", CrateClass::Numeric, src);
        let f = check_file(&c);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D03");
    }

    #[test]
    fn safety_comment_silences_s01() {
        let ok = "// SAFETY: bounds checked above\nunsafe { go() }";
        let bad = "unsafe { go() }";
        let c_ok = ctx("crates/core/src/x.rs", CrateClass::Numeric, ok);
        let c_bad = ctx("crates/core/src/x.rs", CrateClass::Numeric, bad);
        assert!(check_file(&c_ok).is_empty());
        assert_eq!(check_file(&c_bad)[0].rule, "S01");
    }

    #[test]
    fn unsafe_fn_item_accepts_safety_doc_section() {
        let ok = "/// # Safety\n///\n/// `p` must be valid for reads.\n\
                  pub unsafe fn read(p: *const u8) -> u8 { unsafe { *p } }\n";
        let c = ctx("crates/core/src/x.rs", CrateClass::Numeric, ok);
        // The *block* inside still needs its own // SAFETY: comment.
        let f = check_file(&c);
        assert_eq!(rules_of(&f), vec!["S01"], "{f:?}");
        let ok2 = "/// # Safety\n///\n/// `p` must be valid for reads.\n\
                   pub unsafe fn read(p: *const u8) -> u8 {\n    \
                   // SAFETY: caller upholds validity per the doc contract.\n    \
                   unsafe { *p }\n}\n";
        let c2 = ctx("crates/core/src/x.rs", CrateClass::Numeric, ok2);
        assert!(check_file(&c2).is_empty(), "{:?}", check_file(&c2));
        let bad = "pub unsafe fn read(p: *const u8) -> u8 { 0 }\n";
        let c3 = ctx("crates/core/src/x.rs", CrateClass::Numeric, bad);
        assert_eq!(rules_of(&check_file(&c3)), vec!["S01"]);
    }

    #[test]
    fn c01_wait_needs_a_loop() {
        let bad = "fn f() { let mut g = m.lock(); cv.wait(&mut g); }\n";
        let c = ctx("crates/runtime/src/x.rs", CrateClass::Numeric, bad);
        assert_eq!(rules_of(&check_file(&c)), vec!["C01"]);
        let ok = "fn f() { let mut g = m.lock(); loop { if ready { break; } cv.wait(&mut g); } }\n";
        let c2 = ctx("crates/runtime/src/x.rs", CrateClass::Numeric, ok);
        assert!(check_file(&c2).is_empty(), "{:?}", check_file(&c2));
    }

    #[test]
    fn c03_flags_order_inversion_and_undeclared_locks() {
        // queues (rank 2) held, then sleep (rank 1): inversion.
        let bad = "fn f(shared: &S) {\n    let mut q = shared.queues[0].lock();\n    \
                   let s = shared.sleep.lock();\n}\n";
        let c = ctx(C03_FILE, CrateClass::Numeric, bad);
        let f = check_file(&c);
        assert!(rules_of(&f).contains(&"C03"), "{f:?}");
        // sleep then queues matches the declared order.
        let ok = "fn f(shared: &S) {\n    let s = shared.sleep.lock();\n    \
                  let mut q = shared.queues[0].lock();\n}\n";
        let c2 = ctx(C03_FILE, CrateClass::Numeric, ok);
        assert!(check_file(&c2).is_empty(), "{:?}", check_file(&c2));
        // An undeclared lock is its own finding.
        let undeclared = "fn f(s: &S) { let g = s.mystery.lock(); }\n";
        let c3 = ctx(C03_FILE, CrateClass::Numeric, undeclared);
        assert_eq!(rules_of(&check_file(&c3)), vec!["C03"]);
    }

    #[test]
    fn c03_wake_all_counts_as_taking_sleep() {
        let bad = "fn f(shared: &S) {\n    let mut q = shared.queues[0].lock();\n    \
                   shared.wake_all();\n}\n";
        let c = ctx(C03_FILE, CrateClass::Numeric, bad);
        assert!(rules_of(&check_file(&c)).contains(&"C03"));
        let ok = "fn f(shared: &S) {\n    { let mut q = shared.queues[0].lock(); }\n    \
                  shared.wake_all();\n}\n";
        let c2 = ctx(C03_FILE, CrateClass::Numeric, ok);
        assert!(check_file(&c2).is_empty(), "{:?}", check_file(&c2));
    }

    #[test]
    fn c02_guard_across_kernel_call() {
        let bad = "fn f(s: &S) { let g = s.slots.lock(); let r = execute_launch(&l); }\n";
        let c = ctx("crates/serve/src/server.rs", CrateClass::Numeric, bad);
        let f = check_file(&c);
        assert!(rules_of(&f).contains(&"C02"), "{f:?}");
        let mixed = "fn f(s: &S) { *s.slots[i].lock() = Some(execute_launch(&l)); }\n";
        let c2 = ctx("crates/serve/src/server.rs", CrateClass::Numeric, mixed);
        assert!(rules_of(&check_file(&c2)).contains(&"C02"));
        let ok = "fn f(s: &S) { let r = execute_launch(&l); *s.slots[i].lock() = Some(r); }\n";
        let c3 = ctx("crates/serve/src/server.rs", CrateClass::Numeric, ok);
        assert!(check_file(&c3).is_empty(), "{:?}", check_file(&c3));
    }

    #[test]
    fn p_rules_scope_to_declared_hot_fns() {
        let src = "fn execute_single(x: &X) { let v = x.m.get().unwrap(); }\n\
                   fn admission(x: &X) { let v = x.m.get().unwrap(); }\n";
        let c = ctx("crates/serve/src/server.rs", CrateClass::Numeric, src);
        let f = check_file(&c);
        assert_eq!(rules_of(&f), vec!["P01"], "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn p02_allows_debug_assert() {
        let src = "fn execute_single(n: usize) { debug_assert!(n > 0); assert!(n > 0); }\n";
        let c = ctx("crates/serve/src/server.rs", CrateClass::Numeric, src);
        assert_eq!(rules_of(&check_file(&c)), vec!["P02"]);
    }

    #[test]
    fn p03_allows_const_indices_and_types() {
        let src = "fn scalar_kernel(a: &[f64], c: [f64; 2]) -> f64 { c[0] + a[i] }\n";
        let c = ctx("crates/core/src/microkernel.rs", CrateClass::Numeric, src);
        let f = check_file(&c);
        assert_eq!(rules_of(&f), vec!["P03"], "{f:?}");
    }

    #[test]
    fn x01_casts_only_in_chokepoints() {
        let bad = "pub fn gflops(flops: u64) -> f64 { flops as f64 }\n";
        let c = ctx("crates/core/src/flops.rs", CrateClass::Numeric, bad);
        assert_eq!(rules_of(&check_file(&c)), vec!["X01"]);
        let ok = "pub fn count_f64(n: u64) -> f64 { n as f64 }\n";
        let c2 = ctx("crates/core/src/cast.rs", CrateClass::Numeric, ok);
        assert!(check_file(&c2).is_empty(), "{:?}", check_file(&c2));
        // Non-kernel crates are out of scope.
        let c3 = ctx("crates/runtime/src/x.rs", CrateClass::Numeric, bad);
        assert!(check_file(&c3).is_empty());
        // Tests are out of scope.
        let t = "#[cfg(test)]\nmod tests { fn f(n: u64) -> f64 { n as f64 } }\n";
        let c4 = ctx("crates/core/src/flops.rs", CrateClass::Numeric, t);
        assert!(check_file(&c4).is_empty());
    }
}
