//! The project-specific rule set and the token-pattern engine behind it.
//!
//! Every rule guards an invariant the repo's experiments *assert at
//! runtime* (bit-identical residual histories across sparse formats in
//! E19, schedule-independent chaos campaigns in E17, deterministic
//! left-fold reductions everywhere) but that the source could silently
//! lose again through an innocent-looking edit. The linter moves those
//! invariants from convention to tooling — see `DESIGN.md`, "Static
//! analysis & invariants", for the full rationale table.
//!
//! Rules are scoped by [`CrateClass`] (which part of the workspace a file
//! belongs to) and skip `#[cfg(test)]` / `#[test]` regions where noted, so
//! test code may use hash maps and wall clocks freely while library code
//! may not.

use crate::lexer::{Tok, Token};

/// Which part of the workspace a file belongs to; decides which rules
/// apply (see the table in `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Library crates whose results must be deterministic (`xsc-core`,
    /// `xsc-sparse`, ... — everything not listed below).
    Numeric,
    /// The benchmark crate (`crates/bench`): timing is its job.
    Bench,
    /// Offline stand-ins for external crates (`crates/shims/*`).
    Shim,
    /// Test and bench sources (`tests/` crate, `*/tests/`, `*/benches/`).
    TestCode,
    /// Runnable examples (`examples/`).
    Example,
    /// The linter itself (`crates/lint`): held to Numeric rules.
    Lint,
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D01`, ..., `L02`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` and the JSON report.
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule the engine knows, including the meta-rules (`L00`–`L02`)
/// that police the suppression mechanism itself.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D01",
        summary: "no HashMap/HashSet in numeric crates: iteration order is nondeterministic; \
                  use BTreeMap/BTreeSet or a sorted drain",
    },
    RuleInfo {
        id: "D02",
        summary: "no raw Instant/SystemTime outside bench/timing modules: wall clock reads go \
                  through xsc_metrics::stopwatch::Stopwatch",
    },
    RuleInfo {
        id: "D03",
        summary: "no unseeded RNG (thread_rng/from_entropy/OsRng/getrandom) anywhere, tests \
                  included: every random stream carries an explicit seed",
    },
    RuleInfo {
        id: "D04",
        summary: "no implicit .sum()/.product() reductions in kernel crates: write the fold \
                  explicitly so the pinned order is visible",
    },
    RuleInfo {
        id: "A01",
        summary: "no unchecked `as` narrowing on sparse indices: use try_from (the Csr32 \
                  overflow lesson)",
    },
    RuleInfo {
        id: "S01",
        summary: "every unsafe block carries a // SAFETY: comment within the 3 lines above",
    },
    RuleInfo {
        id: "M01",
        summary: "public kernel files in core/sparse/dense install an xsc-metrics recorder",
    },
    RuleInfo {
        id: "L00",
        summary: "suppressions must carry a reason: xsc-lint: allow(RULE, reason = \"...\")",
    },
    RuleInfo {
        id: "L01",
        summary: "suppressions must name a known rule id",
    },
    RuleInfo {
        id: "L02",
        summary: "suppressions must match a finding (stale allows rot the audit trail)",
    },
];

/// `true` if `id` names a rule the engine knows.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Kernel-crate path prefixes for D04 (crates that promise pinned fold
/// order in their numeric results).
const KERNEL_CRATES: &[&str] = &[
    "crates/core/",
    "crates/sparse/",
    "crates/dense/",
    "crates/batched/",
    "crates/precision/",
];

/// The one file allowed to read the wall clock directly: the sanctioned
/// chokepoint every other crate's timing goes through.
const TIMING_CHOKEPOINT: &str = "crates/metrics/src/stopwatch.rs";

/// Files that implement public kernels and therefore must install an
/// `xsc_metrics::record` scope (rule M01). Kept explicit so removing
/// instrumentation from a hot kernel is a lint failure, not a silent
/// observability regression.
const M01_KERNEL_FILES: &[&str] = &[
    "crates/core/src/blas1.rs",
    "crates/core/src/gemm.rs",
    "crates/core/src/syrk.rs",
    "crates/core/src/trsm.rs",
    "crates/sparse/src/csr.rs",
    "crates/sparse/src/csr32.rs",
    "crates/sparse/src/sell.rs",
    "crates/sparse/src/symgs.rs",
    "crates/sparse/src/mg.rs",
    "crates/sparse/src/coloring.rs",
    "crates/dense/src/hpl.rs",
    "crates/dense/src/cholesky.rs",
];

/// A lexed file plus everything the rules need to scope themselves.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Workspace classification of the file.
    pub class: CrateClass,
    /// Full token stream (comments included).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment ("significant") tokens.
    pub sig: Vec<usize>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: Vec<bool>,
}

impl FileCtx {
    /// Builds the context for one file: lex, index, and mark test regions.
    pub fn new(path: String, class: CrateClass, src: &str) -> FileCtx {
        let tokens = crate::lexer::lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment { .. }))
            .map(|(i, _)| i)
            .collect();
        let in_test = mark_test_regions(&tokens, &sig);
        FileCtx {
            path,
            class,
            tokens,
            sig,
            in_test,
        }
    }

    fn ident_at(&self, k: usize) -> Option<&str> {
        match &self.tokens[self.sig[k]].tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, k: usize, c: char) -> bool {
        self.tokens[self.sig[k]].tok == Tok::Punct(c)
    }

    fn line_at(&self, k: usize) -> u32 {
        self.tokens[self.sig[k]].line
    }

    fn in_test_at(&self, k: usize) -> bool {
        self.in_test[self.sig[k]]
    }

    fn is_kernel_crate(&self) -> bool {
        KERNEL_CRATES.iter().any(|p| self.path.starts_with(p))
    }
}

/// Marks, for every token index, whether it sits inside a region gated by
/// `#[cfg(test)]` or `#[test]` (a `mod`, `fn`, or single `use`/item).
/// Attributes like `#[cfg(not(test))]` do **not** mark a region.
fn mark_test_regions(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut depth: i64 = 0;
    // Stack of depths at which a test region's opening brace sits; the
    // region ends when `depth` drops back below the recorded value.
    let mut region_floor: Option<i64> = None;
    let mut pending_test = false;
    let mut k = 0usize;
    while k < sig.len() {
        let i = sig[k];
        if region_floor.is_some() {
            flags[i] = true;
        }
        match &tokens[i].tok {
            Tok::Punct('#') if k + 1 < sig.len() && tokens[sig[k + 1]].tok == Tok::Punct('[') => {
                // Scan the attribute to its matching `]`, collecting idents.
                let mut brackets = 0i64;
                let mut idents: Vec<&str> = Vec::new();
                let mut j = k + 1;
                while j < sig.len() {
                    let t = sig[j];
                    if region_floor.is_some() {
                        flags[t] = true;
                    }
                    match &tokens[t].tok {
                        Tok::Punct('[') => brackets += 1,
                        Tok::Punct(']') => {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) => idents.push(s.as_str()),
                        _ => {}
                    }
                    j += 1;
                }
                let has_test = idents.contains(&"test");
                let negated = idents.contains(&"not");
                if has_test && !negated {
                    pending_test = true;
                }
                k = j + 1;
                continue;
            }
            Tok::Punct('{') => {
                depth += 1;
                if pending_test && region_floor.is_none() {
                    region_floor = Some(depth);
                    pending_test = false;
                    flags[i] = true;
                }
            }
            Tok::Punct('}') => {
                depth -= 1;
                if let Some(floor) = region_floor {
                    if depth < floor {
                        region_floor = None;
                    }
                }
            }
            // `#[cfg(test)] use ...;` — the attribute covered one
            // braceless item.
            Tok::Punct(';') if pending_test && region_floor.is_none() => {
                flags[i] = true;
                pending_test = false;
            }
            _ => {}
        }
        if pending_test && region_floor.is_none() {
            flags[i] = true;
        }
        k += 1;
    }
    flags
}

/// Runs every rule against one file and returns the raw findings
/// (suppressions are applied later, by the driver).
pub fn check_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_d01(ctx, &mut out);
    rule_d02(ctx, &mut out);
    rule_d03(ctx, &mut out);
    rule_d04(ctx, &mut out);
    rule_a01(ctx, &mut out);
    rule_s01(ctx, &mut out);
    rule_m01(ctx, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, rule: &'static str, ctx: &FileCtx, line: u32, message: String) {
    out.push(Finding {
        rule,
        file: ctx.path.clone(),
        line,
        message,
    });
}

/// D01 — hash-order iteration hazard in numeric crates.
fn rule_d01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(ctx.class, CrateClass::Numeric | CrateClass::Lint) {
        return;
    }
    for k in 0..ctx.sig.len() {
        if ctx.in_test_at(k) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = ctx.ident_at(k) {
            push(
                out,
                "D01",
                ctx,
                ctx.line_at(k),
                format!(
                    "`{name}` in a numeric crate: iteration order is nondeterministic and can \
                     leak into results; use BTreeMap/BTreeSet or drain through a sorted Vec"
                ),
            );
        }
    }
}

/// D02 — ad-hoc wall-clock reads outside the sanctioned timing chokepoint.
fn rule_d02(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(
        ctx.class,
        CrateClass::Numeric | CrateClass::Lint | CrateClass::Example
    ) || ctx.path == TIMING_CHOKEPOINT
    {
        return;
    }
    for k in 0..ctx.sig.len() {
        if ctx.in_test_at(k) {
            continue;
        }
        if let Some(name @ ("Instant" | "SystemTime")) = ctx.ident_at(k) {
            push(
                out,
                "D02",
                ctx,
                ctx.line_at(k),
                format!(
                    "raw `{name}` outside a timing module: wall clock must never influence \
                     results; time through xsc_metrics::stopwatch::Stopwatch (the one audited \
                     chokepoint)"
                ),
            );
        }
    }
}

/// D03 — unseeded randomness, flagged everywhere including test code.
fn rule_d03(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for k in 0..ctx.sig.len() {
        if let Some(name @ ("thread_rng" | "ThreadRng" | "from_entropy" | "OsRng" | "getrandom")) =
            ctx.ident_at(k)
        {
            push(
                out,
                "D03",
                ctx,
                ctx.line_at(k),
                format!(
                    "`{name}` is an unseeded entropy source: every random stream must thread \
                     an explicit seed (SmallRng::seed_from_u64) so runs replay bit-identically"
                ),
            );
        }
    }
}

/// D04 — implicit iterator reductions in kernel crates.
fn rule_d04(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class != CrateClass::Numeric || !ctx.is_kernel_crate() {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(2) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.punct_at(k, '.')
            && matches!(ctx.ident_at(k + 1), Some("sum" | "product"))
            && ctx.punct_at(k + 2, '(')
        {
            let name = ctx.ident_at(k + 1).unwrap_or("sum");
            push(
                out,
                "D04",
                ctx,
                ctx.line_at(k + 1),
                format!(
                    "implicit `.{name}()` in a kernel crate that promises pinned fold order: \
                     write the reduction as an explicit left fold \
                     (`.fold(0.0, |acc, x| acc + x)`), or suppress with the element type's \
                     justification if the sum is order-independent (integers)"
                ),
            );
        }
    }
}

/// A01 — unchecked `as` narrowing on sparse indices.
fn rule_a01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.class != CrateClass::Numeric || !ctx.path.starts_with("crates/sparse/") {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(1) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.ident_at(k) == Some("as") {
            if let Some(target @ ("u8" | "u16" | "u32" | "i8" | "i16" | "i32")) =
                ctx.ident_at(k + 1)
            {
                push(
                    out,
                    "A01",
                    ctx,
                    ctx.line_at(k),
                    format!(
                        "unchecked `as {target}` narrowing on a sparse index: silent truncation \
                         is how Csr32 overflow bugs are born; use try_from (or suppress citing \
                         the bound that makes the cast safe)"
                    ),
                );
            }
        }
    }
}

/// S01 — `unsafe` without a `// SAFETY:` comment in the 3 lines above.
fn rule_s01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let safety_lines: Vec<u32> = ctx
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Comment { text, .. } if text.contains("SAFETY:") => Some(t.line),
            _ => None,
        })
        .collect();
    for k in 0..ctx.sig.len() {
        if ctx.ident_at(k) == Some("unsafe") {
            let line = ctx.line_at(k);
            let covered = safety_lines
                .iter()
                .any(|&l| l <= line && line.saturating_sub(l) <= 3);
            if !covered {
                push(
                    out,
                    "S01",
                    ctx,
                    line,
                    "`unsafe` without a `// SAFETY:` comment in the 3 lines above: state the \
                     invariant that makes this sound"
                        .to_string(),
                );
            }
        }
    }
}

/// M01 — kernel files must install an `xsc_metrics` recorder.
fn rule_m01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !M01_KERNEL_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    for k in 0..ctx.sig.len().saturating_sub(3) {
        if ctx.in_test_at(k) {
            continue;
        }
        if ctx.ident_at(k) == Some("xsc_metrics")
            && ctx.punct_at(k + 1, ':')
            && ctx.punct_at(k + 2, ':')
            && matches!(ctx.ident_at(k + 3), Some("record" | "record_untimed"))
        {
            return; // instrumented — rule satisfied
        }
    }
    push(
        out,
        "M01",
        ctx,
        1,
        "kernel file installs no xsc-metrics recorder: public kernels in core/sparse/dense \
         must open an `xsc_metrics::record(...)` scope so roofline attribution stays complete"
            .to_string(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, class: CrateClass, src: &str) -> FileCtx {
        FileCtx::new(path.to_string(), class, src)
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let c = ctx("crates/core/src/x.rs", CrateClass::Numeric, src);
        let f = check_file(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nmod real {\n    use std::collections::HashSet;\n}\n";
        let c = ctx("crates/core/src/x.rs", CrateClass::Numeric, src);
        assert_eq!(check_file(&c).len(), 1);
    }

    #[test]
    fn d03_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let r = thread_rng(); }\n}\n";
        let c = ctx("crates/core/src/x.rs", CrateClass::Numeric, src);
        let f = check_file(&c);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D03");
    }

    #[test]
    fn safety_comment_silences_s01() {
        let ok = "// SAFETY: bounds checked above\nunsafe { go() }";
        let bad = "unsafe { go() }";
        let c_ok = ctx("crates/core/src/x.rs", CrateClass::Numeric, ok);
        let c_bad = ctx("crates/core/src/x.rs", CrateClass::Numeric, bad);
        assert!(check_file(&c_ok).is_empty());
        assert_eq!(check_file(&c_bad)[0].rule, "S01");
    }
}
