//! Hand-rolled JSON rendering of a lint [`Report`] (the workspace builds
//! offline, so no serde) — RFC 8259 string escaping, stable key order,
//! deterministic output byte-for-byte across runs.

use crate::driver::Report;
use crate::rules::RULES;

/// Escapes a string for inclusion in a JSON document per RFC 8259.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a self-describing JSON document (schema
/// `xsc-lint-v1`), the artifact CI uploads next to the `BENCH_*.json`
/// reports.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"xsc-lint-v1\",\n");
    s.push_str(&format!("  \"clean\": {},\n", report.clean()));
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"suppressions_used\": [\n");
    for (i, u) in report.suppressions_used.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
            esc(&u.rule),
            esc(&u.file),
            u.line,
            esc(&u.reason),
            if i + 1 < report.suppressions_used.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"summary\": \"{}\"}}{}\n",
            esc(r.id),
            esc(r.summary),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn json_is_escaped_and_stable() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule: "D01",
            file: "crates/x/src/a.rs".into(),
            line: 3,
            message: "quote \" backslash \\ newline \n done".into(),
        });
        let a = to_json(&r);
        let b = to_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\\\" backslash \\\\ newline \\n done"));
        assert!(a.contains("\"clean\": false"));
    }
}
