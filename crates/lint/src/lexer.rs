//! A hand-rolled, comment- and string-aware Rust lexer.
//!
//! The linter's rules match *token* patterns, never raw text, so an
//! identifier inside a string literal (`"call thread_rng here"`), a raw
//! string (`r#"Instant::now"#`), or a nested block comment never trips a
//! rule. The lexer is deliberately forgiving: it never fails, it only
//! classifies — an unterminated literal simply runs to end of file. That
//! is the right trade for a linter that must scan every file of a
//! workspace whose compilability is checked elsewhere (by `cargo`).
//!
//! Handled Rust surface syntax:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings (`b".."`), C strings
//!   (`c".."`), and raw strings with any hash depth (`r#".."#`,
//!   `br##".."##`);
//! * raw identifiers (`r#match`), which lex as plain identifiers;
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`);
//! * numbers with type suffixes (`0x1Fu32`), which never swallow an
//!   adjacent `.` so ranges (`0..n`) and method calls (`1.0.max(x)`)
//!   keep their dots as punctuation.

/// One lexed token kind. Literal *contents* are discarded except for
/// comments (whose text feeds suppression parsing and `SAFETY:` checks) and
/// identifiers (which the rules match on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `as`, `unsafe`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `{`, ...).
    Punct(char),
    /// Any string-like literal: `"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal, including its suffix (`42`, `0x1Fu32`).
    Num,
    /// A comment; `block` distinguishes `/* ... */` from `// ...`.
    Comment {
        /// The comment text without its delimiters.
        text: String,
        /// `true` for block comments.
        block: bool,
    },
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload, for identifiers and comments).
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails; see the module docs for
/// the recovery policy on malformed input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.push(Token {
                    tok: Tok::Comment { text, block: false },
                    line,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == '/' && cur.peek(1) == Some('*') {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump();
                        cur.bump();
                    } else if c == '*' && cur.peek(1) == Some('/') {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                        text.push_str("*/");
                    } else {
                        text.push(c);
                        cur.bump();
                    }
                }
                out.push(Token {
                    tok: Tok::Comment { text, block: true },
                    line,
                });
            }
            '"' => {
                cur.bump();
                scan_string_body(&mut cur);
                out.push(Token {
                    tok: Tok::Str,
                    line,
                });
            }
            '\'' => {
                out.push(Token {
                    tok: scan_quote(&mut cur),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        name.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: string_prefix_or_ident(&mut cur, name),
                    line,
                });
            }
            other => {
                cur.bump();
                out.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
            }
        }
    }
    out
}

/// Consumes the body of a non-raw string literal (opening quote already
/// consumed), honoring `\"` and `\\` escapes.
fn scan_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw-string body `r#*"..."#*` starting at the first `#` or
/// `"` (the `r`/`br`/`cr` prefix is already consumed). Returns `false` if
/// the cursor does not actually sit on a raw string (e.g. `r#match`).
fn scan_raw_string(cur: &mut Cursor) -> bool {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return false;
    }
    for _ in 0..=hashes {
        cur.bump();
    }
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            for ahead in 0..hashes {
                if cur.peek(ahead) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
    true
}

/// An identifier has just been read; if it is a literal prefix (`r`, `b`,
/// `br`, `c`, `cr`) immediately followed by a literal body, consume the
/// body and return [`Tok::Str`]. `r#ident` (raw identifier) lexes as the
/// identifier itself.
fn string_prefix_or_ident(cur: &mut Cursor, name: String) -> Tok {
    match name.as_str() {
        "r" | "br" | "cr" => {
            if cur.peek(0) == Some('"') || cur.peek(0) == Some('#') {
                // `r#ident` is a raw identifier, not a string.
                if name == "r"
                    && cur.peek(0) == Some('#')
                    && cur.peek(1).is_some_and(is_ident_start)
                {
                    cur.bump(); // '#'
                    let mut raw = String::new();
                    while let Some(c) = cur.peek(0) {
                        if is_ident_continue(c) {
                            raw.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    return Tok::Ident(raw);
                }
                if scan_raw_string(cur) {
                    return Tok::Str;
                }
            }
            Tok::Ident(name)
        }
        "b" | "c" => {
            if cur.peek(0) == Some('"') {
                cur.bump();
                scan_string_body(cur);
                return Tok::Str;
            }
            if name == "b" && cur.peek(0) == Some('\'') {
                // Byte literal b'x'.
                cur.bump();
                if cur.peek(0) == Some('\\') {
                    cur.bump();
                    cur.bump();
                } else {
                    cur.bump();
                }
                if cur.peek(0) == Some('\'') {
                    cur.bump();
                }
                return Tok::Char;
            }
            Tok::Ident(name)
        }
        _ => Tok::Ident(name),
    }
}

/// Disambiguates a leading `'` into a char literal or a lifetime and
/// consumes it.
fn scan_quote(cur: &mut Cursor) -> Tok {
    cur.bump(); // the opening '
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote.
            cur.bump();
            cur.bump(); // the escaped character (or escape head)
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            Tok::Char
        }
        Some(c) if cur.peek(1) == Some('\'') => {
            let _ = c;
            cur.bump();
            cur.bump();
            Tok::Char
        }
        Some(c) if is_ident_start(c) => {
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    cur.bump();
                } else {
                    break;
                }
            }
            Tok::Lifetime
        }
        _ => Tok::Punct('\''),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn identifiers_in_strings_are_not_idents() {
        let src = r##"let x = "HashMap thread_rng unsafe"; let y = r#"Instant::now()"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "/* outer /* inner unsafe */ still outer */ fn f() {}";
        let toks = lex(src);
        assert!(matches!(toks[0].tok, Tok::Comment { block: true, .. }));
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes() {
        let src = r####"let s = r##"quote " and "# inside"##; let t = 1;"####;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_identifier_lexes_as_ident() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime))
            .count();
        let chars = toks.iter().filter(|t| matches!(t.tok, Tok::Char)).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"let q = '\''; let n = '\n'; let u = '\u{1F600}';");
        let chars = toks.iter().filter(|t| matches!(t.tok, Tok::Char)).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nlet c = 2;";
        let toks = lex(src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.tok == Tok::Ident(name.into()))
                .unwrap()
                .line
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 6);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("for i in 0..n {}");
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn byte_and_c_strings_are_strings() {
        let src = r##"let a = b"unsafe"; let c2 = c"HashMap"; let r2 = br#"x"#;"##;
        assert_eq!(idents(src), vec!["let", "a", "let", "c2", "let", "r2"]);
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let toks = lex("let x = \"never closed");
        assert_eq!(toks.last().unwrap().tok, Tok::Str);
    }
}
