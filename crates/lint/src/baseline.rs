//! The lint-findings ratchet (`lint_baseline.json`).
//!
//! A lint gate that only fails on *findings* can still rot silently: each
//! PR may add one more reasoned suppression until the "infallible hot
//! path" is a net of exceptions. The ratchet pins the per-rule counts of
//! surviving findings **and** used suppressions in a checked-in baseline;
//! CI (and the tier-1 gate) fails when either count *increases* for any
//! rule, so growing the exception surface requires touching the baseline
//! file — and justifying it — in the same diff.
//!
//! Decreases are allowed without ceremony (burn-down PRs shouldn't need a
//! lockstep baseline edit), but `--write-baseline` regenerates the file so
//! the ratchet can be tightened to the new floor.

use crate::driver::Report;
use crate::rules::RULES;

/// Per-rule counts: `(rule id, surviving findings, used suppressions)`.
/// Always lists every known rule, in `RULES` order, so the JSON diff of a
/// baseline change reads as a table.
pub fn counts(report: &Report) -> Vec<(String, u64, u64)> {
    RULES
        .iter()
        .map(|r| {
            let f = report.findings.iter().filter(|x| x.rule == r.id).count() as u64;
            let s = report
                .suppressions_used
                .iter()
                .filter(|x| x.rule == r.id)
                .count() as u64;
            (r.id.to_string(), f, s)
        })
        .collect()
}

/// Renders the baseline JSON (schema `xsc-lint-baseline-v1`),
/// byte-deterministic like every other artifact in the repo.
pub fn render(report: &Report) -> String {
    let rows = counts(report);
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"xsc-lint-baseline-v1\",\n  \"rules\": [\n");
    for (i, (rule, f, supp)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{rule}\", \"findings\": {f}, \"suppressions\": {supp}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parses a baseline document written by [`render`] (tolerant of
/// whitespace, intolerant of missing fields). Returns the per-rule rows.
pub fn parse(text: &str) -> Result<Vec<(String, u64, u64)>, String> {
    if !text.contains("xsc-lint-baseline-v1") {
        return Err("not an xsc-lint-baseline-v1 document".to_string());
    }
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(rule) = field_str(line, "rule") else {
            continue;
        };
        let f = field_num(line, "findings")
            .ok_or_else(|| format!("baseline row for {rule} lacks a findings count"))?;
        let s = field_num(line, "suppressions")
            .ok_or_else(|| format!("baseline row for {rule} lacks a suppressions count"))?;
        rows.push((rule, f, s));
    }
    if rows.is_empty() {
        return Err("baseline lists no rules".to_string());
    }
    Ok(rows)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Compares current counts against a parsed baseline. Returns one message
/// per regression: a rule whose finding or suppression count grew, or a
/// rule the baseline has never heard of (new rules must enter the
/// baseline explicitly, at their actual count).
pub fn regressions(current: &[(String, u64, u64)], baseline: &[(String, u64, u64)]) -> Vec<String> {
    let mut out = Vec::new();
    for (rule, f, s) in current {
        match baseline.iter().find(|(r, _, _)| r == rule) {
            None => {
                if *f > 0 || *s > 0 {
                    out.push(format!(
                        "rule {rule} is not in the baseline but has {f} finding(s) / {s} \
                         suppression(s); regenerate with --write-baseline and justify the counts"
                    ));
                }
            }
            Some((_, bf, bs)) => {
                if f > bf {
                    out.push(format!(
                        "rule {rule}: findings grew {bf} -> {f}; fix them or regenerate the \
                         baseline with --write-baseline and justify the increase in the diff"
                    ));
                }
                if s > bs {
                    out.push(format!(
                        "rule {rule}: suppressions grew {bs} -> {s}; every new allow must be \
                         justified by regenerating lint_baseline.json in the same diff"
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::UsedSuppression;
    use crate::rules::Finding;

    fn report_with(findings: &[&'static str], supps: &[&str]) -> Report {
        let mut r = Report::default();
        for rule in findings {
            r.findings.push(Finding {
                rule,
                file: "x.rs".into(),
                line: 1,
                message: String::new(),
            });
        }
        for rule in supps {
            r.suppressions_used.push(UsedSuppression {
                rule: rule.to_string(),
                file: "x.rs".into(),
                line: 1,
                reason: "r".into(),
            });
        }
        r
    }

    #[test]
    fn render_parse_round_trips() {
        let r = report_with(&["D01", "D01"], &["A01", "S01", "A01"]);
        let rows = counts(&r);
        let parsed = parse(&render(&r)).unwrap();
        assert_eq!(rows, parsed);
        let d01 = rows.iter().find(|(r, _, _)| r == "D01").unwrap();
        assert_eq!((d01.1, d01.2), (2, 0));
        let a01 = rows.iter().find(|(r, _, _)| r == "A01").unwrap();
        assert_eq!((a01.1, a01.2), (0, 2));
    }

    #[test]
    fn ratchet_fails_on_increase_only() {
        let base = counts(&report_with(&[], &["A01"]));
        let same = counts(&report_with(&[], &["A01"]));
        assert!(regressions(&same, &base).is_empty());
        let fewer = counts(&report_with(&[], &[]));
        assert!(regressions(&fewer, &base).is_empty(), "decrease is fine");
        let more = counts(&report_with(&[], &["A01", "A01"]));
        let msgs = regressions(&more, &base);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("A01"), "{msgs:?}");
        let newfind = counts(&report_with(&["D03"], &["A01"]));
        assert_eq!(regressions(&newfind, &base).len(), 1);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(parse("{}").is_err());
        assert!(parse("").is_err());
    }
}
