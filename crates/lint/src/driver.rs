//! Workspace walking, crate classification, suppression handling, and
//! report assembly — the glue between the lexer, the rules, and the three
//! entry points (CLI, in-process tier-1 gate, CI job).

use crate::lexer::Tok;
use crate::rules::{check_file, known_rule, CrateClass, FileCtx, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// An inline suppression parsed from a comment:
/// `// xsc-lint: allow(RULE, reason = "...")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule id the comment names (not yet validated).
    pub rule: String,
    /// The mandatory justification, if present.
    pub reason: Option<String>,
    /// Line of the comment. A suppression covers findings on its own line
    /// and on the next line.
    pub line: u32,
}

/// A suppression that matched at least one finding, echoed into the JSON
/// report so CI keeps an audit trail of every waived diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsedSuppression {
    /// The waived rule.
    pub rule: String,
    /// File containing the suppression.
    pub file: String,
    /// Line of the suppressing comment.
    pub line: u32,
    /// The stated justification.
    pub reason: String,
}

/// The result of linting a workspace (or a single in-memory source).
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Surviving findings (suppressions already applied), sorted by file
    /// then line.
    pub findings: Vec<Finding>,
    /// Suppressions that matched a finding, with their reasons.
    pub suppressions_used: Vec<UsedSuppression>,
}

impl Report {
    /// `true` when the workspace is lint-clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the findings as `file:line: [RULE] message` lines plus a
    /// one-line summary — the CLI's human-readable output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "xsc-lint: {} finding(s), {} suppression(s) used, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressions_used.len(),
            self.files_scanned,
        ));
        out
    }
}

/// Classifies a workspace-relative path (forward slashes) into the crate
/// class that decides rule applicability.
pub fn classify(rel: &str) -> CrateClass {
    if rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/") {
        return CrateClass::TestCode;
    }
    if rel.starts_with("crates/shims/") {
        return CrateClass::Shim;
    }
    if rel.starts_with("crates/bench/") {
        return CrateClass::Bench;
    }
    if rel.starts_with("crates/lint/") {
        return CrateClass::Lint;
    }
    if rel.starts_with("examples/") {
        return CrateClass::Example;
    }
    CrateClass::Numeric
}

/// Extracts `xsc-lint: allow(...)` suppressions from the comment tokens of
/// an already-lexed file.
fn parse_suppressions(ctx: &FileCtx) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in &ctx.tokens {
        if let Tok::Comment { text, .. } = &t.tok {
            if let Some(s) = parse_allow(text, t.line) {
                out.push(s);
            }
        }
    }
    out
}

/// Parses one comment body. Grammar (whitespace-tolerant): the comment
/// must *begin* with the directive — prose that merely mentions the
/// syntax is not a suppression. Accepted forms:
/// `xsc-lint: allow(RULE)` (reported as L00) and
/// `xsc-lint: allow(RULE, reason = "justification")`.
fn parse_allow(text: &str, line: u32) -> Option<Suppression> {
    let rest = text.trim_start().strip_prefix("xsc-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, tail) = match inner.find(',') {
        Some(c) => (inner[..c].trim(), Some(inner[c + 1..].trim())),
        None => (inner.trim(), None),
    };
    let reason = tail.and_then(|t| {
        let t = t.strip_prefix("reason")?.trim_start();
        let t = t.strip_prefix('=')?.trim_start();
        let t = t.strip_prefix('"')?;
        let end = t.rfind('"')?;
        let r = t[..end].trim();
        (!r.is_empty()).then(|| r.to_string())
    });
    Some(Suppression {
        rule: rule.to_string(),
        reason,
        line,
    })
}

/// Lints one in-memory source file: runs every rule, applies suppressions,
/// and appends the meta-findings (`L00`–`L02`). This is both the per-file
/// engine behind [`lint_workspace`] and the test seam the fixture suite
/// drives directly.
pub fn lint_source(
    rel_path: &str,
    class: CrateClass,
    src: &str,
) -> (Vec<Finding>, Vec<UsedSuppression>) {
    let ctx = FileCtx::new(rel_path.to_string(), class, src);
    let raw = check_file(&ctx);
    let suppressions = parse_suppressions(&ctx);

    let mut findings = Vec::new();
    let mut used = vec![false; suppressions.len()];

    // Meta-rules first: a malformed suppression never suppresses.
    for s in &suppressions {
        if !known_rule(&s.rule) {
            findings.push(Finding {
                rule: "L01",
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "suppression names unknown rule `{}`; run xsc-lint --list-rules",
                    s.rule
                ),
            });
        } else if s.reason.is_none() {
            findings.push(Finding {
                rule: "L00",
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "suppression of {} carries no reason; write \
                     `xsc-lint: allow({}, reason = \"...\")` — the reason is the audit trail",
                    s.rule, s.rule
                ),
            });
        }
    }

    for f in raw {
        let suppressor = suppressions.iter().position(|s| {
            s.rule == f.rule
                && s.reason.is_some()
                && known_rule(&s.rule)
                && (s.line == f.line || s.line + 1 == f.line)
        });
        match suppressor {
            Some(i) => used[i] = true,
            None => findings.push(f),
        }
    }

    let mut suppressions_used = Vec::new();
    for (i, s) in suppressions.iter().enumerate() {
        if !known_rule(&s.rule) || s.reason.is_none() {
            continue; // already reported as L00/L01
        }
        if used[i] {
            suppressions_used.push(UsedSuppression {
                rule: s.rule.clone(),
                file: rel_path.to_string(),
                line: s.line,
                reason: s.reason.clone().unwrap_or_default(),
            });
        } else {
            findings.push(Finding {
                rule: "L02",
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "suppression of {} matched no finding; delete the stale allow",
                    s.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    (findings, suppressions_used)
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`,
/// `fixtures/` (the linter's own adversarial corpus), and dotted entries.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" || name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root`'s `crates/`, `tests/`, and
/// `examples/` trees and returns the aggregate report. File order (and so
/// report order) is sorted — the linter practices the determinism it
/// preaches.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(path)?;
        let (findings, used) = lint_source(&rel, classify(&rel), &src);
        report.findings.extend(findings);
        report.suppressions_used.extend(used);
        report.files_scanned += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_the_workspace_layout() {
        assert_eq!(classify("crates/core/src/gemm.rs"), CrateClass::Numeric);
        assert_eq!(classify("crates/core/tests/props.rs"), CrateClass::TestCode);
        assert_eq!(classify("crates/bench/src/lib.rs"), CrateClass::Bench);
        assert_eq!(
            classify("crates/bench/benches/kernels.rs"),
            CrateClass::TestCode
        );
        assert_eq!(classify("crates/shims/rand/src/lib.rs"), CrateClass::Shim);
        assert_eq!(classify("crates/lint/src/lexer.rs"), CrateClass::Lint);
        assert_eq!(classify("examples/quickstart.rs"), CrateClass::Example);
        assert_eq!(
            classify("tests/tests/sparse_formats.rs"),
            CrateClass::TestCode
        );
    }

    #[test]
    fn parse_allow_grammar() {
        let s = parse_allow(" xsc-lint: allow(D01, reason = \"sorted drain below\")", 7).unwrap();
        assert_eq!(s.rule, "D01");
        assert_eq!(s.reason.as_deref(), Some("sorted drain below"));
        let bare = parse_allow("xsc-lint: allow(D03)", 1).unwrap();
        assert_eq!(bare.rule, "D03");
        assert!(bare.reason.is_none());
        assert!(parse_allow("just a comment", 1).is_none());
        let empty = parse_allow("xsc-lint: allow(D01, reason = \"\")", 1).unwrap();
        assert!(empty.reason.is_none(), "empty reason is no reason");
    }
}
