//! `xsc-lint` — the workspace determinism-and-invariants linter.
//!
//! The repo's headline guarantees (bit-identical residual histories
//! across sparse formats, schedule-independent chaos campaigns,
//! deterministic left-fold reductions) are asserted by runtime tests, but
//! the *hazards* that break them — hash-order iteration, ad-hoc wall
//! clock, unseeded RNG, implicit reductions, silent index truncation —
//! re-enter through ordinary edits. This crate checks them statically,
//! with a hand-rolled comment/string/raw-string-aware lexer (no
//! dependencies: the workspace builds offline) feeding a project-specific
//! rule engine.
//!
//! Three entry points, one engine:
//!
//! * **CLI** — `cargo run -p xsc-lint` (add `--json LINT.json` for the CI
//!   artifact); exits non-zero on any finding;
//! * **tier-1 gate** — `crates/lint/tests/gate.rs` runs
//!   [`lint_workspace`] in-process, so `cargo test` fails on a violation;
//! * **CI job** — `.github/workflows/ci.yml` uploads the JSON report next
//!   to the `BENCH_*.json` artifacts.
//!
//! Violations that are genuinely sound carry an inline suppression **with
//! a mandatory reason**:
//!
//! ```text
//! // xsc-lint: allow(A01, reason = "ncols <= u32::MAX checked above")
//! ```
//!
//! Suppressions without a reason (`L00`), naming unknown rules (`L01`),
//! or matching no finding (`L02`) are findings themselves.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod context;
pub mod driver;
pub mod lexer;
pub mod report;
pub mod rules;

pub use driver::{classify, lint_source, lint_workspace, Report, Suppression, UsedSuppression};
pub use report::to_json;
pub use rules::{CrateClass, Finding, RuleInfo, RULES};

use std::path::PathBuf;

/// The workspace root this crate was built in, for the in-process gate
/// and the CLI default (`crates/lint/../..`).
pub fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
