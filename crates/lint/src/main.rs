//! CLI driver.
//!
//! Lint mode (default): `cargo run -p xsc-lint -- [--root DIR] [--json
//! FILE] [--baseline FILE] [--write-baseline FILE] [-q] [--list-rules]`.
//! Exits 0 when the workspace is lint-clean (and within the baseline
//! ratchet, if given), 1 when any finding survives suppression or a
//! per-rule count regressed, 2 on usage or I/O errors.
//!
//! Schedule mode: `cargo run -p xsc-lint -- check-schedules [--workers N]
//! [--max-tasks N] [--json FILE] [--self-test] [-q]` exhaustively model-
//! checks the work-stealing executor's sleep protocol over the standard
//! graph family (see `xsc_runtime::schedule_check`); `--self-test` also
//! runs the protocol mutants and asserts each is caught (or, for the
//! provably-benign one, clean).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use xsc_runtime::schedule_check::{check, standard_specs, Protocol, DEFAULT_STATE_CAP};
use xsc_runtime::SchedPolicy;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check-schedules") {
        args.remove(0);
        return check_schedules(args);
    }
    lint(args)
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut root = xsc_lint::default_root();
    let mut json: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a file path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a file path"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage("--write-baseline needs a file path"),
            },
            "-q" | "--quiet" => quiet = true,
            "--list-rules" => {
                for r in xsc_lint::RULES {
                    println!("{}  {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match xsc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xsc-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, xsc_lint::to_json(&report)) {
            eprintln!("xsc-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &write_baseline {
        if let Err(e) = std::fs::write(path, xsc_lint::baseline::render(&report)) {
            eprintln!("xsc-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut ratchet_failures = Vec::new();
    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xsc-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rows = match xsc_lint::baseline::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xsc-lint: bad baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        ratchet_failures =
            xsc_lint::baseline::regressions(&xsc_lint::baseline::counts(&report), &rows);
    }

    let ok = report.clean() && ratchet_failures.is_empty();
    if !quiet || !ok {
        print!("{}", report.render_text());
        for msg in &ratchet_failures {
            println!("ratchet: {msg}");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One self-test expectation: a protocol variant and the violation kind it
/// must produce (`None` = must be clean, for the provably-benign mutant).
const MUTANTS: &[(Protocol, Option<&str>)] = &[
    (Protocol::NoFinishedRecheck, Some("deadlock")),
    (Protocol::SkipFinalWake, Some("deadlock")),
    (Protocol::NotifyOneFinal, Some("deadlock")),
    (Protocol::EagerRelease, Some("order-violation")),
    (Protocol::NoQueueRecheck, None),
];

fn check_schedules(args: Vec<String>) -> ExitCode {
    let mut workers = 4usize;
    let mut max_tasks = 8usize;
    let mut json: Option<PathBuf> = None;
    let mut self_test = false;
    let mut quiet = false;

    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if (1..=4).contains(&n) => workers = n,
                _ => return usage("--workers needs a count in 1..=4"),
            },
            "--max-tasks" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if (1..=8).contains(&n) => max_tasks = n,
                _ => return usage("--max-tasks needs a count in 1..=8"),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a file path"),
            },
            "--self-test" => self_test = true,
            "-q" | "--quiet" => quiet = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let policies = [
        SchedPolicy::Fifo,
        SchedPolicy::CriticalPath,
        SchedPolicy::Explicit,
    ];
    let mut lines = Vec::new();
    let mut failures = 0u64;
    let mut total_states = 0u64;

    for spec in standard_specs() {
        if spec.n > max_tasks {
            continue;
        }
        for w in 1..=workers {
            for policy in policies {
                let r = check(&spec, w, policy, Protocol::Correct, DEFAULT_STATE_CAP);
                total_states += r.states;
                if let Some(v) = &r.violation {
                    failures += 1;
                    eprintln!("check-schedules: {}", r.summary());
                    for step in v.trace() {
                        eprintln!("    {step}");
                    }
                } else if !quiet {
                    println!("{}", r.summary());
                }
                lines.push(r);
            }
        }
    }

    if self_test {
        let spec = standard_specs()
            .into_iter()
            .find(|s| s.name == "diamond")
            .expect("diamond is in the standard family");
        let st_workers = workers.max(3); // NotifyOneFinal needs >=2 sleepers
        for &(protocol, expect) in MUTANTS {
            let r = check(
                &spec,
                st_workers,
                SchedPolicy::Fifo,
                protocol,
                DEFAULT_STATE_CAP,
            );
            total_states += r.states;
            let got = r.violation.as_ref().map(|v| v.kind());
            if got != expect {
                failures += 1;
                eprintln!(
                    "check-schedules: self-test {protocol:?} expected {expect:?}, got {got:?}"
                );
            } else if !quiet {
                println!("self-test {}", r.summary());
            }
            lines.push(r);
        }
        // The checker must also catch a graph whose writers are unordered.
        let r = check(
            &xsc_runtime::schedule_check::GraphSpec::unordered_writers(),
            2,
            SchedPolicy::Fifo,
            Protocol::Correct,
            DEFAULT_STATE_CAP,
        );
        total_states += r.states;
        let got = r.violation.as_ref().map(|v| v.kind());
        if got != Some("bit-divergence") {
            failures += 1;
            eprintln!(
                "check-schedules: self-test unordered-writers expected bit-divergence, got {got:?}"
            );
        } else if !quiet {
            println!("self-test {}", r.summary());
        }
        lines.push(r);
    }

    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, schedule_json(&lines, failures)) {
            eprintln!("check-schedules: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet || failures > 0 {
        println!(
            "check-schedules: {} configurations, {} states, {} failure(s)",
            lines.len(),
            total_states,
            failures
        );
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the schedule-check report (schema `xsc-schedcheck-v1`),
/// byte-deterministic like the lint report.
fn schedule_json(reports: &[xsc_runtime::schedule_check::CheckReport], failures: u64) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"xsc-schedcheck-v1\",\n");
    s.push_str(&format!("  \"failures\": {failures},\n  \"runs\": [\n"));
    for (i, r) in reports.iter().enumerate() {
        let verdict = match &r.violation {
            None => "ok".to_string(),
            Some(v) => v.kind().to_string(),
        };
        s.push_str(&format!(
            "    {{\"graph\": \"{}\", \"tasks\": {}, \"workers\": {}, \"policy\": \"{:?}\", \
             \"protocol\": \"{:?}\", \"states\": {}, \"transitions\": {}, \"terminals\": {}, \
             \"verdict\": \"{}\"}}{}\n",
            r.graph,
            r.tasks,
            r.workers,
            r.policy,
            r.protocol,
            r.states,
            r.transitions,
            r.terminals,
            verdict,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "xsc-lint: {err}\n\
         usage: xsc-lint [--root DIR] [--json FILE] [--baseline FILE] \
         [--write-baseline FILE] [-q|--quiet] [--list-rules]\n\
                xsc-lint check-schedules [--workers N] [--max-tasks N] [--json FILE] \
         [--self-test] [-q|--quiet]"
    );
    ExitCode::from(2)
}
