//! CLI driver: `cargo run -p xsc-lint -- [--root DIR] [--json FILE] [-q]
//! [--list-rules]`. Exits 0 when the workspace is lint-clean, 1 when any
//! finding survives suppression, 2 on usage or I/O errors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = xsc_lint::default_root();
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a file path"),
            },
            "-q" | "--quiet" => quiet = true,
            "--list-rules" => {
                for r in xsc_lint::RULES {
                    println!("{}  {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match xsc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xsc-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, xsc_lint::to_json(&report)) {
            eprintln!("xsc-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !quiet || !report.clean() {
        print!("{}", report.render_text());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "xsc-lint: {err}\nusage: xsc-lint [--root DIR] [--json FILE] [-q|--quiet] [--list-rules]"
    );
    ExitCode::from(2)
}
