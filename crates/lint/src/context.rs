//! Item-context analysis over the token stream: brace nesting, enclosing
//! function, and loop bodies.
//!
//! The C/P/X rule families are *scoped* rules — "no `unwrap` in the
//! executor worker loop", "casts only inside the named chokepoint fns",
//! "`wait` only inside a predicate loop" — so the engine needs to know,
//! for every token, which `fn` item it belongs to and whether it sits in a
//! `loop`/`while`/`for` body. This pass derives both from the significant
//! (non-comment) token stream in one linear sweep.
//!
//! The analysis is lexical, not grammatical: a closure body belongs to its
//! *enclosing* named `fn` (deliberately — the executor's worker closure
//! is part of `Executor::run` for hot-path purposes), and a brace opened
//! inside a loop header expression (`for x in xs.map(|i| { .. })`) is
//! conservatively treated as the loop body. Those approximations are fine
//! for a linter whose scoped files are written in plain style; the rules
//! that consume this context document their residual blind spots in
//! `DESIGN.md`.

use crate::lexer::{Tok, Token};

/// What kind of construct a `{` opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    /// A named `fn` body (index into [`ItemCtx::fns`]).
    Fn(usize),
    /// A `loop` / `while` / `for` body.
    Loop,
    /// Anything else: blocks, `impl`/`mod`/`match` bodies, struct literals.
    Plain,
}

/// One named `fn` item found in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Per-token structural context for one file. All vectors are indexed by
/// *token index* (the same indexing as `FileCtx::tokens`); comment tokens
/// inherit the context of the significant token that precedes them only
/// implicitly (rules look up context at significant tokens).
pub struct ItemCtx {
    /// Every named `fn` item, in source order.
    pub fns: Vec<FnSpan>,
    /// For each token: the innermost enclosing `fn` (index into `fns`),
    /// or `None` at module level.
    pub fn_of: Vec<Option<usize>>,
    /// For each token: `true` inside a `loop`/`while`/`for` body.
    pub in_loop: Vec<bool>,
    /// For each token: brace-nesting depth (`{` itself counts at the
    /// depth it opens).
    pub depth: Vec<u32>,
}

impl ItemCtx {
    /// Builds the context for an already-lexed file. `sig` holds the
    /// indices of non-comment tokens, as in `FileCtx`.
    pub fn new(tokens: &[Token], sig: &[usize]) -> ItemCtx {
        let n = tokens.len();
        let mut fns: Vec<FnSpan> = Vec::new();
        let mut fn_of: Vec<Option<usize>> = vec![None; n];
        let mut in_loop = vec![false; n];
        let mut depth = vec![0u32; n];

        // Stack of open scopes, innermost last.
        let mut scopes: Vec<ScopeKind> = Vec::new();
        // A `fn NAME` header seen but its body `{` not yet; cancelled by
        // `;` (trait method declarations, extern blocks).
        let mut pending_fn: Option<usize> = None;
        // A `loop`/`while`/`for` keyword seen but its body `{` not yet.
        let mut pending_loop = false;

        let mut cur_depth = 0u32;
        for (k, &i) in sig.iter().enumerate() {
            // Record context *before* processing the token, then adjust
            // for braces so `{` reports the depth it opens and `}` the
            // depth it closes.
            let innermost_fn = scopes.iter().rev().find_map(|s| match s {
                ScopeKind::Fn(f) => Some(*f),
                _ => None,
            });
            let looping = scopes.contains(&ScopeKind::Loop);

            match &tokens[i].tok {
                Tok::Ident(s) if s == "fn" => {
                    // `fn` followed by its name; `fn` types (`fn(u8)`) have
                    // punctuation next and stay pending-free.
                    if let Some(Tok::Ident(name)) = sig.get(k + 1).map(|&j| &tokens[j].tok) {
                        fns.push(FnSpan {
                            name: name.clone(),
                            line: tokens[i].line,
                        });
                        pending_fn = Some(fns.len() - 1);
                    }
                }
                // `for` also introduces generic lifetimes (`for<'a>`); the
                // guard skips those, and a stray Plain/Loop
                // misclassification elsewhere is harmless.
                Tok::Ident(s)
                    if (s == "loop" || s == "while" || s == "for")
                        && !matches!(
                            sig.get(k + 1).map(|&j| &tokens[j].tok),
                            Some(Tok::Punct('<'))
                        ) =>
                {
                    pending_loop = true;
                }
                Tok::Punct(';') => {
                    pending_fn = None;
                    pending_loop = false;
                }
                Tok::Punct('{') => {
                    let kind = if let Some(f) = pending_fn.take() {
                        ScopeKind::Fn(f)
                    } else if pending_loop {
                        pending_loop = false;
                        ScopeKind::Loop
                    } else {
                        ScopeKind::Plain
                    };
                    scopes.push(kind);
                    cur_depth += 1;
                }
                Tok::Punct('}') => {
                    scopes.pop();
                    cur_depth = cur_depth.saturating_sub(1);
                }
                _ => {}
            }

            // `{` belongs to the scope it opens; `}` to the one it closes.
            let (f, l, d) = match &tokens[i].tok {
                Tok::Punct('{') => {
                    let f = scopes.iter().rev().find_map(|s| match s {
                        ScopeKind::Fn(f) => Some(*f),
                        _ => None,
                    });
                    (f, scopes.contains(&ScopeKind::Loop), cur_depth)
                }
                _ => (innermost_fn, looping, cur_depth),
            };
            fn_of[i] = f;
            in_loop[i] = l;
            depth[i] = d;
        }

        ItemCtx {
            fns,
            fn_of,
            in_loop,
            depth,
        }
    }

    /// Name of the innermost `fn` enclosing token `i`, if any.
    pub fn fn_name_at(&self, i: usize) -> Option<&str> {
        self.fn_of[i].map(|f| self.fns[f].name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(src: &str) -> (Vec<Token>, ItemCtx) {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment { .. }))
            .map(|(i, _)| i)
            .collect();
        let ic = ItemCtx::new(&tokens, &sig);
        (tokens, ic)
    }

    fn ident_pos(tokens: &[Token], name: &str) -> usize {
        tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
            .unwrap()
    }

    #[test]
    fn fn_bodies_and_nesting() {
        let src = "fn outer() { let x = inner_marker; }\nfn second() { body2; }\n";
        let (tokens, ic) = ctx(src);
        assert_eq!(ic.fns.len(), 2);
        assert_eq!(ic.fns[0].name, "outer");
        let m = ident_pos(&tokens, "inner_marker");
        assert_eq!(ic.fn_name_at(m), Some("outer"));
        let b = ident_pos(&tokens, "body2");
        assert_eq!(ic.fn_name_at(b), Some("second"));
    }

    #[test]
    fn closures_belong_to_enclosing_fn() {
        let src = "fn run() { spawn(move || { let inner = deep_marker; }); }\n";
        let (tokens, ic) = ctx(src);
        let m = ident_pos(&tokens, "deep_marker");
        assert_eq!(ic.fn_name_at(m), Some("run"));
    }

    #[test]
    fn loops_are_marked() {
        let src = "fn f() { before; loop { inside; while x { nested; } } after_loop; }\n";
        let (tokens, ic) = ctx(src);
        assert!(!ic.in_loop[ident_pos(&tokens, "before")]);
        assert!(ic.in_loop[ident_pos(&tokens, "inside")]);
        assert!(ic.in_loop[ident_pos(&tokens, "nested")]);
        assert!(!ic.in_loop[ident_pos(&tokens, "after_loop")]);
    }

    #[test]
    fn trait_method_decl_does_not_open_a_body() {
        let src = "trait T { fn decl(&self); }\nfn real() { marker; }\n";
        let (tokens, ic) = ctx(src);
        let m = ident_pos(&tokens, "marker");
        assert_eq!(ic.fn_name_at(m), Some("real"));
    }

    #[test]
    fn module_level_tokens_have_no_fn() {
        let src = "use std::fmt;\nconst TOP: usize = 3;\nfn f() {}\n";
        let (tokens, ic) = ctx(src);
        let m = ident_pos(&tokens, "TOP");
        assert_eq!(ic.fn_name_at(m), None);
        assert!(!ic.in_loop[m]);
    }
}
