//! Fixture-driven tests: adversarial sources with known-exact diagnostics.
//!
//! Each fixture under `crates/lint/fixtures/` (a directory the workspace
//! walker deliberately skips) is linted through the same `lint_source`
//! engine the workspace gate uses, and the expected `(rule, line)` pairs
//! are asserted exactly — a lexer regression that shifts or drops one
//! diagnostic fails loudly.

use xsc_lint::{lint_source, CrateClass};

fn findings(path: &str, class: CrateClass, src: &str) -> Vec<(String, u32)> {
    lint_source(path, class, src)
        .0
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

#[test]
fn adversarial_strings_and_comments_are_clean() {
    let src = include_str!("../fixtures/adversarial_clean.rs");
    let f = findings(
        "crates/fake/src/adversarial_clean.rs",
        CrateClass::Numeric,
        src,
    );
    assert!(f.is_empty(), "token-aware lexing failed: {f:?}");
}

#[test]
fn one_violation_per_rule_at_exact_lines() {
    let src = include_str!("../fixtures/violations.rs");
    let f = findings("crates/fake/src/violations.rs", CrateClass::Numeric, src);
    let expected: Vec<(String, u32)> = [
        ("D01", 4),
        ("D01", 5),
        ("D02", 6),
        ("D02", 7),
        ("D03", 10),
        ("D03", 11),
        ("D02", 15),
        ("S01", 19),
        // Determinism rules reach into #[cfg(test)] regions too: a test
        // that iterates a HashMap or times itself with a raw Instant
        // flakes exactly like library code does.
        ("D01", 29),
        ("D02", 30),
        ("D02", 34),
        ("D03", 35),
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    let mut got = f.clone();
    let mut want = expected.clone();
    got.sort();
    want.sort();
    assert_eq!(got, want, "got {f:?}");
}

#[test]
fn implicit_reductions_flagged_only_in_kernel_crates() {
    let src = include_str!("../fixtures/kernel_sums.rs");
    let in_kernel = findings("crates/core/src/kernel_sums.rs", CrateClass::Numeric, src);
    assert_eq!(
        in_kernel,
        vec![("D04".to_string(), 4), ("D04".to_string(), 8)]
    );
    // The same source outside a kernel crate is clean: D04 is scoped.
    let outside = findings(
        "crates/machine/src/kernel_sums.rs",
        CrateClass::Numeric,
        src,
    );
    assert!(outside.is_empty(), "{outside:?}");
}

#[test]
fn suppression_grammar_and_meta_rules() {
    let src = include_str!("../fixtures/suppressions.rs");
    let (f, used) = lint_source("crates/fake/src/suppressions.rs", CrateClass::Numeric, src);
    let got: Vec<(String, u32)> = f.iter().map(|f| (f.rule.to_string(), f.line)).collect();
    let mut want: Vec<(String, u32)> = [
        ("L00", 8),
        ("D01", 9),
        ("L01", 11),
        ("D01", 12),
        ("L02", 14),
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    let mut got_sorted = got.clone();
    got_sorted.sort();
    want.sort();
    assert_eq!(got_sorted, want, "got {got:?}");
    // Two suppressions matched, both with reasons recorded for the report.
    assert_eq!(used.len(), 2);
    assert!(used.iter().all(|u| !u.reason.is_empty()));
    assert_eq!(used[0].line, 3);
    assert_eq!(used[1].line, 6);
}

#[test]
fn sparse_narrowing_flagged_widening_ignored() {
    let src = include_str!("../fixtures/sparse_casts.rs");
    // In the sparse crate the narrowing is A01 and the bare `as usize`
    // (outside the idx::widen chokepoint) is X01.
    let in_sparse = findings("crates/sparse/src/fake.rs", CrateClass::Numeric, src);
    assert_eq!(
        in_sparse,
        vec![("A01".to_string(), 4), ("X01".to_string(), 8)]
    );
    // A01 is scoped to the sparse crate (the Csr32 lesson lives there);
    // X01 covers all kernel crates, so core still flags the usize cast.
    let in_core = findings("crates/core/src/fake.rs", CrateClass::Numeric, src);
    assert_eq!(in_core, vec![("X01".to_string(), 8)]);
    // Outside the kernel crates both rules are silent.
    let elsewhere = findings("crates/machine/src/fake.rs", CrateClass::Numeric, src);
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn numeric_rules_reach_tests_while_bench_and_shims_keep_their_exemptions() {
    let src = "use std::collections::HashMap;\nuse std::time::Instant;\n";
    // Test code is held to both determinism rules: hash-order assertions
    // and self-timed tests are exactly how flakes get written.
    let tests = findings("crates/core/tests/props.rs", CrateClass::TestCode, src);
    assert_eq!(tests, vec![("D01".to_string(), 1), ("D02".to_string(), 2)]);
    // The bench crate's job is timing, so D02 stays exempt there — but a
    // HashMap can still reorder its report lines, so D01 is not.
    let bench = findings("crates/bench/src/lib.rs", CrateClass::Bench, src);
    assert_eq!(bench, vec![("D01".to_string(), 1)]);
    // Shims re-implement external APIs verbatim and keep both exemptions.
    let shim = findings("crates/shims/rayon/src/lib.rs", CrateClass::Shim, src);
    assert!(shim.is_empty(), "{shim:?}");
}

#[test]
fn lock_discipline_fixture_at_exact_lines() {
    let src = include_str!("../fixtures/lock_discipline.rs");
    // Linted AS the executor file: C03's manifest and C02's callee list
    // both apply there.
    let f = findings("crates/runtime/src/executor.rs", CrateClass::Numeric, src);
    let want: Vec<(String, u32)> = [("C03", 6), ("C03", 12), ("C03", 17), ("C02", 22)]
        .into_iter()
        .map(|(r, l)| (r.to_string(), l))
        .collect();
    let mut got = f.clone();
    let mut want = want;
    got.sort();
    want.sort();
    assert_eq!(got, want, "got {f:?}");
}

#[test]
fn hot_path_fixture_flags_only_declared_fns() {
    let src = include_str!("../fixtures/hot_path.rs");
    let f = findings("crates/serve/src/server.rs", CrateClass::Numeric, src);
    let want: Vec<(String, u32)> = [("P01", 5), ("P02", 6), ("P03", 7)]
        .into_iter()
        .map(|(r, l)| (r.to_string(), l))
        .collect();
    let mut got = f.clone();
    let mut want = want;
    got.sort();
    want.sort();
    assert_eq!(got, want, "got {f:?}");
    // The same source under a path with no hot-path manifest is silent.
    let elsewhere = findings("crates/machine/src/server.rs", CrateClass::Numeric, src);
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn missing_recorder_in_kernel_file_is_m01() {
    let bare = "pub fn gemm() { /* no recorder */ }\n";
    let f = findings("crates/core/src/gemm.rs", CrateClass::Numeric, bare);
    assert_eq!(f, vec![("M01".to_string(), 1)]);
    let instrumented = "pub fn gemm() { let _s = xsc_metrics::record(\"gemm\", t()); }\n";
    let f = findings("crates/core/src/gemm.rs", CrateClass::Numeric, instrumented);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn timing_chokepoint_is_the_one_file_allowed_instants() {
    let src = "use std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n";
    let chokepoint = findings("crates/metrics/src/stopwatch.rs", CrateClass::Numeric, src);
    assert!(chokepoint.is_empty(), "{chokepoint:?}");
    let elsewhere = findings("crates/metrics/src/counters.rs", CrateClass::Numeric, src);
    assert_eq!(elsewhere.len(), 3, "{elsewhere:?}");
}
