//! The tier-1 lint gate: `cargo test` fails if ANY file in the workspace
//! violates a determinism/invariant rule without a reasoned suppression.
//! This is the in-process twin of the `cargo run -p xsc-lint` CLI and the
//! CI job — same engine, same rules, same zero-findings bar.

#[test]
fn workspace_is_lint_clean() {
    let root = xsc_lint::default_root();
    let report = xsc_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
}

#[test]
fn every_used_suppression_carries_a_reason() {
    let root = xsc_lint::default_root();
    let report = xsc_lint::lint_workspace(&root).expect("workspace scan");
    for u in &report.suppressions_used {
        assert!(
            !u.reason.trim().is_empty(),
            "{}:{} suppresses {} without a reason",
            u.file,
            u.line,
            u.rule
        );
    }
}

#[test]
fn checked_in_baseline_holds_the_ratchet() {
    // The repo-root lint_baseline.json is the suppression-count floor: a
    // new allow anywhere in the workspace must regenerate it in the same
    // diff. This test is the tier-1 twin of CI's `--baseline` run.
    let root = xsc_lint::default_root();
    let text = std::fs::read_to_string(root.join("lint_baseline.json"))
        .expect("lint_baseline.json must be checked in at the repo root");
    let rows = xsc_lint::baseline::parse(&text).expect("baseline parses");
    let report = xsc_lint::lint_workspace(&root).expect("workspace scan");
    let regressions = xsc_lint::baseline::regressions(&xsc_lint::baseline::counts(&report), &rows);
    assert!(
        regressions.is_empty(),
        "per-rule counts regressed against lint_baseline.json:\n{}",
        regressions.join("\n")
    );
}

#[test]
fn json_report_is_deterministic_and_well_formed_enough() {
    let root = xsc_lint::default_root();
    let a = xsc_lint::to_json(&xsc_lint::lint_workspace(&root).expect("scan"));
    let b = xsc_lint::to_json(&xsc_lint::lint_workspace(&root).expect("scan"));
    assert_eq!(a, b, "report must be byte-identical across runs");
    assert!(a.contains("\"schema\": \"xsc-lint-v1\""));
    assert!(a.contains("\"clean\": true"));
    assert_eq!(a.matches('{').count(), a.matches('}').count());
}
