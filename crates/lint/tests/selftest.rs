//! Gate self-test: prove the CLI actually FAILS when a violation exists.
//! A linter that exits 0 on dirty input is worse than no linter — this
//! builds throwaway mini-workspaces and checks the exit codes end to end.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Creates `<tmp>/<name>/crates/fake/src/lib.rs` with `src` and returns
/// the mini-workspace root.
fn mini_workspace(name: &str, src: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("xsc-lint-selftest-{name}"));
    let dir = root.join("crates").join("fake").join("src");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("lib.rs"), src).expect("write fixture");
    root
}

fn run_lint(root: &PathBuf, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xsc-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn xsc-lint")
}

#[test]
fn injected_d01_and_d03_violations_fail_the_gate() {
    let root = mini_workspace(
        "dirty",
        "use std::collections::HashMap;\npub fn r() { let x = thread_rng(); }\n",
    );
    let out = run_lint(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "dirty workspace must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[D01]"), "{stdout}");
    assert!(stdout.contains("[D03]"), "{stdout}");
    assert!(stdout.contains("crates/fake/src/lib.rs:1"), "{stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn clean_workspace_exits_zero_and_writes_json() {
    let root = mini_workspace("clean", "pub fn fine() -> u64 { 42 }\n");
    let json = root.join("LINT.json");
    let out = run_lint(&root, &["--json", json.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "clean workspace must exit 0");
    let report = fs::read_to_string(&json).expect("JSON report written");
    assert!(report.contains("\"clean\": true"), "{report}");
    assert!(report.contains("\"files_scanned\": 1"), "{report}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn reasonless_suppression_still_fails_the_gate() {
    let root = mini_workspace(
        "reasonless",
        "// xsc-lint: allow(D01)\nuse std::collections::HashMap;\n",
    );
    let out = run_lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a reasonless allow must not launder a violation"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[L00]"), "{stdout}");
    assert!(stdout.contains("[D01]"), "{stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn reasoned_suppression_passes_and_is_audited() {
    let root = mini_workspace(
        "reasoned",
        "// xsc-lint: allow(D01, reason = \"selftest: exercising the audit trail\")\n\
         use std::collections::HashMap;\n",
    );
    let json = root.join("LINT.json");
    let out = run_lint(&root, &["--json", json.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let report = fs::read_to_string(&json).expect("JSON report");
    assert!(
        report.contains("exercising the audit trail"),
        "used suppressions must appear in the report: {report}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_xsc-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn baseline_ratchet_blocks_suppression_growth() {
    // A clean workspace whose one violation is suppressed with a reason.
    let one_allow = "// xsc-lint: allow(D01, reason = \"selftest: ratchet floor\")\n\
                     use std::collections::HashMap;\n";
    let root = mini_workspace("ratchet", one_allow);
    let baseline = root.join("lint_baseline.json");

    // Pin the floor: 1 used D01 suppression, 0 findings.
    let out = run_lint(&root, &["--write-baseline", baseline.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "clean workspace pins exit 0");
    let text = fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.contains("xsc-lint-baseline-v1"), "{text}");
    assert!(
        text.contains("{\"rule\": \"D01\", \"findings\": 0, \"suppressions\": 1}"),
        "{text}"
    );

    // Same workspace against its own baseline: fine.
    let out = run_lint(&root, &["--baseline", baseline.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "no growth passes the ratchet");

    // One MORE reasoned suppression: still zero findings, but the ratchet
    // must refuse the silently widening exception surface.
    let two_allows = format!(
        "{one_allow}// xsc-lint: allow(D01, reason = \"selftest: second allow\")\n\
         use std::collections::HashSet;\n"
    );
    fs::write(
        root.join("crates").join("fake").join("src").join("lib.rs"),
        two_allows,
    )
    .expect("rewrite fixture");
    let out = run_lint(&root, &["--baseline", baseline.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "suppression growth must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ratchet: rule D01: suppressions grew 1 -> 2"),
        "{stdout}"
    );

    // Burning a suppression DOWN needs no baseline ceremony.
    fs::write(
        root.join("crates").join("fake").join("src").join("lib.rs"),
        "pub fn clean() -> u64 { 7 }\n",
    )
    .expect("rewrite fixture");
    let out = run_lint(&root, &["--baseline", baseline.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "decreases pass without edits");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupt_baseline_is_an_io_error_not_a_pass() {
    let root = mini_workspace("badbase", "pub fn fine() -> u64 { 1 }\n");
    let baseline = root.join("lint_baseline.json");
    fs::write(&baseline, "{\"schema\": \"something-else\"}").expect("write");
    let out = run_lint(&root, &["--baseline", baseline.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "foreign baseline must not pass");
    let missing = root.join("no_such_baseline.json");
    let out = run_lint(&root, &["--baseline", missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "missing baseline must not pass");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn check_schedules_flags_are_validated() {
    for bad in [
        &["check-schedules", "--workers", "9"][..],
        &["check-schedules", "--workers", "0"],
        &["check-schedules", "--workers", "many"],
        &["check-schedules", "--max-tasks", "0"],
        &["check-schedules", "--max-tasks", "99"],
        &["check-schedules", "--no-such-flag"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_xsc-lint"))
            .args(bad)
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{bad:?} must be a usage error");
    }
}

#[test]
fn check_schedules_small_sweep_with_self_test_passes_and_writes_json() {
    // --max-tasks 4 restricts the sweep to the diamond graph; with the
    // mutant self-test on top this stays debug-feasible (<100k states).
    let json = std::env::temp_dir().join("xsc-lint-selftest-schedcheck.json");
    let _ = fs::remove_file(&json);
    let out = Command::new(env!("CARGO_BIN_EXE_xsc-lint"))
        .args([
            "check-schedules",
            "--workers",
            "2",
            "--max-tasks",
            "4",
            "--self-test",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("spawn");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
    let report = fs::read_to_string(&json).expect("JSON artifact written");
    assert!(
        report.contains("\"schema\": \"xsc-schedcheck-v1\""),
        "{report}"
    );
    assert!(report.contains("\"failures\": 0"), "{report}");
    // The self-test rows carry their mutant verdicts in the artifact.
    assert!(report.contains("\"verdict\": \"deadlock\""), "{report}");
    assert!(
        report.contains("\"verdict\": \"order-violation\""),
        "{report}"
    );
    assert!(
        report.contains("\"verdict\": \"bit-divergence\""),
        "{report}"
    );
    let _ = fs::remove_file(&json);
}
