//! Gate self-test: prove the CLI actually FAILS when a violation exists.
//! A linter that exits 0 on dirty input is worse than no linter — this
//! builds throwaway mini-workspaces and checks the exit codes end to end.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Creates `<tmp>/<name>/crates/fake/src/lib.rs` with `src` and returns
/// the mini-workspace root.
fn mini_workspace(name: &str, src: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("xsc-lint-selftest-{name}"));
    let dir = root.join("crates").join("fake").join("src");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("lib.rs"), src).expect("write fixture");
    root
}

fn run_lint(root: &PathBuf, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xsc-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn xsc-lint")
}

#[test]
fn injected_d01_and_d03_violations_fail_the_gate() {
    let root = mini_workspace(
        "dirty",
        "use std::collections::HashMap;\npub fn r() { let x = thread_rng(); }\n",
    );
    let out = run_lint(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "dirty workspace must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[D01]"), "{stdout}");
    assert!(stdout.contains("[D03]"), "{stdout}");
    assert!(stdout.contains("crates/fake/src/lib.rs:1"), "{stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn clean_workspace_exits_zero_and_writes_json() {
    let root = mini_workspace("clean", "pub fn fine() -> u64 { 42 }\n");
    let json = root.join("LINT.json");
    let out = run_lint(&root, &["--json", json.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "clean workspace must exit 0");
    let report = fs::read_to_string(&json).expect("JSON report written");
    assert!(report.contains("\"clean\": true"), "{report}");
    assert!(report.contains("\"files_scanned\": 1"), "{report}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn reasonless_suppression_still_fails_the_gate() {
    let root = mini_workspace(
        "reasonless",
        "// xsc-lint: allow(D01)\nuse std::collections::HashMap;\n",
    );
    let out = run_lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a reasonless allow must not launder a violation"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[L00]"), "{stdout}");
    assert!(stdout.contains("[D01]"), "{stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn reasoned_suppression_passes_and_is_audited() {
    let root = mini_workspace(
        "reasoned",
        "// xsc-lint: allow(D01, reason = \"selftest: exercising the audit trail\")\n\
         use std::collections::HashMap;\n",
    );
    let json = root.join("LINT.json");
    let out = run_lint(&root, &["--json", json.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let report = fs::read_to_string(&json).expect("JSON report");
    assert!(
        report.contains("exercising the audit trail"),
        "used suppressions must appear in the report: {report}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_xsc-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
