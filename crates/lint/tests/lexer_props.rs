//! Property tests for the lint lexer on adversarial input.
//!
//! The rule engine is only as trustworthy as the lexer under it: a missed
//! raw-string edge means `HashMap` inside a string flags D01 (noise), and
//! an unterminated-comment panic means one weird file kills the whole
//! gate. These properties hammer the constructions that break naive
//! lexers — raw strings at any hash depth, nested block comments, comment
//! markers inside literals — with randomized payloads.

use proptest::prelude::*;
use xsc_lint::lexer::{lex, Tok};
use xsc_lint::{lint_source, CrateClass};

/// Builds printable-ish junk (including quotes, slashes, and braces —
/// everything that could confuse delimiter tracking) from raw bytes.
fn junk(bytes: &[u8]) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '\n', '\t', '"', '\'', '/', '*', '#', '\\', '{', '}', '(', ')', '.',
        ';', 'é', '→', '🦀',
    ];
    bytes
        .iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()])
        .collect()
}

/// `true` if any lexed token is the identifier `needle`.
fn has_ident(src: &str, needle: &str) -> bool {
    lex(src)
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == needle))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer must terminate without panicking on arbitrary text, and
    /// line numbers must be 1-based and nondecreasing.
    #[test]
    fn lexing_arbitrary_junk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src = junk(&bytes);
        let tokens = lex(&src);
        let mut last = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= last, "line numbers went backwards");
            last = t.line;
        }
        let line_count = src.split('\n').count() as u32;
        prop_assert!(last <= line_count.max(1), "token line beyond the input");
    }

    /// The full rule engine inherits the no-panic guarantee: linting junk
    /// as a kernel-crate source must return, not unwind.
    #[test]
    fn linting_arbitrary_junk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src = junk(&bytes);
        let _ = lint_source("crates/core/src/fuzz.rs", CrateClass::Numeric, &src);
        let _ = lint_source("crates/runtime/src/executor.rs", CrateClass::Numeric, &src);
        let _ = lint_source("crates/serve/src/server.rs", CrateClass::Numeric, &src);
    }

    /// A raw string literal swallows its payload at ANY hash depth: rule
    /// trigger words inside it must not surface as identifiers, and the
    /// text after the literal must still lex.
    #[test]
    fn raw_strings_swallow_payload_at_any_hash_depth(
        hashes in 0usize..8,
        bytes in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let h = "#".repeat(hashes);
        let mut payload = junk(&bytes).replace('\n', " ");
        // Keep the payload from closing the literal early: a raw string
        // ends only at `"` + hashes, so strip runs that could collide.
        payload = payload.replace('"', "”");
        let src = format!("let s = r{h}\"HashMap {payload} Instant\"{h}; after");
        prop_assert!(!has_ident(&src, "HashMap"), "payload leaked from {src:?}");
        prop_assert!(!has_ident(&src, "Instant"), "payload leaked from {src:?}");
        prop_assert!(has_ident(&src, "after"), "tail lost in {src:?}");
        // And the rule engine agrees: no D01/D02 from inside the literal.
        let (findings, _) = lint_source("crates/core/src/fuzz.rs", CrateClass::Numeric, &src);
        prop_assert!(
            findings.iter().all(|f| f.rule != "D01" && f.rule != "D02"),
            "string payload produced findings: {findings:?}"
        );
    }

    /// Block comments nest: `/* /* */ */` must swallow everything inside,
    /// however deep the randomized nesting goes, and resume lexing after.
    #[test]
    fn nested_block_comments_swallow_payload(
        depth in 1usize..6,
        bytes in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let mut payload = junk(&bytes).replace("*/", "xx").replace("/*", "yy");
        payload = payload.replace('\n', " ");
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("{open} thread_rng {payload} {close} visible");
        prop_assert!(!has_ident(&src, "thread_rng"), "comment leaked from {src:?}");
        prop_assert!(has_ident(&src, "visible"), "tail lost in {src:?}");
    }

    /// `//` inside a normal string is text, not a comment: tokens after
    /// the literal on the same line must survive.
    #[test]
    fn line_comment_markers_inside_strings_are_text(bytes in proptest::collection::vec(any::<u8>(), 0..20)) {
        let mut payload = junk(&bytes).replace(['"', '\\', '\n'], "_");
        payload.push_str("// not a comment");
        let src = format!("let s = \"{payload}\"; survivor");
        prop_assert!(has_ident(&src, "survivor"), "string ate the rest of {src:?}");
        prop_assert!(
            !lex(&src).iter().any(|t| matches!(&t.tok, Tok::Comment { .. })),
            "phantom comment in {src:?}"
        );
    }
}
