//! s-step (communication-avoiding) conjugate gradients.
//!
//! Classic CG performs two global reductions *per iteration*. CA-CG
//! (Chronopoulos–Gear; Carson–Demmel) takes `s` iterations per **one**
//! reduction: build the Krylov basis
//! `V = [p, Āp, …, Āˢp, r, Ār, …, Āˢ⁻¹r]` with the matrix-powers kernel
//! (one ghost exchange), form the Gram matrix `G = VᵀV` (one reduction),
//! and run `s` exact CG updates entirely in the `2s+1`-dimensional
//! coordinate space — every inner product becomes a tiny `Gᵀ·` product of
//! coefficient vectors. In exact arithmetic the iterates equal classic
//! CG's; in floating point the monomial basis limits `s` to small values
//! (the basis is scaled by a spectral estimate to push that limit out).

use crate::chebyshev::power_method_lmax;
use crate::csr::CsrMatrix;
use xsc_core::blas1;

/// Result of an s-step CG solve.
#[derive(Debug, Clone)]
pub struct SStepCgResult {
    /// Total (inner) CG iterations performed.
    pub iterations: usize,
    /// Outer steps = global reductions performed.
    pub outer_steps: usize,
    /// Relative residual after each *outer* step (index 0 = initial).
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// s-step CG on `A x = b` (`x` updated in place). `s` is the number of CG
/// steps per reduction; 2–4 is the numerically comfortable range with the
/// monomial basis.
pub fn s_step_cg(
    a: &CsrMatrix<f64>,
    b: &[f64],
    x: &mut [f64],
    s: usize,
    max_outer: usize,
    tol: f64,
) -> SStepCgResult {
    let n = a.nrows();
    assert!(s >= 1, "s must be at least 1");
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    let bnorm = blas1::nrm2(b).max(f64::MIN_POSITIVE);

    // Basis scaling: replace A by Ā = A/σ so monomial powers stay O(1).
    let sigma = (power_method_lmax(a, 10, 3) * 0.55).max(f64::MIN_POSITIVE);

    let dim = 2 * s + 1;
    let mut r = vec![0.0; n];
    a.residual(x, b, &mut r);
    let mut p = r.clone();

    let mut history = vec![blas1::nrm2(&r) / bnorm];
    let mut converged = history[0] <= tol;
    let mut iterations = 0;
    let mut outer_steps = 0;

    // Workspace: basis vectors and Gram matrix.
    let mut basis: Vec<Vec<f64>> = vec![vec![0.0; n]; dim];
    let mut g = vec![0.0f64; dim * dim];

    while !converged && outer_steps < max_outer {
        outer_steps += 1;
        // Matrix-powers kernel: basis[0..=s] = [p, Āp, ..., Ā^s p],
        // basis[s+1..dim] = [r, Ār, ..., Ā^{s-1} r].
        basis[0].copy_from_slice(&p);
        for k in 0..s {
            let (head, tail) = basis.split_at_mut(k + 1);
            a.spmv_par(&head[k], &mut tail[0]);
            for v in tail[0].iter_mut() {
                *v /= sigma;
            }
        }
        basis[s + 1].copy_from_slice(&r);
        for k in 0..s.saturating_sub(1) {
            let (head, tail) = basis.split_at_mut(s + 2 + k);
            a.spmv_par(&head[s + 1 + k], &mut tail[0]);
            for v in tail[0].iter_mut() {
                *v /= sigma;
            }
        }
        // ONE global reduction: G = VᵀV (symmetric).
        for i in 0..dim {
            for j in i..dim {
                let d = blas1::dot_pairwise(&basis[i], &basis[j]);
                g[i * dim + j] = d;
                g[j * dim + i] = d;
            }
        }

        // Coordinates: p' = e_0, r' = e_{s+1}, x' = 0.
        let mut pc = vec![0.0f64; dim];
        pc[0] = 1.0;
        let mut rc = vec![0.0f64; dim];
        rc[s + 1] = 1.0;
        let mut xc = vec![0.0f64; dim];

        // B: the shift operator in coordinates — ĀV e_i = σ⁻¹A v_i = v_{i+1}
        // within each Krylov block (undefined on the blocks' last columns,
        // which the s inner steps never populate). Includes the σ factor
        // used to *undo* the scaling in the CG updates: A v_i = σ v_{i+1}.
        let shift = |c: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0f64; dim];
            for i in 0..s {
                out[i + 1] += sigma * c[i];
            }
            for i in 0..s.saturating_sub(1) {
                out[s + 2 + i] += sigma * c[s + 1 + i];
            }
            // c must not use the last column of either block.
            debug_assert!(c[s].abs() < 1e30);
            out
        };
        let gdot = |u: &[f64], v: &[f64]| -> f64 {
            let mut acc = 0.0;
            for i in 0..dim {
                if u[i] == 0.0 {
                    continue;
                }
                let mut row = 0.0;
                for j in 0..dim {
                    row += g[i * dim + j] * v[j];
                }
                acc += u[i] * row;
            }
            acc
        };

        let mut rr = gdot(&rc, &rc);
        for _ in 0..s {
            iterations += 1;
            let apc = shift(&pc);
            let pap = gdot(&pc, &apc);
            if pap <= 0.0 || !pap.is_finite() {
                break; // basis breakdown; fall back to recomputing outside
            }
            let alpha = rr / pap;
            for i in 0..dim {
                xc[i] += alpha * pc[i];
                rc[i] -= alpha * apc[i];
            }
            let rr_new = gdot(&rc, &rc);
            let beta = rr_new / rr.max(f64::MIN_POSITIVE);
            rr = rr_new;
            for i in 0..dim {
                pc[i] = rc[i] + beta * pc[i];
            }
        }

        // Map back: x += V x', r = V r', p = V p' — then recompute the true
        // residual (cheap insurance against basis roundoff).
        for i in 0..n {
            let mut dx = 0.0;
            let mut pv = 0.0;
            for (k, base) in basis.iter().enumerate() {
                if xc[k] != 0.0 {
                    dx += xc[k] * base[i];
                }
                if pc[k] != 0.0 {
                    pv += pc[k] * base[i];
                }
            }
            x[i] += dx;
            p[i] = pv;
        }
        a.residual(x, b, &mut r);
        let rel = blas1::nrm2(&r) / bnorm;
        history.push(rel);
        if rel <= tol {
            converged = true;
        }
    }

    SStepCgResult {
        iterations,
        outer_steps,
        residual_history: history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{pcg, Identity};
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    fn problem(g: Geometry) -> (CsrMatrix<f64>, Vec<f64>) {
        let a = build_matrix(g);
        let (mut b, _) = build_rhs(&a);
        for (i, v) in b.iter_mut().enumerate() {
            *v += ((i * 53) % 29) as f64 / 29.0 - 0.5;
        }
        (a, b)
    }

    #[test]
    fn s_step_cg_converges_for_small_s() {
        for s in [1usize, 2, 3, 4] {
            let (a, b) = problem(Geometry::new(8, 8, 8));
            let mut x = vec![0.0; a.nrows()];
            let res = s_step_cg(&a, &b, &mut x, s, 500, 1e-9);
            assert!(res.converged, "s={s}: {:?}", res.residual_history.last());
            let mut r = vec![0.0; a.nrows()];
            a.residual(&x, &b, &mut r);
            assert!(blas1::nrm2(&r) / blas1::nrm2(&b) < 1e-8, "s={s}");
        }
    }

    #[test]
    fn iteration_count_tracks_classic_cg() {
        let (a, b) = problem(Geometry::new(8, 8, 8));
        let mut x0 = vec![0.0; a.nrows()];
        let classic = pcg(&a, &b, &mut x0, 500, 1e-9, &Identity);
        let mut x1 = vec![0.0; a.nrows()];
        let ca = s_step_cg(&a, &b, &mut x1, 3, 500, 1e-9);
        assert!(classic.converged && ca.converged);
        // Same Krylov space: total inner iterations within ~40% of classic
        // (roundoff in the basis costs a few).
        assert!(
            (ca.iterations as f64) < classic.iterations as f64 * 1.4 + 4.0,
            "classic {} vs CA {}",
            classic.iterations,
            ca.iterations
        );
    }

    #[test]
    fn reductions_are_amortized() {
        let (a, b) = problem(Geometry::new(6, 6, 6));
        let mut x = vec![0.0; a.nrows()];
        let res = s_step_cg(&a, &b, &mut x, 4, 500, 1e-9);
        assert!(res.converged);
        // One reduction per outer step; ~s iterations per outer step.
        assert!(
            res.outer_steps * 4 + 4 >= res.iterations,
            "outer {} vs inner {}",
            res.outer_steps,
            res.iterations
        );
        assert!(
            res.outer_steps < res.iterations,
            "must amortize: {} reductions for {} iterations",
            res.outer_steps,
            res.iterations
        );
    }

    #[test]
    fn s_equals_one_matches_classic_cg_closely() {
        let (a, b) = problem(Geometry::new(6, 6, 6));
        let mut x0 = vec![0.0; a.nrows()];
        let classic = pcg(&a, &b, &mut x0, 300, 1e-10, &Identity);
        let mut x1 = vec![0.0; a.nrows()];
        let ca = s_step_cg(&a, &b, &mut x1, 1, 300, 1e-10);
        assert!(classic.converged && ca.converged);
        let diff = (classic.iterations as i64 - ca.iterations as i64).abs();
        assert!(
            diff <= 3,
            "classic {} vs s=1 {}",
            classic.iterations,
            ca.iterations
        );
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let b = vec![0.0; a.nrows()];
        let mut x = vec![0.0; a.nrows()];
        let res = s_step_cg(&a, &b, &mut x, 3, 10, 1e-12);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
