//! Compressed sparse row matrix storage and SpMV.
//!
//! SpMV is the canonical memory-bound kernel: ~2 flops per 12–16 bytes of
//! traffic, so its rate is pinned to memory bandwidth no matter how many
//! flops the machine has — the arithmetic behind the HPCG side of E01 and
//! the flat scaling curve of E10.

use rayon::prelude::*;
use xsc_core::{Matrix, Scalar};

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// `(row, col)` entries are **summed deterministically in input
    /// order** (the sort is stable, so duplicates fold left-to-right as
    /// they appeared in the iterator) — never silently kept as separate
    /// entries. Pinned by `duplicate_summation_is_deterministic`.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, T)>,
    ) -> Self {
        let mut trips: Vec<(usize, usize, T)> = triplets.into_iter().collect();
        for &(r, c, _) in &trips {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of bounds");
        }
        trips.sort_by_key(|&(r, c, _)| (r, c));
        // Sum duplicates.
        let mut merged: Vec<(usize, usize, T)> = Vec::with_capacity(trips.len());
        for (r, c, v) in trips {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let vals = merged.into_iter().map(|(_, _, v)| v).collect();
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `(columns, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.vals[s..e])
    }

    /// The raw stored values, in row-major CSR order.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable raw stored values — the surface memory-fault campaigns
    /// corrupt and checkpoint restore writes back into. Value-only:
    /// callers may rewrite entries but the sparsity structure is fixed.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Column sums `eᵀA` over the stored entries — the ABFT reference
    /// checksum behind the SpMV invariant `eᵀ(Ax) = (eᵀA)·x`.
    pub fn column_sums(&self) -> Vec<T> {
        let mut c = vec![T::zero(); self.ncols];
        for (k, &j) in self.col_idx.iter().enumerate() {
            c[j] += self.vals[k];
        }
        c
    }

    /// Sequential sparse matrix–vector product `y <- A x`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        let _scope = xsc_metrics::record(
            "spmv",
            xsc_metrics::traffic::spmv_csr(self.nrows, self.nnz(), std::mem::size_of::<T>() as u64),
        );
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = T::zero();
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc = v.mul_add(x[c], acc);
            }
            y[i] = acc;
        }
    }

    /// Thread-parallel SpMV (rayon over row blocks). Bit-identical to the
    /// sequential version: each row's dot product is computed in the same
    /// order regardless of thread count.
    pub fn spmv_par(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        let _scope = xsc_metrics::record(
            "spmv",
            xsc_metrics::traffic::spmv_csr(self.nrows, self.nnz(), std::mem::size_of::<T>() as u64),
        );
        let row_ptr = &self.row_ptr;
        let col_idx = &self.col_idx;
        let vals = &self.vals;
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let (s, e) = (row_ptr[i], row_ptr[i + 1]);
            let mut acc = T::zero();
            for k in s..e {
                acc = vals[k].mul_add(x[col_idx[k]], acc);
            }
            *yi = acc;
        });
    }

    /// The diagonal entries (zero where a row has no diagonal entry).
    pub fn diagonal(&self) -> Vec<T> {
        let mut d = vec![T::zero(); self.nrows];
        for i in 0..self.nrows.min(self.ncols) {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c == i {
                    d[i] = v;
                }
            }
        }
        d
    }

    /// Residual `r = b - A x`, computed sequentially.
    pub fn residual(&self, x: &[T], b: &[T], r: &mut [T]) {
        self.spmv(x, r);
        for (ri, &bi) in r.iter_mut().zip(b.iter()) {
            *ri = bi - *ri;
        }
    }

    /// Fused residual `r = b - A x` in a **single** sweep over the matrix:
    /// each row folds `acc ← acc - a_ij·x_j` starting from `b_i`, so `b`
    /// is read in the same pass that streams `A` — one fewer traversal of
    /// `r` than [`CsrMatrix::residual`]'s SpMV-then-subtract. Every sparse
    /// format implements the same fold order, so results are bitwise
    /// comparable across formats (see `xsc_sparse::ops`).
    pub fn fused_residual(&self, x: &[T], b: &[T], r: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "fused_residual x length mismatch");
        assert_eq!(b.len(), self.nrows, "fused_residual b length mismatch");
        assert_eq!(r.len(), self.nrows, "fused_residual r length mismatch");
        let w = std::mem::size_of::<T>() as u64;
        let _scope = xsc_metrics::record(
            "spmv",
            xsc_metrics::traffic::spmv_csr(self.nrows, self.nnz(), w).plus(xsc_metrics::Traffic {
                flops: 0,
                bytes_read: w * self.nrows as u64,
                bytes_written: 0,
            }),
        );
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = b[i];
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc = (-v).mul_add(x[c], acc);
            }
            r[i] = acc;
        }
    }

    /// Dense materialization (testing helper; quadratic memory).
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                m.set(i, c, m.get(i, c) + v);
            }
        }
        m
    }

    /// `true` if the sparsity pattern and values are symmetric (within
    /// `tol`); the HPCG operator must be, or CG loses its guarantees.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                let (jc, jv) = self.row(j);
                let back = jc
                    .iter()
                    .position(|&c| c == i)
                    .map(|p| jv[p])
                    .unwrap_or_else(T::zero);
                if (back - v).abs().to_f64() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // [[2, 0, 1], [0, 3, 0], [1, 0, 4]]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 4.0),
            ],
        )
    }

    #[test]
    fn construction_and_layout() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.nrows(), 3);
        let (cols, vals) = a.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[2.0, 1.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.row(0).1, &[3.5]);
    }

    #[test]
    fn duplicate_summation_is_deterministic() {
        // Floating-point addition is not associative, so the fold order of
        // duplicates is observable. The documented contract is a stable
        // left-to-right fold in *input* order: (1e16 + 1.0) - 1e16 == 0.0
        // (the 1.0 is absorbed), whereas 1e16 + (1.0 - 1e16) == 1.0.
        let a = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 1e16), (0, 0, 1.0), (0, 0, -1e16)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.row(0).1, &[(1e16 + 1.0) - 1e16]);
        assert_eq!(a.row(0).1, &[0.0]);
        // Reordered input, same multiset of triplets: different (but still
        // deterministic) result — pinning that order is input order, not
        // value order.
        let b = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 1e16), (0, 0, -1e16), (0, 0, 1.0)]);
        assert_eq!(b.row(0).1, &[1.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        let mut yd = vec![0.0; 3];
        xsc_core::gemm::gemv(xsc_core::Transpose::No, 1.0, &d, &x, 0.0, &mut yd);
        for i in 0..3 {
            assert!((y[i] - yd[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn spmv_par_is_bit_identical_to_sequential() {
        // Larger random-ish matrix.
        let n = 500;
        let trips: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| {
                let mut v = vec![(i, i, 4.0 + (i % 7) as f64)];
                if i > 0 {
                    v.push((i, i - 1, -1.25));
                }
                if i + 1 < n {
                    v.push((i, i + 1, -0.75));
                }
                if i >= 50 {
                    v.push((i, i - 50, 0.1 * (i % 13) as f64));
                }
                v
            })
            .collect();
        let a = CsrMatrix::from_triplets(n, n, trips);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31 % 97) as f64).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        a.spmv_par(&x, &mut y2);
        assert_eq!(y1, y2, "parallel SpMV must be bit-identical");
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = sample();
        let x = vec![1.0, 1.0, 1.0];
        let mut b = vec![0.0; 3];
        a.spmv(&x, &mut b);
        let mut r = vec![1.0; 3];
        a.residual(&x, &b, &mut r);
        assert!(r.iter().all(|&v| v.abs() < 1e-15));
    }

    #[test]
    fn fused_residual_matches_two_pass() {
        let a = sample();
        let x = vec![0.5, -1.0, 2.0];
        let b = vec![1.0, 2.0, 3.0];
        let mut r1 = vec![0.0; 3];
        let mut r2 = vec![0.0; 3];
        a.residual(&x, &b, &mut r1);
        a.fused_residual(&x, &b, &mut r2);
        for i in 0..3 {
            assert!((r1[i] - r2[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn symmetry_detection() {
        let a = sample();
        assert!(a.is_symmetric(1e-12));
        let b = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0)]);
        assert!(!b.is_symmetric(1e-12));
        let c = CsrMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]);
        assert!(!c.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplets_bounds_checked() {
        let _ = CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = CsrMatrix::<f64>::from_triplets(3, 3, vec![(0, 0, 1.0)]);
        let mut y = vec![9.0; 3];
        a.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0]);
    }
}
