//! Compact-index CSR: `u32` column indices and row pointers.
//!
//! The `usize`-index [`CsrMatrix`] streams
//! ~24 B/nnz through DRAM; canonical HPCG implementations stream ~12 by
//! storing 4-byte indices. On a bandwidth-bound kernel that factor is the
//! attained rate, so `Csr32` halves the matrix stream while computing the
//! **bit-identical** per-row folds — every kernel here visits a row's
//! entries in the same order as the `usize` CSR it was converted from.
//!
//! Conversion is fallible: a matrix whose column space or nonzero count
//! does not fit in `u32` returns [`IndexOverflow`] instead of silently
//! truncating indices.

use crate::csr::CsrMatrix;
use crate::idx::widen;
use rayon::prelude::*;
use xsc_core::Scalar;
use xsc_metrics::traffic::XGather;

/// Why a matrix cannot be represented with compact (`u32`) indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexOverflow {
    /// The row dimension exceeds `u32::MAX`, so row permutations (e.g.
    /// the SELL-C-sigma lane order) would truncate.
    Rows {
        /// The offending row count.
        nrows: usize,
    },
    /// The column dimension exceeds `u32::MAX`, so column indices would
    /// truncate.
    Cols {
        /// The offending column count.
        ncols: usize,
    },
    /// The nonzero count exceeds `u32::MAX`, so row pointers would wrap.
    Nnz {
        /// The offending nonzero count.
        nnz: usize,
    },
}

impl std::fmt::Display for IndexOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexOverflow::Rows { nrows } => {
                write!(
                    f,
                    "nrows {nrows} exceeds u32::MAX; u32 row permutations would truncate"
                )
            }
            IndexOverflow::Cols { ncols } => {
                write!(
                    f,
                    "ncols {ncols} exceeds u32::MAX; u32 column indices would truncate"
                )
            }
            IndexOverflow::Nnz { nnz } => {
                write!(f, "nnz {nnz} exceeds u32::MAX; u32 row pointers would wrap")
            }
        }
    }
}

impl std::error::Error for IndexOverflow {}

/// Checks that a `(ncols, nnz)` shape fits compact `u32` indexing.
/// Factored out so the overflow arms are unit-testable without
/// materializing a four-billion-entry matrix.
pub(crate) fn check_compact_bounds(ncols: usize, nnz: usize) -> Result<(), IndexOverflow> {
    if ncols > u32::MAX as usize {
        return Err(IndexOverflow::Cols { ncols });
    }
    if nnz > u32::MAX as usize {
        return Err(IndexOverflow::Nnz { nnz });
    }
    Ok(())
}

/// A sparse matrix in CSR layout with `u32` column indices and row
/// pointers — the bandwidth-lean twin of
/// [`CsrMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct Csr32<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Scalar> TryFrom<&CsrMatrix<T>> for Csr32<T> {
    type Error = IndexOverflow;

    fn try_from(a: &CsrMatrix<T>) -> Result<Self, IndexOverflow> {
        check_compact_bounds(a.ncols(), a.nnz())?;
        let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
        let mut col_idx = Vec::with_capacity(a.nnz());
        let mut vals = Vec::with_capacity(a.nnz());
        row_ptr.push(0u32);
        for i in 0..a.nrows() {
            let (cols, v) = a.row(i);
            // xsc-lint: allow(A01, reason = "every col < ncols <= u32::MAX per check_compact_bounds above")
            col_idx.extend(cols.iter().map(|&c| c as u32));
            vals.extend_from_slice(v);
            let fill = u32::try_from(col_idx.len())
                .expect("nnz <= u32::MAX checked by check_compact_bounds");
            row_ptr.push(fill);
        }
        Ok(Csr32 {
            nrows: a.nrows(),
            ncols: a.ncols(),
            row_ptr,
            col_idx,
            vals,
        })
    }
}

impl<T: Scalar> Csr32<T> {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `(columns, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let (s, e) = (widen(self.row_ptr[i]), widen(self.row_ptr[i + 1]));
        (&self.col_idx[s..e], &self.vals[s..e])
    }

    /// The raw stored values, in row-major CSR order.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable raw stored values (value-only; structure is fixed).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Column sums `eᵀA` over the stored entries (ABFT reference checksum).
    pub fn column_sums(&self) -> Vec<T> {
        let mut c = vec![T::zero(); self.ncols];
        for (k, &j) in self.col_idx.iter().enumerate() {
            c[widen(j)] += self.vals[k];
        }
        c
    }

    fn width(&self) -> u64 {
        std::mem::size_of::<T>() as u64
    }

    /// Sequential SpMV `y ← Ax`; per-row fold order matches the source
    /// [`CsrMatrix`] bit for bit.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        let _scope = xsc_metrics::record(
            "spmv",
            xsc_metrics::traffic::spmv_csr32(
                self.nrows,
                self.ncols,
                self.nnz(),
                self.width(),
                XGather::Streamed,
            ),
        );
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = T::zero();
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc = v.mul_add(x[widen(c)], acc);
            }
            y[i] = acc;
        }
    }

    /// Thread-parallel SpMV, bit-identical to [`Csr32::spmv`].
    pub fn spmv_par(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        let _scope = xsc_metrics::record(
            "spmv",
            xsc_metrics::traffic::spmv_csr32(
                self.nrows,
                self.ncols,
                self.nnz(),
                self.width(),
                XGather::Streamed,
            ),
        );
        let row_ptr = &self.row_ptr;
        let col_idx = &self.col_idx;
        let vals = &self.vals;
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let (s, e) = (widen(row_ptr[i]), widen(row_ptr[i + 1]));
            let mut acc = T::zero();
            for k in s..e {
                acc = vals[k].mul_add(x[widen(col_idx[k])], acc);
            }
            *yi = acc;
        });
    }

    /// Fused residual `r = b - Ax` in one matrix sweep; same fold as
    /// [`CsrMatrix::fused_residual`](crate::csr::CsrMatrix::fused_residual).
    pub fn fused_residual(&self, x: &[T], b: &[T], r: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "fused_residual x length mismatch");
        assert_eq!(b.len(), self.nrows, "fused_residual b length mismatch");
        assert_eq!(r.len(), self.nrows, "fused_residual r length mismatch");
        let w = self.width();
        let _scope = xsc_metrics::record(
            "spmv",
            xsc_metrics::traffic::spmv_csr32(
                self.nrows,
                self.ncols,
                self.nnz(),
                w,
                XGather::Streamed,
            )
            .plus(xsc_metrics::Traffic {
                flops: 0,
                bytes_read: w * self.nrows as u64,
                bytes_written: 0,
            }),
        );
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = b[i];
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc = (-v).mul_add(x[widen(c)], acc);
            }
            r[i] = acc;
        }
    }

    /// The diagonal entries (zero where a row has no diagonal entry).
    pub fn diagonal(&self) -> Vec<T> {
        let mut d = vec![T::zero(); self.nrows];
        for i in 0..self.nrows.min(self.ncols) {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if widen(c) == i {
                    d[i] = v;
                }
            }
        }
        d
    }
}

impl Csr32<f64> {
    /// One symmetric Gauss–Seidel application (natural order, forward then
    /// backward sweep) over the compact storage. Arithmetic per row matches
    /// `xsc_sparse::symgs::symgs` exactly.
    pub fn symgs(&self, b: &[f64], x: &mut [f64]) {
        let n = self.nrows;
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        let _scope = xsc_metrics::record(
            "symgs",
            xsc_metrics::traffic::symgs_csr32(
                self.nrows,
                self.ncols,
                self.nnz(),
                8,
                XGather::Streamed,
            ),
        );
        for i in 0..n {
            self.gs_update(i, b, x);
        }
        for i in (0..n).rev() {
            self.gs_update(i, b, x);
        }
    }

    #[inline]
    fn gs_update(&self, i: usize, b: &[f64], x: &mut [f64]) {
        let (cols, vals) = self.row(i);
        let mut acc = b[i];
        let mut diag = 0.0;
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            if widen(c) == i {
                diag = v;
            } else {
                acc -= v * x[widen(c)];
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {i}");
        x[i] = acc / diag;
    }

    /// One parallel multicolor symmetric Gauss–Seidel application over the
    /// compact storage: same class ordering (ascending, then descending)
    /// and same collect-then-apply row updates as
    /// `xsc_sparse::coloring::colored_symgs`, so the two are bit-identical.
    pub fn colored_symgs(&self, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]) {
        let _scope = xsc_metrics::record(
            "symgs",
            xsc_metrics::traffic::symgs_csr32(
                self.nrows,
                self.ncols,
                self.nnz(),
                8,
                XGather::Streamed,
            ),
        );
        let sweep = |x: &mut [f64], class: &[usize]| {
            let updates: Vec<(usize, f64)> = class
                .par_iter()
                .map(|&i| {
                    let (cols, vals) = self.row(i);
                    let mut acc = b[i];
                    let mut diag = 0.0;
                    for (&c, &v) in cols.iter().zip(vals.iter()) {
                        if widen(c) == i {
                            diag = v;
                        } else {
                            acc -= v * x[widen(c)];
                        }
                    }
                    (i, acc / diag)
                })
                .collect();
            for (i, v) in updates {
                x[i] = v;
            }
        };
        for class in classes {
            sweep(x, class);
        }
        for class in classes.iter().rev() {
            sweep(x, class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    fn sample() -> CsrMatrix<f64> {
        build_matrix(Geometry::new(5, 4, 3))
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let a = sample();
        let c = Csr32::try_from(&a).unwrap();
        assert_eq!(c.nrows(), a.nrows());
        assert_eq!(c.ncols(), a.ncols());
        assert_eq!(c.nnz(), a.nnz());
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let (c32, v32) = c.row(i);
            assert_eq!(vals, v32);
            assert!(cols.iter().zip(c32.iter()).all(|(&u, &v)| u == v as usize));
        }
    }

    #[test]
    fn spmv_is_bit_identical_to_usize_csr() {
        let a = sample();
        let c = Csr32::try_from(&a).unwrap();
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 % 101) as f64).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        let mut y3 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        c.spmv(&x, &mut y2);
        c.spmv_par(&x, &mut y3);
        assert_eq!(y1, y2);
        assert_eq!(y1, y3);
    }

    #[test]
    fn fused_residual_is_bit_identical_to_usize_csr() {
        let a = sample();
        let c = Csr32::try_from(&a).unwrap();
        let (b, _) = build_rhs(&a);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).cos()).collect();
        let mut r1 = vec![0.0; n];
        let mut r2 = vec![0.0; n];
        a.fused_residual(&x, &b, &mut r1);
        c.fused_residual(&x, &b, &mut r2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn symgs_is_bit_identical_to_reference() {
        let a = sample();
        let c = Csr32::try_from(&a).unwrap();
        let (b, _) = build_rhs(&a);
        let mut x1 = vec![0.0; a.nrows()];
        let mut x2 = vec![0.0; a.nrows()];
        for _ in 0..3 {
            crate::symgs::symgs(&a, &b, &mut x1);
            c.symgs(&b, &mut x2);
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn colored_symgs_is_bit_identical_to_reference() {
        let a = sample();
        let c = Csr32::try_from(&a).unwrap();
        let (b, _) = build_rhs(&a);
        let classes = crate::coloring::color_classes(&crate::coloring::greedy_coloring(&a));
        let mut x1 = vec![0.0; a.nrows()];
        let mut x2 = vec![0.0; a.nrows()];
        for _ in 0..3 {
            crate::coloring::colored_symgs(&a, &classes, &b, &mut x1);
            c.colored_symgs(&classes, &b, &mut x2);
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn diagonal_matches() {
        let a = sample();
        let c = Csr32::try_from(&a).unwrap();
        assert_eq!(a.diagonal(), c.diagonal());
    }

    #[test]
    fn huge_ncols_is_rejected_not_truncated() {
        let wide = CsrMatrix::<f64>::from_triplets(1, u32::MAX as usize + 2, vec![]);
        let err = Csr32::try_from(&wide).unwrap_err();
        assert_eq!(
            err,
            IndexOverflow::Cols {
                ncols: u32::MAX as usize + 2
            }
        );
        assert!(err.to_string().contains("truncate"));
    }

    #[test]
    fn huge_nnz_is_rejected_not_wrapped() {
        // A real 2^32-entry matrix would need >48 GiB; the bounds check is
        // factored out precisely so this arm stays testable.
        let err = check_compact_bounds(10, u32::MAX as usize + 1).unwrap_err();
        assert_eq!(
            err,
            IndexOverflow::Nnz {
                nnz: u32::MAX as usize + 1
            }
        );
        assert!(err.to_string().contains("wrap"));
        assert!(check_compact_bounds(10, u32::MAX as usize).is_ok());
    }
}
