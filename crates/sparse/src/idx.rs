//! The index-widening chokepoint (lint rule X01).
//!
//! The compact sparse formats ([`crate::csr32`], [`crate::sell`]) store
//! column indices and permutations as `u32` to halve index-stream
//! bandwidth, and decode them back to `usize` on every access. Rule X01
//! keeps those decodes auditable by routing them through this one
//! function instead of scattering `as usize` through the kernels; the
//! narrowing direction (`usize` → `u32`) stays with `u32::try_from` at
//! construction, where rule A01 polices it.

/// Widens a stored `u32` index to `usize`. Lossless on every supported
/// target (`usize` is at least 32 bits on all Rust platforms with this
/// workspace's kernels).
#[inline(always)]
pub fn widen(i: u32) -> usize {
    i as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn widen_is_identity_on_values() {
        assert_eq!(super::widen(0), 0usize);
        assert_eq!(super::widen(u32::MAX), u32::MAX as usize);
    }
}
