//! Algorithm-based fault tolerance (ABFT) guards for the sparse stack.
//!
//! Silent data corruption (SDC) is the keynote's nightmare failure mode at
//! extreme scale: a bit flips in DRAM or a register, no machine check
//! fires, and the solver happily converges to the wrong answer — or
//! diverges after burning a million node-hours. The cure the keynote
//! prescribes is *algorithmic*: exploit invariants the mathematics already
//! pays for, so detection costs `O(n)` against kernels that cost
//! `O(nnz)`.
//!
//! This module provides the detector layer:
//!
//! * [`SpmvGuard`] — the column-sum checksum invariant
//!   `eᵀ(Ax) = (eᵀA)·x`. The reference vector `eᵀA` is computed once per
//!   matrix; each guarded SpMV then spends one dot product and one sum
//!   (`4n` flops, `16n` bytes) to cross-check the `2·nnz`-flop kernel.
//!   Corruption of a stored matrix value, an input entry gathered by the
//!   sweep, or an output entry all break the identity.
//! * [`SdcDetected`] — the typed verdict every detector reports, carrying
//!   enough context (which invariant, observed vs tolerated magnitude) for
//!   recovery policies to decide between rollback and abort.
//! * [`CheckedApply`] — self-checking preconditioner application. The
//!   multigrid implementation (in [`mg`](crate::mg)) verifies its V-cycle
//!   *contracted* the residual; a corrupted smoother sweep or transfer
//!   operator shows up as an expansion instead.
//! * [`residual_drift`] — the recomputed-vs-recurred residual check used
//!   by the protected Krylov loop: CG's recurrence `r ← r − αAp` and the
//!   direct evaluation `b − Ax` agree to rounding unless state was
//!   corrupted.
//!
//! Every detector uses the same fixed-tree pairwise reductions as the
//! solvers, so verdicts are bit-reproducible across runs and thread
//! counts — a chaos campaign that detects a fault once detects it every
//! time.

use crate::ops::SparseOps;
use xsc_core::blas1;

/// Default relative tolerance for the SpMV checksum cross-check.
///
/// Pairwise reductions keep rounding error near `eps·log₂(n)·κ` where `κ`
/// is the summation condition number; `1e-8` leaves ~7 decimal digits of
/// slack above `f64` rounding for the ill-conditioned stencil sums while
/// still catching exponent-bit flips (which perturb values by factors of
/// `2^±512`) and most mantissa flips.
pub const DEFAULT_CHECKSUM_TOL: f64 = 1e-8;

/// A detected silent-data-corruption event: which invariant broke and by
/// how much. `observed` and `tolerated` are the dimensionless relative
/// magnitudes the detector compared, so reports can rank severity.
#[derive(Debug, Clone, PartialEq)]
pub enum SdcDetected {
    /// The SpMV column-sum identity `eᵀ(Ax) = (eᵀA)·x` failed.
    SpmvChecksum {
        /// Relative checksum mismatch `|Σy − c·x| / scale`.
        observed: f64,
        /// The tolerance it exceeded.
        tolerated: f64,
    },
    /// The recurrence residual drifted from the recomputed `b − Ax`.
    ResidualDrift {
        /// Iteration at which the drift was measured.
        iteration: usize,
        /// Relative drift `‖r_rec − r_true‖ / ‖b‖`.
        observed: f64,
        /// The tolerance it exceeded.
        tolerated: f64,
    },
    /// A monitored norm jumped by an implausible factor in one iteration.
    NormJump {
        /// Iteration at which the jump was observed.
        iteration: usize,
        /// Ratio of the new norm to the previous one.
        observed: f64,
        /// The largest plausible ratio.
        tolerated: f64,
    },
    /// A multigrid V-cycle failed to contract the residual.
    MgNoContraction {
        /// `pre` if the pre-smooth expanded the input residual, `post` if
        /// the full cycle expanded the pre-smooth residual.
        phase: &'static str,
        /// Ratio of the after-norm to the before-norm.
        observed: f64,
        /// The largest ratio the slack allows.
        tolerated: f64,
    },
    /// The CG curvature `pᵀAp` was non-positive or non-finite — on an SPD
    /// operator that can only happen through corrupted state.
    NegativeCurvature {
        /// Iteration at which the curvature was observed.
        iteration: usize,
        /// The offending `pᵀAp` value.
        value: f64,
    },
    /// The residual norm froze for several consecutive iterations — the
    /// signature of a corrupted search direction: a huge entry in `p`
    /// leaves the CG state consistent (no residual invariant breaks) but
    /// drives the step size `α = rᵀz / pᵀAp` to zero. Recovery is a
    /// direction restart (`p ← z`), not a rollback.
    Stalled {
        /// Iteration at which the stall was declared.
        iteration: usize,
        /// Consecutive frozen iterations that triggered the verdict.
        window: usize,
    },
    /// A non-finite value surfaced in a checked quantity.
    NonFinite {
        /// Which checked quantity went non-finite.
        what: &'static str,
    },
}

impl std::fmt::Display for SdcDetected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdcDetected::SpmvChecksum {
                observed,
                tolerated,
            } => write!(
                f,
                "spmv checksum mismatch {observed:.3e} (tol {tolerated:.3e})"
            ),
            SdcDetected::ResidualDrift {
                iteration,
                observed,
                tolerated,
            } => write!(
                f,
                "residual drift {observed:.3e} at iteration {iteration} (tol {tolerated:.3e})"
            ),
            SdcDetected::NormJump {
                iteration,
                observed,
                tolerated,
            } => write!(
                f,
                "norm jump x{observed:.3e} at iteration {iteration} (limit x{tolerated:.3e})"
            ),
            SdcDetected::MgNoContraction {
                phase,
                observed,
                tolerated,
            } => write!(
                f,
                "mg {phase}-smooth expansion x{observed:.3e} (limit x{tolerated:.3e})"
            ),
            SdcDetected::NegativeCurvature { iteration, value } => write!(
                f,
                "non-positive curvature p'Ap = {value:.3e} at iteration {iteration}"
            ),
            SdcDetected::Stalled { iteration, window } => write!(
                f,
                "residual frozen for {window} iterations at iteration {iteration}"
            ),
            SdcDetected::NonFinite { what } => write!(f, "non-finite {what}"),
        }
    }
}

impl std::error::Error for SdcDetected {}

/// Column-sum checksum guard for SpMV: precomputes `c = eᵀA` once, then
/// verifies `Σᵢ(Ax)ᵢ = c·x` after each product.
///
/// The reference checksum is taken over the *stored* entries (SELL padding
/// slots included — they are exact zeros when healthy, so a corrupted pad
/// perturbs the sum exactly as it perturbs the kernel). Rebuild the guard
/// with [`SpmvGuard::refresh`] after restoring matrix values from a
/// checkpoint.
#[derive(Debug, Clone)]
pub struct SpmvGuard {
    colsums: Vec<f64>,
    tol: f64,
}

impl SpmvGuard {
    /// Builds the guard for `a` with [`DEFAULT_CHECKSUM_TOL`].
    pub fn new<A: SparseOps + ?Sized>(a: &A) -> Self {
        SpmvGuard::with_tol(a, DEFAULT_CHECKSUM_TOL)
    }

    /// Builds the guard for `a` with an explicit relative tolerance.
    pub fn with_tol<A: SparseOps + ?Sized>(a: &A, tol: f64) -> Self {
        SpmvGuard {
            colsums: a.column_sums(),
            tol,
        }
    }

    /// Recomputes the reference checksum from `a`'s current values (after
    /// a checkpoint restore rewrote them).
    pub fn refresh<A: SparseOps + ?Sized>(&mut self, a: &A) {
        self.colsums = a.column_sums();
    }

    /// The relative tolerance verdicts are issued against.
    pub fn tol(&self) -> f64 {
        self.tol
    }

    /// Verifies the identity for a product `y = Ax` computed elsewhere.
    ///
    /// The mismatch `|Σy − c·x|` is normalised by `|c|·|x| + |Σ|y||`, the
    /// magnitude actually summed, so a well-conditioned tolerance covers
    /// ill-conditioned cancellation in the checksums themselves.
    pub fn check(&self, x: &[f64], y: &[f64]) -> Result<(), SdcDetected> {
        let _scope = xsc_metrics::record(
            "abft_checksum",
            xsc_metrics::traffic::spmv_checksum_check(y.len(), 8),
        );
        let lhs = blas1::sum_pairwise(y);
        let rhs = blas1::dot_pairwise(&self.colsums, x);
        // Magnitude scale of the two reductions, accumulated without
        // cancellation. Sequential fold: only feeds the tolerance, and is
        // itself deterministic.
        let mut scale = f64::MIN_POSITIVE;
        for (c, xi) in self.colsums.iter().zip(x.iter()) {
            scale += (c * xi).abs();
        }
        for yi in y {
            scale += yi.abs();
        }
        let observed = (lhs - rhs).abs() / scale;
        // `!(.. <= ..)` so NaN anywhere in the reductions also trips.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(observed <= self.tol) {
            return Err(SdcDetected::SpmvChecksum {
                observed,
                tolerated: self.tol,
            });
        }
        Ok(())
    }

    /// Guarded parallel SpMV: computes `y ← Ax` and cross-checks it.
    pub fn spmv<A: SparseOps + ?Sized>(
        &self,
        a: &A,
        x: &[f64],
        y: &mut [f64],
    ) -> Result<(), SdcDetected> {
        a.spmv_par(x, y);
        self.check(x, y)
    }

    /// Flops one [`SpmvGuard::check`] spends (`2n` dot + `n` sum + `~n`
    /// scale) — the detector-cost number quoted in DESIGN.md.
    pub fn flops_per_check(&self) -> u64 {
        4 * self.colsums.len() as u64
    }
}

/// Relative drift between the recurrence residual `r_rec` (CG's
/// `r ← r − αAp`) and the directly recomputed `b − Ax`, normalised by
/// `‖b‖`. Writes the recomputed residual into `scratch`.
///
/// Costs one SpMV sweep (`2·nnz` flops) plus `3n` for the difference
/// norm — which is why the protected loop only evaluates it every few
/// iterations and at checkpoint boundaries rather than every step.
pub fn residual_drift<A: SparseOps + ?Sized>(
    a: &A,
    x: &[f64],
    b: &[f64],
    r_rec: &[f64],
    scratch: &mut [f64],
) -> f64 {
    a.fused_residual(x, b, scratch);
    let _scope = xsc_metrics::record(
        "abft_drift",
        xsc_metrics::traffic::residual_drift_extra(b.len(), 8),
    );
    let bnorm = blas1::nrm2(b).max(f64::MIN_POSITIVE);
    let mut diff2 = 0.0;
    for (t, r) in scratch.iter().zip(r_rec.iter()) {
        let d = t - r;
        diff2 += d * d;
    }
    diff2.sqrt() / bnorm
}

/// A preconditioner that can verify its own application.
///
/// `apply_checked` computes `z ← M⁻¹r` exactly as
/// [`Preconditioner::apply`](crate::cg::Preconditioner::apply) would —
/// same arithmetic, bit-identical `z` — and additionally audits an
/// invariant of the application, reporting [`SdcDetected`] when it fails.
pub trait CheckedApply: crate::cg::Preconditioner {
    /// Applies the preconditioner and verifies its invariant.
    fn apply_checked(&self, r: &[f64], z: &mut [f64]) -> Result<(), SdcDetected>;

    /// Flops of one checked application (application plus detector).
    fn flops_per_checked_apply(&self) -> u64 {
        self.flops_per_apply()
    }
}

/// The identity has no invariant to audit beyond finiteness of its input.
impl CheckedApply for crate::cg::Identity {
    fn apply_checked(&self, r: &[f64], z: &mut [f64]) -> Result<(), SdcDetected> {
        z.copy_from_slice(r);
        let norm = blas1::nrm2(z);
        if !norm.is_finite() {
            return Err(SdcDetected::NonFinite {
                what: "preconditioner input",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FormatMatrix, SparseFormat};
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    #[test]
    fn healthy_spmv_passes_on_every_format() {
        let a = build_matrix(Geometry::new(6, 6, 6));
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.7 - 3.0).collect();
        for fmt in SparseFormat::all() {
            let m = FormatMatrix::convert(a.clone(), fmt).unwrap();
            let guard = SpmvGuard::new(&m);
            let mut y = vec![0.0; n];
            guard.spmv(&m, &x, &mut y).unwrap_or_else(|e| {
                panic!("false positive on healthy {fmt}: {e}");
            });
        }
    }

    #[test]
    fn corrupted_matrix_value_is_detected() {
        let a = build_matrix(Geometry::new(6, 6, 6));
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 1.0).collect();
        for fmt in SparseFormat::all() {
            let mut m = FormatMatrix::convert(a.clone(), fmt).unwrap();
            let guard = SpmvGuard::new(&m);
            let mid = m.values().len() / 2;
            m.values_mut()[mid] += 1e6;
            let mut y = vec![0.0; n];
            let err = guard.spmv(&m, &x, &mut y);
            assert!(
                matches!(err, Err(SdcDetected::SpmvChecksum { .. })),
                "{fmt}: corruption slipped through: {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_output_entry_is_detected() {
        let a = build_matrix(Geometry::new(5, 5, 5));
        let n = a.nrows();
        let x = vec![1.0; n];
        let guard = SpmvGuard::new(&a);
        let mut y = vec![0.0; n];
        crate::ops::SparseOps::spmv(&a, &x, &mut y);
        // Row 0 is a boundary row: with x = e its product entry is nonzero,
        // so the exponent-bit flip changes it by a factor of 2^512.
        assert_ne!(y[0], 0.0);
        y[0] = f64::from_bits(y[0].to_bits() ^ (1u64 << 61));
        assert!(guard.check(&x, &y).is_err());
    }

    #[test]
    fn nan_in_product_is_detected() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let n = a.nrows();
        let x = vec![1.0; n];
        let guard = SpmvGuard::new(&a);
        let mut y = vec![0.0; n];
        crate::ops::SparseOps::spmv(&a, &x, &mut y);
        y[0] = f64::NAN;
        assert!(guard.check(&x, &y).is_err());
    }

    #[test]
    fn drift_is_tiny_for_consistent_state_and_large_after_corruption() {
        let a = build_matrix(Geometry::new(6, 6, 6));
        let (b, _) = build_rhs(&a);
        let n = a.nrows();
        let mut x = vec![0.0; n];
        let _ = crate::cg::pcg(&a, &b, &mut x, 5, 0.0, &crate::cg::Identity);
        // Recompute the true residual for the current iterate: drift of the
        // recomputed residual against itself is exactly zero, and against a
        // corrupted copy it is large.
        let mut r_true = vec![0.0; n];
        crate::ops::SparseOps::fused_residual(&a, &x, &b, &mut r_true);
        let mut scratch = vec![0.0; n];
        let clean = residual_drift(&a, &x, &b, &r_true, &mut scratch);
        assert!(clean < 1e-14, "self-drift {clean:.3e}");
        let mut r_bad = r_true.clone();
        r_bad[n / 2] += 1e3;
        let dirty = residual_drift(&a, &x, &b, &r_bad, &mut scratch);
        assert!(dirty > 1.0, "corrupted drift {dirty:.3e}");
    }

    #[test]
    fn identity_checked_apply_matches_plain_and_flags_nan() {
        let r = vec![1.0, -2.0, 3.0];
        let mut z = vec![0.0; 3];
        crate::cg::Identity.apply_checked(&r, &mut z).unwrap();
        assert_eq!(z, r);
        let bad = vec![1.0, f64::NAN, 0.0];
        assert!(crate::cg::Identity.apply_checked(&bad, &mut z).is_err());
    }

    #[test]
    fn guard_refresh_tracks_restored_values() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let mut m = FormatMatrix::convert(a, SparseFormat::Csr32).unwrap();
        let pristine = m.values().to_vec();
        let mut guard = SpmvGuard::new(&m);
        m.values_mut()[0] += 42.0;
        guard.refresh(&m); // checksum now matches the corrupted matrix...
        let n = m.nrows();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        assert!(guard.spmv(&m, &x, &mut y).is_ok());
        // ...and after a restore + refresh it matches the pristine one.
        m.values_mut().copy_from_slice(&pristine);
        guard.refresh(&m);
        assert!(guard.spmv(&m, &x, &mut y).is_ok());
    }
}
