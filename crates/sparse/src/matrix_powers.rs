//! The matrix-powers kernel: `[x, Ax, A²x, …, Aˢx]` in one logical pass.
//!
//! Communication-avoiding Krylov methods trade `s` synchronized SpMVs for
//! one matrix-powers invocation whose ghost zones are exchanged *once* and
//! deepened `s` layers. This module computes the basis (exactly, by
//! repeated SpMV — the node-local arithmetic is identical) and *accounts*
//! the communication both ways, so the experiments can show the `s×`
//! reduction in message rounds that motivates s-step methods.

use crate::csr::CsrMatrix;

/// The Krylov basis `[x, Ax, …, Aˢx]` plus the communication accounting of
/// computing it naively vs with a single deepened-ghost-zone exchange.
#[derive(Debug)]
pub struct MatrixPowers {
    /// `s + 1` vectors, `basis[k] = Aᵏ x`.
    pub basis: Vec<Vec<f64>>,
    /// Communication rounds a naive implementation needs (`s` exchanges).
    pub naive_rounds: usize,
    /// Communication rounds the CA kernel needs (one deepened exchange).
    pub ca_rounds: usize,
    /// Ghost-zone words per round, naive (1-deep halo per exchange).
    pub naive_words_per_round: usize,
    /// Ghost-zone words of the single CA exchange (`s`-deep halo).
    pub ca_words: usize,
}

/// Computes the matrix-powers basis for a row-partitioned operator.
///
/// `halo_rows` is the per-exchange 1-deep ghost-zone size of the intended
/// partitioning (for the stencil: one grid plane per neighbor). The CA
/// variant exchanges an `s`-deep halo once: `s × halo_rows` words, but a
/// single latency.
pub fn matrix_powers(a: &CsrMatrix<f64>, x: &[f64], s: usize, halo_rows: usize) -> MatrixPowers {
    assert!(s >= 1, "need at least one power");
    assert_eq!(x.len(), a.ncols(), "vector length mismatch");
    let mut basis = Vec::with_capacity(s + 1);
    basis.push(x.to_vec());
    for k in 0..s {
        let mut next = vec![0.0; a.nrows()];
        a.spmv_par(&basis[k], &mut next);
        basis.push(next);
    }
    MatrixPowers {
        basis,
        naive_rounds: s,
        ca_rounds: 1,
        naive_words_per_round: halo_rows,
        ca_words: s * halo_rows,
    }
}

impl MatrixPowers {
    /// Latency-rounds saved by the CA formulation.
    pub fn rounds_saved(&self) -> usize {
        self.naive_rounds - self.ca_rounds
    }

    /// Total words moved, naive vs CA (equal up to overlap effects: CA
    /// moves the same volume in one round).
    pub fn words(&self) -> (usize, usize) {
        (
            self.naive_rounds * self.naive_words_per_round,
            self.ca_words,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{build_matrix, Geometry};

    #[test]
    fn basis_entries_are_true_powers() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 5) as f64 - 2.0).collect();
        let mp = matrix_powers(&a, &x, 3, 16);
        assert_eq!(mp.basis.len(), 4);
        // Check A(A x) == basis[2] by recomputation.
        let mut ax = vec![0.0; a.nrows()];
        a.spmv(&x, &mut ax);
        let mut aax = vec![0.0; a.nrows()];
        a.spmv(&ax, &mut aax);
        for (u, v) in mp.basis[2].iter().zip(aax.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn communication_accounting() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let x = vec![1.0; a.nrows()];
        let mp = matrix_powers(&a, &x, 4, 100);
        assert_eq!(mp.naive_rounds, 4);
        assert_eq!(mp.ca_rounds, 1);
        assert_eq!(mp.rounds_saved(), 3);
        let (naive_w, ca_w) = mp.words();
        assert_eq!(naive_w, 400);
        assert_eq!(ca_w, 400); // same volume, one round
    }

    #[test]
    fn s_equals_one_degenerates_to_spmv() {
        let a = build_matrix(Geometry::new(3, 3, 3));
        let x = vec![1.0; a.nrows()];
        let mp = matrix_powers(&a, &x, 1, 9);
        assert_eq!(mp.basis.len(), 2);
        assert_eq!(mp.rounds_saved(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one power")]
    fn zero_powers_rejected() {
        let a = build_matrix(Geometry::new(2, 2, 2));
        let x = vec![1.0; a.nrows()];
        let _ = matrix_powers(&a, &x, 0, 1);
    }
}
