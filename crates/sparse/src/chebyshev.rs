//! Chebyshev polynomial smoothing — the synchronization-free smoother.
//!
//! Gauss–Seidel needs the latest neighbor values (sequential); Jacobi is
//! parallel but weak. The Chebyshev smoother is the extreme-scale answer
//! the keynote's program converges on: a fixed polynomial in `A` built
//! from SpMV + axpy only — **no dot products, no sequential sweeps, no
//! synchronization beyond the SpMV** — with damping quality chosen by the
//! polynomial degree. Needs an upper eigenvalue estimate, supplied by a
//! few power iterations.

use crate::ops::SparseOps;
use xsc_core::blas1;

/// Estimates the largest eigenvalue of symmetric `a` by power iteration
/// (relative accuracy of a few percent after ~10 iterations — all the
/// smoother needs; Chebyshev bounds are customarily padded anyway).
pub fn power_method_lmax<A: SparseOps + ?Sized>(a: &A, iters: usize, seed: u64) -> f64 {
    let n = a.nrows();
    assert!(n > 0);
    // Deterministic pseudo-random start vector.
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed);
            xsc_core::cast::count_f64(h % 1000) / 1000.0 + 0.5
        })
        .collect();
    let mut av = vec![0.0; n];
    let mut lambda = 1.0;
    for _ in 0..iters.max(1) {
        let norm = blas1::nrm2(&v).max(f64::MIN_POSITIVE);
        for x in v.iter_mut() {
            *x /= norm;
        }
        a.spmv_par(&v, &mut av);
        lambda = blas1::dot_pairwise(&v, &av);
        std::mem::swap(&mut v, &mut av);
    }
    lambda
}

/// A degree-`k` Chebyshev smoother targeting the eigenvalue interval
/// `[lmax/ratio, lmax]` (the standard AMG choice is `ratio ≈ 4`–`30`:
/// smoothers only need to damp the *upper* part of the spectrum).
#[derive(Debug, Clone, Copy)]
pub struct ChebyshevSmoother {
    /// Upper bound of the damped interval (≳ λmax).
    pub lmax: f64,
    /// Lower bound of the damped interval.
    pub lmin: f64,
    /// Polynomial degree (number of SpMVs per application).
    pub degree: usize,
}

impl ChebyshevSmoother {
    /// Builds a smoother for `a`: estimates λmax, pads it by 10 %, and
    /// damps `[λmax/ratio, λmax]` with the given degree.
    pub fn for_matrix<A: SparseOps + ?Sized>(a: &A, degree: usize, ratio: f64) -> Self {
        assert!(degree >= 1, "degree must be at least 1");
        assert!(ratio > 1.0, "interval ratio must exceed 1");
        let lmax = 1.1 * power_method_lmax(a, 12, 7);
        ChebyshevSmoother {
            lmax,
            lmin: lmax / ratio,
            degree,
        }
    }

    /// One smoother application on `A x = b` (`x` updated in place).
    /// Classic three-term recurrence; every operation is an SpMV or an
    /// axpy — embarrassingly parallel.
    pub fn apply<A: SparseOps + ?Sized>(&self, a: &A, b: &[f64], x: &mut [f64]) {
        let n = a.nrows();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        let theta = 0.5 * (self.lmax + self.lmin);
        let delta = 0.5 * (self.lmax - self.lmin);
        debug_assert!(delta > 0.0);
        let sigma = theta / delta;
        let mut rho = 1.0 / sigma;

        let mut r = vec![0.0; n];
        a.residual(x, b, &mut r);
        let mut d: Vec<f64> = r.iter().map(|&ri| ri / theta).collect();
        let mut ad = vec![0.0; n];
        for k in 0..self.degree {
            blas1::axpy(1.0, &d, x);
            if k + 1 == self.degree {
                break;
            }
            a.spmv_par(&d, &mut ad);
            blas1::axpy(-1.0, &ad, &mut r);
            let rho_new = 1.0 / (2.0 * sigma - rho);
            for i in 0..n {
                d[i] = rho_new * rho * d[i] + 2.0 * rho_new / delta * r[i];
            }
            rho = rho_new;
        }
    }

    /// Flops of one application: `degree` SpMVs plus O(n) vector work.
    pub fn flops_per_apply<A: SparseOps + ?Sized>(&self, a: &A) -> u64 {
        self.degree as u64 * 2 * a.nnz() as u64 + 6 * a.nrows() as u64 * self.degree as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::stencil::{build_matrix, build_rhs, Geometry};
    use crate::symgs::symgs;

    fn residual_norm(a: &CsrMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.residual(x, b, &mut r);
        blas1::nrm2(&r)
    }

    #[test]
    fn power_method_brackets_gershgorin() {
        let a = build_matrix(Geometry::new(8, 8, 8));
        let lmax = power_method_lmax(&a, 20, 1);
        // 27-point stencil: diag 26, off-diag row sum <= 26 => λmax <= 52;
        // and λmax >= 26 (diagonal Rayleigh quotient exists).
        assert!(lmax > 20.0 && lmax <= 52.5, "lmax {lmax}");
    }

    #[test]
    fn smoother_reduces_residual_monotonically_over_applications() {
        let a = build_matrix(Geometry::new(6, 6, 6));
        let (b, _) = build_rhs(&a);
        let s = ChebyshevSmoother::for_matrix(&a, 4, 30.0);
        let mut x = vec![0.0; a.nrows()];
        let mut prev = residual_norm(&a, &x, &b);
        for _ in 0..6 {
            s.apply(&a, &b, &mut x);
            let cur = residual_norm(&a, &x, &b);
            assert!(cur < prev, "{cur} vs {prev}");
            prev = cur;
        }
    }

    #[test]
    fn higher_degree_smooths_harder() {
        let a = build_matrix(Geometry::new(6, 6, 6));
        let (b, _) = build_rhs(&a);
        let lo = ChebyshevSmoother::for_matrix(&a, 2, 30.0);
        let hi = ChebyshevSmoother::for_matrix(&a, 6, 30.0);
        let mut x2 = vec![0.0; a.nrows()];
        lo.apply(&a, &b, &mut x2);
        let mut x6 = vec![0.0; a.nrows()];
        hi.apply(&a, &b, &mut x6);
        assert!(residual_norm(&a, &x6, &b) < residual_norm(&a, &x2, &b));
    }

    #[test]
    fn exact_solution_is_fixed_point() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let (b, x_exact) = build_rhs(&a);
        let s = ChebyshevSmoother::for_matrix(&a, 3, 10.0);
        let mut x = x_exact.clone();
        s.apply(&a, &b, &mut x);
        for (xi, ei) in x.iter().zip(x_exact.iter()) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn competitive_with_symgs_at_moderate_degree() {
        // A degree-4 Chebyshev application (4 parallel SpMVs) should damp
        // at least a comparable amount to one sequential SymGS sweep pair.
        let a = build_matrix(Geometry::new(8, 8, 8));
        let (b, _) = build_rhs(&a);
        let s = ChebyshevSmoother::for_matrix(&a, 4, 30.0);
        let mut xc = vec![0.0; a.nrows()];
        s.apply(&a, &b, &mut xc);
        let mut xg = vec![0.0; a.nrows()];
        symgs(&a, &b, &mut xg);
        let rc = residual_norm(&a, &xc, &b);
        let rg = residual_norm(&a, &xg, &b);
        assert!(rc < rg * 3.0, "chebyshev {rc} vs symgs {rg}");
    }

    #[test]
    fn flops_accounting_scales_with_degree() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let s2 = ChebyshevSmoother {
            lmax: 50.0,
            lmin: 5.0,
            degree: 2,
        };
        let s4 = ChebyshevSmoother {
            lmax: 50.0,
            lmin: 5.0,
            degree: 4,
        };
        assert!(s4.flops_per_apply(&a) > s2.flops_per_apply(&a));
    }
}
