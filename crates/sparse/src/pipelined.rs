//! Pipelined conjugate gradients (Ghysels–Vanroose).
//!
//! At extreme scale the two dot products in every CG iteration become
//! global allreduces whose latency cannot be hidden — the keynote's
//! "synchronization-reducing algorithms" bullet. Pipelined CG restructures
//! the recurrences so one *merged* reduction per iteration computes both
//! scalars, and that reduction overlaps the next SpMV, at the cost of
//! three extra vectors and slightly weaker numerical robustness.

use crate::csr::CsrMatrix;
use xsc_core::blas1;

/// Result of a pipelined CG solve.
#[derive(Debug, Clone)]
pub struct PipelinedCgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Relative recurrence-residual history (index 0 = initial).
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Global reduction *phases* executed. Classic CG needs two dependent
    /// phases per iteration; pipelined CG needs one.
    pub reduction_phases: usize,
}

/// Pipelined CG on `A x = b` (no preconditioner), following Ghysels &
/// Vanroose (2014), Algorithm 3. `x` is updated in place.
///
/// Per iteration: one SpMV (`m = A w`), one merged reduction computing
/// `γ = (r,r)` and `δ = (w,r)`, and five independent axpys. In a
/// distributed run the SpMV overlaps the reduction; here the *schedule* is
/// reproduced and the reduction phases are counted for the scale model.
pub fn pipelined_cg(
    a: &CsrMatrix<f64>,
    b: &[f64],
    x: &mut [f64],
    max_iters: usize,
    tol: f64,
) -> PipelinedCgResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    let bnorm = blas1::nrm2(b).max(f64::MIN_POSITIVE);

    let mut r = vec![0.0; n];
    a.residual(x, b, &mut r);
    let mut w = vec![0.0; n];
    a.spmv_par(&r, &mut w); // w = A r

    // Merged reduction #0: gamma = (r,r), delta = (w,r).
    let mut gamma = blas1::dot_pairwise(&r, &r);
    let mut delta = blas1::dot_pairwise(&w, &r);
    let mut reduction_phases = 1;

    let mut m = vec![0.0; n];
    a.spmv_par(&w, &mut m); // m = A w (overlaps reduction #0 at scale)

    let mut z = vec![0.0; n]; // z = A s
    let mut s = vec![0.0; n]; // s = A p
    let mut p = vec![0.0; n];

    let mut history = vec![gamma.max(0.0).sqrt() / bnorm];
    let mut converged = history[0] <= tol;
    let mut iterations = 0;
    let mut alpha = 0.0f64;
    let mut gamma_prev = gamma;

    while !converged && iterations < max_iters {
        iterations += 1;
        if iterations == 1 {
            alpha = gamma / guard(delta);
            p.copy_from_slice(&r);
            s.copy_from_slice(&w);
            z.copy_from_slice(&m);
        } else {
            // beta and alpha from the merged scalars of the previous step.
            let beta = gamma / guard(gamma_prev);
            alpha = gamma / guard(delta - beta * gamma / guard(alpha));
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
                s[i] = w[i] + beta * s[i];
                z[i] = m[i] + beta * z[i];
            }
        }
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * s[i];
            w[i] -= alpha * z[i];
        }
        // Merged reduction: (r,r) and (w,r) together — ONE phase.
        gamma_prev = gamma;
        gamma = blas1::dot_pairwise(&r, &r);
        delta = blas1::dot_pairwise(&w, &r);
        reduction_phases += 1;
        // SpMV that would overlap the reduction at scale.
        a.spmv_par(&w, &mut m);

        let rel = gamma.max(0.0).sqrt() / bnorm;
        history.push(rel);
        if rel <= tol {
            converged = true;
        }
        // Pipelined CG's recurrence residual drifts; periodically replace
        // it with the true residual (standard residual-replacement remedy).
        if !converged && iterations.is_multiple_of(50) {
            a.residual(x, b, &mut r);
            a.spmv_par(&r, &mut w);
            gamma = blas1::dot_pairwise(&r, &r);
            delta = blas1::dot_pairwise(&w, &r);
            a.spmv_par(&w, &mut m);
            *history.last_mut().unwrap() = gamma.max(0.0).sqrt() / bnorm;
        }
    }

    PipelinedCgResult {
        iterations,
        residual_history: history,
        converged,
        reduction_phases,
    }
}

#[inline]
fn guard(d: f64) -> f64 {
    if d == 0.0 {
        f64::MIN_POSITIVE
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{pcg, Identity};
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    fn problem(g: Geometry) -> (CsrMatrix<f64>, Vec<f64>) {
        let a = build_matrix(g);
        let (mut b, _) = build_rhs(&a);
        for (i, v) in b.iter_mut().enumerate() {
            *v += ((i * 31) % 17) as f64 / 17.0 - 0.5;
        }
        (a, b)
    }

    #[test]
    fn pipelined_cg_converges_to_true_solution() {
        let (a, b) = problem(Geometry::new(8, 8, 8));
        let mut x = vec![0.0; a.nrows()];
        let res = pipelined_cg(&a, &b, &mut x, 500, 1e-9);
        assert!(
            res.converged,
            "history tail {:?}",
            res.residual_history.last()
        );
        let mut r = vec![0.0; a.nrows()];
        a.residual(&x, &b, &mut r);
        assert!(
            blas1::nrm2(&r) / blas1::nrm2(&b) < 1e-7,
            "true residual {}",
            blas1::nrm2(&r) / blas1::nrm2(&b)
        );
    }

    #[test]
    fn iteration_count_close_to_classic_cg() {
        let (a, b) = problem(Geometry::new(8, 8, 8));
        let mut x1 = vec![0.0; a.nrows()];
        let classic = pcg(&a, &b, &mut x1, 500, 1e-9, &Identity);
        let mut x2 = vec![0.0; a.nrows()];
        let piped = pipelined_cg(&a, &b, &mut x2, 500, 1e-9);
        assert!(classic.converged && piped.converged);
        let diff = (classic.iterations as i64 - piped.iterations as i64).abs();
        assert!(
            diff <= 1 + classic.iterations as i64 / 4,
            "classic {} vs pipelined {}",
            classic.iterations,
            piped.iterations
        );
    }

    #[test]
    fn one_reduction_phase_per_iteration() {
        let (a, b) = problem(Geometry::new(6, 6, 6));
        let mut x = vec![0.0; a.nrows()];
        let res = pipelined_cg(&a, &b, &mut x, 300, 1e-9);
        assert!(
            res.reduction_phases <= res.iterations + 1 + res.iterations / 50 + 1,
            "{} phases for {} iterations",
            res.reduction_phases,
            res.iterations
        );
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let b = vec![0.0; a.nrows()];
        let mut x = vec![0.0; a.nrows()];
        let res = pipelined_cg(&a, &b, &mut x, 10, 1e-12);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn long_run_residual_replacement_keeps_accuracy() {
        // Force many iterations with a tight tolerance so the i%50
        // replacement path executes.
        let (a, b) = problem(Geometry::new(10, 10, 10));
        let mut x = vec![0.0; a.nrows()];
        let res = pipelined_cg(&a, &b, &mut x, 2000, 1e-13);
        let mut r = vec![0.0; a.nrows()];
        a.residual(&x, &b, &mut r);
        let true_rel = blas1::nrm2(&r) / blas1::nrm2(&b);
        assert!(
            true_rel < 1e-10,
            "true residual {true_rel} after {} iterations (converged={})",
            res.iterations,
            res.converged
        );
    }
}
