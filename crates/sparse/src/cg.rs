//! Preconditioned conjugate gradients with deterministic reductions.

use crate::error::SolverError;
use crate::ops::SparseOps;
use xsc_core::blas1;

/// A (left) preconditioner: `z ≈ A⁻¹ r`.
pub trait Preconditioner {
    /// Applies the preconditioner: `z <- M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
    /// Flops of one application (for benchmark accounting).
    fn flops_per_apply(&self) -> u64;
}

/// The identity preconditioner (plain CG).
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
    fn flops_per_apply(&self) -> u64 {
        0
    }
}

/// Outcome of a PCG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Iterations actually performed.
    pub iterations: usize,
    /// `‖r‖₂ / ‖b‖₂` after each iteration (index 0 = initial residual).
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
    /// Total flops executed, HPCG accounting (SpMV `2·nnz`, dot `2n`,
    /// axpy-like `3n`, plus the preconditioner's own count).
    pub flops: u64,
}

impl CgResult {
    /// Final relative residual.
    pub fn final_residual(&self) -> f64 {
        *self.residual_history.last().unwrap_or(&f64::INFINITY)
    }
}

/// Preconditioned conjugate gradients on `A x = b` starting from `x` (in
/// place). Stops when `‖r‖/‖b‖ <= tol` or after `max_iters` iterations.
///
/// All inner products use the fixed-tree pairwise reduction, so the
/// iteration count and iterates are bit-reproducible across thread counts —
/// one of the keynote's "new rules" for numerical software.
///
/// Generic over [`SparseOps`], so the same solver runs on any storage
/// format; because every format folds rows identically, the iterates are
/// bit-identical across formats too.
pub fn pcg<A: SparseOps + ?Sized, P: Preconditioner>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    max_iters: usize,
    tol: f64,
    m: &P,
) -> CgResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    match pcg_core(a, b, x, max_iters, tol, m, false) {
        Ok(r) => r,
        Err(e) => unreachable!("lenient pcg core cannot fail: {e}"),
    }
}

/// Fallible form of [`pcg`]: mis-sized vectors and loss of positive
/// definiteness (`pᵀAp ≤ 0`, which [`pcg`] silently treats as "stop
/// iterating") come back as typed [`SolverError`]s the resilience layer
/// can react to instead of a panic or a quietly unconverged result.
pub fn try_pcg<A: SparseOps + ?Sized, P: Preconditioner>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    max_iters: usize,
    tol: f64,
    m: &P,
) -> Result<CgResult, SolverError> {
    pcg_core(a, b, x, max_iters, tol, m, true)
}

/// Shared PCG body. With `strict` the indefinite-curvature breakdown is an
/// error; without it the loop just stops (the legacy behavior). Shape
/// errors are always typed here — [`pcg`] asserts before calling.
fn pcg_core<A: SparseOps + ?Sized, P: Preconditioner>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    max_iters: usize,
    tol: f64,
    m: &P,
    strict: bool,
) -> Result<CgResult, SolverError> {
    let n = a.nrows();
    if b.len() != n {
        return Err(SolverError::ShapeMismatch {
            what: "rhs",
            expected: n,
            got: b.len(),
        });
    }
    if x.len() != n {
        return Err(SolverError::ShapeMismatch {
            what: "solution",
            expected: n,
            got: x.len(),
        });
    }

    let mut flops = 0u64;
    let nnz = a.nnz() as u64;
    let nf = n as u64;

    let bnorm = blas1::nrm2(b).max(f64::MIN_POSITIVE);
    let mut r = vec![0.0; n];
    a.fused_residual(x, b, &mut r);
    flops += 2 * nnz;

    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    flops += m.flops_per_apply();

    let mut p = z.clone();
    let mut rz = blas1::dot_pairwise(&r, &z);
    flops += 2 * nf;

    let mut history = vec![blas1::nrm2(&r) / bnorm];
    let mut ap = vec![0.0; n];
    let mut converged = history[0] <= tol;
    let mut iterations = 0;

    for _ in 0..max_iters {
        if converged {
            break;
        }
        iterations += 1;
        a.spmv_par(&p, &mut ap);
        flops += 2 * nnz;
        let pap = blas1::dot_pairwise(&p, &ap);
        flops += 2 * nf;
        if pap <= 0.0 {
            if strict {
                return Err(SolverError::IndefiniteOperator {
                    iteration: iterations,
                    pap,
                });
            }
            // Loss of positive-definiteness (numerically) — stop.
            break;
        }
        let alpha = rz / pap;
        blas1::axpy(alpha, &p, x);
        blas1::axpy(-alpha, &ap, &mut r);
        flops += 6 * nf;

        let rel = blas1::nrm2(&r) / bnorm;
        flops += 2 * nf;
        history.push(rel);
        if rel <= tol {
            converged = true;
            break;
        }
        m.apply(&r, &mut z);
        flops += m.flops_per_apply();
        let rz_new = blas1::dot_pairwise(&r, &z);
        flops += 2 * nf;
        let beta = rz_new / rz;
        rz = rz_new;
        // p <- z + beta p.
        for (pi, &zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
        flops += 2 * nf;
    }

    Ok(CgResult {
        iterations,
        residual_history: history,
        converged,
        flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg::MgPreconditioner;
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    #[test]
    fn plain_cg_solves_stencil_system() {
        let g = Geometry::new(8, 8, 8);
        let a = build_matrix(g);
        let (b, x_exact) = build_rhs(&a);
        let mut x = vec![0.0; a.nrows()];
        let res = pcg(&a, &b, &mut x, 500, 1e-10, &Identity);
        assert!(res.converged, "final residual {}", res.final_residual());
        for (xi, ei) in x.iter().zip(x_exact.iter()) {
            assert!((xi - ei).abs() < 1e-6);
        }
        assert!(res.flops > 0);
    }

    #[test]
    fn mg_preconditioning_cuts_iterations() {
        let g = Geometry::new(16, 16, 16);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);

        let mut x1 = vec![0.0; a.nrows()];
        let plain = pcg(&a, &b, &mut x1, 500, 1e-9, &Identity);

        let mg = MgPreconditioner::new(g, 3);
        let mut x2 = vec![0.0; a.nrows()];
        let pre = pcg(&a, &b, &mut x2, 500, 1e-9, &mg);

        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "MG-CG took {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn residual_history_is_recorded_and_final_small() {
        let g = Geometry::new(6, 6, 6);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mut x = vec![0.0; a.nrows()];
        let res = pcg(&a, &b, &mut x, 200, 1e-8, &Identity);
        assert_eq!(res.residual_history.len(), res.iterations + 1);
        assert!(res.final_residual() <= 1e-8);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let g = Geometry::new(4, 4, 4);
        let a = build_matrix(g);
        let b = vec![0.0; a.nrows()];
        let mut x = vec![0.0; a.nrows()];
        let res = pcg(&a, &b, &mut x, 10, 1e-12, &Identity);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn warm_start_from_exact_solution() {
        let g = Geometry::new(4, 4, 4);
        let a = build_matrix(g);
        let (b, x_exact) = build_rhs(&a);
        let mut x = x_exact;
        let res = pcg(&a, &b, &mut x, 10, 1e-10, &Identity);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn try_pcg_reports_shape_and_curvature_breakdowns() {
        use crate::error::SolverError;
        let g = Geometry::new(4, 4, 4);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mut x_short = vec![0.0; a.nrows() - 1];
        assert!(matches!(
            try_pcg(&a, &b, &mut x_short, 10, 1e-8, &Identity),
            Err(SolverError::ShapeMismatch {
                what: "solution",
                ..
            })
        ));
        // Negate the operator: curvature goes negative immediately.
        let mut neg = a.clone();
        for v in neg.values_mut() {
            *v = -*v;
        }
        let mut x = vec![0.0; a.nrows()];
        assert!(matches!(
            try_pcg(&neg, &b, &mut x, 10, 1e-8, &Identity),
            Err(SolverError::IndefiniteOperator { iteration: 1, .. })
        ));
    }

    #[test]
    fn try_pcg_matches_pcg_on_healthy_systems() {
        let g = Geometry::new(6, 6, 6);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mut x1 = vec![0.0; a.nrows()];
        let r1 = pcg(&a, &b, &mut x1, 100, 1e-9, &Identity);
        let mut x2 = vec![0.0; a.nrows()];
        let r2 = try_pcg(&a, &b, &mut x2, 100, 1e-9, &Identity).unwrap();
        assert_eq!(x1, x2, "fallible path must be bit-identical");
        assert_eq!(r1.residual_history, r2.residual_history);
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let g = Geometry::new(8, 8, 4);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mut x1 = vec![0.0; a.nrows()];
        let r1 = pcg(&a, &b, &mut x1, 50, 1e-12, &Identity);
        let mut x2 = vec![0.0; a.nrows()];
        let r2 = pcg(&a, &b, &mut x2, 50, 1e-12, &Identity);
        assert_eq!(x1, x2, "iterates must be bit-identical");
        assert_eq!(r1.residual_history, r2.residual_history);
    }
}
