//! Typed errors for the recoverable failure modes of the solver stack.
//!
//! The hot paths historically panicked (or silently broke out of the
//! iteration) when a caller handed them an impossible configuration. At
//! extreme scale a panic in one of a million ranks is an expensive way to
//! report a recoverable condition, so the `try_*` entry points
//! ([`try_pcg`](crate::cg::try_pcg),
//! [`MgPreconditioner::try_with_format`](crate::mg::MgPreconditioner::try_with_format),
//! [`try_run_hpcg_fmt`](crate::hpcg::try_run_hpcg_fmt)) return this enum
//! instead and let the resilience layer decide. The legacy panicking
//! wrappers remain as thin shims over the fallible cores.

use crate::abft::SdcDetected;
use crate::csr32::IndexOverflow;
use crate::stencil::Geometry;

/// A recoverable solver-stack failure: configuration the caller can fix or
/// a runtime condition the resilience layer can react to.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The operator does not fit the requested compact index format.
    IndexOverflow(IndexOverflow),
    /// A multigrid hierarchy was requested deeper than the geometry
    /// supports (every dimension must stay even down the levels).
    NotCoarsenable {
        /// The geometry that refused to coarsen.
        geometry: Geometry,
        /// The 1-based level that could not be built.
        level: usize,
    },
    /// A multigrid hierarchy with zero levels was requested.
    NoLevels,
    /// A vector length does not match the operator.
    ShapeMismatch {
        /// Which argument was mis-sized.
        what: &'static str,
        /// The length the operator requires.
        expected: usize,
        /// The length actually passed.
        got: usize,
    },
    /// The Krylov iteration observed `pᵀAp ≤ 0`: the operator is not
    /// (numerically) positive definite, so CG's recurrences are invalid.
    IndefiniteOperator {
        /// Iteration at which the breakdown was observed.
        iteration: usize,
        /// The offending curvature value.
        pap: f64,
    },
    /// A silent-data-corruption detector fired.
    Sdc(SdcDetected),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::IndexOverflow(e) => write!(f, "{e}"),
            SolverError::NotCoarsenable { geometry, level } => write!(
                f,
                "geometry {geometry:?} cannot be coarsened for level {level}"
            ),
            SolverError::NoLevels => f.write_str("need at least one level"),
            SolverError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} length mismatch: expected {expected}, got {got}"),
            SolverError::IndefiniteOperator { iteration, pap } => write!(
                f,
                "operator not positive definite at iteration {iteration} (p·Ap = {pap:.3e})"
            ),
            SolverError::Sdc(e) => write!(f, "silent data corruption: {e}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<IndexOverflow> for SolverError {
    fn from(e: IndexOverflow) -> Self {
        SolverError::IndexOverflow(e)
    }
}

impl From<SdcDetected> for SolverError {
    fn from(e: SdcDetected) -> Self {
        SolverError::Sdc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SolverError::NotCoarsenable {
            geometry: Geometry::new(4, 4, 4),
            level: 3,
        };
        assert!(e.to_string().contains("cannot be coarsened"));
        let s = SolverError::from(SdcDetected::NonFinite { what: "iterate" });
        assert!(s.to_string().contains("silent data corruption"));
        let m = SolverError::ShapeMismatch {
            what: "rhs",
            expected: 8,
            got: 7,
        };
        assert!(m.to_string().contains("rhs"));
    }
}
