//! SELL-C-σ: sliced ELLPACK with sorted chunks.
//!
//! Rows are grouped into chunks of `C` consecutive slots; within each
//! σ-row window the rows are stably sorted by descending length so chunk
//! mates have similar lengths and the zero padding stays small. Each chunk
//! stores its entries **column-major** (all lanes' entry 0, then entry 1,
//! …), the layout SIMD SpMV wants: one vector load per step services `C`
//! rows. Indices are `u32`, so the matrix stream matches [`Csr32`]'s
//! ~12 B/nnz rather than the `usize` CSR's ~24.
//!
//! Padding slots carry `col = 0, val = 0`, an exact no-op under `mul_add`,
//! and every row records its real length so the Gauss–Seidel sweeps (which
//! divide by the diagonal) never touch padding. All kernels fold each
//! row's entries in the original CSR order, so results are bit-identical
//! to the other formats.
//!
//! [`Csr32`]: crate::csr32::Csr32

use crate::csr::CsrMatrix;
use crate::csr32::{check_compact_bounds, IndexOverflow};
use crate::idx::widen;
use rayon::prelude::*;
use xsc_core::cast::count_f64;
use xsc_core::Scalar;
use xsc_metrics::traffic::XGather;

/// Default chunk height (lanes per chunk).
pub const DEFAULT_C: usize = 8;
/// Default sorting-window size (rows; must be a multiple of the chunk
/// height).
pub const DEFAULT_SIGMA: usize = 64;

/// A sparse matrix in SELL-C-σ layout (sliced ELLPACK, sorted chunks).
#[derive(Debug, Clone, PartialEq)]
pub struct SellCSigma<T> {
    nrows: usize,
    ncols: usize,
    c: usize,
    sigma: usize,
    nnz: usize,
    /// Start of each chunk's slab in `col_idx`/`vals` (length `nchunks+1`).
    chunk_off: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<T>,
    /// Real (unpadded) length of the row at each sorted slot.
    row_len: Vec<u32>,
    /// `perm[slot]` = original row stored at sorted slot `slot`.
    perm: Vec<u32>,
    /// `inv[row]` = sorted slot holding original row `row`.
    inv: Vec<u32>,
}

impl<T: Scalar> TryFrom<&CsrMatrix<T>> for SellCSigma<T> {
    type Error = IndexOverflow;

    fn try_from(a: &CsrMatrix<T>) -> Result<Self, IndexOverflow> {
        SellCSigma::from_csr(a, DEFAULT_C, DEFAULT_SIGMA)
    }
}

impl<T: Scalar> SellCSigma<T> {
    /// Converts a CSR matrix into SELL-C-σ with chunk height `c` and sort
    /// window `sigma` (a multiple of `c`). Fails with [`IndexOverflow`] if
    /// the shape does not fit `u32` indexing.
    pub fn from_csr(a: &CsrMatrix<T>, c: usize, sigma: usize) -> Result<Self, IndexOverflow> {
        assert!(c >= 1, "chunk height must be at least 1");
        assert!(
            sigma >= c && sigma.is_multiple_of(c),
            "sort window {sigma} must be a positive multiple of the chunk height {c}"
        );
        check_compact_bounds(a.ncols(), a.nnz())?;
        let n = a.nrows();
        let n32 = u32::try_from(n).map_err(|_| IndexOverflow::Rows { nrows: n })?;
        // Stable descending-length sort within each σ-window: ties keep
        // their original relative order, so the layout is deterministic.
        let mut perm: Vec<u32> = (0..n32).collect();
        let len_of = |r: u32| a.row(widen(r)).0.len();
        for wstart in (0..n).step_by(sigma.max(1)) {
            let wend = (wstart + sigma).min(n);
            perm[wstart..wend].sort_by_key(|&q| std::cmp::Reverse(len_of(q)));
        }
        let mut inv = vec![0u32; n];
        for (slot, &r) in perm.iter().enumerate() {
            // xsc-lint: allow(A01, reason = "slot < nrows <= u32::MAX, checked via n32 above")
            inv[widen(r)] = slot as u32;
        }
        let nchunks = n.div_ceil(c.max(1));
        let mut chunk_off = Vec::with_capacity(nchunks + 1);
        chunk_off.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        let mut row_len = Vec::with_capacity(n);
        for ch in 0..nchunks {
            let s0 = ch * c;
            let rows_in = (n - s0).min(c);
            let width = (0..rows_in)
                .map(|l| len_of(perm[s0 + l]))
                .max()
                .unwrap_or(0);
            // Column-major slab: entry j of every lane, then entry j+1.
            for j in 0..width {
                for l in 0..rows_in {
                    let (cols, v) = a.row(widen(perm[s0 + l]));
                    if j < cols.len() {
                        // xsc-lint: allow(A01, reason = "col < ncols <= u32::MAX per check_compact_bounds")
                        col_idx.push(cols[j] as u32);
                        vals.push(v[j]);
                    } else {
                        col_idx.push(0);
                        vals.push(T::zero());
                    }
                }
            }
            for l in 0..rows_in {
                // xsc-lint: allow(A01, reason = "row length <= nnz <= u32::MAX per check_compact_bounds")
                row_len.push(len_of(perm[s0 + l]) as u32);
            }
            chunk_off.push(col_idx.len());
        }
        Ok(SellCSigma {
            nrows: n,
            ncols: a.ncols(),
            c,
            sigma,
            nnz: a.nnz(),
            chunk_off,
            col_idx,
            vals,
            row_len,
            perm,
            inv,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of **real** stored entries (padding excluded).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total stored slots including zero padding (what SpMV streams).
    pub fn padded_slots(&self) -> usize {
        *self.chunk_off.last().unwrap_or(&0)
    }

    /// Number of chunks.
    pub fn nchunks(&self) -> usize {
        self.chunk_off.len() - 1
    }

    /// Chunk height `C`.
    pub fn chunk_height(&self) -> usize {
        self.c
    }

    /// Sort window σ.
    pub fn sort_window(&self) -> usize {
        self.sigma
    }

    /// Padding overhead: stored slots per real nonzero (1.0 = no padding).
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            count_f64(self.padded_slots() as u64) / count_f64(self.nnz as u64)
        }
    }

    /// The raw stored value slab (chunked layout, padding slots included —
    /// padding holds exact zeros, so sums over the whole slab are exact).
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable raw stored value slab (value-only; structure is fixed). A
    /// memory fault landing on a padding slot is a real corruption: SpMV
    /// streams padding, so a non-zero pad perturbs that lane's row.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Column sums `eᵀA` over every stored slot (ABFT reference checksum).
    /// Padding slots contribute their stored value at column `col_idx[k]`,
    /// so a corrupted pad shows up here exactly as it does in SpMV.
    pub fn column_sums(&self) -> Vec<T> {
        let mut c = vec![T::zero(); self.ncols];
        for (k, &j) in self.col_idx.iter().enumerate() {
            c[widen(j)] += self.vals[k];
        }
        c
    }

    fn width(&self) -> u64 {
        std::mem::size_of::<T>() as u64
    }

    /// Folds `f` over the real entries of original row `i` in CSR order.
    #[inline]
    fn for_row(&self, i: usize, mut f: impl FnMut(usize, T)) {
        let slot = widen(self.inv[i]);
        let ch = slot / self.c;
        let lane = slot - ch * self.c;
        let rows_in = (self.nrows - ch * self.c).min(self.c);
        let base = self.chunk_off[ch];
        for j in 0..widen(self.row_len[slot]) {
            let k = base + j * rows_in + lane;
            f(widen(self.col_idx[k]), self.vals[k]);
        }
    }

    /// Per-chunk lane accumulators for `A x` over chunk `ch`, padding
    /// included (an exact no-op); lane order = sorted-slot order.
    #[inline]
    fn chunk_accs(&self, ch: usize, x: &[T]) -> Vec<T> {
        let s0 = ch * self.c;
        let rows_in = (self.nrows - s0).min(self.c);
        let base = self.chunk_off[ch];
        let width = (self.chunk_off[ch + 1] - base) / rows_in.max(1);
        let mut accs = vec![T::zero(); rows_in];
        for j in 0..width {
            let row_base = base + j * rows_in;
            for (l, acc) in accs.iter_mut().enumerate() {
                let k = row_base + l;
                *acc = self.vals[k].mul_add(x[widen(self.col_idx[k])], *acc);
            }
        }
        accs
    }

    fn spmv_traffic(&self) -> xsc_metrics::Traffic {
        xsc_metrics::traffic::spmv_sell(
            self.nrows,
            self.ncols,
            self.nnz,
            self.padded_slots(),
            self.nchunks(),
            self.width(),
            XGather::Streamed,
        )
    }

    /// Sequential SpMV `y ← Ax` over the chunked layout. Each lane's fold
    /// visits its row's entries in CSR order (then exact-zero padding), so
    /// the result is bit-identical to the CSR formats.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        let _scope = xsc_metrics::record("spmv", self.spmv_traffic());
        for ch in 0..self.nchunks() {
            let accs = self.chunk_accs(ch, x);
            let s0 = ch * self.c;
            for (l, acc) in accs.into_iter().enumerate() {
                y[widen(self.perm[s0 + l])] = acc;
            }
        }
    }

    /// Thread-parallel SpMV (chunks fan out), bit-identical to
    /// [`SellCSigma::spmv`].
    pub fn spmv_par(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        let _scope = xsc_metrics::record("spmv", self.spmv_traffic());
        let per_chunk: Vec<Vec<T>> = (0..self.nchunks())
            .into_par_iter()
            .map(|ch| self.chunk_accs(ch, x))
            .collect();
        for (ch, accs) in per_chunk.into_iter().enumerate() {
            let s0 = ch * self.c;
            for (l, acc) in accs.into_iter().enumerate() {
                y[widen(self.perm[s0 + l])] = acc;
            }
        }
    }

    /// Fused residual `r = b - Ax` in one sweep; same per-row fold as
    /// [`CsrMatrix::fused_residual`](crate::csr::CsrMatrix::fused_residual).
    pub fn fused_residual(&self, x: &[T], b: &[T], r: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "fused_residual x length mismatch");
        assert_eq!(b.len(), self.nrows, "fused_residual b length mismatch");
        assert_eq!(r.len(), self.nrows, "fused_residual r length mismatch");
        let w = self.width();
        let _scope = xsc_metrics::record(
            "spmv",
            self.spmv_traffic().plus(xsc_metrics::Traffic {
                flops: 0,
                bytes_read: w * self.nrows as u64,
                bytes_written: 0,
            }),
        );
        for i in 0..self.nrows {
            let mut acc = b[i];
            self.for_row(i, |c, v| acc = (-v).mul_add(x[c], acc));
            r[i] = acc;
        }
    }

    /// The diagonal entries (zero where a row has no diagonal entry).
    pub fn diagonal(&self) -> Vec<T> {
        let mut d = vec![T::zero(); self.nrows];
        for (i, di) in d.iter_mut().enumerate().take(self.nrows.min(self.ncols)) {
            self.for_row(i, |c, v| {
                if c == i {
                    *di = v;
                }
            });
        }
        d
    }
}

impl SellCSigma<f64> {
    fn symgs_traffic(&self) -> xsc_metrics::Traffic {
        xsc_metrics::traffic::symgs_sell(
            self.nrows,
            self.ncols,
            self.nnz,
            self.nchunks(),
            8,
            XGather::Streamed,
        )
    }

    #[inline]
    fn gs_update(&self, i: usize, b: &[f64], x: &[f64]) -> f64 {
        let mut acc = b[i];
        let mut diag = 0.0;
        self.for_row(i, |c, v| {
            if c == i {
                diag = v;
            } else {
                acc -= v * x[c];
            }
        });
        debug_assert!(diag != 0.0, "zero diagonal at row {i}");
        acc / diag
    }

    /// One symmetric Gauss–Seidel application (natural row order, forward
    /// then backward); walks only real entries via the per-row lengths.
    pub fn symgs(&self, b: &[f64], x: &mut [f64]) {
        let n = self.nrows;
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        let _scope = xsc_metrics::record("symgs", self.symgs_traffic());
        for i in 0..n {
            let v = self.gs_update(i, b, x);
            x[i] = v;
        }
        for i in (0..n).rev() {
            let v = self.gs_update(i, b, x);
            x[i] = v;
        }
    }

    /// One parallel multicolor symmetric Gauss–Seidel application; same
    /// class ordering and row updates as
    /// `xsc_sparse::coloring::colored_symgs`, so results are bit-identical
    /// across formats.
    pub fn colored_symgs(&self, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]) {
        let _scope = xsc_metrics::record("symgs", self.symgs_traffic());
        let sweep = |x: &mut [f64], class: &[usize]| {
            let updates: Vec<(usize, f64)> = class
                .par_iter()
                .map(|&i| (i, self.gs_update(i, b, x)))
                .collect();
            for (i, v) in updates {
                x[i] = v;
            }
        };
        for class in classes {
            sweep(x, class);
        }
        for class in classes.iter().rev() {
            sweep(x, class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    fn sample() -> CsrMatrix<f64> {
        build_matrix(Geometry::new(5, 4, 3))
    }

    #[test]
    fn conversion_accounts_for_every_entry() {
        let a = sample();
        let s = SellCSigma::try_from(&a).unwrap();
        assert_eq!(s.nrows(), a.nrows());
        assert_eq!(s.nnz(), a.nnz());
        assert!(s.padded_slots() >= s.nnz());
        assert!(s.fill_ratio() >= 1.0);
        // σ-sorting keeps stencil padding modest.
        assert!(s.fill_ratio() < 1.6, "fill ratio {}", s.fill_ratio());
        // Row contents survive the permutation.
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let mut got: Vec<(usize, f64)> = Vec::new();
            s.for_row(i, |c, v| got.push((c, v)));
            let want: Vec<(usize, f64)> = cols.iter().copied().zip(vals.iter().copied()).collect();
            assert_eq!(got, want, "row {i}");
        }
    }

    #[test]
    fn sort_is_stable_and_deterministic() {
        let a = sample();
        let s1 = SellCSigma::from_csr(&a, 4, 16).unwrap();
        let s2 = SellCSigma::from_csr(&a, 4, 16).unwrap();
        assert_eq!(s1, s2);
        // perm is a permutation.
        let mut seen = vec![false; a.nrows()];
        for &p in &s1.perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    fn spmv_is_bit_identical_to_csr() {
        let a = sample();
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 41 % 89) as f64).sin()).collect();
        let mut y_ref = vec![0.0; n];
        a.spmv(&x, &mut y_ref);
        for (c, sigma) in [(1, 1), (2, 8), (8, 64), (16, 16)] {
            let s = SellCSigma::from_csr(&a, c, sigma).unwrap();
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            s.spmv(&x, &mut y1);
            s.spmv_par(&x, &mut y2);
            assert_eq!(y_ref, y1, "C={c} σ={sigma}");
            assert_eq!(y_ref, y2, "C={c} σ={sigma} (par)");
        }
    }

    #[test]
    fn fused_residual_is_bit_identical_to_csr() {
        let a = sample();
        let (b, _) = build_rhs(&a);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).cos()).collect();
        let s = SellCSigma::try_from(&a).unwrap();
        let mut r1 = vec![0.0; n];
        let mut r2 = vec![0.0; n];
        a.fused_residual(&x, &b, &mut r1);
        s.fused_residual(&x, &b, &mut r2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn symgs_is_bit_identical_to_reference() {
        let a = sample();
        let (b, _) = build_rhs(&a);
        let s = SellCSigma::try_from(&a).unwrap();
        let mut x1 = vec![0.0; a.nrows()];
        let mut x2 = vec![0.0; a.nrows()];
        for _ in 0..3 {
            crate::symgs::symgs(&a, &b, &mut x1);
            s.symgs(&b, &mut x2);
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn colored_symgs_is_bit_identical_to_reference() {
        let a = sample();
        let (b, _) = build_rhs(&a);
        let classes = crate::coloring::color_classes(&crate::coloring::greedy_coloring(&a));
        let s = SellCSigma::try_from(&a).unwrap();
        let mut x1 = vec![0.0; a.nrows()];
        let mut x2 = vec![0.0; a.nrows()];
        for _ in 0..3 {
            crate::coloring::colored_symgs(&a, &classes, &b, &mut x1);
            s.colored_symgs(&classes, &b, &mut x2);
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn diagonal_matches_csr() {
        let a = sample();
        let s = SellCSigma::try_from(&a).unwrap();
        assert_eq!(a.diagonal(), s.diagonal());
    }

    #[test]
    fn huge_ncols_is_rejected() {
        let wide = CsrMatrix::<f64>::from_triplets(1, u32::MAX as usize + 2, vec![]);
        assert!(matches!(
            SellCSigma::try_from(&wide),
            Err(IndexOverflow::Cols { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "multiple of the chunk height")]
    fn sigma_must_be_multiple_of_c() {
        let a = sample();
        let _ = SellCSigma::from_csr(&a, 8, 12);
    }

    #[test]
    fn ragged_last_chunk_is_handled() {
        // 5×4×3 grid has 60 rows; C=7 leaves a 4-row final chunk.
        let a = sample();
        let s = SellCSigma::from_csr(&a, 7, 28).unwrap();
        let n = a.nrows();
        assert_eq!(s.nchunks(), n.div_ceil(7));
        let x = vec![1.0; n];
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        s.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }
}
