//! The format-agnostic sparse kernel surface.
//!
//! [`SparseOps`] is the one trait the HPCG path ([`cg`](crate::cg),
//! [`mg`](crate::mg), [`hpcg`](crate::hpcg)) is written against, so a
//! caller picks a storage format — `usize` CSR, [`Csr32`], or
//! [`SellCSigma`] — without touching solver code. Every implementation
//! folds each row's entries in the same order, so the *same algorithm on a
//! different format produces bit-identical iterates*; only the bytes
//! streamed per nonzero change. [`FormatMatrix`] is the runtime-dispatch
//! wrapper ([`SparseFormat`] names the variants), converted fallibly from
//! a [`CsrMatrix`] because the compact formats reject shapes that overflow
//! `u32` indices.

use crate::csr::CsrMatrix;
use crate::csr32::{Csr32, IndexOverflow};
use crate::sell::SellCSigma;
use xsc_metrics::traffic::{self, XGather};
use xsc_metrics::Traffic;

/// Format-agnostic sparse kernels: everything the HPCG path needs from a
/// matrix, plus the analytic traffic models that price each kernel for the
/// roofline machinery.
pub trait SparseOps {
    /// Number of rows.
    fn nrows(&self) -> usize;
    /// Number of columns.
    fn ncols(&self) -> usize;
    /// Number of real stored entries (padding excluded).
    fn nnz(&self) -> usize;
    /// Short human-readable format name (stable; used in reports).
    fn format_name(&self) -> &'static str;
    /// Sequential SpMV `y ← Ax`.
    fn spmv(&self, x: &[f64], y: &mut [f64]);
    /// Thread-parallel SpMV, bit-identical to [`SparseOps::spmv`].
    fn spmv_par(&self, x: &[f64], y: &mut [f64]);
    /// Fused residual `r = b - Ax` in a single matrix sweep.
    fn fused_residual(&self, x: &[f64], b: &[f64], r: &mut [f64]);
    /// The diagonal entries.
    fn diagonal(&self) -> Vec<f64>;
    /// One natural-order symmetric Gauss–Seidel application.
    fn symgs(&self, b: &[f64], x: &mut [f64]);
    /// One multicolor symmetric Gauss–Seidel application (classes from
    /// [`coloring::color_classes`](crate::coloring::color_classes)).
    fn colored_symgs(&self, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]);
    /// Modeled DRAM traffic of one SpMV under this format's recording
    /// convention.
    fn spmv_traffic(&self) -> Traffic;
    /// Modeled DRAM traffic of one SymGS application (two sweeps).
    fn symgs_traffic(&self) -> Traffic;
    /// The raw stored value buffer (format-specific layout; SELL includes
    /// its zero padding slots). The surface memory-fault injection corrupts
    /// and checkpoint restore writes back into.
    fn values(&self) -> &[f64];
    /// Mutable raw stored value buffer (value-only; structure is fixed).
    fn values_mut(&mut self) -> &mut [f64];
    /// Column sums `eᵀA` over the stored entries — the ABFT reference
    /// checksum behind the SpMV invariant `eᵀ(Ax) = (eᵀA)·x` (see
    /// [`abft::SpmvGuard`](crate::abft::SpmvGuard)).
    fn column_sums(&self) -> Vec<f64>;

    /// Residual `r = b - Ax` (defaults to the fused single-sweep form).
    fn residual(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        self.fused_residual(x, b, r);
    }

    /// Modeled matrix-stream bytes per nonzero for one SpMV — the number
    /// E19 checks measurements against.
    fn modeled_spmv_bytes_per_nnz(&self) -> f64 {
        let t = self.spmv_traffic();
        xsc_core::cast::count_f64(t.bytes_read + t.bytes_written)
            / xsc_core::cast::count_f64(self.nnz().max(1) as u64)
    }
}

impl SparseOps for CsrMatrix<f64> {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }
    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }
    fn format_name(&self) -> &'static str {
        SparseFormat::CsrUsize.name()
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::spmv(self, x, y);
    }
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::spmv_par(self, x, y);
    }
    fn fused_residual(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        CsrMatrix::fused_residual(self, x, b, r);
    }
    fn diagonal(&self) -> Vec<f64> {
        CsrMatrix::diagonal(self)
    }
    fn symgs(&self, b: &[f64], x: &mut [f64]) {
        crate::symgs::symgs(self, b, x);
    }
    fn colored_symgs(&self, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]) {
        crate::coloring::colored_symgs(self, classes, b, x);
    }
    fn spmv_traffic(&self) -> Traffic {
        traffic::spmv_csr(CsrMatrix::nrows(self), CsrMatrix::nnz(self), 8)
    }
    fn symgs_traffic(&self) -> Traffic {
        traffic::symgs_csr(CsrMatrix::nrows(self), CsrMatrix::nnz(self), 8)
    }
    fn values(&self) -> &[f64] {
        CsrMatrix::values(self)
    }
    fn values_mut(&mut self) -> &mut [f64] {
        CsrMatrix::values_mut(self)
    }
    fn column_sums(&self) -> Vec<f64> {
        CsrMatrix::column_sums(self)
    }
}

impl SparseOps for Csr32<f64> {
    fn nrows(&self) -> usize {
        Csr32::nrows(self)
    }
    fn ncols(&self) -> usize {
        Csr32::ncols(self)
    }
    fn nnz(&self) -> usize {
        Csr32::nnz(self)
    }
    fn format_name(&self) -> &'static str {
        SparseFormat::Csr32.name()
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        Csr32::spmv(self, x, y);
    }
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        Csr32::spmv_par(self, x, y);
    }
    fn fused_residual(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        Csr32::fused_residual(self, x, b, r);
    }
    fn diagonal(&self) -> Vec<f64> {
        Csr32::diagonal(self)
    }
    fn symgs(&self, b: &[f64], x: &mut [f64]) {
        Csr32::symgs(self, b, x);
    }
    fn colored_symgs(&self, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]) {
        Csr32::colored_symgs(self, classes, b, x);
    }
    fn spmv_traffic(&self) -> Traffic {
        traffic::spmv_csr32(
            Csr32::nrows(self),
            Csr32::ncols(self),
            Csr32::nnz(self),
            8,
            XGather::Streamed,
        )
    }
    fn symgs_traffic(&self) -> Traffic {
        traffic::symgs_csr32(
            Csr32::nrows(self),
            Csr32::ncols(self),
            Csr32::nnz(self),
            8,
            XGather::Streamed,
        )
    }
    fn values(&self) -> &[f64] {
        Csr32::values(self)
    }
    fn values_mut(&mut self) -> &mut [f64] {
        Csr32::values_mut(self)
    }
    fn column_sums(&self) -> Vec<f64> {
        Csr32::column_sums(self)
    }
}

impl SparseOps for SellCSigma<f64> {
    fn nrows(&self) -> usize {
        SellCSigma::nrows(self)
    }
    fn ncols(&self) -> usize {
        SellCSigma::ncols(self)
    }
    fn nnz(&self) -> usize {
        SellCSigma::nnz(self)
    }
    fn format_name(&self) -> &'static str {
        SparseFormat::SellCSigma.name()
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        SellCSigma::spmv(self, x, y);
    }
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        SellCSigma::spmv_par(self, x, y);
    }
    fn fused_residual(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        SellCSigma::fused_residual(self, x, b, r);
    }
    fn diagonal(&self) -> Vec<f64> {
        SellCSigma::diagonal(self)
    }
    fn symgs(&self, b: &[f64], x: &mut [f64]) {
        SellCSigma::symgs(self, b, x);
    }
    fn colored_symgs(&self, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]) {
        SellCSigma::colored_symgs(self, classes, b, x);
    }
    fn spmv_traffic(&self) -> Traffic {
        traffic::spmv_sell(
            SellCSigma::nrows(self),
            SellCSigma::ncols(self),
            SellCSigma::nnz(self),
            self.padded_slots(),
            self.nchunks(),
            8,
            XGather::Streamed,
        )
    }
    fn symgs_traffic(&self) -> Traffic {
        traffic::symgs_sell(
            SellCSigma::nrows(self),
            SellCSigma::ncols(self),
            SellCSigma::nnz(self),
            self.nchunks(),
            8,
            XGather::Streamed,
        )
    }
    fn values(&self) -> &[f64] {
        SellCSigma::values(self)
    }
    fn values_mut(&mut self) -> &mut [f64] {
        SellCSigma::values_mut(self)
    }
    fn column_sums(&self) -> Vec<f64> {
        SellCSigma::column_sums(self)
    }
}

/// The storage formats the HPCG path can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseFormat {
    /// `usize`-index CSR (the legacy baseline; ~24 B/nnz matrix stream).
    CsrUsize,
    /// `u32`-index CSR (~12 B/nnz matrix stream).
    Csr32,
    /// SELL-C-σ with `u32` indices (~12 B/nnz plus a small padding tax).
    SellCSigma,
}

impl SparseFormat {
    /// Stable short name (used in reports and JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            SparseFormat::CsrUsize => "csr-usize",
            SparseFormat::Csr32 => "csr32",
            SparseFormat::SellCSigma => "sell-c-sigma",
        }
    }

    /// All formats, baseline first (the order E19 reports them in).
    pub fn all() -> [SparseFormat; 3] {
        [
            SparseFormat::CsrUsize,
            SparseFormat::Csr32,
            SparseFormat::SellCSigma,
        ]
    }
}

impl std::fmt::Display for SparseFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A sparse matrix in one of the [`SparseFormat`]s, dispatching
/// [`SparseOps`] at runtime — what [`mg`](crate::mg) levels store so a
/// whole hierarchy switches format from one argument.
#[derive(Debug, Clone)]
pub enum FormatMatrix {
    /// `usize`-index CSR.
    CsrUsize(CsrMatrix<f64>),
    /// Compact `u32`-index CSR.
    Csr32(Csr32<f64>),
    /// SELL-C-σ.
    Sell(SellCSigma<f64>),
}

impl FormatMatrix {
    /// Converts a CSR matrix into the requested format. Compact formats
    /// fail with [`IndexOverflow`] rather than truncating indices.
    pub fn convert(a: CsrMatrix<f64>, format: SparseFormat) -> Result<Self, IndexOverflow> {
        Ok(match format {
            SparseFormat::CsrUsize => FormatMatrix::CsrUsize(a),
            SparseFormat::Csr32 => FormatMatrix::Csr32(Csr32::try_from(&a)?),
            SparseFormat::SellCSigma => FormatMatrix::Sell(SellCSigma::try_from(&a)?),
        })
    }

    /// Which format this matrix is stored in.
    pub fn format(&self) -> SparseFormat {
        match self {
            FormatMatrix::CsrUsize(_) => SparseFormat::CsrUsize,
            FormatMatrix::Csr32(_) => SparseFormat::Csr32,
            FormatMatrix::Sell(_) => SparseFormat::SellCSigma,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $a:ident => $e:expr) => {
        match $self {
            FormatMatrix::CsrUsize($a) => $e,
            FormatMatrix::Csr32($a) => $e,
            FormatMatrix::Sell($a) => $e,
        }
    };
}

impl SparseOps for FormatMatrix {
    fn nrows(&self) -> usize {
        dispatch!(self, a => a.nrows())
    }
    fn ncols(&self) -> usize {
        dispatch!(self, a => a.ncols())
    }
    fn nnz(&self) -> usize {
        dispatch!(self, a => a.nnz())
    }
    fn format_name(&self) -> &'static str {
        self.format().name()
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        dispatch!(self, a => SparseOps::spmv(a, x, y))
    }
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        dispatch!(self, a => SparseOps::spmv_par(a, x, y))
    }
    fn fused_residual(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        dispatch!(self, a => SparseOps::fused_residual(a, x, b, r))
    }
    fn diagonal(&self) -> Vec<f64> {
        dispatch!(self, a => SparseOps::diagonal(a))
    }
    fn symgs(&self, b: &[f64], x: &mut [f64]) {
        dispatch!(self, a => SparseOps::symgs(a, b, x))
    }
    fn colored_symgs(&self, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]) {
        dispatch!(self, a => SparseOps::colored_symgs(a, classes, b, x))
    }
    fn spmv_traffic(&self) -> Traffic {
        dispatch!(self, a => SparseOps::spmv_traffic(a))
    }
    fn symgs_traffic(&self) -> Traffic {
        dispatch!(self, a => SparseOps::symgs_traffic(a))
    }
    fn values(&self) -> &[f64] {
        dispatch!(self, a => SparseOps::values(a))
    }
    fn values_mut(&mut self) -> &mut [f64] {
        dispatch!(self, a => SparseOps::values_mut(a))
    }
    fn column_sums(&self) -> Vec<f64> {
        dispatch!(self, a => SparseOps::column_sums(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    #[test]
    fn every_format_computes_the_same_spmv() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let n = SparseOps::nrows(&a);
        let x: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.3 - 1.0).collect();
        let mut y_ref = vec![0.0; n];
        SparseOps::spmv(&a, &x, &mut y_ref);
        for fmt in SparseFormat::all() {
            let m = FormatMatrix::convert(a.clone(), fmt).unwrap();
            assert_eq!(m.format(), fmt);
            assert_eq!(m.format_name(), fmt.name());
            let mut y = vec![0.0; n];
            m.spmv(&x, &mut y);
            assert_eq!(y, y_ref, "{fmt}");
        }
    }

    #[test]
    fn compact_formats_model_fewer_bytes_per_nnz() {
        let a = build_matrix(Geometry::new(8, 8, 8));
        let base = FormatMatrix::convert(a.clone(), SparseFormat::CsrUsize).unwrap();
        for fmt in [SparseFormat::Csr32, SparseFormat::SellCSigma] {
            let m = FormatMatrix::convert(a.clone(), fmt).unwrap();
            let ratio = base.modeled_spmv_bytes_per_nnz() / m.modeled_spmv_bytes_per_nnz();
            assert!(ratio >= 1.5, "{fmt}: modeled ratio {ratio:.2} < 1.5");
        }
    }

    #[test]
    fn symgs_agrees_across_formats() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let (b, _) = build_rhs(&a);
        let n = SparseOps::nrows(&a);
        let mut x_ref = vec![0.0; n];
        crate::symgs::symgs(&a, &b, &mut x_ref);
        for fmt in SparseFormat::all() {
            let m = FormatMatrix::convert(a.clone(), fmt).unwrap();
            let mut x = vec![0.0; n];
            m.symgs(&b, &mut x);
            assert_eq!(x, x_ref, "{fmt}");
        }
    }
}
