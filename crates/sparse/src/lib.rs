//! # xsc-sparse — the HPCG-like substrate
//!
//! The keynote's headline evidence that "the rules have changed" is the gap
//! between HPL and **HPCG**: the same machines that run dense LU at 70–90 %
//! of peak run a memory-bound PDE solve at 1–5 %. This crate rebuilds the
//! HPCG benchmark stack from scratch:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row storage with sequential and
//!   thread-parallel SpMV;
//! * [`csr32::Csr32`] and [`sell::SellCSigma`] — bandwidth-lean formats
//!   (`u32` indices; SELL-C-σ adds chunked, vectorization-friendly
//!   layout) that halve the matrix stream while computing bit-identical
//!   results;
//! * [`ops`] — the [`SparseOps`] trait the whole solver
//!   path is written against, plus [`FormatMatrix`]
//!   for runtime format selection;
//! * [`stencil`] — the 27-point 3-D stencil problem generator (the HPCG
//!   operator) and its geometric coarsening;
//! * [`symgs`] — the symmetric Gauss–Seidel smoother;
//! * [`mg`] — the 4-level geometric multigrid V-cycle preconditioner;
//! * [`cg`] — preconditioned conjugate gradients with deterministic
//!   (pairwise) reductions;
//! * [`hpcg`] — the benchmark driver with HPCG's flop accounting;
//! * [`pipelined`] — pipelined CG (one merged reduction per iteration,
//!   the keynote's synchronization-reducing Krylov variant);
//! * [`coloring`] — multi-color parallel Gauss–Seidel, HPCG's sanctioned
//!   smoother optimization;
//! * [`chebyshev`] — synchronization-free polynomial smoothing (SpMV-only),
//!   pluggable into the multigrid hierarchy via
//!   [`mg::MgPreconditioner::with_smoother`];
//! * [`sstep`] — s-step (communication-avoiding) CG: one Gram-matrix
//!   reduction per `s` iterations;
//! * [`matrix_powers`] — the `[x, Ax, …, Aˢx]` kernel with its
//!   ghost-exchange accounting;
//! * [`abft`] — algorithm-based fault-tolerance guards: the SpMV
//!   column-sum checksum, residual-drift and V-cycle-contraction
//!   detectors behind the SDC-resilient solver path;
//! * [`error`] — typed errors ([`SolverError`]) for the
//!   recoverable failure modes the `try_*` entry points report instead of
//!   panicking.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-coupled updates across multiple slices are the clearest form for these kernels

pub mod abft;
pub mod cg;
pub mod chebyshev;
pub mod coloring;
pub mod csr;
pub mod csr32;
pub mod error;
pub mod hpcg;
pub mod idx;
pub mod matrix_powers;
pub mod mg;
pub mod ops;
pub mod pipelined;
pub mod sell;
pub mod sstep;
pub mod stencil;
pub mod symgs;

pub use abft::{residual_drift, CheckedApply, SdcDetected, SpmvGuard};
pub use cg::{pcg, try_pcg, CgResult, Identity, Preconditioner};
pub use csr::CsrMatrix;
pub use csr32::{Csr32, IndexOverflow};
pub use error::SolverError;
pub use hpcg::{run_hpcg, run_hpcg_fmt, try_run_hpcg_fmt, HpcgResult};
pub use ops::{FormatMatrix, SparseFormat, SparseOps};
pub use pipelined::{pipelined_cg, PipelinedCgResult};
pub use sell::SellCSigma;
pub use stencil::Geometry;
