//! Multi-coloring for parallel Gauss–Seidel.
//!
//! The reference SymGS sweep is sequential — the crux of HPCG's difficulty.
//! The standard remedy (and HPCG's sanctioned optimization) is to color the
//! grid so that rows of the same color are mutually independent; rows
//! within a color then update in parallel, color by color. Convergence per
//! sweep weakens slightly (the update order changes), but each sweep now
//! scales with cores.

use crate::csr::CsrMatrix;
use rayon::prelude::*;

/// Greedy graph coloring of the matrix's adjacency structure: returns a
/// color per row, with no two adjacent rows (i.e. `a[i][j] != 0`) sharing
/// a color.
pub fn greedy_coloring(a: &CsrMatrix<f64>) -> Vec<usize> {
    let n = a.nrows();
    let mut colors = vec![usize::MAX; n];
    let mut forbidden = vec![usize::MAX; 64]; // forbidden[c] = row that forbade c
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if j != i && colors[j] != usize::MAX {
                let c = colors[j];
                if c >= forbidden.len() {
                    forbidden.resize(c + 1, usize::MAX);
                }
                forbidden[c] = i;
            }
        }
        let mut c = 0;
        while c < forbidden.len() && forbidden[c] == i {
            c += 1;
        }
        colors[i] = c;
    }
    colors
}

/// Rows grouped by color (ascending color index).
pub fn color_classes(colors: &[usize]) -> Vec<Vec<usize>> {
    let num = colors.iter().copied().max().map_or(0, |m| m + 1);
    let mut classes = vec![Vec::new(); num];
    for (i, &c) in colors.iter().enumerate() {
        classes[c].push(i);
    }
    classes
}

/// Checks that no two adjacent rows share a color (testing/validation).
pub fn is_valid_coloring(a: &CsrMatrix<f64>, colors: &[usize]) -> bool {
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        for &j in cols {
            if j != i && colors[i] == colors[j] {
                return false;
            }
        }
    }
    true
}

/// One parallel multi-color symmetric Gauss–Seidel application: colors in
/// ascending order (forward half-sweep), then descending (backward), rows
/// within a color updated concurrently.
pub fn colored_symgs(a: &CsrMatrix<f64>, classes: &[Vec<usize>], b: &[f64], x: &mut [f64]) {
    let _scope = xsc_metrics::record(
        "symgs",
        xsc_metrics::traffic::symgs_csr(a.nrows(), a.nnz(), 8),
    );
    let sweep = |x: &mut [f64], class: &[usize]| {
        // Rows in one class are independent: read the shared x snapshot,
        // write disjoint entries. Collect updates first to satisfy the
        // borrow rules without unsafe.
        let updates: Vec<(usize, f64)> = class
            .par_iter()
            .map(|&i| {
                let (cols, vals) = a.row(i);
                let mut acc = b[i];
                let mut diag = 0.0;
                for (&c, &v) in cols.iter().zip(vals.iter()) {
                    if c == i {
                        diag = v;
                    } else {
                        acc -= v * x[c];
                    }
                }
                (i, acc / diag)
            })
            .collect();
        for (i, v) in updates {
            x[i] = v;
        }
    };
    for class in classes {
        sweep(x, class);
    }
    for class in classes.iter().rev() {
        sweep(x, class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{build_matrix, build_rhs, Geometry};
    use crate::symgs::symgs;
    use xsc_core::blas1;

    fn residual_norm(a: &CsrMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.residual(x, b, &mut r);
        blas1::nrm2(&r)
    }

    #[test]
    fn coloring_is_valid_on_stencil() {
        let a = build_matrix(Geometry::new(6, 5, 4));
        let colors = greedy_coloring(&a);
        assert!(is_valid_coloring(&a, &colors));
        // 27-point stencil needs at least 8 colors (a 2x2x2 block clique).
        let num = colors.iter().max().unwrap() + 1;
        assert!(num >= 8, "only {num} colors");
        assert!(num <= 27, "greedy used too many colors: {num}");
    }

    #[test]
    fn color_classes_partition_rows() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let colors = greedy_coloring(&a);
        let classes = color_classes(&colors);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, a.nrows());
        for (c, class) in classes.iter().enumerate() {
            for &i in class {
                assert_eq!(colors[i], c);
            }
        }
    }

    #[test]
    fn colored_symgs_reduces_residual() {
        let a = build_matrix(Geometry::new(6, 6, 6));
        let (b, _) = build_rhs(&a);
        let classes = color_classes(&greedy_coloring(&a));
        let mut x = vec![0.0; a.nrows()];
        let r0 = residual_norm(&a, &x, &b);
        colored_symgs(&a, &classes, &b, &mut x);
        let r1 = residual_norm(&a, &x, &b);
        assert!(r1 < r0 * 0.8, "{r1} vs {r0}");
        colored_symgs(&a, &classes, &b, &mut x);
        assert!(residual_norm(&a, &x, &b) < r1);
    }

    #[test]
    fn colored_and_natural_order_converge_to_same_solution() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let (b, x_exact) = build_rhs(&a);
        let classes = color_classes(&greedy_coloring(&a));
        let mut xc = vec![0.0; a.nrows()];
        let mut xn = vec![0.0; a.nrows()];
        for _ in 0..300 {
            colored_symgs(&a, &classes, &b, &mut xc);
            symgs(&a, &b, &mut xn);
        }
        for ((c, n_), e) in xc.iter().zip(xn.iter()).zip(x_exact.iter()) {
            assert!((c - e).abs() < 1e-8, "colored {c} vs exact {e}");
            assert!((n_ - e).abs() < 1e-8);
        }
    }

    #[test]
    fn exact_solution_is_fixed_point_of_colored_sweep() {
        let a = build_matrix(Geometry::new(4, 4, 2));
        let (b, x_exact) = build_rhs(&a);
        let classes = color_classes(&greedy_coloring(&a));
        let mut x = x_exact.clone();
        colored_symgs(&a, &classes, &b, &mut x);
        for (xi, ei) in x.iter().zip(x_exact.iter()) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn coloring_deterministic() {
        let a = build_matrix(Geometry::new(5, 5, 5));
        assert_eq!(greedy_coloring(&a), greedy_coloring(&a));
    }
}
