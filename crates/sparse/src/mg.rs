//! Geometric multigrid V-cycle — HPCG's preconditioner.
//!
//! Levels are built by coarsening the grid by 2 per dimension (HPCG uses
//! 4 levels). The cycle is HPCG's: one symmetric Gauss–Seidel pre-smooth,
//! residual restriction by injection, recursive coarse solve, prolongation
//! by injection-add, one post-smooth; the coarsest level is a single SymGS.

use crate::abft::{CheckedApply, SdcDetected};
use crate::cg::Preconditioner;
use crate::chebyshev::ChebyshevSmoother;
use crate::coloring::{color_classes, greedy_coloring};
use crate::error::SolverError;
use crate::ops::{FormatMatrix, SparseFormat, SparseOps};
use crate::stencil::{build_matrix, f2c_map, Geometry};
use std::cell::RefCell;
use xsc_core::blas1;
use xsc_metrics::Traffic;

/// Smoother family used on every multigrid level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoother {
    /// Natural-order symmetric Gauss-Seidel (HPCG's reference; sequential).
    SymGs,
    /// Multi-color symmetric Gauss-Seidel (parallel sweeps).
    Colored,
    /// Chebyshev polynomial smoothing of the given degree (SpMV-only,
    /// synchronization-free; the extreme-scale choice).
    Chebyshev {
        /// Polynomial degree (SpMVs per application).
        degree: usize,
    },
}

enum LevelSmoother {
    SymGs,
    Colored(Vec<Vec<usize>>),
    Chebyshev(ChebyshevSmoother),
}

impl LevelSmoother {
    fn apply(&self, a: &FormatMatrix, b: &[f64], x: &mut [f64]) {
        match self {
            LevelSmoother::SymGs => a.symgs(b, x),
            LevelSmoother::Colored(classes) => a.colored_symgs(classes, b, x),
            LevelSmoother::Chebyshev(s) => s.apply(a, b, x),
        }
    }

    fn flops(&self, a: &FormatMatrix) -> u64 {
        match self {
            // HPCG accounting: two sweeps at 2·nnz each.
            LevelSmoother::SymGs | LevelSmoother::Colored(_) => 4 * a.nnz() as u64,
            LevelSmoother::Chebyshev(s) => s.flops_per_apply(a),
        }
    }
}

struct Level {
    a: FormatMatrix,
    smoother: LevelSmoother,
    /// Fine-grid index of each coarse point on the *next* level
    /// (empty for the coarsest level).
    f2c: Vec<usize>,
    /// Scratch vectors, reused across applications.
    scratch: RefCell<Scratch>,
}

#[derive(Default)]
struct Scratch {
    r: Vec<f64>,
    rc: Vec<f64>,
    zc: Vec<f64>,
}

/// A geometric multigrid V-cycle preconditioner over the HPCG operator.
pub struct MgPreconditioner {
    levels: Vec<Level>,
    /// Analytic DRAM traffic of one V-cycle (HPCG-reference accounting over
    /// the level sizes), precomputed so [`Preconditioner::apply`] can record
    /// it without walking the hierarchy. Nested `symgs`/`spmv` recordings
    /// overlap with this entry by design; see `xsc-metrics` docs.
    traffic_per_cycle: xsc_metrics::Traffic,
}

impl MgPreconditioner {
    /// Builds `num_levels` levels starting from geometry `g` (each
    /// dimension must be divisible by `2^(num_levels-1)`), smoothing with
    /// the HPCG-reference symmetric Gauss-Seidel. The level-0 matrix must
    /// equal the operator the caller is solving with.
    pub fn new(g: Geometry, num_levels: usize) -> Self {
        MgPreconditioner::with_smoother(g, num_levels, Smoother::SymGs)
    }

    /// Like [`MgPreconditioner::new`] but with a chosen smoother family
    /// (the "optimized HPCG" configurations swap the sequential sweep for
    /// a parallel one here).
    pub fn with_smoother(g: Geometry, num_levels: usize, smoother: Smoother) -> Self {
        MgPreconditioner::with_format(g, num_levels, smoother, SparseFormat::CsrUsize)
            .expect("usize CSR cannot overflow")
    }

    /// Like [`MgPreconditioner::with_smoother`] but storing every level in
    /// the chosen [`SparseFormat`]. Smoother setup data (colorings,
    /// Chebyshev eigenvalue estimates) is derived from the CSR operator
    /// before conversion, so the hierarchy is numerically identical across
    /// formats. Fails if the operator does not fit the format's indices.
    pub fn with_format(
        g: Geometry,
        num_levels: usize,
        smoother: Smoother,
        format: SparseFormat,
    ) -> Result<Self, crate::csr32::IndexOverflow> {
        match MgPreconditioner::try_with_format(g, num_levels, smoother, format) {
            Ok(mg) => Ok(mg),
            Err(SolverError::IndexOverflow(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fully fallible form of [`MgPreconditioner::with_format`]: reports
    /// an impossible hierarchy ([`SolverError::NotCoarsenable`],
    /// [`SolverError::NoLevels`]) as a typed error instead of panicking,
    /// so callers that size hierarchies from runtime input can recover.
    pub fn try_with_format(
        g: Geometry,
        num_levels: usize,
        smoother: Smoother,
        format: SparseFormat,
    ) -> Result<Self, SolverError> {
        if num_levels < 1 {
            return Err(SolverError::NoLevels);
        }
        let mut levels = Vec::with_capacity(num_levels);
        let mut geom = g;
        for l in 0..num_levels {
            let a_csr = build_matrix(geom);
            let last = l + 1 == num_levels;
            let f2c = if last {
                Vec::new()
            } else {
                if !geom.coarsenable() {
                    return Err(SolverError::NotCoarsenable {
                        geometry: geom,
                        level: l + 1,
                    });
                }
                f2c_map(geom)
            };
            let n = a_csr.nrows();
            let level_smoother = match smoother {
                Smoother::SymGs => LevelSmoother::SymGs,
                Smoother::Colored => {
                    LevelSmoother::Colored(color_classes(&greedy_coloring(&a_csr)))
                }
                Smoother::Chebyshev { degree } => {
                    LevelSmoother::Chebyshev(ChebyshevSmoother::for_matrix(&a_csr, degree, 30.0))
                }
            };
            levels.push(Level {
                a: FormatMatrix::convert(a_csr, format)?,
                smoother: level_smoother,
                f2c,
                scratch: RefCell::new(Scratch {
                    r: vec![0.0; n],
                    rc: Vec::new(),
                    zc: Vec::new(),
                }),
            });
            if !last {
                geom = geom.coarsen();
            }
        }
        let traffic_per_cycle = Self::cycle_traffic(&levels);
        Ok(MgPreconditioner {
            levels,
            traffic_per_cycle,
        })
    }

    /// Analytic DRAM traffic of one V-cycle, summed from each level's
    /// per-format kernel models (pre/post smooth, fused residual, and the
    /// injection transfer passes).
    fn cycle_traffic(levels: &[Level]) -> Traffic {
        let mut t = Traffic::default();
        for (l, lv) in levels.iter().enumerate() {
            let coarsest = l + 1 == levels.len();
            if coarsest {
                t = t.plus(lv.a.symgs_traffic());
            } else {
                let n = lv.a.nrows() as u64;
                let nc = levels[l + 1].a.nrows() as u64;
                // Pre- and post-smooth.
                t = t.plus(lv.a.symgs_traffic().times(2));
                // Fused residual: an SpMV sweep that also reads b.
                t = t.plus(lv.a.spmv_traffic()).plus(Traffic {
                    flops: 0,
                    bytes_read: 8 * n,
                    bytes_written: 0,
                });
                // Injection restriction (read r at coarse points, write rc)
                // and injection-add prolongation (read zc, read+write x).
                t = t.plus(Traffic {
                    flops: nc,
                    bytes_read: 8 * 3 * nc,
                    bytes_written: 8 * 2 * nc,
                });
            }
        }
        t
    }

    /// The storage format every level uses.
    pub fn format(&self) -> SparseFormat {
        self.levels[0].a.format()
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The operator at level 0 (callers typically share the same stencil).
    pub fn fine_matrix(&self) -> &FormatMatrix {
        &self.levels[0].a
    }

    fn cycle(&self, level: usize, b: &[f64], x: &mut [f64]) {
        let lv = &self.levels[level];
        let a = &lv.a;
        // Coarsest level: a single smoother application.
        if level + 1 == self.levels.len() {
            x.iter_mut().for_each(|v| *v = 0.0);
            lv.smoother.apply(a, b, x);
            return;
        }
        let mut s = lv.scratch.borrow_mut();
        let nc = lv.f2c.len();
        s.rc.resize(nc, 0.0);
        s.zc.resize(nc, 0.0);

        // Pre-smooth from zero.
        x.iter_mut().for_each(|v| *v = 0.0);
        lv.smoother.apply(a, b, x);
        // Residual and injection restriction.
        a.fused_residual(x, b, &mut s.r);
        for (c, &f) in lv.f2c.iter().enumerate() {
            s.rc[c] = s.r[f];
        }
        // Coarse solve. Scratch for the coarse level belongs to that level,
        // so the borrow here is disjoint.
        let (rc, zc) = {
            let Scratch { rc, zc, .. } = &mut *s;
            (rc.clone(), zc)
        };
        self.cycle(level + 1, &rc, zc);
        // Prolongation by injection-add.
        for (c, &f) in lv.f2c.iter().enumerate() {
            x[f] += s.zc[c];
        }
        // Post-smooth.
        lv.smoother.apply(a, b, x);
    }

    /// HPCG flop accounting for one V-cycle application.
    pub fn flops_per_cycle(&self) -> u64 {
        let mut total = 0u64;
        for (l, lv) in self.levels.iter().enumerate() {
            if l + 1 == self.levels.len() {
                total += lv.smoother.flops(&lv.a);
            } else {
                // pre-smooth + post-smooth + residual SpMV.
                total += 2 * lv.smoother.flops(&lv.a) + 2 * lv.a.nnz() as u64;
            }
        }
        total
    }
}

impl Preconditioner for MgPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let _scope = xsc_metrics::record("mg_vcycle", self.traffic_per_cycle);
        self.cycle(0, r, z);
    }

    fn flops_per_apply(&self) -> u64 {
        self.flops_per_cycle()
    }
}

/// Slack on the pre-smooth contraction check: one smoother sweep from a
/// zero guess must not expand `‖b − Ax‖` beyond this multiple of `‖b‖`.
/// Healthy sweeps contract (factor < 1); a corrupted matrix value or
/// smoother state typically expands by many orders of magnitude.
const MG_PRE_SLACK: f64 = 2.0;
/// Slack on the full-cycle check: coarse correction plus post-smooth must
/// leave the residual within this multiple of the pre-smooth residual.
const MG_POST_SLACK: f64 = 1.5;
/// Additive rounding floor (relative to `‖b‖`) under which contraction
/// ratios are meaningless — keeps the post check from firing when the
/// pre-smooth already converged to rounding.
const MG_ROUND_FLOOR: f64 = 1e-12;

impl CheckedApply for MgPreconditioner {
    /// Applies one V-cycle exactly as
    /// [`Preconditioner::apply`] does — bit-identical `z` — and audits the
    /// cycle's contraction invariant on the finest level: the pre-smooth
    /// must not expand the input residual (`MG_PRE_SLACK`), and the
    /// completed cycle must not expand the pre-smooth residual
    /// (`MG_POST_SLACK`). Costs one extra fused residual (`2·nnz₀`
    /// flops) plus three norms on top of the plain application.
    fn apply_checked(&self, r: &[f64], z: &mut [f64]) -> Result<(), SdcDetected> {
        let _scope = xsc_metrics::record("mg_vcycle", self.traffic_per_cycle);
        self.cycle_checked(r, z)
    }

    fn flops_per_checked_apply(&self) -> u64 {
        let lv0 = &self.levels[0];
        self.flops_per_cycle() + 2 * lv0.a.nnz() as u64 + 6 * lv0.a.nrows() as u64
    }
}

impl MgPreconditioner {
    /// The level-0 body of [`MgPreconditioner::cycle`] with contraction
    /// audits spliced in. Mirrors `cycle(0, ..)` operation-for-operation
    /// (pre-smooth from zero, fused residual, injection restriction,
    /// recursive coarse solve, injection-add prolongation, post-smooth) so
    /// the produced `z` is bit-identical to the unchecked path; only the
    /// detector reductions are added.
    fn cycle_checked(&self, b: &[f64], x: &mut [f64]) -> Result<(), SdcDetected> {
        let _detector = xsc_metrics::record(
            "abft_mg_check",
            Traffic {
                flops: 6 * b.len() as u64,
                bytes_read: 8 * 3 * b.len() as u64,
                bytes_written: 0,
            },
        );
        let bnorm = blas1::nrm2(b);
        if !bnorm.is_finite() {
            return Err(SdcDetected::NonFinite {
                what: "mg input residual",
            });
        }
        let bnorm = bnorm.max(f64::MIN_POSITIVE);
        let lv = &self.levels[0];
        let a = &lv.a;
        let mut s = lv.scratch.borrow_mut();

        // Pre-smooth from zero (the coarsest-level cycle is exactly this).
        x.iter_mut().for_each(|v| *v = 0.0);
        lv.smoother.apply(a, b, x);
        a.fused_residual(x, b, &mut s.r);
        let pre = blas1::nrm2(&s.r);
        // `!(.. <= ..)` so a NaN norm also trips the detector.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(pre <= MG_PRE_SLACK * bnorm) {
            return Err(SdcDetected::MgNoContraction {
                phase: "pre",
                observed: pre / bnorm,
                tolerated: MG_PRE_SLACK,
            });
        }
        if self.levels.len() == 1 {
            return Ok(());
        }

        // Injection restriction, coarse solve, injection-add prolongation.
        let nc = lv.f2c.len();
        s.rc.resize(nc, 0.0);
        s.zc.resize(nc, 0.0);
        for (c, &f) in lv.f2c.iter().enumerate() {
            s.rc[c] = s.r[f];
        }
        let (rc, zc) = {
            let Scratch { rc, zc, .. } = &mut *s;
            (rc.clone(), zc)
        };
        self.cycle(1, &rc, zc);
        for (c, &f) in lv.f2c.iter().enumerate() {
            x[f] += s.zc[c];
        }
        // Post-smooth, then audit the whole cycle's contraction.
        lv.smoother.apply(a, b, x);
        a.fused_residual(x, b, &mut s.r);
        let post = blas1::nrm2(&s.r);
        // `!(.. <= ..)` so a NaN norm also trips the detector.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(post <= MG_POST_SLACK * pre + MG_ROUND_FLOOR * bnorm) {
            return Err(SdcDetected::MgNoContraction {
                phase: "post",
                observed: post / pre.max(f64::MIN_POSITIVE),
                tolerated: MG_POST_SLACK,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::stencil::build_rhs;
    use crate::symgs::symgs;

    fn residual_norm(a: &CsrMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.residual(x, b, &mut r);
        xsc_core::blas1::nrm2(&r)
    }

    #[test]
    fn one_vcycle_beats_one_symgs() {
        let g = Geometry::new(16, 16, 16);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mg = MgPreconditioner::new(g, 3);

        let mut x_mg = vec![0.0; a.nrows()];
        mg.apply(&b, &mut x_mg);
        let r_mg = residual_norm(&a, &x_mg, &b);

        let mut x_gs = vec![0.0; a.nrows()];
        symgs(&a, &b, &mut x_gs);
        let r_gs = residual_norm(&a, &x_gs, &b);

        assert!(
            r_mg < r_gs,
            "one V-cycle ({r_mg:.3e}) must beat one SymGS ({r_gs:.3e})"
        );
    }

    #[test]
    fn single_level_mg_is_just_symgs() {
        let g = Geometry::new(4, 4, 4);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mg = MgPreconditioner::new(g, 1);
        let mut x1 = vec![0.0; a.nrows()];
        mg.apply(&b, &mut x1);
        let mut x2 = vec![0.0; a.nrows()];
        symgs(&a, &b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn repeated_vcycles_converge() {
        let g = Geometry::new(8, 8, 8);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mg = MgPreconditioner::new(g, 3);
        // Stationary iteration x <- x + M^{-1}(b - Ax).
        let n = a.nrows();
        let mut x = vec![0.0; n];
        let r0 = residual_norm(&a, &x, &b);
        let mut prev = r0;
        for _ in 0..8 {
            let mut r = vec![0.0; n];
            a.residual(&x, &b, &mut r);
            let mut z = vec![0.0; n];
            mg.apply(&r, &mut z);
            for (xi, zi) in x.iter_mut().zip(z.iter()) {
                *xi += zi;
            }
            let cur = residual_norm(&a, &x, &b);
            assert!(cur < prev);
            prev = cur;
        }
        assert!(
            prev < 1e-2 * r0,
            "8 V-cycles reduced residual only to {prev:.3e} (from {r0:.3e})"
        );
    }

    #[test]
    fn flops_accounting_positive_and_ordered() {
        let g = Geometry::new(8, 8, 8);
        let mg2 = MgPreconditioner::new(g, 2);
        let mg3 = MgPreconditioner::new(g, 3);
        assert!(mg3.flops_per_cycle() > mg2.fine_matrix().nnz() as u64);
        // More levels -> more flops (coarse grids add work).
        assert!(mg3.flops_per_cycle() > 0);
        assert_eq!(mg2.num_levels(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot be coarsened")]
    fn too_many_levels_rejected() {
        let _ = MgPreconditioner::new(Geometry::new(4, 4, 4), 4);
    }

    #[test]
    fn all_smoother_families_precondition_cg() {
        use crate::cg::pcg;
        let g = Geometry::new(8, 8, 8);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mut iters = Vec::new();
        for smoother in [
            Smoother::SymGs,
            Smoother::Colored,
            Smoother::Chebyshev { degree: 4 },
        ] {
            let mg = MgPreconditioner::with_smoother(g, 3, smoother);
            let mut x = vec![0.0; a.nrows()];
            let res = pcg(&a, &b, &mut x, 100, 1e-9, &mg);
            assert!(
                res.converged,
                "{smoother:?} failed: {:?}",
                res.final_residual()
            );
            iters.push((smoother, res.iterations));
        }
        // All three should be in the same ballpark (within 3x of the best).
        let best = iters.iter().map(|&(_, i)| i).min().unwrap();
        for (s, i) in iters {
            assert!(i <= best * 3, "{s:?} took {i} iterations (best {best})");
        }
    }

    #[test]
    fn chebyshev_mg_flops_accounting_differs_from_symgs() {
        let g = Geometry::new(8, 8, 8);
        let gs = MgPreconditioner::with_smoother(g, 2, Smoother::SymGs);
        let ch = MgPreconditioner::with_smoother(g, 2, Smoother::Chebyshev { degree: 8 });
        // Degree-8 Chebyshev does 8 SpMVs (16 nnz flops) vs SymGS's 4 nnz.
        assert!(ch.flops_per_cycle() > gs.flops_per_cycle());
    }

    #[test]
    fn colored_mg_matches_symgs_mg_in_quality() {
        let g = Geometry::new(8, 8, 8);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        let mg_gs = MgPreconditioner::with_smoother(g, 3, Smoother::SymGs);
        let mg_col = MgPreconditioner::with_smoother(g, 3, Smoother::Colored);
        let mut z1 = vec![0.0; a.nrows()];
        mg_gs.apply(&b, &mut z1);
        let mut z2 = vec![0.0; a.nrows()];
        mg_col.apply(&b, &mut z2);
        let r1 = residual_norm(&a, &z1, &b);
        let r2 = residual_norm(&a, &z2, &b);
        assert!(r2 < r1 * 5.0, "colored V-cycle {r2} vs natural {r1}");
    }
}
