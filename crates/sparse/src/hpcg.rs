//! The HPCG-like benchmark driver.
//!
//! Mirrors the official benchmark's structure: build the 27-point problem,
//! build the multigrid hierarchy, run a fixed number of MG-preconditioned
//! CG iterations, and report Gflop/s using HPCG's flop accounting. The
//! resulting rate — compared against the same machine's HPL rate — is the
//! keynote's headline figure (experiment E01).

use crate::cg::{try_pcg, CgResult};
use crate::error::SolverError;
use crate::mg::{MgPreconditioner, Smoother};
use crate::ops::{FormatMatrix, SparseFormat};
use crate::stencil::{build_matrix, build_rhs, Geometry};
use xsc_core::flops;
use xsc_metrics::Stopwatch;

/// Outcome of one HPCG-like run.
#[derive(Debug, Clone)]
pub struct HpcgResult {
    /// Grid geometry used.
    pub geometry: Geometry,
    /// Number of rows of the fine operator.
    pub n: usize,
    /// Nonzeros of the fine operator.
    pub nnz: usize,
    /// Multigrid levels used.
    pub levels: usize,
    /// CG iterations executed.
    pub iterations: usize,
    /// Final relative residual.
    pub final_residual: f64,
    /// Wall-clock seconds of the timed solve phase.
    pub seconds: f64,
    /// Benchmark rate over the solve phase (HPCG flop accounting).
    pub gflops: f64,
    /// Whether the residual dropped by at least the expected factor
    /// (sanity acceptance, analogous to HPCG's verification phase).
    pub passed: bool,
    /// Sparse storage format the run executed on.
    pub format: SparseFormat,
    /// `‖r‖/‖b‖` after each iteration (index 0 = initial residual) — what
    /// E19 compares across formats.
    pub residual_history: Vec<f64>,
}

/// Runs the HPCG-like benchmark on an `nx × ny × nz` grid with `levels`
/// multigrid levels and `iters` CG iterations (the official benchmark uses
/// 4 levels and optimizes for 50-iteration batches).
pub fn run_hpcg(g: Geometry, levels: usize, iters: usize) -> HpcgResult {
    run_hpcg_fmt(g, levels, iters, SparseFormat::CsrUsize)
}

/// [`run_hpcg`] with the operator and every multigrid level stored in the
/// chosen [`SparseFormat`] — identical algorithm, identical iterates (every
/// format folds rows in the same order), different bytes per nonzero.
/// Panics if the operator overflows the format's `u32` indices (HPCG grids
/// that large do not fit in memory anyway).
pub fn run_hpcg_fmt(g: Geometry, levels: usize, iters: usize, format: SparseFormat) -> HpcgResult {
    try_run_hpcg_fmt(g, levels, iters, format)
        .unwrap_or_else(|e| panic!("hpcg run does not fit {format}: {e}"))
}

/// Fallible form of [`run_hpcg_fmt`]: index overflow, an impossible
/// hierarchy, or a Krylov breakdown come back as a typed [`SolverError`]
/// instead of a panic, so sweeps over formats and level counts can skip
/// infeasible configurations.
pub fn try_run_hpcg_fmt(
    g: Geometry,
    levels: usize,
    iters: usize,
    format: SparseFormat,
) -> Result<HpcgResult, SolverError> {
    let a_csr = build_matrix(g);
    let (b, _) = build_rhs(&a_csr);
    let (n, nnz) = (a_csr.nrows(), a_csr.nnz());
    let a = FormatMatrix::convert(a_csr, format)?;
    let mg = MgPreconditioner::try_with_format(g, levels, Smoother::SymGs, format)?;

    let mut x = vec![0.0f64; n];
    let start = Stopwatch::start();
    let res: CgResult = try_pcg(&a, &b, &mut x, iters, 0.0, &mg)?;
    let seconds = start.seconds();

    let initial = res.residual_history.first().copied().unwrap_or(1.0);
    let final_residual = res.final_residual();
    Ok(HpcgResult {
        geometry: g,
        n,
        nnz,
        levels,
        iterations: res.iterations,
        final_residual,
        seconds,
        gflops: flops::gflops(res.flops, seconds),
        passed: final_residual < initial * 1e-6 || final_residual < 1e-10,
        format,
        residual_history: res.residual_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpcg_run_reports_sane_numbers() {
        let g = Geometry::new(16, 16, 16);
        let res = run_hpcg(g, 3, 25);
        assert_eq!(res.n, 16 * 16 * 16);
        assert!(res.nnz > res.n * 20, "27-point stencil should be dense-ish");
        assert!(res.gflops > 0.0);
        assert_eq!(res.iterations, 25);
        assert!(
            res.final_residual < 1e-6,
            "MG-CG after 25 iters should be well converged: {}",
            res.final_residual
        );
        assert!(res.passed);
    }

    #[test]
    fn more_iterations_do_not_hurt_convergence() {
        let g = Geometry::new(8, 8, 8);
        let short = run_hpcg(g, 3, 5);
        let long = run_hpcg(g, 3, 20);
        assert!(long.final_residual <= short.final_residual * 1.0001);
    }

    #[test]
    fn all_formats_produce_identical_histories() {
        let g = Geometry::new(8, 8, 8);
        let base = run_hpcg_fmt(g, 3, 10, SparseFormat::CsrUsize);
        for fmt in [SparseFormat::Csr32, SparseFormat::SellCSigma] {
            let r = run_hpcg_fmt(g, 3, 10, fmt);
            assert_eq!(r.format, fmt);
            assert_eq!(r.iterations, base.iterations, "{fmt}");
            assert_eq!(r.residual_history, base.residual_history, "{fmt}");
        }
    }

    #[test]
    fn infeasible_hierarchy_is_a_typed_error_not_a_panic() {
        let g = Geometry::new(4, 4, 4);
        let err = try_run_hpcg_fmt(g, 4, 5, SparseFormat::Csr32);
        assert!(matches!(err, Err(SolverError::NotCoarsenable { .. })));
        let none = try_run_hpcg_fmt(g, 0, 5, SparseFormat::CsrUsize);
        assert!(matches!(none, Err(SolverError::NoLevels)));
    }

    #[test]
    fn single_level_hpcg_still_works() {
        let g = Geometry::new(8, 8, 8);
        let res = run_hpcg(g, 1, 30);
        assert!(res.final_residual < 1e-4);
    }
}
