//! The HPCG model problem: a 27-point stencil on a 3-D grid.
//!
//! Each interior grid point couples to its 26 neighbors with weight `-1`
//! and to itself with weight `26` (at the boundary, missing neighbors are
//! simply dropped, which makes the operator strictly diagonally dominant
//! there and symmetric positive definite overall). This synthetic PDE
//! operator is what HPCG measures machines with.

use crate::csr::CsrMatrix;

/// Dimensions of a 3-D structured grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Points in x.
    pub nx: usize,
    /// Points in y.
    pub ny: usize,
    /// Points in z.
    pub nz: usize,
}

impl Geometry {
    /// Creates a geometry (all dimensions must be positive).
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        Geometry { nx, ny, nz }
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` for a degenerate empty geometry (never constructible via
    /// [`Geometry::new`], provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of grid point `(ix, iy, iz)` (x fastest).
    #[inline]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny && iz < self.nz);
        ix + self.nx * (iy + self.ny * iz)
    }

    /// `true` if every dimension is even (coarsenable by 2).
    pub fn coarsenable(&self) -> bool {
        self.nx.is_multiple_of(2)
            && self.ny.is_multiple_of(2)
            && self.nz.is_multiple_of(2)
            && self.nx >= 2
            && self.ny >= 2
            && self.nz >= 2
    }

    /// The geometry coarsened by 2 in each dimension.
    pub fn coarsen(&self) -> Geometry {
        assert!(self.coarsenable(), "geometry {self:?} is not coarsenable");
        Geometry {
            nx: self.nx / 2,
            ny: self.ny / 2,
            nz: self.nz / 2,
        }
    }
}

/// Builds the 27-point HPCG operator on `g`.
pub fn build_matrix(g: Geometry) -> CsrMatrix<f64> {
    let n = g.len();
    let mut trips = Vec::with_capacity(n * 27);
    for iz in 0..g.nz {
        for iy in 0..g.ny {
            for ix in 0..g.nx {
                let row = g.index(ix, iy, iz);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let jx = ix as i64 + dx;
                            let jy = iy as i64 + dy;
                            let jz = iz as i64 + dz;
                            if jx < 0
                                || jy < 0
                                || jz < 0
                                || jx >= g.nx as i64
                                || jy >= g.ny as i64
                                || jz >= g.nz as i64
                            {
                                continue;
                            }
                            // xsc-lint: allow(X01, reason = "i64 -> usize after the 0 <= j < n bound check above; idx::widen is u32-only")
                            let col = g.index(jx as usize, jy as usize, jz as usize);
                            let v = if col == row { 26.0 } else { -1.0 };
                            trips.push((row, col, v));
                        }
                    }
                }
            }
        }
    }
    CsrMatrix::from_triplets(n, n, trips)
}

/// The HPCG right-hand side: `b = A · 1` (so the exact solution is the
/// all-ones vector), plus that exact solution.
pub fn build_rhs(a: &CsrMatrix<f64>) -> (Vec<f64>, Vec<f64>) {
    let n = a.nrows();
    let x_exact = vec![1.0f64; n];
    let mut b = vec![0.0f64; n];
    a.spmv(&x_exact, &mut b);
    (b, x_exact)
}

/// Fine-grid index of each coarse-grid point (HPCG's injection operator:
/// coarse point `(i,j,k)` maps to fine point `(2i,2j,2k)`).
pub fn f2c_map(fine: Geometry) -> Vec<usize> {
    let coarse = fine.coarsen();
    let mut f2c = Vec::with_capacity(coarse.len());
    for iz in 0..coarse.nz {
        for iy in 0..coarse.ny {
            for ix in 0..coarse.nx {
                f2c.push(fine.index(2 * ix, 2 * iy, 2 * iz));
            }
        }
    }
    f2c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_indexing_is_x_fastest() {
        let g = Geometry::new(4, 3, 2);
        assert_eq!(g.len(), 24);
        assert_eq!(g.index(0, 0, 0), 0);
        assert_eq!(g.index(1, 0, 0), 1);
        assert_eq!(g.index(0, 1, 0), 4);
        assert_eq!(g.index(0, 0, 1), 12);
    }

    #[test]
    fn interior_rows_have_27_entries() {
        let g = Geometry::new(4, 4, 4);
        let a = build_matrix(g);
        let interior = g.index(1, 2, 1);
        assert_eq!(a.row(interior).0.len(), 27);
        // Corner has 8 entries (itself + 7 neighbors).
        assert_eq!(a.row(g.index(0, 0, 0)).0.len(), 8);
    }

    #[test]
    fn matrix_is_symmetric() {
        let a = build_matrix(Geometry::new(4, 3, 3));
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn interior_row_sums_to_zero_boundary_positive() {
        let g = Geometry::new(6, 6, 6);
        let a = build_matrix(g);
        let (b, _) = build_rhs(&a);
        // b = A*1 = row sums. Interior: 26 - 26 = 0. Boundary: positive.
        assert!(b[g.index(3, 3, 3)].abs() < 1e-14);
        assert!(b[g.index(0, 0, 0)] > 0.0);
    }

    #[test]
    fn diagonal_is_26() {
        let a = build_matrix(Geometry::new(3, 3, 3));
        assert!(a.diagonal().iter().all(|&d| d == 26.0));
    }

    #[test]
    fn nnz_matches_hpcg_formula() {
        // Total nnz = sum over points of (neighbors in range).
        let g = Geometry::new(4, 4, 4);
        let a = build_matrix(g);
        // Per dimension of size 4, the neighbor-pair count is
        // 2+3+3+2 = 10, and the stencil factorizes across dimensions:
        // nnz = 10^3.
        assert_eq!(a.nnz(), 10 * 10 * 10);
    }

    #[test]
    fn coarsening_and_f2c() {
        let g = Geometry::new(8, 4, 6);
        assert!(g.coarsenable());
        let c = g.coarsen();
        assert_eq!(c, Geometry::new(4, 2, 3));
        let map = f2c_map(g);
        assert_eq!(map.len(), c.len());
        assert_eq!(map[0], 0);
        assert_eq!(map[1], g.index(2, 0, 0));
        // All distinct fine points.
        let mut sorted = map.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), map.len());
    }

    #[test]
    fn odd_geometry_not_coarsenable() {
        assert!(!Geometry::new(5, 4, 4).coarsenable());
        assert!(!Geometry::new(2, 2, 2).coarsen().coarsenable());
    }

    #[test]
    fn operator_is_positive_definite_small() {
        // Dense Cholesky succeeds <=> SPD.
        let a = build_matrix(Geometry::new(3, 3, 2)).to_dense();
        let mut f = a;
        assert!(xsc_core::factor::potrf_unblocked(&mut f).is_ok());
    }
}
