//! Symmetric Gauss–Seidel: HPCG's smoother.
//!
//! One application is a forward sweep followed by a backward sweep of
//! Gauss–Seidel on `A x = b`. Its data dependencies chain through the rows,
//! which is precisely why HPCG resists the "throw more cores at it"
//! approach — the reference sweep is inherently sequential.

use crate::csr::CsrMatrix;

/// One forward Gauss–Seidel sweep: `x` updated in place, rows in order.
pub fn forward_sweep(a: &CsrMatrix<f64>, b: &[f64], x: &mut [f64]) {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        let mut acc = b[i];
        let mut diag = 0.0;
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            if c == i {
                diag = v;
            } else {
                acc -= v * x[c];
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {i}");
        x[i] = acc / diag;
    }
}

/// One backward Gauss–Seidel sweep (rows in reverse order).
pub fn backward_sweep(a: &CsrMatrix<f64>, b: &[f64], x: &mut [f64]) {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    for i in (0..n).rev() {
        let (cols, vals) = a.row(i);
        let mut acc = b[i];
        let mut diag = 0.0;
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            if c == i {
                diag = v;
            } else {
                acc -= v * x[c];
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {i}");
        x[i] = acc / diag;
    }
}

/// One symmetric Gauss–Seidel application (forward then backward sweep) —
/// the HPCG `ComputeSYMGS` reference kernel.
pub fn symgs(a: &CsrMatrix<f64>, b: &[f64], x: &mut [f64]) {
    let _scope = xsc_metrics::record(
        "symgs",
        xsc_metrics::traffic::symgs_csr(a.nrows(), a.nnz(), 8),
    );
    forward_sweep(a, b, x);
    backward_sweep(a, b, x);
}

/// Flops of one symmetric Gauss–Seidel application (HPCG accounting:
/// ~`4·nnz`, two sweeps at `2·nnz` each).
pub fn symgs_flops(a: &CsrMatrix<f64>) -> u64 {
    4 * a.nnz() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{build_matrix, build_rhs, Geometry};

    fn residual_norm(a: &CsrMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.residual(x, b, &mut r);
        xsc_core::blas1::nrm2(&r)
    }

    #[test]
    fn sweeps_reduce_residual_monotonically() {
        let a = build_matrix(Geometry::new(6, 6, 6));
        let (b, _) = build_rhs(&a);
        let mut x = vec![0.0; a.nrows()];
        let mut prev = residual_norm(&a, &x, &b);
        for _ in 0..5 {
            symgs(&a, &b, &mut x);
            let r = residual_norm(&a, &x, &b);
            assert!(r < prev, "residual must shrink: {r} vs {prev}");
            prev = r;
        }
    }

    #[test]
    fn exact_solution_is_fixed_point() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        let (b, x_exact) = build_rhs(&a);
        let mut x = x_exact.clone();
        symgs(&a, &b, &mut x);
        for (xi, ei) in x.iter().zip(x_exact.iter()) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_to_exact_solution_eventually() {
        let a = build_matrix(Geometry::new(4, 4, 2));
        let (b, x_exact) = build_rhs(&a);
        let mut x = vec![0.0; a.nrows()];
        for _ in 0..200 {
            symgs(&a, &b, &mut x);
        }
        for (xi, ei) in x.iter().zip(x_exact.iter()) {
            assert!((xi - ei).abs() < 1e-8, "{xi} vs {ei}");
        }
    }

    #[test]
    fn forward_sweep_solves_lower_triangular_exactly() {
        // For a lower-triangular matrix, one forward sweep IS the solve.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 4.0),
                (2, 1, -1.0),
                (2, 2, 5.0),
            ],
        );
        let b = vec![2.0, 9.0, 3.0];
        let mut x = vec![0.0; 3];
        forward_sweep(&a, &b, &mut x);
        // x0 = 1, x1 = (9-1)/4 = 2, x2 = (3+2)/5 = 1.
        assert!((x[0] - 1.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
        assert!((x[2] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn flop_accounting() {
        let a = build_matrix(Geometry::new(4, 4, 4));
        assert_eq!(symgs_flops(&a), 4 * a.nnz() as u64);
    }
}
