//! Chaos plans: schedule-independent fault injection for task DAGs.
//!
//! [`FaultInjector`](crate::inject::FaultInjector) draws from a *stateful*
//! RNG stream, which is right for a single-threaded solver loop but wrong
//! for a multithreaded DAG: the stream order would depend on thread
//! interleaving, and two runs of the same campaign would corrupt different
//! tasks. A [`FaultPlan`] instead decides **statelessly** — the verdict
//! for a `(task, attempt)` pair is a pure hash of `(seed, task, attempt)`
//! — so it is `Sync`, can be shared by every worker without locks, and
//! yields byte-identical fault schedules across runs and thread counts.
//! Retries are first-class: attempt 2 of a task rolls independently of
//! attempt 1, so a retried task is *not* doomed to refail (and campaigns
//! at the same rate hit the same first attempts regardless of retry
//! policy).
//!
//! A plan injects three fault species, mirroring what the keynote lists as
//! the dominant failure modes at scale:
//!
//! * [`ChaosKind::Panic`] — the task dies mid-flight (process/node crash);
//! * [`ChaosKind::SilentCorrupt`] — the task completes but its output is
//!   wrong (undetected DRAM/logic error) — the case ABFT exists for;
//! * [`ChaosKind::Stall`] — the task runs far slower than its siblings
//!   (the "straggler" problem).

use crate::inject::FaultKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use xsc_runtime::{Attempt, TaskFault, TaskId};

/// What an injected chaos event does to the victim task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// The attempt panics (fail-crash).
    Panic,
    /// The attempt completes with corrupted output (silent data error),
    /// perturbing one element with the given [`FaultKind`].
    SilentCorrupt(FaultKind),
    /// The attempt stalls for the plan's stall duration before running.
    Stall,
}

/// The verdict [`FaultPlan::decide`] returns for one task attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// Panic now (the plan has already counted it).
    Panic,
    /// Complete normally, then corrupt the output via
    /// [`FaultPlan::corrupt_slice`].
    Corrupt(FaultKind),
    /// Sleep for [`FaultPlan::stall_duration`] before (or while) running.
    Stall(Duration),
}

/// SplitMix64 finalizer — the same mixer the runtime's jittered backoff
/// uses; cheap and well distributed.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded, schedule-independent fault plan for one DAG execution (or an
/// entire campaign — the decision function has no mutable state; the only
/// interior mutability is the fired counters).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    kind: ChaosKind,
    stall: Duration,
    fired_panics: AtomicUsize,
    fired_corruptions: AtomicUsize,
    fired_stalls: AtomicUsize,
}

impl FaultPlan {
    /// Creates a plan firing with probability `rate` per task attempt.
    ///
    /// # Panics
    /// If `rate` is not in `[0, 1]` (NaN included).
    pub fn new(seed: u64, rate: f64, kind: ChaosKind) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FaultPlan {
            seed,
            rate,
            kind,
            stall: Duration::from_micros(200),
            fired_panics: AtomicUsize::new(0),
            fired_corruptions: AtomicUsize::new(0),
            fired_stalls: AtomicUsize::new(0),
        }
    }

    /// Sets how long a [`ChaosKind::Stall`] injection sleeps.
    pub fn stall_duration(mut self, d: Duration) -> Self {
        self.stall = d;
        self
    }

    /// The per-attempt firing probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Pure decision: does this `(task, attempt)` pair draw a fault?
    /// Identical across runs, thread counts, and schedules. Does not
    /// count anything — see [`FaultPlan::decide`].
    pub fn fires_at(&self, task: TaskId, attempt: u32) -> bool {
        let h = mix(self.seed ^ mix((task as u64) << 32 | u64::from(attempt)));
        unit_f64(h) < self.rate
    }

    /// Rolls for one attempt and, when it fires, counts the event and
    /// returns what the kernel must do. Call exactly once per attempt.
    pub fn decide(&self, task: TaskId, attempt: u32) -> Option<Injection> {
        if !self.fires_at(task, attempt) {
            return None;
        }
        Some(match self.kind {
            ChaosKind::Panic => {
                self.fired_panics.fetch_add(1, Ordering::Relaxed);
                Injection::Panic
            }
            ChaosKind::SilentCorrupt(k) => {
                self.fired_corruptions.fetch_add(1, Ordering::Relaxed);
                Injection::Corrupt(k)
            }
            ChaosKind::Stall => {
                self.fired_stalls.fetch_add(1, Ordering::Relaxed);
                Injection::Stall(self.stall)
            }
        })
    }

    /// Deterministic victim choice among `len` candidates for this
    /// `(task, attempt)` — lets callers corrupt within a custom index set
    /// (e.g. only the live triangle of a symmetric tile). Returns `None`
    /// when `len == 0`.
    pub fn victim_index(&self, len: usize, task: TaskId, attempt: u32) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let h = mix(self.seed ^ 0x9e3779b97f4a7c15 ^ mix((task as u64) << 32 | u64::from(attempt)));
        Some((h % len as u64) as usize)
    }

    /// Corrupts a deterministically chosen element of `data` with `kind`
    /// (the element index is a hash of the plan seed and the attempt, so
    /// same-seed runs corrupt the same element of the same task).
    pub fn corrupt_slice(&self, data: &mut [f64], kind: FaultKind, task: TaskId, attempt: u32) {
        if let Some(i) = self.victim_index(data.len(), task, attempt) {
            data[i] = kind.apply(data[i]);
        }
    }

    /// Total injections so far, by species: `(panics, corruptions, stalls)`.
    pub fn fired(&self) -> (usize, usize, usize) {
        (
            self.fired_panics.load(Ordering::Relaxed),
            self.fired_corruptions.load(Ordering::Relaxed),
            self.fired_stalls.load(Ordering::Relaxed),
        )
    }

    /// Total injections so far, all species.
    pub fn total_fired(&self) -> usize {
        let (p, c, s) = self.fired();
        p + c + s
    }
}

/// Wraps a fallible kernel with this plan: panics and stalls are injected
/// generically; silent corruption is delegated to `corrupt`, which knows
/// where the task's output lives (called *after* the kernel succeeds, so
/// the corruption lands on computed data exactly as a silent hardware
/// error would).
///
/// The wrapped kernel is `Fn + Send + Sync`, ready for
/// [`TaskGraph::add_fallible_task`](xsc_runtime::TaskGraph::add_fallible_task).
pub fn chaos_kernel<K, C>(
    plan: std::sync::Arc<FaultPlan>,
    kernel: K,
    corrupt: C,
) -> impl Fn(Attempt) -> Result<(), TaskFault> + Send + Sync
where
    K: Fn(Attempt) -> Result<(), TaskFault> + Send + Sync,
    C: Fn(&FaultPlan, FaultKind, Attempt) + Send + Sync,
{
    move |a: Attempt| match plan.decide(a.task, a.attempt) {
        Some(Injection::Panic) => {
            panic!(
                "chaos: injected panic in task {} attempt {}",
                a.task, a.attempt
            )
        }
        Some(Injection::Stall(d)) => {
            std::thread::sleep(d);
            kernel(a)
        }
        Some(Injection::Corrupt(k)) => {
            kernel(a)?;
            corrupt(&plan, k, a);
            Ok(())
        }
        None => kernel(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn decisions_are_deterministic_and_schedule_free() {
        let p1 = FaultPlan::new(42, 0.3, ChaosKind::Panic);
        let p2 = FaultPlan::new(42, 0.3, ChaosKind::Panic);
        // Query p2 in a scrambled order: verdicts must match anyway.
        let forward: Vec<bool> = (0..100).map(|t| p1.fires_at(t, 1)).collect();
        let backward: Vec<bool> = (0..100).rev().map(|t| p2.fires_at(t, 1)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        assert!(
            forward.iter().any(|&b| b),
            "rate 0.3 over 100 tasks must fire"
        );
        assert!(!forward.iter().all(|&b| b), "rate 0.3 must not always fire");
    }

    #[test]
    fn attempts_roll_independently() {
        let p = FaultPlan::new(7, 0.5, ChaosKind::Panic);
        let per_attempt: Vec<bool> = (1..=64).map(|a| p.fires_at(3, a)).collect();
        assert!(per_attempt.iter().any(|&b| b));
        assert!(
            per_attempt.iter().any(|&b| !b),
            "retries must not be doomed"
        );
    }

    #[test]
    fn rate_extremes() {
        let never = FaultPlan::new(1, 0.0, ChaosKind::Panic);
        assert!((0..1000).all(|t| !never.fires_at(t, 1)));
        let always = FaultPlan::new(1, 1.0, ChaosKind::Panic);
        assert!((0..1000).all(|t| always.fires_at(t, 1)));
        assert!(std::panic::catch_unwind(|| FaultPlan::new(0, 1.7, ChaosKind::Panic)).is_err());
    }

    #[test]
    fn empirical_rate_tracks_nominal() {
        let p = FaultPlan::new(1234, 0.05, ChaosKind::Panic);
        let n = 20_000u64;
        let hits = (0..n).filter(|&t| p.fires_at(t as usize, 1)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.05).abs() < 0.01, "empirical rate {freq}");
    }

    #[test]
    fn decide_counts_by_species() {
        let p = FaultPlan::new(5, 1.0, ChaosKind::SilentCorrupt(FaultKind::BitFlip));
        assert!(matches!(
            p.decide(0, 1),
            Some(Injection::Corrupt(FaultKind::BitFlip))
        ));
        assert!(matches!(p.decide(1, 1), Some(Injection::Corrupt(_))));
        assert_eq!(p.fired(), (0, 2, 0));
        assert_eq!(p.total_fired(), 2);
    }

    #[test]
    fn corrupt_slice_is_deterministic() {
        let p = FaultPlan::new(9, 1.0, ChaosKind::SilentCorrupt(FaultKind::Zero));
        let mut a = vec![1.0; 64];
        let mut b = vec![1.0; 64];
        p.corrupt_slice(&mut a, FaultKind::Zero, 4, 1);
        p.corrupt_slice(&mut b, FaultKind::Zero, 4, 1);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&v| v == 0.0).count(), 1);
        // Different attempt -> (generically) different victim element.
        let mut c = vec![1.0; 64];
        p.corrupt_slice(&mut c, FaultKind::Zero, 4, 2);
        let pos = |v: &[f64]| v.iter().position(|&x| x == 0.0).unwrap();
        assert_ne!(pos(&a), pos(&c));
        // Empty slices are a no-op, not a panic.
        let mut empty: [f64; 0] = [];
        p.corrupt_slice(&mut empty, FaultKind::Zero, 0, 1);
    }

    #[test]
    fn chaos_kernel_injects_panic_and_corruption() {
        use std::sync::Mutex;
        // Panic species: wrapped kernel panics when the plan fires.
        let plan = Arc::new(FaultPlan::new(3, 1.0, ChaosKind::Panic));
        let k = chaos_kernel(Arc::clone(&plan), |_| Ok(()), |_, _, _| {});
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            k(Attempt {
                task: 0,
                attempt: 1,
            })
        }));
        assert!(r.is_err());
        assert_eq!(plan.fired().0, 1);

        // Corruption species: kernel output corrupted after success.
        let data = Arc::new(Mutex::new(vec![1.0f64; 8]));
        let plan = Arc::new(FaultPlan::new(
            3,
            1.0,
            ChaosKind::SilentCorrupt(FaultKind::Zero),
        ));
        let d = Arc::clone(&data);
        let k = chaos_kernel(
            Arc::clone(&plan),
            |_| Ok(()),
            move |p, kind, a| p.corrupt_slice(&mut d.lock().unwrap(), kind, a.task, a.attempt),
        );
        k(Attempt {
            task: 0,
            attempt: 1,
        })
        .unwrap();
        assert_eq!(
            data.lock().unwrap().iter().filter(|&&v| v == 0.0).count(),
            1
        );
    }

    #[test]
    fn chaos_kernel_rate_zero_is_passthrough() {
        let plan = Arc::new(FaultPlan::new(3, 0.0, ChaosKind::Panic));
        let k = chaos_kernel(Arc::clone(&plan), |_| Ok(()), |_, _, _| {});
        for t in 0..100 {
            assert!(k(Attempt {
                task: t,
                attempt: 1
            })
            .is_ok());
        }
        assert_eq!(plan.total_fired(), 0);
    }
}
