//! Deterministic fault injection.
//!
//! Real extreme-scale faults (DRAM upsets, failed nodes) cannot be
//! scheduled on a laptop, so experiments inject them: a seeded RNG decides
//! *when* a fault fires and *which* element it corrupts, making every
//! resilience experiment reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xsc_core::{Matrix, Scalar};

/// How an injected fault perturbs the victim value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Flip a high mantissa/exponent bit: value becomes wildly wrong.
    BitFlip,
    /// Overwrite with a fixed garbage value.
    Stuck(f64),
    /// Scale by a factor (a "silent" small corruption).
    Scale(f64),
    /// Overwrite with exactly zero (a dead tile / lost update).
    Zero,
}

impl FaultKind {
    /// Applies this corruption to one value — the single implementation
    /// shared by [`FaultInjector`] and the chaos-plan adapter
    /// ([`crate::plan::FaultPlan`]).
    pub fn apply(self, v: f64) -> f64 {
        match self {
            FaultKind::BitFlip => {
                // Flip a high bit of the f64 image: deterministic, large.
                f64::from_bits(v.to_bits() ^ (1u64 << 61))
            }
            FaultKind::Stuck(g) => g,
            FaultKind::Scale(s) => v * s,
            FaultKind::Zero => 0.0,
        }
    }
}

/// A seeded fault injector with a per-opportunity firing probability.
pub struct FaultInjector {
    rng: SmallRng,
    /// Probability that a given opportunity fires. Kept private so it can
    /// only be set through the validated constructor/setter — a rate
    /// outside `[0, 1]` would silently skew every resilience experiment.
    rate: f64,
    kind: FaultKind,
    fired: usize,
}

impl FaultInjector {
    /// Creates an injector firing with probability `rate` per opportunity.
    pub fn new(rate: f64, kind: FaultKind, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FaultInjector {
            rng: SmallRng::seed_from_u64(seed),
            rate,
            kind,
            fired: 0,
        }
    }

    /// The per-opportunity firing probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Changes the firing probability.
    ///
    /// # Panics
    /// If `rate` is not in `[0, 1]` (NaN included).
    pub fn set_rate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.rate = rate;
    }

    /// Number of faults injected so far.
    pub fn faults_fired(&self) -> usize {
        self.fired
    }

    /// Rolls the dice for one opportunity.
    pub fn should_fire(&mut self) -> bool {
        self.rng.gen_bool(self.rate)
    }

    /// Corrupts one value according to the configured [`FaultKind`].
    pub fn corrupt_value<T: Scalar>(&mut self, v: T) -> T {
        self.fired += 1;
        T::from_f64(self.kind.apply(v.to_f64()))
    }

    /// Unconditionally corrupts a uniformly chosen element of `m`,
    /// returning its position.
    pub fn corrupt_matrix<T: Scalar>(&mut self, m: &mut Matrix<T>) -> (usize, usize) {
        let i = self.rng.gen_range(0..m.rows());
        let j = self.rng.gen_range(0..m.cols());
        let v = m.get(i, j);
        let c = self.corrupt_value(v);
        m.set(i, j, c);
        (i, j)
    }

    /// Unconditionally corrupts a uniformly chosen element of a vector,
    /// returning its index.
    pub fn corrupt_vector<T: Scalar>(&mut self, v: &mut [T]) -> usize {
        let i = self.rng.gen_range(0..v.len());
        v[i] = self.corrupt_value(v[i]);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_is_reproducible() {
        let mut a = Matrix::<f64>::zeros(8, 8);
        let mut b = Matrix::<f64>::zeros(8, 8);
        let p1 = FaultInjector::new(1.0, FaultKind::BitFlip, 7).corrupt_matrix(&mut a);
        let p2 = FaultInjector::new(1.0, FaultKind::BitFlip, 7).corrupt_matrix(&mut b);
        assert_eq!(p1, p2);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn bit_flip_changes_value_substantially() {
        let mut inj = FaultInjector::new(1.0, FaultKind::BitFlip, 1);
        let v = inj.corrupt_value(1.0f64);
        assert_ne!(v, 1.0);
        // Flipping exponent bit 61 either explodes the value (~1e154) or
        // collapses it (~1e-154); both are a large *relative* change.
        assert!((v - 1.0).abs() >= 0.5, "bit 61 flip must be large: {v}");
        assert_eq!(inj.faults_fired(), 1);
    }

    #[test]
    fn stuck_and_scale_kinds() {
        let mut inj = FaultInjector::new(1.0, FaultKind::Stuck(42.0), 2);
        assert_eq!(inj.corrupt_value(7.0f64), 42.0);
        let mut inj = FaultInjector::new(1.0, FaultKind::Scale(2.0), 3);
        assert_eq!(inj.corrupt_value(7.0f64), 14.0);
    }

    #[test]
    fn zero_kind_kills_value() {
        let mut inj = FaultInjector::new(1.0, FaultKind::Zero, 11);
        assert_eq!(inj.corrupt_value(3.5f64), 0.0);
        assert_eq!(FaultKind::Zero.apply(-7.0), 0.0);
    }

    #[test]
    fn rate_is_validated_and_readable() {
        let mut inj = FaultInjector::new(0.25, FaultKind::BitFlip, 12);
        assert_eq!(inj.rate(), 0.25);
        inj.set_rate(0.5);
        assert_eq!(inj.rate(), 0.5);
        assert!(std::panic::catch_unwind(move || inj.set_rate(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| FaultInjector::new(-0.1, FaultKind::Zero, 0)).is_err());
    }

    #[test]
    fn rate_zero_never_fires() {
        let mut inj = FaultInjector::new(0.0, FaultKind::BitFlip, 4);
        assert!((0..1000).all(|_| !inj.should_fire()));
    }

    #[test]
    fn rate_one_always_fires() {
        let mut inj = FaultInjector::new(1.0, FaultKind::BitFlip, 5);
        assert!((0..100).all(|_| inj.should_fire()));
    }

    #[test]
    fn vector_corruption_in_bounds() {
        let mut inj = FaultInjector::new(1.0, FaultKind::BitFlip, 6);
        let mut v = vec![1.0f64; 17];
        let i = inj.corrupt_vector(&mut v);
        assert!(i < 17);
        assert_ne!(v[i], 1.0);
    }
}
