//! Huang–Abraham algorithm-based fault tolerance for dense kernels.
//!
//! Encode `A` with an extra checksum row (`eᵀA`) and `B` with a checksum
//! column (`Be`); then `C = A·B` computed on the encoded operands carries
//! its own row and column checksums *through the multiplication*. After the
//! kernel, a mismatch in checksum row `j` and checksum column `i`
//! simultaneously pinpoints the corrupted entry `(i, j)`, and the checksum
//! difference is exactly the correction — detection, location, and repair
//! at `O(n²)` cost against the kernel's `O(n³)`.

use xsc_core::gemm::{gemm, Transpose};
use xsc_core::{factor, norms, Matrix, Result, Scalar};

/// Outcome of an ABFT verification pass.
#[derive(Debug, Clone, PartialEq)]
pub enum AbftOutcome {
    /// All checksums consistent.
    Clean,
    /// One entry was corrupted, located, and corrected.
    Corrected {
        /// Row of the repaired entry.
        row: usize,
        /// Column of the repaired entry.
        col: usize,
        /// Magnitude of the applied correction.
        magnitude: f64,
    },
    /// Checksums disagree in a pattern a single-error code cannot repair.
    Uncorrectable,
}

/// Appends a checksum row to `a`: returns the `(m+1) × n` matrix whose last
/// row is the column sums of `a`.
pub fn encode_rows<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let (m, n) = (a.rows(), a.cols());
    let mut out = Matrix::zeros(m + 1, n);
    a.copy_block_into(0, 0, m, n, &mut out, 0, 0);
    for j in 0..n {
        let s: T = a.col(j).iter().copied().sum();
        out.set(m, j, s);
    }
    out
}

/// Appends a checksum column to `b`: returns the `m × (n+1)` matrix whose
/// last column is the row sums of `b`.
pub fn encode_cols<T: Scalar>(b: &Matrix<T>) -> Matrix<T> {
    let (m, n) = (b.rows(), b.cols());
    let mut out = Matrix::zeros(m, n + 1);
    b.copy_block_into(0, 0, m, n, &mut out, 0, 0);
    for i in 0..m {
        let mut s = T::zero();
        for j in 0..n {
            s += b.get(i, j);
        }
        out.set(i, n, s);
    }
    out
}

/// Verifies the checksums of an encoded `(m+1) × (n+1)` product and repairs
/// a single corrupted interior entry if found. `tol` is the absolute
/// checksum tolerance (roundoff scale).
pub fn verify_and_correct<T: Scalar>(c: &mut Matrix<T>, tol: f64) -> AbftOutcome {
    let m = c.rows() - 1;
    let n = c.cols() - 1;
    // Column-checksum residuals (per column j: sum of rows - checksum row).
    let mut col_bad = Vec::new();
    for j in 0..n {
        let mut s = T::zero();
        for i in 0..m {
            s += c.get(i, j);
        }
        let d = (s - c.get(m, j)).to_f64();
        if d.abs() > tol {
            col_bad.push((j, d));
        }
    }
    // Row-checksum residuals.
    let mut row_bad = Vec::new();
    for i in 0..m {
        let mut s = T::zero();
        for j in 0..n {
            s += c.get(i, j);
        }
        let d = (s - c.get(i, n)).to_f64();
        if d.abs() > tol {
            row_bad.push((i, d));
        }
    }
    match (row_bad.len(), col_bad.len()) {
        (0, 0) => AbftOutcome::Clean,
        (1, 1) => {
            let (i, di) = row_bad[0];
            let (j, dj) = col_bad[0];
            // Both residuals measure the same corruption; they must agree.
            if (di - dj).abs() > tol * 10.0 + (di.abs() + dj.abs()) * 1e-8 {
                return AbftOutcome::Uncorrectable;
            }
            let old = c.get(i, j);
            c.set(i, j, old - T::from_f64(di));
            AbftOutcome::Corrected {
                row: i,
                col: j,
                magnitude: di.abs(),
            }
        }
        // A corrupted checksum row/column entry shows up as exactly one bad
        // residual on one side: repair by recomputing that checksum.
        (1, 0) => {
            let (i, di) = row_bad[0];
            let old = c.get(i, n);
            c.set(i, n, old + T::from_f64(di));
            AbftOutcome::Corrected {
                row: i,
                col: n,
                magnitude: di.abs(),
            }
        }
        (0, 1) => {
            let (j, dj) = col_bad[0];
            let old = c.get(m, j);
            c.set(m, j, old + T::from_f64(dj));
            AbftOutcome::Corrected {
                row: m,
                col: j,
                magnitude: dj.abs(),
            }
        }
        _ => AbftOutcome::Uncorrectable,
    }
}

/// Checksum tolerance for a product of the given shape with entries of
/// magnitude ~`scale`: roundoff grows like `k · ε · scale` per
/// accumulation, padded by a safety factor.
pub fn checksum_tolerance(m: usize, n: usize, k: usize, scale: f64) -> f64 {
    let dim = m.max(n).max(k) as f64;
    64.0 * dim * f64::EPSILON * scale.max(1.0) * dim.sqrt()
}

/// ABFT-protected GEMM: computes `C = A·B` on checksum-encoded operands,
/// optionally letting `tamper` corrupt the raw product (the fault window),
/// then verifies and repairs. Returns the *decoded* `m × n` product and the
/// verification outcome.
pub fn abft_gemm<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    tamper: impl FnOnce(&mut Matrix<T>),
) -> (Matrix<T>, AbftOutcome) {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "abft_gemm inner dimension mismatch");
    let ae = encode_rows(a);
    let be = encode_cols(b);
    let mut ce = Matrix::zeros(m + 1, n + 1);
    gemm(
        Transpose::No,
        Transpose::No,
        T::one(),
        &ae,
        &be,
        T::zero(),
        &mut ce,
    );
    tamper(&mut ce);
    let scale = norms::max_abs(&ce);
    let outcome = verify_and_correct(&mut ce, checksum_tolerance(m, n, k, scale));
    if let AbftOutcome::Corrected { row, col, .. } = outcome {
        if row < m && col < n {
            // Checksum subtraction locates the entry exactly but loses
            // precision when the corruption dwarfs the true value
            // (catastrophic cancellation), so repair the located entry by
            // recomputing its dot product.
            let mut acc = T::zero();
            for l in 0..k {
                acc = a.get(row, l).mul_add(b.get(l, col), acc);
            }
            ce.set(row, col, acc);
        }
    }
    (ce.block(0, 0, m, n), outcome)
}

/// Checksum-verified Cholesky: factors `a` (in place, lower triangle) and
/// checks `L (Lᵀ e) = A e` afterwards. Detects (but does not locate —
/// factorizations propagate errors) any corruption introduced by `tamper`
/// during the fault window. Returns `Ok(true)` if the factor verified
/// clean, `Ok(false)` if corruption was detected.
pub fn verified_cholesky<T: Scalar>(
    a: &mut Matrix<T>,
    nb: usize,
    tamper: impl FnOnce(&mut Matrix<T>),
) -> Result<bool> {
    let n = a.rows();
    // Reference checksum from the input: c = A e.
    let mut c = vec![T::zero(); n];
    for j in 0..a.cols() {
        for (i, ci) in c.iter_mut().enumerate() {
            *ci += a.get(i, j);
        }
    }
    let scale = norms::max_abs(a);
    factor::potrf_blocked(a, nb)?;
    tamper(a);
    // Verify: L (Lᵀ e) must equal c. Work on the lower triangle only.
    let mut lte = vec![T::zero(); n];
    for j in 0..n {
        let mut s = T::zero();
        for i in j..n {
            s += a.get(i, j);
        }
        lte[j] = s; // (Lᵀ e)_j = sum_i L_ij
    }
    let mut recon = vec![T::zero(); n];
    for (i, ri) in recon.iter_mut().enumerate() {
        let mut s = T::zero();
        for j in 0..=i {
            s = a.get(i, j).mul_add(lte[j], s);
        }
        *ri = s;
    }
    let tol = checksum_tolerance(n, n, n, scale.max(1.0));
    let clean = recon
        .iter()
        .zip(c.iter())
        .all(|(r, e)| (*r - *e).abs().to_f64() <= tol);
    Ok(clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{FaultInjector, FaultKind};
    use xsc_core::gen;

    #[test]
    fn clean_gemm_verifies_clean() {
        let a = gen::random_matrix::<f64>(12, 9, 1);
        let b = gen::random_matrix::<f64>(9, 7, 2);
        let (c, outcome) = abft_gemm(&a, &b, |_| {});
        assert_eq!(outcome, AbftOutcome::Clean);
        let mut c_ref = Matrix::zeros(12, 7);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c_ref);
        assert!(c.approx_eq(&c_ref, 1e-12));
    }

    #[test]
    fn single_fault_is_located_and_corrected() {
        let a = gen::random_matrix::<f64>(10, 10, 3);
        let b = gen::random_matrix::<f64>(10, 10, 4);
        let (c, outcome) = abft_gemm(&a, &b, |ce| {
            let v = ce.get(4, 6);
            ce.set(4, 6, v + 37.5);
        });
        match outcome {
            AbftOutcome::Corrected {
                row,
                col,
                magnitude,
            } => {
                assert_eq!((row, col), (4, 6));
                assert!((magnitude - 37.5).abs() < 1e-9);
            }
            other => panic!("expected correction, got {other:?}"),
        }
        let mut c_ref = Matrix::zeros(10, 10);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c_ref);
        assert!(
            c.approx_eq(&c_ref, 1e-10),
            "corrected product must be exact"
        );
    }

    #[test]
    fn injector_driven_fault_is_corrected() {
        let a = gen::random_matrix::<f64>(16, 16, 5);
        let b = gen::random_matrix::<f64>(16, 16, 6);
        let mut inj = FaultInjector::new(1.0, FaultKind::BitFlip, 7);
        let (c, outcome) = abft_gemm(&a, &b, |ce| {
            // Restrict the fault to the data block so it is correctable.
            let (i, j) = (3usize, 11usize);
            let v = ce.get(i, j);
            ce.set(i, j, inj.corrupt_value(v));
        });
        assert!(
            matches!(
                outcome,
                AbftOutcome::Corrected {
                    row: 3,
                    col: 11,
                    ..
                }
            ),
            "{outcome:?}"
        );
        let mut c_ref = Matrix::zeros(16, 16);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c_ref);
        assert!(c.approx_eq(&c_ref, 1e-9));
    }

    #[test]
    fn corrupted_checksum_row_entry_is_repaired() {
        let a = gen::random_matrix::<f64>(8, 8, 8);
        let b = gen::random_matrix::<f64>(8, 8, 9);
        let (c, outcome) = abft_gemm(&a, &b, |ce| {
            let m = ce.rows() - 1;
            let v = ce.get(m, 2);
            ce.set(m, 2, v - 5.0);
        });
        assert!(matches!(outcome, AbftOutcome::Corrected { .. }));
        let mut c_ref = Matrix::zeros(8, 8);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c_ref);
        assert!(c.approx_eq(&c_ref, 1e-11));
    }

    #[test]
    fn double_fault_reported_uncorrectable() {
        let a = gen::random_matrix::<f64>(8, 8, 10);
        let b = gen::random_matrix::<f64>(8, 8, 11);
        let (_, outcome) = abft_gemm(&a, &b, |ce| {
            let v1 = ce.get(1, 2);
            ce.set(1, 2, v1 + 10.0);
            let v2 = ce.get(5, 6);
            ce.set(5, 6, v2 - 3.0);
        });
        assert_eq!(outcome, AbftOutcome::Uncorrectable);
    }

    #[test]
    fn encode_decode_shapes() {
        let a = gen::random_matrix::<f64>(5, 3, 12);
        let ae = encode_rows(&a);
        assert_eq!((ae.rows(), ae.cols()), (6, 3));
        let be = encode_cols(&a);
        assert_eq!((be.rows(), be.cols()), (5, 4));
        // Checksum row is the column sums.
        for j in 0..3 {
            let s: f64 = a.col(j).iter().sum();
            assert!((ae.get(5, j) - s).abs() < 1e-14);
        }
    }

    #[test]
    fn verified_cholesky_clean_and_tampered() {
        let a0 = gen::random_spd::<f64>(24, 13);
        let mut a = a0.clone();
        assert!(verified_cholesky(&mut a, 8, |_| {}).unwrap());

        let mut a = a0.clone();
        let clean = verified_cholesky(&mut a, 8, |l| {
            let v = l.get(20, 3);
            l.set(20, 3, v + 1.0);
        })
        .unwrap();
        assert!(!clean, "tampered factor must be detected");
    }

    #[test]
    fn abft_overhead_is_quadratic_not_cubic() {
        // Structural check: the encoded product only adds one row and one
        // column of checksums.
        let n = 20usize;
        let flops_plain = xsc_core::flops::gemm(n, n, n);
        let flops_abft = xsc_core::flops::gemm(n + 1, n + 1, n);
        let overhead = flops_abft as f64 / flops_plain as f64 - 1.0;
        assert!(overhead < 0.15, "overhead {overhead}");
    }
}
