//! Checkpoint/rollback resilience for iterative solvers, and a fault-aware
//! CG driver comparing recovery strategies (experiment E12).

use crate::inject::FaultInjector;
use xsc_core::blas1;
use xsc_sparse::CsrMatrix;

/// A saved solver state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Iteration at which the state was saved.
    pub iteration: usize,
    /// Solution iterate.
    pub x: Vec<f64>,
}

/// Recovery strategy for [`resilient_cg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Save `x` every `interval` iterations; on detection, roll back to the
    /// last checkpoint and rebuild the CG state.
    Checkpoint {
        /// Iterations between checkpoints.
        interval: usize,
    },
    /// No saved state: on detection, restart CG from the current `x`
    /// (lossy forward recovery — CG is self-correcting given a residual
    /// recompute).
    Restart,
}

/// Report from a fault-injected resilient CG run.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
    /// Total CG iterations executed (including re-done work).
    pub iterations: usize,
    /// Faults injected.
    pub faults: usize,
    /// Recoveries triggered (detections).
    pub recoveries: usize,
    /// Iterations of work discarded by rollbacks.
    pub wasted_iterations: usize,
    /// Final relative residual.
    pub final_residual: f64,
}

/// CG with fault injection and recovery. Every `check_interval` iterations
/// the *true* residual `b − Ax` is recomputed and compared against the
/// recurrence residual; a relative disagreement above `detect_tol` signals
/// a silent fault, triggering the configured recovery.
///
/// Faults fire per-iteration with the injector's rate and corrupt a random
/// entry of the iterate `x` (a silent data corruption — the hardest case,
/// invisible to the CG recurrences).
#[allow(clippy::too_many_arguments)]
pub fn resilient_cg(
    a: &CsrMatrix<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
    injector: &mut FaultInjector,
    recovery: Recovery,
    check_interval: usize,
    detect_tol: f64,
) -> ResilienceReport {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    let bnorm = blas1::nrm2(b).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    let mut p;
    let mut ap = vec![0.0f64; n];
    let mut rz;

    // (Re)build the CG state from the current x.
    macro_rules! rebuild {
        () => {{
            a.residual(&x, b, &mut r);
            p = r.clone();
            rz = blas1::dot_pairwise(&r, &r);
        }};
    }
    rebuild!();

    let mut checkpoint = Checkpoint {
        iteration: 0,
        x: x.clone(),
    };
    let mut iterations = 0;
    let mut faults = 0;
    let mut recoveries = 0;
    let mut wasted = 0;
    let mut converged = false;
    let mut iters_since_ckpt = 0;

    while iterations < max_iters {
        iterations += 1;
        iters_since_ckpt += 1;

        a.spmv(&p, &mut ap);
        let pap = blas1::dot_pairwise(&p, &ap);
        if pap <= 0.0 {
            // State corrupted badly enough to break positive-definiteness.
            recoveries += 1;
            match recovery {
                Recovery::Checkpoint { .. } => {
                    x.copy_from_slice(&checkpoint.x);
                    wasted += iters_since_ckpt;
                }
                Recovery::Restart => {}
            }
            rebuild!();
            iters_since_ckpt = 0;
            continue;
        }
        let alpha = rz / pap;
        blas1::axpy(alpha, &p, &mut x);
        blas1::axpy(-alpha, &ap, &mut r);

        // Fault window: silent corruption of the iterate.
        if injector.should_fire() {
            injector.corrupt_vector(&mut x);
            faults += 1;
        }

        let rel = blas1::nrm2(&r) / bnorm;
        if rel <= tol {
            // Validate with the true residual before declaring victory —
            // a corrupted x can leave the recurrence residual small.
            let mut rt = vec![0.0; n];
            a.residual(&x, b, &mut rt);
            let true_rel = blas1::nrm2(&rt) / bnorm;
            if true_rel <= tol * 10.0 {
                converged = true;
                break;
            }
        }

        // Periodic silent-error detection: recurrence vs true residual.
        if iterations.is_multiple_of(check_interval) {
            let mut rt = vec![0.0; n];
            a.residual(&x, b, &mut rt);
            let drift = blas1::nrm2(
                &rt.iter()
                    .zip(r.iter())
                    .map(|(a, b)| a - b)
                    .collect::<Vec<_>>(),
            ) / bnorm;
            if drift > detect_tol {
                recoveries += 1;
                match recovery {
                    Recovery::Checkpoint { .. } => {
                        x.copy_from_slice(&checkpoint.x);
                        wasted += iters_since_ckpt;
                    }
                    Recovery::Restart => {}
                }
                rebuild!();
                iters_since_ckpt = 0;
                continue;
            }
        }

        // Checkpointing.
        if let Recovery::Checkpoint { interval } = recovery {
            if iterations.is_multiple_of(interval) {
                checkpoint = Checkpoint {
                    iteration: iterations,
                    x: x.clone(),
                };
                iters_since_ckpt = 0;
            }
        }

        let rz_new = blas1::dot_pairwise(&r, &r);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, &ri) in p.iter_mut().zip(r.iter()) {
            *pi = ri + beta * *pi;
        }
    }

    let mut rt = vec![0.0; n];
    a.residual(&x, b, &mut rt);
    ResilienceReport {
        converged,
        iterations,
        faults,
        recoveries,
        wasted_iterations: wasted,
        final_residual: blas1::nrm2(&rt) / bnorm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultKind;
    use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};

    fn problem() -> (CsrMatrix<f64>, Vec<f64>) {
        let g = Geometry::new(8, 8, 8);
        let a = build_matrix(g);
        // A non-smooth random rhs keeps CG busy for dozens of iterations,
        // giving the injector a real fault window (b = A·1 converges in
        // ~10 iterations and can finish before any fault fires).
        let (mut b, _) = build_rhs(&a);
        for (i, bi) in b.iter_mut().enumerate() {
            *bi += ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        }
        (a, b)
    }

    #[test]
    fn no_faults_behaves_like_plain_cg() {
        let (a, b) = problem();
        let mut inj = FaultInjector::new(0.0, FaultKind::BitFlip, 1);
        let rep = resilient_cg(&a, &b, 300, 1e-8, &mut inj, Recovery::Restart, 10, 1e-6);
        assert!(rep.converged);
        assert_eq!(rep.faults, 0);
        assert_eq!(rep.recoveries, 0);
        assert!(rep.final_residual < 1e-7);
    }

    #[test]
    fn converges_through_faults_with_checkpointing() {
        let (a, b) = problem();
        // Seed 3 fires within the first few iterations under the in-repo
        // RNG stream; seed 2's first fire came after CG had converged.
        let mut inj = FaultInjector::new(0.15, FaultKind::BitFlip, 3);
        let rep = resilient_cg(
            &a,
            &b,
            2000,
            1e-8,
            &mut inj,
            Recovery::Checkpoint { interval: 10 },
            5,
            1e-6,
        );
        assert!(rep.converged, "report: {rep:?}");
        assert!(
            rep.faults > 0,
            "fault rate 15% over dozens of iters must fire"
        );
        assert!(rep.recoveries > 0);
        assert!(rep.final_residual < 1e-7);
    }

    #[test]
    fn converges_through_faults_with_restart() {
        let (a, b) = problem();
        let mut inj = FaultInjector::new(0.15, FaultKind::BitFlip, 3);
        let rep = resilient_cg(&a, &b, 2000, 1e-8, &mut inj, Recovery::Restart, 5, 1e-6);
        assert!(rep.converged, "report: {rep:?}");
        assert!(rep.faults > 0);
        assert!(rep.final_residual < 1e-7);
    }

    #[test]
    fn unprotected_run_fails_where_protected_succeeds() {
        let (a, b) = problem();
        // "Unprotected": detection disabled via a huge detect tolerance and
        // checking interval beyond the budget.
        // Deterministic seed search: find a fault pattern that actually
        // fires early (firing is probabilistic per iteration, and this
        // well-conditioned problem converges in ~20 iterations).
        let mut witnessed = false;
        for seed in 0..50u64 {
            let mut inj = FaultInjector::new(0.2, FaultKind::BitFlip, seed);
            let unprotected = resilient_cg(
                &a,
                &b,
                200,
                1e-10,
                &mut inj,
                Recovery::Restart,
                usize::MAX - 1,
                f64::INFINITY,
            );
            if unprotected.faults == 0 || unprotected.converged {
                continue;
            }
            // Same fault pattern, with detection + checkpointing on.
            let mut inj = FaultInjector::new(0.2, FaultKind::BitFlip, seed);
            let protected = resilient_cg(
                &a,
                &b,
                2000,
                1e-10,
                &mut inj,
                Recovery::Checkpoint { interval: 5 },
                3,
                1e-6,
            );
            assert!(
                protected.converged,
                "protection must rescue the run: unprotected {unprotected:?}, protected {protected:?}"
            );
            assert!(protected.final_residual < unprotected.final_residual);
            witnessed = true;
            break;
        }
        assert!(
            witnessed,
            "no seed in 0..50 produced an unprotected failure"
        );
    }

    #[test]
    fn wasted_work_is_counted() {
        let (a, b) = problem();
        let mut inj = FaultInjector::new(0.05, FaultKind::BitFlip, 5);
        let rep = resilient_cg(
            &a,
            &b,
            2000,
            1e-8,
            &mut inj,
            Recovery::Checkpoint { interval: 20 },
            5,
            1e-6,
        );
        if rep.recoveries > 0 {
            assert!(rep.wasted_iterations > 0);
            assert!(rep.wasted_iterations < rep.iterations);
        }
    }
}
