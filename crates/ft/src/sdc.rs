//! Memory-fault injection and the SDC-protected Krylov loop.
//!
//! [`FaultInjector`](crate::inject::FaultInjector) corrupts wherever its
//! stateful RNG stream happens to point, and
//! [`FaultPlan`](crate::plan::FaultPlan) targets DAG task attempts.
//! Neither can express the failure mode the keynote worries about most in
//! iterative solvers: a DRAM upset in one of the solver's *long-lived
//! buffers* — the matrix values, the iterate, the residual, the search
//! direction — at an arbitrary point of a run that may replay iterations
//! after rollback. [`MemFaultPlan`] closes that gap: a pure hash of
//! `(seed, iteration, sweep)` decides whether a fault fires, which
//! [`SolverBuffer`] it hits, and which element it corrupts, so campaigns
//! are byte-reproducible across runs and thread counts, and a replayed
//! iteration (`sweep + 1`) rolls independently of the original — a
//! rolled-back solve is not doomed to re-fault.
//!
//! [`protected_pcg`] is the consumer: preconditioned CG wrapped in the
//! `xsc-sparse` ABFT detector layer (checksummed SpMV, curvature and
//! norm-jump audits, residual-drift checks, self-checking preconditioner)
//! with **bounded rollback** recovery — in-memory [`SolverCheckpoint`]s
//! every `k` iterations, validated before capture so a poisoned state is
//! never checkpointed, and an [`xsc_runtime::RecoveryPolicy`] governing
//! how many consecutive rollbacks of one checkpoint are allowed and how
//! much (simulated, seeded-jitter) backoff each one charges.
//! [`unprotected_pcg`] runs the same loop with the same injections and no
//! detectors — the control arm of the E20 chaos campaign.

use crate::inject::FaultKind;
use std::time::Duration;
use xsc_core::blas1;
use xsc_runtime::RecoveryPolicy;
use xsc_sparse::abft::{residual_drift, CheckedApply, SdcDetected, SpmvGuard};
use xsc_sparse::cg::Preconditioner;
use xsc_sparse::ops::SparseOps;

/// The long-lived solver buffers a memory-fault campaign can corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBuffer {
    /// The stored nonzero values of the operator (format-specific slab).
    MatrixValues,
    /// The current iterate `x`.
    Iterate,
    /// The recurrence residual `r`.
    Residual,
    /// The search direction `p`.
    SearchDirection,
}

impl SolverBuffer {
    /// All buffers, in the order the plan indexes them.
    pub fn all() -> [SolverBuffer; 4] {
        [
            SolverBuffer::MatrixValues,
            SolverBuffer::Iterate,
            SolverBuffer::Residual,
            SolverBuffer::SearchDirection,
        ]
    }

    /// Stable short name (used in reports and JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            SolverBuffer::MatrixValues => "matrix_values",
            SolverBuffer::Iterate => "iterate",
            SolverBuffer::Residual => "residual",
            SolverBuffer::SearchDirection => "search_direction",
        }
    }
}

/// SplitMix64 finalizer — same mixer as the chaos plans and the runtime's
/// jittered backoff.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded, schedule-independent memory-fault plan for iterative solves.
///
/// Decisions are keyed on `(iteration, sweep)`: `iteration` is the solver's
/// 1-based logical iteration number, `sweep` counts rollback replays (the
/// protected loop bumps it on every rollback), so the same logical
/// iteration rolls fresh faults when replayed — mirroring how
/// [`FaultPlan`](crate::plan::FaultPlan) keys on `(task, attempt)`.
#[derive(Debug, Clone)]
pub struct MemFaultPlan {
    seed: u64,
    rate: f64,
    kind: FaultKind,
}

impl MemFaultPlan {
    /// Creates a plan firing with probability `rate` per iteration.
    ///
    /// # Panics
    /// If `rate` is not in `[0, 1]` (NaN included).
    pub fn new(seed: u64, rate: f64, kind: FaultKind) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        MemFaultPlan { seed, rate, kind }
    }

    /// The per-iteration firing probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn roll(&self, salt: u64, iteration: usize, sweep: u32) -> u64 {
        mix(self.seed ^ salt ^ mix(((iteration as u64) << 32) | u64::from(sweep)))
    }

    /// Pure decision: does `(iteration, sweep)` draw a fault? Identical
    /// across runs and schedules.
    pub fn fires_at(&self, iteration: usize, sweep: u32) -> bool {
        unit_f64(self.roll(0, iteration, sweep)) < self.rate
    }

    /// Draws the fault for `(iteration, sweep)`, if one fires: which
    /// buffer it hits and how the victim value is perturbed.
    pub fn draw(&self, iteration: usize, sweep: u32) -> Option<(SolverBuffer, FaultKind)> {
        if !self.fires_at(iteration, sweep) {
            return None;
        }
        let buffers = SolverBuffer::all();
        let h = self.roll(0x9e3779b97f4a7c15, iteration, sweep);
        Some((buffers[(h % buffers.len() as u64) as usize], self.kind))
    }

    /// Deterministic victim choice among `len` candidate elements for
    /// `(iteration, sweep)`. Returns `None` when `len == 0`.
    pub fn victim_index(&self, len: usize, iteration: usize, sweep: u32) -> Option<usize> {
        if len == 0 {
            return None;
        }
        Some((self.roll(0xd1b54a32d192ed03, iteration, sweep) % len as u64) as usize)
    }
}

/// One injected memory fault, as recorded by the fault-injecting loops.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// Logical solver iteration the fault fired at (1-based).
    pub iteration: usize,
    /// Rollback sweep the fault fired in (0 = the original pass).
    pub sweep: u32,
    /// Buffer the fault landed in.
    pub buffer: SolverBuffer,
    /// Element index within the buffer.
    pub index: usize,
    /// Value before corruption.
    pub old: f64,
    /// Value after corruption.
    pub new: f64,
    /// Corruption magnitude `|new − old| · √n / ‖b‖` — the perturbation
    /// relative to the per-component scale of the right-hand side, which
    /// is the scale every drift verdict is normalised by. Campaigns use
    /// this to separate *material* corruptions (which the detectors must
    /// catch) from sub-threshold ones (which by construction cannot move
    /// the solve beyond its tolerance).
    pub delta_rel: f64,
}

/// One detector verdict, as recorded by [`protected_pcg`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionRecord {
    /// Logical solver iteration the detector fired at (1-based).
    pub iteration: usize,
    /// Rollback sweep the detector fired in.
    pub sweep: u32,
    /// Which invariant broke.
    pub what: SdcDetected,
}

/// A full in-memory snapshot of the protected CG state, captured at a
/// validated iteration boundary and restored on rollback. The snapshot is
/// bit-exact: restore reproduces the captured state to the last bit, so a
/// replay of an uninterrupted schedule is bit-identical to never having
/// rolled back.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverCheckpoint {
    /// Iteration the snapshot was taken at.
    pub iteration: usize,
    /// Iterate `x`.
    pub x: Vec<f64>,
    /// Recurrence residual `r`.
    pub r: Vec<f64>,
    /// Search direction `p`.
    pub p: Vec<f64>,
    /// Preconditioned residual `z`.
    pub z: Vec<f64>,
    /// The scalar recurrence state `rᵀz`.
    pub rz: f64,
    /// Length of the residual history at capture (for truncation).
    pub history_len: usize,
}

impl SolverCheckpoint {
    /// Captures the current solver state.
    pub fn capture(
        iteration: usize,
        x: &[f64],
        r: &[f64],
        p: &[f64],
        z: &[f64],
        rz: f64,
        history_len: usize,
    ) -> Self {
        SolverCheckpoint {
            iteration,
            x: x.to_vec(),
            r: r.to_vec(),
            p: p.to_vec(),
            z: z.to_vec(),
            rz,
            history_len,
        }
    }

    /// Writes the snapshot back into the live buffers, returning
    /// `(iteration, rz, history_len)` for the scalar state.
    pub fn restore(
        &self,
        x: &mut [f64],
        r: &mut [f64],
        p: &mut [f64],
        z: &mut [f64],
    ) -> (usize, f64, usize) {
        x.copy_from_slice(&self.x);
        r.copy_from_slice(&self.r);
        p.copy_from_slice(&self.p);
        z.copy_from_slice(&self.z);
        (self.iteration, self.rz, self.history_len)
    }
}

/// Tuning of the protected loop's detectors and checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectConfig {
    /// Capture a validated checkpoint every this many iterations.
    pub checkpoint_interval: usize,
    /// Run the residual-drift check every this many iterations (it costs
    /// one SpMV, so it is the expensive detector).
    pub drift_check_interval: usize,
    /// Relative drift `‖r_rec − (b − Ax)‖ / ‖b‖` above which the state is
    /// declared corrupted.
    pub drift_tol: f64,
    /// Largest plausible one-iteration growth factor of `‖r‖/‖b‖`.
    pub norm_jump_limit: f64,
    /// Relative tolerance of the SpMV column-sum checksum.
    pub checksum_tol: f64,
    /// Consecutive iterations with a frozen `‖r‖` (relative change below
    /// `1e-12`) before declaring a stalled search direction. A huge
    /// corruption in `p` breaks no residual invariant — the state stays
    /// consistent — but drives `α` to zero; the freeze is its signature.
    /// Recovery is a direction restart (`p ← z`), not a rollback, because
    /// `x` and `r` are still valid. `0` disables the detector.
    pub stall_window: usize,
    /// Hard cap on total executed iterations, as a multiple of the
    /// caller's `max_iters` — bounds replay work when faults keep firing.
    pub replay_budget_factor: usize,
}

impl Default for ProtectConfig {
    fn default() -> Self {
        ProtectConfig {
            checkpoint_interval: 5,
            drift_check_interval: 2,
            drift_tol: 1e-6,
            norm_jump_limit: 1e4,
            checksum_tol: xsc_sparse::abft::DEFAULT_CHECKSUM_TOL,
            stall_window: 4,
            replay_budget_factor: 4,
        }
    }
}

/// Why a protected solve gave up instead of converging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The recovery policy's per-checkpoint retry budget was exhausted:
    /// `max_attempts` consecutive rollbacks replayed from the same
    /// checkpoint and every replay was flagged again.
    RollbackBudgetExhausted,
    /// Total executed iterations (originals plus replays) exceeded
    /// `replay_budget_factor · max_iters`.
    ReplayBudgetExhausted,
}

/// Typed outcome of a protected solve: the detected → rolled-back →
/// converged path vs the aborted one.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// The solve reached (validated) convergence, possibly after
    /// rollbacks.
    Converged {
        /// Committed (logical) iterations at convergence.
        iterations: usize,
        /// Rollbacks performed on the way.
        rollbacks: u32,
    },
    /// The iteration budget ran out without convergence and without an
    /// unresolved detection.
    Unconverged {
        /// Committed iterations executed.
        iterations: usize,
        /// Rollbacks performed.
        rollbacks: u32,
    },
    /// Recovery gave up.
    Aborted {
        /// Logical iteration at which the solve gave up.
        at_iteration: usize,
        /// Rollbacks performed before giving up.
        rollbacks: u32,
        /// Which budget ran out.
        reason: AbortReason,
    },
}

impl RecoveryOutcome {
    /// `true` for the validated-convergence outcome.
    pub fn converged(&self) -> bool {
        matches!(self, RecoveryOutcome::Converged { .. })
    }
}

/// Everything a chaos campaign needs to score one solve.
#[derive(Debug, Clone)]
pub struct SdcReport {
    /// How the solve ended.
    pub outcome: RecoveryOutcome,
    /// Faults injected, in firing order.
    pub injections: Vec<InjectionRecord>,
    /// Detector verdicts, in firing order (empty for unprotected runs —
    /// they have no detectors).
    pub detections: Vec<DetectionRecord>,
    /// Total iterations executed, replays included.
    pub executed_iterations: usize,
    /// Iterations discarded by rollbacks (`executed − committed`).
    pub replayed_iterations: usize,
    /// Direction restarts (`p ← z`) performed after stall detections —
    /// the recovery for consistent-state search-direction corruption.
    pub direction_restarts: u32,
    /// `‖r‖/‖b‖` after each committed iteration (index 0 = initial).
    pub residual_history: Vec<f64>,
    /// The *recomputed* final relative residual `‖b − Ax‖/‖b‖` — immune
    /// to recurrence corruption, so an unprotected run that "converged"
    /// to a wrong answer is visible here.
    pub final_true_residual: f64,
    /// Total simulated backoff charged by the recovery policy.
    pub simulated_backoff: Duration,
    /// Flops executed, solver plus detectors (HPCG accounting).
    pub flops: u64,
}

/// Applies the drawn fault to the chosen buffer, recording it.
#[allow(clippy::too_many_arguments)] // the injection site simply has this many coupled pieces of state
fn inject<A: SparseOps + ?Sized>(
    plan: &MemFaultPlan,
    a: &mut A,
    x: &mut [f64],
    r: &mut [f64],
    p: &mut [f64],
    iteration: usize,
    sweep: u32,
    bnorm_per_component: f64,
    log: &mut Vec<InjectionRecord>,
) {
    let Some((buffer, kind)) = plan.draw(iteration, sweep) else {
        return;
    };
    let target: &mut [f64] = match buffer {
        SolverBuffer::MatrixValues => a.values_mut(),
        SolverBuffer::Iterate => x,
        SolverBuffer::Residual => r,
        SolverBuffer::SearchDirection => p,
    };
    let Some(index) = plan.victim_index(target.len(), iteration, sweep) else {
        return;
    };
    let old = target[index];
    let new = kind.apply(old);
    target[index] = new;
    log.push(InjectionRecord {
        iteration,
        sweep,
        buffer,
        index,
        old,
        new,
        delta_rel: (new - old).abs() / bnorm_per_component,
    });
}

/// Preconditioned CG under the `xsc-sparse` ABFT detector layer with
/// bounded-rollback recovery.
///
/// The loop mirrors [`xsc_sparse::cg::pcg`] operation-for-operation — on
/// a fault-free run (`plan` rate 0) the iterates and residual history are
/// bit-identical to the unprotected solver — and adds, per iteration:
///
/// 1. the memory-fault injection point (start of the iteration);
/// 2. the checksummed SpMV (`cfg.checksum_tol`);
/// 3. a curvature audit (`pᵀAp` must be positive and finite);
/// 4. a norm-jump audit (`‖r‖` must not grow by `cfg.norm_jump_limit`);
/// 5. a residual-drift check every `cfg.drift_check_interval` iterations;
/// 6. the self-checking preconditioner application;
/// 7. a *validated* checkpoint every `cfg.checkpoint_interval`
///    iterations — the drift check runs first, so a state that silently
///    absorbed a corruption is never captured;
/// 8. validated convergence — the stopping test must be confirmed by the
///    recomputed residual before the solve reports success.
///
/// Any detector verdict triggers rollback to the last good checkpoint:
/// buffers and recurrence scalars are restored bit-exactly, the operator's
/// value slab is restored from its pristine snapshot, the plan's sweep
/// counter is bumped (replays roll fresh faults), and the recovery policy
/// charges its seeded-jitter backoff. `policy.max_attempts` consecutive
/// rollbacks of the same checkpoint — or a total replay budget of
/// `cfg.replay_budget_factor · max_iters` iterations — abort the solve.
#[allow(clippy::too_many_arguments)] // solver + fault plan + tuning + policy are irreducibly separate inputs
pub fn protected_pcg<A: SparseOps + ?Sized, P: CheckedApply>(
    a: &mut A,
    b: &[f64],
    x: &mut [f64],
    max_iters: usize,
    tol: f64,
    m: &P,
    plan: &MemFaultPlan,
    cfg: &ProtectConfig,
    policy: &RecoveryPolicy,
) -> SdcReport {
    let n = a.nrows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");

    let pristine_values = a.values().to_vec();
    let guard = SpmvGuard::with_tol(a, cfg.checksum_tol);

    let mut flops = 0u64;
    let nnz = a.nnz() as u64;
    let nf = n as u64;

    let bnorm = blas1::nrm2(b).max(f64::MIN_POSITIVE);
    let bnorm_per_component = (bnorm / (n.max(1) as f64).sqrt()).max(f64::MIN_POSITIVE);
    let mut r = vec![0.0; n];
    a.fused_residual(x, b, &mut r);
    flops += 2 * nnz;

    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    flops += m.flops_per_apply();

    let mut p = z.clone();
    let mut rz = blas1::dot_pairwise(&r, &z);
    flops += 2 * nf;

    let mut history = vec![blas1::nrm2(&r) / bnorm];
    let mut ap = vec![0.0; n];
    let mut scratch = vec![0.0; n];
    let mut converged = history[0] <= tol;
    let mut iterations = 0usize;

    let mut injections = Vec::new();
    let mut detections = Vec::new();
    let mut checkpoint = SolverCheckpoint::capture(0, x, &r, &p, &z, rz, history.len());
    let mut sweep = 0u32;
    let mut rollbacks = 0u32;
    let mut consecutive_rollbacks = 0u32;
    let mut executed = 0usize;
    let mut replayed = 0usize;
    let mut backoff_total = Duration::ZERO;
    let mut abort: Option<(usize, AbortReason)> = None;
    let mut stall_count = 0usize;
    let mut direction_restarts = 0u32;

    let drift_every = cfg.drift_check_interval.max(1);
    let ckpt_every = cfg.checkpoint_interval.max(1);
    let replay_budget = cfg.replay_budget_factor.max(1) * max_iters.max(1);

    // Rollback handler: restore the last good checkpoint (including the
    // operator's value slab), charge backoff, bump the sweep, and either
    // continue the outer loop or abort when a budget runs out.
    macro_rules! detected {
        ($what:expr) => {{
            detections.push(DetectionRecord {
                iteration: iterations,
                sweep,
                what: $what,
            });
            rollbacks += 1;
            consecutive_rollbacks += 1;
            if consecutive_rollbacks > policy.max_attempts {
                abort = Some((iterations, AbortReason::RollbackBudgetExhausted));
                break;
            }
            backoff_total +=
                policy
                    .backoff
                    .delay(checkpoint.iteration, consecutive_rollbacks, policy.seed);
            a.values_mut().copy_from_slice(&pristine_values);
            let (it, rz_c, hist_len) = checkpoint.restore(x, &mut r, &mut p, &mut z);
            replayed += iterations.saturating_sub(it);
            iterations = it;
            history.truncate(hist_len);
            rz = rz_c;
            sweep += 1;
            converged = false;
            stall_count = 0;
            continue;
        }};
    }

    while iterations < max_iters && !converged && abort.is_none() {
        if executed >= replay_budget {
            abort = Some((iterations, AbortReason::ReplayBudgetExhausted));
            break;
        }
        iterations += 1;
        executed += 1;

        // 1. The fault model: a DRAM upset lands in one named buffer.
        inject(
            plan,
            a,
            x,
            &mut r,
            &mut p,
            iterations,
            sweep,
            bnorm_per_component,
            &mut injections,
        );

        // 2. Checksummed SpMV.
        if let Err(d) = guard.spmv(a, &p, &mut ap) {
            flops += 2 * nnz + guard.flops_per_check();
            detected!(d);
        }
        flops += 2 * nnz + guard.flops_per_check();

        // 3. Curvature audit.
        let pap = blas1::dot_pairwise(&p, &ap);
        flops += 2 * nf;
        if !(pap > 0.0 && pap.is_finite()) {
            detected!(SdcDetected::NegativeCurvature {
                iteration: iterations,
                value: pap,
            });
        }

        let alpha = rz / pap;
        blas1::axpy(alpha, &p, x);
        blas1::axpy(-alpha, &ap, &mut r);
        flops += 6 * nf;

        // 4. Norm-jump audit.
        let prev_rel = *history.last().unwrap_or(&f64::INFINITY);
        let rel = blas1::nrm2(&r) / bnorm;
        flops += 2 * nf;
        // `!(.. <= ..)` so a NaN trips the detector too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(rel <= cfg.norm_jump_limit * prev_rel.max(f64::MIN_POSITIVE)) {
            detected!(SdcDetected::NormJump {
                iteration: iterations,
                observed: rel / prev_rel.max(f64::MIN_POSITIVE),
                tolerated: cfg.norm_jump_limit,
            });
        }
        history.push(rel);
        if (rel - prev_rel).abs() <= 1e-12 * prev_rel.max(f64::MIN_POSITIVE) {
            stall_count += 1;
        } else {
            stall_count = 0;
        }

        // 5. Periodic residual-drift check.
        if iterations.is_multiple_of(drift_every) {
            let drift = residual_drift(a, x, b, &r, &mut scratch);
            flops += 2 * nnz + 3 * nf;
            // `!(.. <= ..)` so a NaN trips the detector too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(drift <= cfg.drift_tol) {
                detected!(SdcDetected::ResidualDrift {
                    iteration: iterations,
                    observed: drift,
                    tolerated: cfg.drift_tol,
                });
            }
        }

        // 8. Validated convergence: the recurrence says done — confirm
        // against the recomputed residual before believing it.
        if rel <= tol {
            let drift = residual_drift(a, x, b, &r, &mut scratch);
            flops += 2 * nnz + 3 * nf;
            // `!(.. <= ..)` so a NaN trips the detector too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(drift <= cfg.drift_tol) {
                detected!(SdcDetected::ResidualDrift {
                    iteration: iterations,
                    observed: drift,
                    tolerated: cfg.drift_tol,
                });
            }
            converged = true;
            break;
        }

        // 6. Self-checking preconditioner application.
        if let Err(d) = m.apply_checked(&r, &mut z) {
            flops += m.flops_per_checked_apply();
            detected!(d);
        }
        flops += m.flops_per_checked_apply();

        let rz_new = blas1::dot_pairwise(&r, &z);
        flops += 2 * nf;
        if cfg.stall_window > 0 && stall_count >= cfg.stall_window {
            // 9. Stall verdict: a corrupted `p` cannot break the drift
            // invariant — `x` and `r` are updated consistently with
            // whatever direction was used — so the state is valid and the
            // corruption lives in `p`. Restart the direction instead of
            // rolling back.
            detections.push(DetectionRecord {
                iteration: iterations,
                sweep,
                what: SdcDetected::Stalled {
                    iteration: iterations,
                    window: cfg.stall_window,
                },
            });
            rz = rz_new;
            p.copy_from_slice(&z);
            stall_count = 0;
            direction_restarts += 1;
        } else {
            let beta = rz_new / rz;
            rz = rz_new;
            for (pi, &zi) in p.iter_mut().zip(z.iter()) {
                *pi = zi + beta * *pi;
            }
            flops += 2 * nf;
        }

        // 7. Validated checkpoint: only capture state the drift check
        // vouches for, so an undetected corruption is never baked in.
        if iterations.is_multiple_of(ckpt_every) {
            let drift = residual_drift(a, x, b, &r, &mut scratch);
            flops += 2 * nnz + 3 * nf;
            // `!(.. <= ..)` so a NaN trips the detector too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(drift <= cfg.drift_tol) {
                detected!(SdcDetected::ResidualDrift {
                    iteration: iterations,
                    observed: drift,
                    tolerated: cfg.drift_tol,
                });
            }
            checkpoint = SolverCheckpoint::capture(iterations, x, &r, &p, &z, rz, history.len());
            consecutive_rollbacks = 0;
        }
    }

    // The recomputed final residual is the ground truth the campaign
    // scores against (and one more flop bill).
    a.fused_residual(x, b, &mut scratch);
    flops += 2 * nnz;
    let final_true_residual = blas1::nrm2(&scratch) / bnorm;

    let outcome = match abort {
        Some((at_iteration, reason)) => RecoveryOutcome::Aborted {
            at_iteration,
            rollbacks,
            reason,
        },
        None if converged => RecoveryOutcome::Converged {
            iterations,
            rollbacks,
        },
        None => RecoveryOutcome::Unconverged {
            iterations,
            rollbacks,
        },
    };
    SdcReport {
        outcome,
        injections,
        detections,
        executed_iterations: executed,
        replayed_iterations: replayed,
        direction_restarts,
        residual_history: history,
        final_true_residual,
        simulated_backoff: backoff_total,
        flops,
    }
}

/// The control arm: the same CG loop with the same injection point and
/// **no** detectors, checkpoints, or validation — what a solver that
/// trusts its hardware looks like under the same fault schedule. The
/// recurrence stopping test is taken at face value, so the reported
/// outcome may claim convergence while [`SdcReport::final_true_residual`]
/// shows the answer is wrong — exactly the silent-corruption hazard the
/// protected loop exists to close.
pub fn unprotected_pcg<A: SparseOps + ?Sized, P: Preconditioner>(
    a: &mut A,
    b: &[f64],
    x: &mut [f64],
    max_iters: usize,
    tol: f64,
    m: &P,
    plan: &MemFaultPlan,
) -> SdcReport {
    let n = a.nrows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");

    let mut flops = 0u64;
    let nnz = a.nnz() as u64;
    let nf = n as u64;

    let bnorm = blas1::nrm2(b).max(f64::MIN_POSITIVE);
    let bnorm_per_component = (bnorm / (n.max(1) as f64).sqrt()).max(f64::MIN_POSITIVE);
    let mut r = vec![0.0; n];
    a.fused_residual(x, b, &mut r);
    flops += 2 * nnz;

    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    flops += m.flops_per_apply();

    let mut p = z.clone();
    let mut rz = blas1::dot_pairwise(&r, &z);
    flops += 2 * nf;

    let mut history = vec![blas1::nrm2(&r) / bnorm];
    let mut ap = vec![0.0; n];
    let mut converged = history[0] <= tol;
    let mut iterations = 0usize;
    let mut injections = Vec::new();

    while iterations < max_iters && !converged {
        iterations += 1;
        inject(
            plan,
            a,
            x,
            &mut r,
            &mut p,
            iterations,
            0,
            bnorm_per_component,
            &mut injections,
        );
        a.spmv_par(&p, &mut ap);
        flops += 2 * nnz;
        let pap = blas1::dot_pairwise(&p, &ap);
        flops += 2 * nf;
        if pap <= 0.0 {
            break;
        }
        let alpha = rz / pap;
        blas1::axpy(alpha, &p, x);
        blas1::axpy(-alpha, &ap, &mut r);
        flops += 6 * nf;
        let rel = blas1::nrm2(&r) / bnorm;
        flops += 2 * nf;
        history.push(rel);
        if rel <= tol {
            converged = true;
            break;
        }
        m.apply(&r, &mut z);
        flops += m.flops_per_apply();
        let rz_new = blas1::dot_pairwise(&r, &z);
        flops += 2 * nf;
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, &zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
        flops += 2 * nf;
    }

    let mut scratch = vec![0.0; n];
    a.fused_residual(x, b, &mut scratch);
    flops += 2 * nnz;
    let final_true_residual = blas1::nrm2(&scratch) / bnorm;

    let outcome = if converged {
        RecoveryOutcome::Converged {
            iterations,
            rollbacks: 0,
        }
    } else {
        RecoveryOutcome::Unconverged {
            iterations,
            rollbacks: 0,
        }
    };
    SdcReport {
        outcome,
        injections,
        detections: Vec::new(),
        executed_iterations: iterations,
        replayed_iterations: 0,
        direction_restarts: 0,
        residual_history: history,
        final_true_residual,
        simulated_backoff: Duration::ZERO,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsc_sparse::cg::{pcg, Identity};
    use xsc_sparse::ops::{FormatMatrix, SparseFormat};
    use xsc_sparse::stencil::{build_matrix, build_rhs, Geometry};

    fn problem(fmt: SparseFormat) -> (FormatMatrix, Vec<f64>) {
        let a = build_matrix(Geometry::new(8, 8, 8));
        let (b, _) = build_rhs(&a);
        (FormatMatrix::convert(a, fmt).unwrap(), b)
    }

    fn quiet_plan() -> MemFaultPlan {
        MemFaultPlan::new(1, 0.0, FaultKind::BitFlip)
    }

    #[test]
    fn plan_decisions_are_deterministic_and_sweep_independent() {
        let p1 = MemFaultPlan::new(42, 0.3, FaultKind::BitFlip);
        let p2 = MemFaultPlan::new(42, 0.3, FaultKind::BitFlip);
        let a: Vec<_> = (1..200).map(|i| p1.draw(i, 0)).collect();
        let b: Vec<_> = (1..200).map(|i| p2.draw(i, 0)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|d| d.is_some()));
        assert!(a.iter().any(|d| d.is_none()));
        // A replayed iteration rolls independently: somewhere the verdicts
        // of sweep 0 and sweep 1 differ.
        assert!((1..200).any(|i| p1.fires_at(i, 0) != p1.fires_at(i, 1)));
    }

    #[test]
    fn plan_hits_every_buffer_eventually() {
        let p = MemFaultPlan::new(7, 1.0, FaultKind::BitFlip);
        let mut seen = std::collections::BTreeSet::new();
        for i in 1..100 {
            if let Some((buf, _)) = p.draw(i, 0) {
                seen.insert(buf.name());
            }
        }
        assert_eq!(seen.len(), SolverBuffer::all().len());
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64) * 0.1 - 1.5).collect();
        let r: Vec<f64> = x.iter().map(|v| v * 3.0).collect();
        let p: Vec<f64> = x.iter().map(|v| v - 0.25).collect();
        let z: Vec<f64> = x.iter().map(|v| v * v).collect();
        let ck = SolverCheckpoint::capture(9, &x, &r, &p, &z, 1.25, 10);
        let mut x2 = vec![0.0; 32];
        let mut r2 = vec![0.0; 32];
        let mut p2 = vec![0.0; 32];
        let mut z2 = vec![0.0; 32];
        let (it, rz, hl) = ck.restore(&mut x2, &mut r2, &mut p2, &mut z2);
        assert_eq!((it, rz, hl), (9, 1.25, 10));
        assert_eq!(x2, x);
        assert_eq!(r2, r);
        assert_eq!(p2, p);
        assert_eq!(z2, z);
    }

    #[test]
    fn fault_free_protected_run_matches_plain_pcg_bitwise() {
        for fmt in SparseFormat::all() {
            let (mut a, b) = problem(fmt);
            let mut x_ref = vec![0.0; b.len()];
            let reference = pcg(&a, &b, &mut x_ref, 60, 1e-9, &Identity);
            let mut x = vec![0.0; b.len()];
            let report = protected_pcg(
                &mut a,
                &b,
                &mut x,
                60,
                1e-9,
                &Identity,
                &quiet_plan(),
                &ProtectConfig::default(),
                &RecoveryPolicy::default(),
            );
            assert!(report.outcome.converged(), "{fmt}: {:?}", report.outcome);
            assert_eq!(x, x_ref, "{fmt}: iterates must be bit-identical");
            assert_eq!(report.residual_history, reference.residual_history);
            assert!(report.detections.is_empty(), "{fmt}: false positive");
            assert_eq!(report.replayed_iterations, 0);
        }
    }

    #[test]
    fn stuck_fault_is_detected_and_rolled_back_to_convergence() {
        let (mut a, b) = problem(SparseFormat::CsrUsize);
        // One guaranteed catastrophic fault per sweep-0 iteration window:
        // high rate, huge stuck value.
        let plan = MemFaultPlan::new(33, 0.25, FaultKind::Stuck(1e30));
        let mut x = vec![0.0; b.len()];
        let report = protected_pcg(
            &mut a,
            &b,
            &mut x,
            200,
            1e-8,
            &Identity,
            &plan,
            &ProtectConfig::default(),
            &RecoveryPolicy::with_max_attempts(20),
        );
        assert!(
            !report.injections.is_empty(),
            "campaign must have injected something"
        );
        assert!(
            !report.detections.is_empty(),
            "1e30 corruptions must be detected"
        );
        assert!(
            report.outcome.converged(),
            "rollback must still converge: {:?}",
            report.outcome
        );
        assert!(
            report.final_true_residual <= 1e-7,
            "validated convergence must be real: {:.3e}",
            report.final_true_residual
        );
        assert!(report.replayed_iterations > 0);
    }

    #[test]
    fn unprotected_run_is_silently_wrong_under_the_same_faults() {
        let (mut a, b) = problem(SparseFormat::CsrUsize);
        let plan = MemFaultPlan::new(33, 0.25, FaultKind::Stuck(1e30));
        let mut x = vec![0.0; b.len()];
        let report = unprotected_pcg(&mut a, &b, &mut x, 200, 1e-8, &Identity, &plan);
        assert!(!report.injections.is_empty());
        // Either it never converges, or it "converges" to a wrong answer;
        // both are failures the true residual exposes.
        assert!(
            report.final_true_residual > 1e-7,
            "unprotected run should not genuinely converge: {:.3e}",
            report.final_true_residual
        );
    }

    #[test]
    fn rollback_budget_exhaustion_aborts() {
        let (mut a, b) = problem(SparseFormat::CsrUsize);
        // Every iteration faults catastrophically; one retry allowed.
        let plan = MemFaultPlan::new(5, 1.0, FaultKind::Stuck(f64::NAN));
        let mut x = vec![0.0; b.len()];
        let report = protected_pcg(
            &mut a,
            &b,
            &mut x,
            50,
            1e-8,
            &Identity,
            &plan,
            &ProtectConfig::default(),
            &RecoveryPolicy::with_max_attempts(2),
        );
        assert!(
            matches!(
                report.outcome,
                RecoveryOutcome::Aborted {
                    reason: AbortReason::RollbackBudgetExhausted,
                    ..
                }
            ),
            "{:?}",
            report.outcome
        );
        assert!(report.simulated_backoff >= Duration::ZERO);
    }

    #[test]
    fn protected_runs_are_byte_reproducible() {
        let run = || {
            let (mut a, b) = problem(SparseFormat::Csr32);
            let plan = MemFaultPlan::new(99, 0.15, FaultKind::BitFlip);
            let mut x = vec![0.0; b.len()];
            let rep = protected_pcg(
                &mut a,
                &b,
                &mut x,
                150,
                1e-8,
                &Identity,
                &plan,
                &ProtectConfig::default(),
                &RecoveryPolicy::with_max_attempts(10),
            );
            (x, rep)
        };
        let (x1, r1) = run();
        let (x2, r2) = run();
        assert_eq!(x1, x2);
        assert_eq!(r1.injections, r2.injections);
        assert_eq!(r1.detections, r2.detections);
        assert_eq!(r1.residual_history, r2.residual_history);
        assert_eq!(r1.executed_iterations, r2.executed_iterations);
    }

    #[test]
    fn matrix_corruption_is_restored_from_pristine_snapshot() {
        let (mut a, b) = problem(SparseFormat::SellCSigma);
        let pristine = a.values().to_vec();
        let plan = MemFaultPlan::new(12, 0.3, FaultKind::Stuck(1e25));
        let mut x = vec![0.0; b.len()];
        let report = protected_pcg(
            &mut a,
            &b,
            &mut x,
            200,
            1e-8,
            &Identity,
            &plan,
            &ProtectConfig::default(),
            &RecoveryPolicy::with_max_attempts(25),
        );
        assert!(report.outcome.converged(), "{:?}", report.outcome);
        // Any matrix injection after the last rollback would linger; the
        // validated convergence plus pristine restore on every rollback
        // keeps the *answer* right regardless.
        let matrix_faults = report
            .injections
            .iter()
            .filter(|i| i.buffer == SolverBuffer::MatrixValues)
            .count();
        let _ = pristine;
        assert!(report.final_true_residual <= 1e-7);
        assert!(matrix_faults > 0 || !report.injections.is_empty());
    }
}
