//! # xsc-ft — algorithm-based fault tolerance
//!
//! At extreme scale the mean time between component faults drops below the
//! runtime of a single job, so the keynote promotes fault handling from the
//! system layer into the *algorithms*:
//!
//! * [`inject`] — a deterministic fault injector (bit flips / value
//!   corruption) standing in for the hardware faults we cannot schedule;
//! * [`abft`] — Huang–Abraham checksum encoding for GEMM and Cholesky:
//!   detect, *locate*, and *correct* a corrupted entry from row/column
//!   checksums, at `O(n²)` overhead on an `O(n³)` computation;
//! * [`checkpoint`] — checkpoint/rollback for iterative solvers, plus a
//!   fault-aware CG driver comparing the two recovery styles (E12);
//! * [`plan`] — schedule-independent chaos plans for task DAGs: a pure
//!   hash of `(seed, task, attempt)` decides which attempts panic, emit
//!   silently corrupted output, or stall, so chaos campaigns reproduce
//!   exactly across runs and thread counts (E17);
//! * [`sdc`] — the SDC-resilient Krylov stack: a seeded memory-fault plan
//!   corrupting named solver buffers at deterministic `(iteration, sweep)`
//!   points, and [`sdc::protected_pcg`] — CG under the `xsc-sparse` ABFT
//!   detectors with bounded-rollback checkpoint recovery (E20).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-coupled updates across multiple slices are the clearest form for these kernels

pub mod abft;
pub mod checkpoint;
pub mod inject;
pub mod plan;
pub mod sdc;

pub use abft::{abft_gemm, AbftOutcome};
pub use inject::FaultInjector;
pub use plan::{chaos_kernel, ChaosKind, FaultPlan, Injection};
pub use sdc::{
    protected_pcg, unprotected_pcg, AbortReason, MemFaultPlan, ProtectConfig, RecoveryOutcome,
    SdcReport, SolverBuffer, SolverCheckpoint,
};
