//! Deterministic latency quantiles for service-level reporting.
//!
//! The serving layer (`xsc-serve`, experiment E21) reports p50/p99 request
//! latency. Those numbers must be *byte-identical* across runs at the same
//! seed, so this module is pure integer bookkeeping over nanosecond samples
//! — no interpolation (which would drag float rounding into the report) and
//! no wall clock. The nearest-rank definition is the one SLO dashboards
//! use: the p-th percentile is the smallest sample such that at least
//! `p %` of the samples are ≤ it.

/// Nearest-rank percentile of an **ascending-sorted** slice of samples.
///
/// `p` is in `[0, 100]`; out-of-range values are clamped. Returns 0 for an
/// empty slice (a served system with zero completed requests has no
/// latency to report).
///
/// ```
/// use xsc_metrics::quantiles::percentile;
/// let sorted = [10, 20, 30, 40];
/// assert_eq!(percentile(&sorted, 50.0), 20);
/// assert_eq!(percentile(&sorted, 99.0), 40);
/// ```
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    // Nearest rank: ceil(p/100 * n), 1-based; p=0 maps to the minimum.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Summary statistics over a set of latency samples, computed once at
/// construction. All fields are integer nanoseconds except the mean
/// (an exact integer-division quotient would hide sub-nanosecond spread,
/// and a f64 mean of integer sums is still deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Minimum sample (ns).
    pub min_ns: u64,
    /// Median — nearest-rank p50 (ns).
    pub p50_ns: u64,
    /// Nearest-rank p99 (ns).
    pub p99_ns: u64,
    /// Maximum sample (ns).
    pub max_ns: u64,
    /// Arithmetic mean (ns) — deterministic: integer sum divided once.
    pub mean_ns: f64,
}

impl LatencySummary {
    /// Builds the summary from unsorted samples (sorts a copy).
    pub fn from_samples(samples: &[u64]) -> LatencySummary {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&x| u128::from(x)).sum();
        LatencySummary {
            count,
            min_ns: sorted.first().copied().unwrap_or(0),
            p50_ns: percentile(&sorted, 50.0),
            p99_ns: percentile(&sorted, 99.0),
            max_ns: sorted.last().copied().unwrap_or(0),
            mean_ns: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_all_zero() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(s.mean_ns, 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_samples(&[42]);
        assert_eq!((s.min_ns, s.p50_ns, s.p99_ns, s.max_ns), (42, 42, 42, 42));
        assert_eq!(s.mean_ns, 42.0);
    }

    #[test]
    fn nearest_rank_matches_hand_computation() {
        // 100 samples 1..=100: p50 is the 50th (=50), p99 the 99th (=99).
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
    }

    #[test]
    fn summary_is_order_independent() {
        let a = LatencySummary::from_samples(&[5, 1, 9, 3, 7]);
        let b = LatencySummary::from_samples(&[9, 7, 5, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a.p50_ns, 5);
        assert_eq!(a.max_ns, 9);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let sorted = [10, 20];
        assert_eq!(percentile(&sorted, -5.0), 10);
        assert_eq!(percentile(&sorted, 250.0), 20);
    }
}
