//! Roofline attribution: arithmetic intensity vs the machine envelope.
//!
//! The roofline model (Williams, Waterman, Patterson, 2009) bounds a
//! kernel's attainable rate by
//! `min(peak_gflops, intensity × peak_gbs)` where *intensity* is
//! flops per DRAM byte. Kernels left of the machine-balance knee
//! (`peak_gflops / peak_gbs`) are **bandwidth-bound** — more flops
//! per socket cannot help them, which is the keynote's explanation for
//! HPCG's 1–5 % of peak vs HPL's 60–90 %.

use crate::counters::KernelCounters;

/// The two peaks a kernel can be limited by, plus the numbers needed to
/// draw the roofline: peak compute in Gflop/s and peak DRAM bandwidth in
/// GB/s.
///
/// ```
/// use xsc_metrics::MachineEnvelope;
/// let env = MachineEnvelope::new("node-2016", 500.0, 100.0);
/// assert_eq!(env.balance(), 5.0); // flops/byte at the roofline knee
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineEnvelope {
    /// Human-readable machine name (shows up in reports and plots).
    pub name: String,
    /// Peak floating-point rate in Gflop/s.
    pub peak_gflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub peak_gbs: f64,
}

impl MachineEnvelope {
    /// Build an envelope from peak Gflop/s and peak GB/s.
    pub fn new(name: impl Into<String>, peak_gflops: f64, peak_gbs: f64) -> Self {
        Self {
            name: name.into(),
            peak_gflops,
            peak_gbs,
        }
    }

    /// Machine balance in flops/byte: the arithmetic intensity at the
    /// roofline knee. Kernels below this are bandwidth-bound.
    pub fn balance(&self) -> f64 {
        self.peak_gflops / self.peak_gbs
    }

    /// The roofline itself: attainable Gflop/s at a given intensity.
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        (intensity * self.peak_gbs).min(self.peak_gflops)
    }
}

/// Which roof a kernel sits under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundVerdict {
    /// Intensity below machine balance: limited by DRAM bandwidth.
    Bandwidth,
    /// Intensity at or above machine balance: limited by peak flops.
    Compute,
}

impl std::fmt::Display for BoundVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundVerdict::Bandwidth => write!(f, "bandwidth-bound"),
            BoundVerdict::Compute => write!(f, "compute-bound"),
        }
    }
}

/// One kernel placed on the roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Kernel name (registry key).
    pub kernel: String,
    /// Total flops accounted to the kernel.
    pub flops: u64,
    /// Total DRAM bytes (read + written) accounted to the kernel.
    pub bytes: u64,
    /// Arithmetic intensity in flops/byte.
    pub intensity: f64,
    /// Measured rate in Gflop/s (0 when no time was recorded).
    pub attained_gflops: f64,
    /// Measured DRAM bandwidth in GB/s (0 when no time was recorded).
    pub attained_gbs: f64,
    /// Roofline bound at this intensity, in Gflop/s.
    pub roof_gflops: f64,
    /// Fraction of the roofline bound actually attained (0 when untimed).
    pub roof_fraction: f64,
    /// Bandwidth- or compute-bound verdict.
    pub verdict: BoundVerdict,
}

/// Place one kernel's counters on the roofline of `env`.
///
/// ```
/// use xsc_metrics::{roofline, KernelCounters, MachineEnvelope};
/// let env = MachineEnvelope::new("m", 100.0, 10.0); // balance = 10 flops/B
/// let spmv = KernelCounters {
///     flops: 2_000, bytes_read: 24_000, bytes_written: 1_000,
///     invocations: 1, ns: 1_000,
/// };
/// let p = roofline::analyze("spmv", &spmv, &env);
/// assert!(p.intensity < 1.0);
/// assert_eq!(p.verdict, xsc_metrics::BoundVerdict::Bandwidth);
/// ```
pub fn analyze(kernel: &str, c: &KernelCounters, env: &MachineEnvelope) -> RooflinePoint {
    let bytes = c.bytes();
    let intensity = if bytes == 0 {
        f64::INFINITY
    } else {
        c.flops as f64 / bytes as f64
    };
    let attained_gflops = c.attained_gflops();
    let attained_gbs = c.attained_gbs();
    let roof_gflops = env.attainable_gflops(intensity);
    let roof_fraction = if roof_gflops > 0.0 {
        attained_gflops / roof_gflops
    } else {
        0.0
    };
    let verdict = if intensity < env.balance() {
        BoundVerdict::Bandwidth
    } else {
        BoundVerdict::Compute
    };
    RooflinePoint {
        kernel: kernel.to_string(),
        flops: c.flops,
        bytes,
        intensity,
        attained_gflops,
        attained_gbs,
        roof_gflops,
        roof_fraction,
        verdict,
    }
}

/// Place every kernel in a snapshot on the roofline, preserving order.
pub fn analyze_all(
    snapshot: &[(&'static str, KernelCounters)],
    env: &MachineEnvelope,
) -> Vec<RooflinePoint> {
    snapshot
        .iter()
        .filter(|(_, c)| !c.is_empty())
        .map(|(k, c)| analyze(k, c, env))
        .collect()
}

/// Render a log-log ASCII roofline plot: the bandwidth slope and the
/// compute ceiling, with each kernel marked by a letter keyed in the
/// legend. Untimed kernels (no measured rate) are placed *on* the roof at
/// their intensity.
pub fn ascii_roofline(points: &[RooflinePoint], env: &MachineEnvelope) -> String {
    const W: usize = 64;
    const H: usize = 18;
    // Intensity (x) from 1/64 to 1024 flops/byte, rate (y) spanning the
    // roof with two decades of headroom below the ceiling's start.
    let x_min: f64 = (1.0f64 / 64.0).log2();
    let x_max: f64 = 1024f64.log2();
    let y_max = env.peak_gflops.log2().ceil() + 0.5;
    let y_min = y_max - (H as f64) * 0.75;

    let xcol = |i: f64| -> usize {
        let t = (i.log2() - x_min) / (x_max - x_min);
        ((t * (W - 1) as f64).round().clamp(0.0, (W - 1) as f64)) as usize
    };
    let yrow = |g: f64| -> Option<usize> {
        if g <= 0.0 {
            return None;
        }
        let t = (y_max - g.log2()) / (y_max - y_min);
        let r = (t * (H - 1) as f64).round();
        (0.0..=(H - 1) as f64).contains(&r).then_some(r as usize)
    };

    let mut grid = vec![vec![' '; W]; H];
    // Draw the roof column by column: the rising bandwidth slope until the
    // knee, then the flat compute ceiling. The row index depends on the
    // column's roof height, so this cannot iterate `grid` directly.
    #[allow(clippy::needless_range_loop)]
    for col in 0..W {
        let ix = 2f64.powf(x_min + (x_max - x_min) * col as f64 / (W - 1) as f64);
        let roof = env.attainable_gflops(ix);
        if let Some(r) = yrow(roof) {
            let mark = if roof < env.peak_gflops { '/' } else { '-' };
            grid[r][col] = mark;
        }
    }
    // Mark the knee.
    if let Some(r) = yrow(env.peak_gflops) {
        grid[r][xcol(env.balance())] = '+';
    }
    // Place kernels.
    let mut legend = String::new();
    for (n, p) in points.iter().enumerate() {
        let label = (b'A' + (n % 26) as u8) as char;
        let rate = if p.attained_gflops > 0.0 {
            p.attained_gflops
        } else {
            p.roof_gflops
        };
        if p.intensity.is_finite() {
            if let Some(r) = yrow(rate) {
                grid[r][xcol(p.intensity)] = label;
            }
        }
        legend.push_str(&format!(
            "  {label} {:<14} I={:<8.3} {:>8.2} Gflop/s  {:>5.1}% of roof  [{}]\n",
            p.kernel,
            p.intensity,
            p.attained_gflops,
            100.0 * p.roof_fraction,
            p.verdict
        ));
    }

    let mut out = format!(
        "Roofline: {} (peak {:.1} Gflop/s, {:.1} GB/s, balance {:.2} flops/B)\n",
        env.name,
        env.peak_gflops,
        env.peak_gbs,
        env.balance()
    );
    out.push_str("Gflop/s (log2)\n");
    for row in &grid {
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(W));
    out.push_str("> intensity (flops/byte, log2; 1/64 .. 1024)\n");
    out.push_str(&legend);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(flops: u64, bytes: u64, ns: u64) -> KernelCounters {
        KernelCounters {
            flops,
            bytes_read: bytes,
            bytes_written: 0,
            invocations: 1,
            ns,
        }
    }

    #[test]
    fn balance_splits_verdicts() {
        let env = MachineEnvelope::new("m", 100.0, 10.0); // balance 10
        let low = analyze("spmv", &counters(100, 1_000, 100), &env);
        let high = analyze("gemm", &counters(100_000, 1_000, 100), &env);
        assert_eq!(low.verdict, BoundVerdict::Bandwidth);
        assert_eq!(high.verdict, BoundVerdict::Compute);
        assert!(low.intensity < high.intensity);
    }

    #[test]
    fn roof_is_min_of_slope_and_ceiling() {
        let env = MachineEnvelope::new("m", 100.0, 10.0);
        assert_eq!(env.attainable_gflops(1.0), 10.0);
        assert_eq!(env.attainable_gflops(10.0), 100.0);
        assert_eq!(env.attainable_gflops(1000.0), 100.0);
    }

    #[test]
    fn roof_fraction_is_attained_over_bound() {
        let env = MachineEnvelope::new("m", 100.0, 10.0);
        // 1000 flops in 100 ns = 10 Gflop/s at intensity 1 (roof 10) → 100 %.
        let p = analyze("k", &counters(1_000, 1_000, 100), &env);
        assert!((p.roof_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn untimed_counters_get_zero_rates() {
        let env = MachineEnvelope::new("m", 100.0, 10.0);
        let p = analyze("k", &counters(1_000, 1_000, 0), &env);
        assert_eq!(p.attained_gflops, 0.0);
        assert_eq!(p.roof_fraction, 0.0);
        assert!(p.intensity > 0.0);
    }

    #[test]
    fn zero_byte_kernel_is_compute_bound() {
        let env = MachineEnvelope::new("m", 100.0, 10.0);
        let p = analyze("k", &counters(1_000, 0, 10), &env);
        assert!(p.intensity.is_infinite());
        assert_eq!(p.verdict, BoundVerdict::Compute);
    }

    #[test]
    fn analyze_all_skips_empty() {
        let env = MachineEnvelope::new("m", 100.0, 10.0);
        let snap = vec![
            ("a", counters(10, 10, 10)),
            ("empty", KernelCounters::default()),
        ];
        let pts = analyze_all(&snap, &env);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].kernel, "a");
    }

    #[test]
    fn ascii_plot_contains_roof_and_legend() {
        let env = MachineEnvelope::new("m", 100.0, 10.0);
        let pts = vec![
            analyze("gemm", &counters(1_000_000, 10_000, 50_000), &env),
            analyze("spmv", &counters(1_000, 50_000, 10_000), &env),
        ];
        let plot = ascii_roofline(&pts, &env);
        assert!(plot.contains('/'), "bandwidth slope drawn");
        assert!(plot.contains('-'), "compute ceiling drawn");
        assert!(plot.contains("A gemm"));
        assert!(plot.contains("B spmv"));
        assert!(plot.contains("bandwidth-bound"));
    }
}
