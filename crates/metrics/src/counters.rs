//! The thread-aware counter registry and its scoped RAII recorders.
//!
//! Recording is additive and commutative: every recorder adds plain `u64`
//! deltas to its kernel's entry, so totals are **deterministic across
//! thread counts and interleavings** — two identical runs report identical
//! flop/byte totals (wall-clock `ns` is, of course, run-dependent).
//! Nested scopes simply add: a `mg_vcycle` scope that internally runs
//! `symgs` scopes produces an `mg_vcycle` entry *and* `symgs` entries, and
//! each entry accounts exactly what was declared against it. Aggregating
//! overlapping entries double-counts by construction; the roofline report
//! keeps kernels separate for exactly this reason.

use crate::stopwatch::Stopwatch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Accumulated counters for one named kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Bytes read from memory (per the kernel's analytic traffic model).
    pub bytes_read: u64,
    /// Bytes written to memory (per the kernel's analytic traffic model).
    pub bytes_written: u64,
    /// Number of recorded invocations.
    pub invocations: u64,
    /// Wall-clock nanoseconds accumulated across invocations.
    pub ns: u64,
}

impl KernelCounters {
    /// Total bytes moved (read + written).
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Accumulated wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.ns as f64 * 1e-9
    }

    /// Arithmetic intensity in flops per byte (0 when no bytes were moved).
    pub fn intensity(&self) -> f64 {
        let b = self.bytes();
        if b == 0 {
            return 0.0;
        }
        self.flops as f64 / b as f64
    }

    /// Attained Gflop/s over the accumulated wall time (0 when untimed).
    pub fn attained_gflops(&self) -> f64 {
        if self.ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.ns as f64
    }

    /// Attained memory bandwidth in GB/s over the accumulated wall time.
    pub fn attained_gbs(&self) -> f64 {
        if self.ns == 0 {
            return 0.0;
        }
        self.bytes() as f64 / self.ns as f64
    }

    /// Adds another counter set into this one (field-wise sum).
    pub fn merge(&mut self, other: &KernelCounters) {
        self.flops += other.flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.invocations += other.invocations;
        self.ns += other.ns;
    }

    /// Field-wise saturating difference (`self - earlier`), used to turn
    /// two registry snapshots into the traffic of the work between them.
    pub fn saturating_sub(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            flops: self.flops.saturating_sub(earlier.flops),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            invocations: self.invocations.saturating_sub(earlier.invocations),
            ns: self.ns.saturating_sub(earlier.ns),
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        *self == KernelCounters::default()
    }
}

/// Work and traffic declared by one kernel invocation (the input to a
/// recorder; produced by the analytic models in [`crate::traffic`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl Traffic {
    /// Total bytes moved (read + written).
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Field-wise sum of two traffic declarations.
    pub fn plus(&self, other: Traffic) -> Traffic {
        Traffic {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }

    /// This traffic repeated `n` times.
    pub fn times(&self, n: u64) -> Traffic {
        Traffic {
            flops: self.flops * n,
            bytes_read: self.bytes_read * n,
            bytes_written: self.bytes_written * n,
        }
    }
}

/// A named-kernel counter store. The process-wide instance behind
/// [`record`]/[`snapshot`] is what the instrumented kernels feed; separate
/// instances exist so tests can accumulate in isolation.
#[derive(Default)]
pub struct Registry {
    cells: Mutex<BTreeMap<&'static str, KernelCounters>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `traffic` (plus one invocation and `ns` nanoseconds) to the
    /// entry for `kernel`.
    pub fn add(&self, kernel: &'static str, traffic: Traffic, ns: u64) {
        let mut map = self.cells.lock().expect("metrics registry poisoned");
        let cell = map.entry(kernel).or_default();
        cell.flops += traffic.flops;
        cell.bytes_read += traffic.bytes_read;
        cell.bytes_written += traffic.bytes_written;
        cell.invocations += 1;
        cell.ns += ns;
    }

    /// Counters for one kernel, if it has recorded anything.
    pub fn get(&self, kernel: &str) -> Option<KernelCounters> {
        self.cells
            .lock()
            .expect("metrics registry poisoned")
            .get(kernel)
            .copied()
    }

    /// All entries, sorted by kernel name.
    pub fn snapshot(&self) -> Vec<(&'static str, KernelCounters)> {
        self.cells
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Field-wise sum over all entries. Entries from nested scopes overlap
    /// (see the module docs), so this is an upper bound on distinct
    /// traffic, not a disjoint sum.
    pub fn total(&self) -> KernelCounters {
        let mut t = KernelCounters::default();
        for (_, c) in self.snapshot() {
            t.merge(&c);
        }
        t
    }

    /// Clears every entry.
    pub fn reset(&self) {
        self.cells
            .lock()
            .expect("metrics registry poisoned")
            .clear();
    }
}

static GLOBAL: Registry = Registry {
    cells: Mutex::new(BTreeMap::new()),
};

/// Whether the global recorders are active (cheap atomic check; recording
/// is on by default).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables recording. While disabled, [`record`]
/// returns an inert guard that skips the clock reads and registry update.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-thread running (flops, bytes) totals, sampled by the runtime
    /// executor around each task to attribute intensity per task span.
    static THREAD_TOTALS: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// This thread's running `(flops, bytes)` totals across every recorder
/// that completed on it. Monotone non-decreasing; the runtime executor
/// samples it before and after a task to compute the task's delta.
pub fn thread_totals() -> (u64, u64) {
    THREAD_TOTALS.with(|t| t.get())
}

fn bump_thread_totals(traffic: &Traffic) {
    THREAD_TOTALS.with(|t| {
        let (f, b) = t.get();
        t.set((f + traffic.flops, b + traffic.bytes()));
    });
}

/// RAII guard created by [`record`]: on drop it adds the declared traffic,
/// one invocation, and the elapsed nanoseconds to the global registry (and
/// to this thread's running totals).
pub struct ScopedRecorder {
    kernel: &'static str,
    traffic: Traffic,
    /// `None` when recording was disabled at construction time.
    start: Option<Stopwatch>,
}

impl ScopedRecorder {
    /// Adds more traffic to this scope before it closes (for kernels whose
    /// full traffic is only known mid-flight).
    pub fn add(&mut self, extra: Traffic) {
        self.traffic = self.traffic.plus(extra);
    }
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.nanos();
            GLOBAL.add(self.kernel, self.traffic, ns);
            bump_thread_totals(&self.traffic);
        }
    }
}

/// Opens a scoped recorder for `kernel` declaring `traffic`; the scope's
/// wall time and traffic are committed to the global registry when the
/// returned guard drops.
///
/// ```
/// let _scope = xsc_metrics::record(
///     "doc_axpy",
///     xsc_metrics::traffic::axpy(1024, 8),
/// );
/// // kernel body runs here; counters commit when `_scope` drops
/// ```
pub fn record(kernel: &'static str, traffic: Traffic) -> ScopedRecorder {
    ScopedRecorder {
        kernel,
        traffic,
        start: enabled().then(Stopwatch::start),
    }
}

/// Records `traffic` against `kernel` immediately, with zero elapsed time
/// (for analytic or replayed work that has no wall-clock span).
pub fn record_untimed(kernel: &'static str, traffic: Traffic) {
    if enabled() {
        GLOBAL.add(kernel, traffic, 0);
        bump_thread_totals(&traffic);
    }
}

/// Counters for one kernel from the global registry.
pub fn get(kernel: &str) -> Option<KernelCounters> {
    GLOBAL.get(kernel)
}

/// All global entries, sorted by kernel name.
pub fn snapshot() -> Vec<(&'static str, KernelCounters)> {
    GLOBAL.snapshot()
}

/// Field-wise sum over all global entries (see [`Registry::total`] for the
/// overlap caveat).
pub fn total() -> KernelCounters {
    GLOBAL.total()
}

/// Clears the global registry.
pub fn reset() {
    GLOBAL.reset()
}

/// Runs `f` and returns its result together with the per-kernel counter
/// *deltas* it produced (registry snapshot after minus before), so callers
/// can attribute traffic to a phase without resetting the registry.
///
/// Only counts work recorded on threads that finished their scopes before
/// `f` returns — which holds for every instrumented kernel in `xsc`, since
/// they all join their parallelism internally.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Vec<(&'static str, KernelCounters)>) {
    let before: BTreeMap<&'static str, KernelCounters> = snapshot().into_iter().collect();
    let out = f();
    let delta = snapshot()
        .into_iter()
        .filter_map(|(k, after)| {
            let d = match before.get(k) {
                Some(b) => after.saturating_sub(b),
                None => after,
            };
            (!d.is_empty()).then_some((k, d))
        })
        .collect();
    (out, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let r = Registry::new();
        r.add(
            "k",
            Traffic {
                flops: 10,
                bytes_read: 4,
                bytes_written: 2,
            },
            100,
        );
        r.add(
            "k",
            Traffic {
                flops: 5,
                bytes_read: 1,
                bytes_written: 1,
            },
            50,
        );
        let c = r.get("k").unwrap();
        assert_eq!(c.flops, 15);
        assert_eq!(c.bytes(), 8);
        assert_eq!(c.invocations, 2);
        assert_eq!(c.ns, 150);
        assert!((c.intensity() - 15.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn scoped_recorder_commits_on_drop() {
        reset();
        {
            let _s = record(
                "scoped_test_kernel",
                Traffic {
                    flops: 7,
                    bytes_read: 3,
                    bytes_written: 2,
                },
            );
            assert!(get("scoped_test_kernel").is_none(), "commits only on drop");
        }
        let c = get("scoped_test_kernel").unwrap();
        assert_eq!(c.flops, 7);
        assert_eq!(c.invocations, 1);
    }

    #[test]
    fn disabled_recording_is_inert() {
        reset();
        set_enabled(false);
        {
            let _s = record(
                "disabled_kernel",
                Traffic {
                    flops: 1,
                    bytes_read: 1,
                    bytes_written: 1,
                },
            );
        }
        record_untimed(
            "disabled_kernel",
            Traffic {
                flops: 1,
                ..Default::default()
            },
        );
        set_enabled(true);
        assert!(get("disabled_kernel").is_none());
    }

    #[test]
    fn measure_reports_deltas_only() {
        reset();
        record_untimed(
            "measure_base",
            Traffic {
                flops: 100,
                bytes_read: 50,
                bytes_written: 0,
            },
        );
        let ((), delta) = measure(|| {
            record_untimed(
                "measure_base",
                Traffic {
                    flops: 10,
                    bytes_read: 5,
                    bytes_written: 5,
                },
            );
            record_untimed(
                "measure_new",
                Traffic {
                    flops: 1,
                    ..Default::default()
                },
            );
        });
        let map: BTreeMap<_, _> = delta.into_iter().collect();
        assert_eq!(map["measure_base"].flops, 10);
        assert_eq!(map["measure_base"].bytes(), 10);
        assert_eq!(map["measure_new"].flops, 1);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn thread_totals_monotone() {
        let (f0, b0) = thread_totals();
        record_untimed(
            "thread_total_probe",
            Traffic {
                flops: 3,
                bytes_read: 2,
                bytes_written: 1,
            },
        );
        let (f1, b1) = thread_totals();
        assert_eq!(f1 - f0, 3);
        assert_eq!(b1 - b0, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Counters are additive: recording a batch of traffic deltas one
        /// at a time (in any grouping) yields the same totals as summing
        /// them first — and running totals are monotone non-decreasing.
        #[test]
        fn additive_and_monotone_under_nested_scopes(
            ops in proptest::collection::vec((0u64..1_000, 0u64..1_000, 0u64..1_000), 1..20),
            split in 0usize..20,
        ) {
            let r = Registry::new();
            let mut running = KernelCounters::default();
            // "Nested" grouping: first `split` ops recorded under an outer
            // aggregate as one pre-summed Traffic, the rest one by one.
            let split = split.min(ops.len());
            let mut outer = Traffic::default();
            for &(f, br, bw) in &ops[..split] {
                outer = outer.plus(Traffic { flops: f, bytes_read: br, bytes_written: bw });
            }
            r.add("k", outer, 0);
            for &(f, br, bw) in &ops[split..] {
                let prev = r.get("k").unwrap();
                r.add("k", Traffic { flops: f, bytes_read: br, bytes_written: bw }, 0);
                let cur = r.get("k").unwrap();
                // Monotone in every field.
                prop_assert!(cur.flops >= prev.flops);
                prop_assert!(cur.bytes_read >= prev.bytes_read);
                prop_assert!(cur.bytes_written >= prev.bytes_written);
                prop_assert!(cur.invocations > prev.invocations);
            }
            for &(f, br, bw) in &ops {
                running.merge(&KernelCounters {
                    flops: f, bytes_read: br, bytes_written: bw, invocations: 0, ns: 0,
                });
            }
            let got = r.get("k").unwrap();
            // Additive: grouping does not change flop/byte totals.
            prop_assert_eq!(got.flops, running.flops);
            prop_assert_eq!(got.bytes_read, running.bytes_read);
            prop_assert_eq!(got.bytes_written, running.bytes_written);
            // One invocation per add call: split groups + singles.
            prop_assert_eq!(got.invocations, 1 + (ops.len() - split) as u64);
        }
    }
}
