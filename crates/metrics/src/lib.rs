//! # xsc-metrics — data-movement observability
//!
//! The keynote's central claim is that **data movement, not arithmetic,
//! dominates the cost of extreme-scale computing**: HPL sustains 60–90 % of
//! peak while memory-bound HPCG sustains 1–5 %. Timing a kernel tells you
//! *how long* it ran; only accounting the bytes it moved tells you *why*.
//! This crate is the accounting layer the rest of `xsc` reports through:
//!
//! * [`counters`] — a process-wide, thread-aware registry of per-kernel
//!   [`KernelCounters`] (`flops`, `bytes_read`, `bytes_written`,
//!   `invocations`, `ns`), fed by scoped RAII recorders ([`record`]) that
//!   the instrumented kernels in `xsc-core`, `xsc-sparse`, and `xsc-dense`
//!   create on entry;
//! * [`traffic`] — analytic per-kernel traffic models (packed-GEMM reload
//!   factors, CSR SpMV streams, SymGS sweeps, multigrid V-cycles, blocked
//!   LU/Cholesky panel traffic) that turn a kernel's shape into the bytes
//!   it must move through DRAM;
//! * [`roofline`] — arithmetic intensity, attained Gflop/s, and a
//!   bandwidth- vs compute-bound verdict against a [`MachineEnvelope`],
//!   plus an ASCII roofline plot.
//!
//! The crate is dependency-free (std only) so it can sit underneath every
//! other `xsc` crate without cycles.
//!
//! ## Quickstart
//!
//! ```
//! use xsc_metrics::{record, roofline, traffic, MachineEnvelope};
//!
//! xsc_metrics::reset();
//! {
//!     // Scoped RAII recorder: counters land in the registry on drop.
//!     let _scope = record("my_kernel", traffic::gemm_colsweep(64, 64, 64, 8));
//!     // ... run the kernel ...
//! }
//! let c = xsc_metrics::get("my_kernel").expect("recorded");
//! assert_eq!(c.invocations, 1);
//! assert_eq!(c.flops, 2 * 64 * 64 * 64);
//!
//! // Roofline verdict against a machine envelope (peak Gflop/s, GB/s).
//! let env = MachineEnvelope::new("laptop", 50.0, 20.0);
//! let point = roofline::analyze("my_kernel", &c, &env);
//! assert!(point.intensity > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod quantiles;
pub mod roofline;
pub mod stopwatch;
pub mod traffic;

pub use counters::{
    get, measure, record, record_untimed, reset, set_enabled, snapshot, thread_totals, total,
    KernelCounters, Registry, ScopedRecorder, Traffic,
};
pub use quantiles::{percentile, LatencySummary};
pub use roofline::{ascii_roofline, BoundVerdict, MachineEnvelope, RooflinePoint};
pub use stopwatch::Stopwatch;
