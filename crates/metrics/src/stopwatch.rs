//! The workspace's single sanctioned wall-clock chokepoint.
//!
//! Rule D02 of `xsc-lint` forbids raw `std::time::Instant` /
//! `SystemTime` reads everywhere except the benchmark crate and this
//! module: wall-clock time must only ever flow into *reported timings*
//! (seconds, Gflop/s), never into numeric results or control flow, and
//! funneling every read through one audited type is what makes that
//! property checkable. Kernels, drivers, and the runtime executor time
//! themselves with a [`Stopwatch`]; anything else is a lint finding.

use std::time::{Duration, Instant};

/// A started wall-clock timer. `Copy`, so an epoch can be shared across
/// worker threads (as the runtime executor does for trace timestamps).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Reads the clock and starts timing.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds (the unit every benchmark reports).
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Elapsed time in whole nanoseconds, saturating at `u64::MAX`
    /// (584 years — the counter registry's unit).
    pub fn nanos(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.seconds() >= 0.0);
    }

    #[test]
    fn copies_share_the_epoch() {
        let epoch = Stopwatch::start();
        let copy = epoch;
        std::thread::sleep(Duration::from_millis(1));
        assert!(copy.elapsed() >= Duration::from_millis(1));
        assert!(epoch.nanos() > 0);
    }
}
