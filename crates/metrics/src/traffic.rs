//! Analytic per-kernel DRAM traffic models.
//!
//! These are the byte-counting analogues of the LAPACK flop formulas in
//! `xsc_core::flops`: given a kernel's shape (and, where it matters, its
//! blocking parameters), they return the [`Traffic`] the kernel must move
//! through DRAM under the documented cache assumptions. The Hierarchical
//! Performance Modeling line of work shows such models are enough to rank
//! algorithms without hardware counters; `xsc` records them through the
//! registry so every measured wall-clock second carries its flop *and*
//! byte bill.
//!
//! Conventions, used consistently below:
//!
//! * `w` is the element width in bytes (8 for `f64`, 4 for `f32`);
//!   index arrays in the CSR models are `usize` = [`IDX_BYTES`] bytes.
//! * Packing buffers and operand panels sized to fit in cache are **not**
//!   charged — the model counts compulsory DRAM traffic plus the *reload
//!   factors* forced by the loop order (how many times an operand is
//!   re-streamed), which is exactly what distinguishes the packed blocked
//!   GEMM from the naive sweep.
//! * Gathered vector reads (`x[col[j]]` in CSR kernels) are charged one
//!   element per nonzero — the bandwidth-pessimal but cache-honest choice
//!   for the large, irregular problems HPCG models.

use crate::counters::Traffic;

/// Bytes per CSR index entry (`usize` on the 64-bit targets xsc runs on).
pub const IDX_BYTES: u64 = 8;

/// Bytes per compact (`u32`) index entry used by the bandwidth-lean
/// sparse formats (`Csr32`, SELL-C-σ).
pub const IDX32_BYTES: u64 = 4;

/// How a sparse kernel's gathered reads of the `x` vector are charged.
///
/// The two policies bracket reality:
///
/// * [`XGather::PerNnz`] charges one element per stored nonzero — the
///   bandwidth-pessimal bound for huge irregular matrices where every
///   gather misses. This is the legacy `xsc` convention and what the
///   `usize`-index CSR kernels record.
/// * [`XGather::Streamed`] charges `x` once per sweep (`ncols·w`) — the
///   canonical-HPCG convention (`xsc_machine::KernelProfile::hpcg` uses
///   it): for structured stencils the gather window is a couple of grid
///   planes and stays cache-resident, so each `x` element is brought from
///   DRAM once. The compact formats record under this policy; E19 prints
///   both columns for every format so the assumptions stay visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XGather {
    /// One `x` element charged per stored nonzero (pessimal upper bound).
    PerNnz,
    /// `x` streamed once per sweep (cache-resident gather window).
    Streamed,
}

impl XGather {
    fn x_bytes(self, gathers: u64, ncols: u64, w: u64) -> u64 {
        match self {
            XGather::PerNnz => gathers * w,
            XGather::Streamed => ncols * w,
        }
    }
}

/// Traffic of the column-sweep (naive) GEMM `C ← αAB + βC` with
/// `A: m×k`, `B: k×n`, `C: m×n`.
///
/// For every output column the kernel re-streams **all of A** — the
/// reload factor is `n` — which is why this kernel falls off the roofline
/// as soon as `A` outgrows cache:
/// `reads = n·(m·k + k + m)`, `writes = n·m`, `flops = 2mnk`.
pub fn gemm_colsweep(m: usize, n: usize, k: usize, w: u64) -> Traffic {
    let (m, n, k) = (m as u64, n as u64, k as u64);
    Traffic {
        flops: 2 * m * n * k,
        bytes_read: w * n * (m * k + k + m),
        bytes_written: w * n * m,
    }
}

/// Traffic of the BLIS-style packed blocked GEMM with macro-tile
/// parameters `(mc, kc, nc)` (see `xsc_core::gemm`).
///
/// The loop nest `jc → pc → ic` fixes the reload factors:
///
/// * `B` is packed once per `(jc, pc)` block — each element read **once**:
///   `k·n`;
/// * `A` is packed once per `(jc, pc, ic)` block — each element re-read
///   once per column macro-tile: `m·k·⌈n/nc⌉`;
/// * `C` is accumulated once per depth step: read and written
///   `⌈k/kc⌉` times: `2·m·n·⌈k/kc⌉`.
///
/// Packing-buffer traffic is cache-resident by construction and not
/// charged. Parameters are clamped to the problem first, as the kernel
/// clamps them.
pub fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    mc: usize,
    kc: usize,
    nc: usize,
    w: u64,
) -> Traffic {
    let (mu, nu, ku) = (m as u64, n as u64, k as u64);
    let nc = nc.clamp(1, n.max(1));
    let kc = kc.clamp(1, k.max(1));
    let _ = mc; // mc shapes cache residency, not DRAM reload counts
    let n_reloads_a = n.div_ceil(nc) as u64;
    let k_steps = k.div_ceil(kc) as u64;
    Traffic {
        flops: 2 * mu * nu * ku,
        bytes_read: w * (mu * ku * n_reloads_a + ku * nu + mu * nu * k_steps),
        bytes_written: w * mu * nu * k_steps,
    }
}

/// Traffic of `y ← αAx + βy` (dense GEMV, `A: m×n`): `A` streamed once,
/// `x` once, `y` read+written once.
pub fn gemv(m: usize, n: usize, w: u64) -> Traffic {
    let (m, n) = (m as u64, n as u64);
    Traffic {
        flops: 2 * m * n,
        bytes_read: w * (m * n + n + m),
        bytes_written: w * m,
    }
}

/// Traffic of `y ← αx + y` over `n` elements.
pub fn axpy(n: usize, w: u64) -> Traffic {
    let n = n as u64;
    Traffic {
        flops: 2 * n,
        bytes_read: w * 2 * n,
        bytes_written: w * n,
    }
}

/// Traffic of `x ← αx` over `n` elements.
pub fn scal(n: usize, w: u64) -> Traffic {
    let n = n as u64;
    Traffic {
        flops: n,
        bytes_read: w * n,
        bytes_written: w * n,
    }
}

/// Traffic of a dot product over `n`-element vectors.
pub fn dot(n: usize, w: u64) -> Traffic {
    let n = n as u64;
    Traffic {
        flops: 2 * n,
        bytes_read: w * 2 * n,
        bytes_written: 0,
    }
}

/// Traffic of a Euclidean norm over `n` elements.
pub fn nrm2(n: usize, w: u64) -> Traffic {
    let n = n as u64;
    Traffic {
        flops: 2 * n,
        bytes_read: w * n,
        bytes_written: 0,
    }
}

/// Traffic of a triangular solve `op(A)X = αB` with an `n×n` triangle and
/// `m` right-hand sides: the stored triangle is streamed once (it is
/// assumed cache-resident across the right-hand sides), `B` read and
/// written once. `flops = m·n²`.
pub fn trsm(n: usize, m: usize, w: u64) -> Traffic {
    let (n, m) = (n as u64, m as u64);
    Traffic {
        flops: m * n * n,
        bytes_read: w * (n * (n + 1) / 2 + m * n),
        bytes_written: w * m * n,
    }
}

/// Traffic of the symmetric rank-k update `C(n×n) ← αAAᵀ + βC` on one
/// triangle: `A` streamed once, the stored triangle read and written once.
/// `flops = n(n+1)k`.
pub fn syrk(n: usize, k: usize, w: u64) -> Traffic {
    let (n, k) = (n as u64, k as u64);
    let tri = n * (n + 1) / 2;
    Traffic {
        flops: n * (n + 1) * k,
        bytes_read: w * (n * k + tri),
        bytes_written: w * tri,
    }
}

/// Traffic of one CSR SpMV `y ← Ax` with `nrows` rows, `ncols` columns and
/// `nnz` stored entries:
///
/// * matrix stream: `nnz·(w + IDX_BYTES)` values+indices plus
///   `(nrows+1)·IDX_BYTES` row pointers — with `w = 8` this is the
///   "`nnz·12`-ish bytes per nonzero" CSR bill (12 with 4-byte indices,
///   16 with the `usize` indices xsc stores);
/// * `x` gathered once per nonzero (`nnz·w`);
/// * `y` written once.
///
/// `flops = 2·nnz`.
pub fn spmv_csr(nrows: usize, nnz: usize, w: u64) -> Traffic {
    let (nrows, nnz) = (nrows as u64, nnz as u64);
    Traffic {
        flops: 2 * nnz,
        bytes_read: nnz * (w + IDX_BYTES) + (nrows + 1) * IDX_BYTES + nnz * w,
        bytes_written: w * nrows,
    }
}

/// Traffic of one symmetric Gauss–Seidel application (forward + backward
/// sweep, HPCG's `ComputeSYMGS`): each sweep re-streams the matrix and
/// gathers `x` like an SpMV, reads `b`, and writes `x` once.
/// `flops = 4·nnz` (HPCG accounting).
pub fn symgs_csr(nrows: usize, nnz: usize, w: u64) -> Traffic {
    let (nr, nz) = (nrows as u64, nnz as u64);
    let per_sweep_read = nz * (w + IDX_BYTES) + (nr + 1) * IDX_BYTES + nz * w + nr * w;
    Traffic {
        flops: 4 * nz,
        bytes_read: 2 * per_sweep_read,
        bytes_written: 2 * w * nr,
    }
}

/// Traffic of one compact-index CSR (`Csr32`) SpMV `y ← Ax`: values at `w`
/// bytes, column indices and row pointers at [`IDX32_BYTES`], `x` charged
/// under the chosen [`XGather`] policy, `y` written once. `flops = 2·nnz`.
///
/// With `w = 8` and [`XGather::Streamed`] this is the canonical-HPCG
/// "~12 B/nnz" matrix stream — half the `usize`-index [`spmv_csr`] bill.
pub fn spmv_csr32(nrows: usize, ncols: usize, nnz: usize, w: u64, gather: XGather) -> Traffic {
    let (nr, nc, nz) = (nrows as u64, ncols as u64, nnz as u64);
    Traffic {
        flops: 2 * nz,
        bytes_read: nz * (w + IDX32_BYTES) + (nr + 1) * IDX32_BYTES + gather.x_bytes(nz, nc, w),
        bytes_written: w * nr,
    }
}

/// Traffic of one symmetric Gauss–Seidel application over `Csr32` storage
/// (forward + backward sweep): each sweep streams values + `u32` indices +
/// row pointers, reads `b`, gathers `x` per the policy, and writes `x`
/// once. `flops = 4·nnz` (HPCG accounting).
pub fn symgs_csr32(nrows: usize, ncols: usize, nnz: usize, w: u64, gather: XGather) -> Traffic {
    let (nr, nc, nz) = (nrows as u64, ncols as u64, nnz as u64);
    let per_sweep =
        nz * (w + IDX32_BYTES) + (nr + 1) * IDX32_BYTES + gather.x_bytes(nz, nc, w) + nr * w;
    Traffic {
        flops: 4 * nz,
        bytes_read: 2 * per_sweep,
        bytes_written: 2 * w * nr,
    }
}

/// Traffic of one SELL-C-σ SpMV: the kernel streams every *stored slot*
/// (`padded_slots` ≥ `nnz` — σ-sorting keeps the padding small), each slot
/// carrying a `w`-byte value and a `u32` column index, plus one chunk
/// offset per chunk. Under [`XGather::PerNnz`] the padded slots are
/// charged too (the kernel really issues those gathers); `flops = 2·nnz`
/// counts only useful work, so padding lowers the reported intensity —
/// exactly the overhead the σ sort exists to minimize.
pub fn spmv_sell(
    nrows: usize,
    ncols: usize,
    nnz: usize,
    padded_slots: usize,
    nchunks: usize,
    w: u64,
    gather: XGather,
) -> Traffic {
    let (nr, nc, nz, pad, ch) = (
        nrows as u64,
        ncols as u64,
        nnz as u64,
        padded_slots as u64,
        nchunks as u64,
    );
    Traffic {
        flops: 2 * nz,
        bytes_read: pad * (w + IDX32_BYTES) + (ch + 1) * IDX_BYTES + gather.x_bytes(pad, nc, w),
        bytes_written: w * nr,
    }
}

/// Traffic of one multicolor symmetric Gauss–Seidel application over
/// SELL-C-σ storage: the sweeps walk only the *real* entries (per-row
/// lengths, `u32` each, are streamed to skip the padding), read `b`,
/// gather `x` per the policy, and write `x` once per sweep.
/// `flops = 4·nnz`.
pub fn symgs_sell(
    nrows: usize,
    ncols: usize,
    nnz: usize,
    nchunks: usize,
    w: u64,
    gather: XGather,
) -> Traffic {
    let (nr, nc, nz, ch) = (nrows as u64, ncols as u64, nnz as u64, nchunks as u64);
    let per_sweep = nz * (w + IDX32_BYTES)
        + (ch + 1) * IDX_BYTES
        + nr * IDX32_BYTES
        + gather.x_bytes(nz, nc, w)
        + nr * w;
    Traffic {
        flops: 4 * nz,
        bytes_read: 2 * per_sweep,
        bytes_written: 2 * w * nr,
    }
}

/// [`spmv_csr`] with an explicit gather policy (the 3-argument form keeps
/// the legacy pessimal charge): used by E19 to print both conventions for
/// the `usize`-index baseline.
pub fn spmv_csr_gather(nrows: usize, ncols: usize, nnz: usize, w: u64, gather: XGather) -> Traffic {
    let (nr, nc, nz) = (nrows as u64, ncols as u64, nnz as u64);
    Traffic {
        flops: 2 * nz,
        bytes_read: nz * (w + IDX_BYTES) + (nr + 1) * IDX_BYTES + gather.x_bytes(nz, nc, w),
        bytes_written: w * nr,
    }
}

/// Traffic of one ABFT SpMV checksum cross-check over `n`-element vectors
/// (the column-sum invariant `eᵀ(Ax) = (eᵀA)·x`): a dot of the reference
/// checksum with `x` (`2n`), a pairwise sum of `y` (`n`), and the
/// magnitude-scale pass over both products (`~n`). Streams the checksum
/// vector, `x`, and `y` once each. The guarded SpMV itself records its own
/// traffic; this is the *detector surcharge* only.
pub fn spmv_checksum_check(n: usize, w: u64) -> Traffic {
    let n = n as u64;
    Traffic {
        flops: 4 * n,
        bytes_read: w * 3 * n,
        bytes_written: 0,
    }
}

/// Detector surcharge of one recomputed-vs-recurred residual drift check
/// *on top of* the fused residual recompute (which records its own SpMV
/// traffic): the difference norm streams the recomputed and recurrence
/// residuals once each at `3n` flops (subtract, square, accumulate).
pub fn residual_drift_extra(n: usize, w: u64) -> Traffic {
    let n = n as u64;
    Traffic {
        flops: 3 * n,
        bytes_read: w * 2 * n,
        bytes_written: 0,
    }
}

/// Traffic of one multigrid V-cycle over `levels` given as
/// `(rows, nnz)` per level, fine to coarse (HPCG's cycle: pre-smooth,
/// residual SpMV, injection restriction, recursive coarse solve,
/// injection-add prolongation, post-smooth; the coarsest level is a single
/// smoother application).
pub fn mg_vcycle(levels: &[(usize, usize)], w: u64) -> Traffic {
    let mut t = Traffic::default();
    for (l, &(n, nnz)) in levels.iter().enumerate() {
        let coarsest = l + 1 == levels.len();
        if coarsest {
            t = t.plus(symgs_csr(n, nnz, w));
        } else {
            let nc = levels[l + 1].0 as u64;
            // Pre- and post-smooth.
            t = t.plus(symgs_csr(n, nnz, w).times(2));
            // Residual: SpMV plus the subtraction pass over b and r.
            t = t.plus(spmv_csr(n, nnz, w));
            t = t.plus(Traffic {
                flops: n as u64,
                bytes_read: w * n as u64,
                bytes_written: w * n as u64,
            });
            // Injection restriction (read r at coarse points, write rc) and
            // injection-add prolongation (read zc, read+write x).
            t = t.plus(Traffic {
                flops: nc,
                bytes_read: w * 3 * nc,
                bytes_written: w * 2 * nc,
            });
        }
    }
    t
}

/// Traffic of blocked right-looking LU with panel width `nb` (the HPL
/// factorization): at each panel step the active `(n-k)×(n-k)` submatrix
/// is streamed once — read and written — which sums to the classic
/// `≈ w·n³/(3·nb)` blocked-LU traffic each way. Computed as the exact
/// panel-step sum, not the asymptotic closed form.
/// `flops = 2n³/3 − n²/2` (LAPACK accounting).
pub fn lu_blocked(n: usize, nb: usize, w: u64) -> Traffic {
    let nb = nb.max(1);
    let mut read = 0u64;
    let mut write = 0u64;
    let mut k = 0usize;
    while k < n {
        let active = (n - k) as u64;
        read += w * active * active;
        write += w * active * active;
        k += nb.min(n - k);
    }
    let nu = n as u64;
    Traffic {
        flops: (2 * nu * nu * nu) / 3 - (nu * nu) / 2,
        bytes_read: read,
        bytes_written: write,
    }
}

/// Traffic of blocked/tiled Cholesky with tile width `nb`: at each panel
/// step the active trailing *triangle* is streamed once (read and
/// written), summing to `≈ w·n³/(6·nb)` each way. Exact panel-step sum.
/// `flops = n³/3 + n²/2 + n/6`.
pub fn cholesky_blocked(n: usize, nb: usize, w: u64) -> Traffic {
    let nb = nb.max(1);
    let mut read = 0u64;
    let mut write = 0u64;
    let mut k = 0usize;
    while k < n {
        let active = (n - k) as u64;
        let tri = active * (active + 1) / 2;
        read += w * tri;
        write += w * tri;
        k += nb.min(n - k);
    }
    let nu = n as u64;
    Traffic {
        flops: (nu * nu * nu) / 3 + (nu * nu) / 2 + nu / 6,
        bytes_read: read,
        bytes_written: write,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colsweep_counts_known_shape() {
        // m=2, n=3, k=4: reads = 3·(8 + 4 + 2) = 42 elems, writes 6 elems.
        let t = gemm_colsweep(2, 3, 4, 8);
        assert_eq!(t.flops, 48);
        assert_eq!(t.bytes_read, 8 * 42);
        assert_eq!(t.bytes_written, 8 * 6);
    }

    #[test]
    fn packed_gemm_beats_colsweep_on_big_problems() {
        let naive = gemm_colsweep(512, 512, 512, 8);
        let packed = gemm_packed(512, 512, 512, 128, 256, 512, 8);
        assert!(
            packed.bytes() < naive.bytes() / 50,
            "packing must slash traffic"
        );
        assert_eq!(packed.flops, naive.flops);
    }

    #[test]
    fn packed_gemm_single_tile_case() {
        // Problem fits one macro-tile: A read once, B once, C touched once.
        let t = gemm_packed(64, 64, 64, 128, 256, 512, 8);
        assert_eq!(t.bytes_read, 8 * (64 * 64 + 64 * 64 + 64 * 64) as u64);
        assert_eq!(t.bytes_written, 8 * 64 * 64);
    }

    #[test]
    fn packed_gemm_reload_factors_scale_with_tiles() {
        // n = 2·nc doubles A's reload factor; k = 2·kc doubles C's.
        let base = gemm_packed(100, 100, 100, 128, 100, 100, 8);
        let wide = gemm_packed(100, 200, 100, 128, 100, 100, 8);
        // A traffic doubles twice over (2 tiles × 2× elements of B/C too);
        // just check the A reload term: wide reads A 2×.
        let a_base = 8 * 100 * 100; // one reload of A
        let a_wide = 8 * 100 * 100 * 2; // two reloads of A

        assert_eq!(
            wide.bytes_read - a_wide,
            2 * (base.bytes_read - a_base),
            "non-A terms scale linearly with n"
        );
    }

    #[test]
    fn spmv_counts_match_csr_layout() {
        // nnz·(8 val + 8 idx) + (n+1)·8 rowptr + nnz·8 gather, write 8n.
        let t = spmv_csr(100, 2700, 8);
        assert_eq!(t.flops, 5400);
        assert_eq!(t.bytes_read, 2700 * 16 + 101 * 8 + 2700 * 8);
        assert_eq!(t.bytes_written, 800);
    }

    #[test]
    fn symgs_is_two_spmv_like_sweeps() {
        let t = symgs_csr(100, 2700, 8);
        assert_eq!(t.flops, 4 * 2700);
        let per_sweep = 2700 * 16 + 101 * 8 + 2700 * 8 + 100 * 8;
        assert_eq!(t.bytes_read, 2 * per_sweep);
        assert_eq!(t.bytes_written, 2 * 800);
    }

    #[test]
    fn vcycle_includes_every_level() {
        let levels = [(4096, 104_000), (512, 11_000), (64, 1_000)];
        let t = mg_vcycle(&levels, 8);
        // At least the two smoother applications on the fine grid plus the
        // coarsest smoother.
        let fine2 = symgs_csr(4096, 104_000, 8).times(2);
        assert!(t.bytes() > fine2.bytes());
        assert!(t.flops > fine2.flops + 4 * 1_000);
        // One level == one smoother application.
        assert_eq!(mg_vcycle(&levels[2..], 8), symgs_csr(64, 1_000, 8));
    }

    #[test]
    fn lu_traffic_matches_asymptotic_form() {
        let n = 2048;
        let nb = 128;
        let t = lu_blocked(n, nb, 8);
        let model = 8.0 * (n as f64).powi(3) / (3.0 * nb as f64);
        let got = t.bytes_read as f64;
        assert!(
            (got - model).abs() / model < 0.15,
            "exact sum {got:.3e} vs asymptote {model:.3e}"
        );
        assert_eq!(t.bytes_read, t.bytes_written);
    }

    #[test]
    fn cholesky_is_half_of_lu_traffic() {
        let lu = lu_blocked(1024, 64, 8);
        let ch = cholesky_blocked(1024, 64, 8);
        let ratio = lu.bytes() as f64 / ch.bytes() as f64;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "triangle is half the square: {ratio}"
        );
    }

    #[test]
    fn gemm_intensity_dominates_spmv_intensity() {
        // The paper's compute- vs memory-bound split, in model form: packed
        // GEMM at the quick benchmark size is ≥ 10× the arithmetic
        // intensity of the 27-point-stencil SpMV.
        let g = gemm_packed(256, 256, 256, 128, 256, 512, 8);
        let n = 32 * 32 * 32;
        let s = spmv_csr(n, 27 * n, 8);
        let ig = g.flops as f64 / g.bytes() as f64;
        let is = s.flops as f64 / s.bytes() as f64;
        assert!(
            ig >= 10.0 * is,
            "gemm intensity {ig:.2} must be ≥ 10× spmv intensity {is:.3}"
        );
    }

    #[test]
    fn csr32_halves_the_matrix_stream() {
        // nnz·(8+4) + (n+1)·4 + gather, write 8n.
        let t = spmv_csr32(100, 100, 2700, 8, XGather::PerNnz);
        assert_eq!(t.flops, 5400);
        assert_eq!(t.bytes_read, 2700 * 12 + 101 * 4 + 2700 * 8);
        assert_eq!(t.bytes_written, 800);
        // Streamed gather: x charged once, not per nonzero.
        let s = spmv_csr32(100, 100, 2700, 8, XGather::Streamed);
        assert_eq!(s.bytes_read, 2700 * 12 + 101 * 4 + 100 * 8);
        // The headline ratio: usize-CSR pessimal vs Csr32 streamed is >= 1.5x.
        let legacy = spmv_csr(100, 2700, 8);
        assert!(legacy.bytes() as f64 / s.bytes() as f64 >= 1.5);
    }

    #[test]
    fn csr_gather_policy_form_matches_legacy() {
        let legacy = spmv_csr(100, 2700, 8);
        let general = spmv_csr_gather(100, 100, 2700, 8, XGather::PerNnz);
        assert_eq!(legacy, general);
        let streamed = spmv_csr_gather(100, 100, 2700, 8, XGather::Streamed);
        assert!(streamed.bytes_read < legacy.bytes_read);
    }

    #[test]
    fn sell_charges_padding_in_bytes_but_not_flops() {
        // 2700 real entries padded to 3000 slots in 13 chunks.
        let t = spmv_sell(100, 100, 2700, 3000, 13, 8, XGather::Streamed);
        assert_eq!(t.flops, 5400, "padding must not inflate useful flops");
        assert_eq!(t.bytes_read, 3000 * 12 + 14 * 8 + 100 * 8);
        assert_eq!(t.bytes_written, 800);
        // Zero padding degenerates to the Csr32 matrix stream (different
        // pointer arrays only).
        let sell = spmv_sell(100, 100, 2700, 2700, 13, 8, XGather::Streamed);
        let csr32 = spmv_csr32(100, 100, 2700, 8, XGather::Streamed);
        let ptr_diff = (101 * 4) as i64 - (14 * 8) as i64;
        assert_eq!(csr32.bytes_read as i64 - sell.bytes_read as i64, ptr_diff);
    }

    #[test]
    fn symgs_compact_models_are_two_sweeps() {
        let t = symgs_csr32(100, 100, 2700, 8, XGather::Streamed);
        assert_eq!(t.flops, 4 * 2700);
        let per_sweep = 2700 * 12 + 101 * 4 + 100 * 8 + 100 * 8;
        assert_eq!(t.bytes_read, 2 * per_sweep);
        assert_eq!(t.bytes_written, 2 * 800);
        let s = symgs_sell(100, 100, 2700, 13, 8, XGather::Streamed);
        assert_eq!(s.flops, 4 * 2700);
        let sweep = 2700 * 12 + 14 * 8 + 100 * 4 + 100 * 8 + 100 * 8;
        assert_eq!(s.bytes_read, 2 * sweep);
        // Both compact SymGS models undercut the usize-index model.
        assert!(t.bytes() < symgs_csr(100, 2700, 8).bytes());
        assert!(s.bytes() < symgs_csr(100, 2700, 8).bytes());
    }

    #[test]
    fn abft_detector_surcharges_are_linear_and_cheap() {
        let n = 32 * 32 * 32;
        let check = spmv_checksum_check(n, 8);
        assert_eq!(check.flops, 4 * n as u64);
        assert_eq!(check.bytes_read, 8 * 3 * n as u64);
        assert_eq!(check.bytes_written, 0);
        let drift = residual_drift_extra(n, 8);
        assert_eq!(drift.flops, 3 * n as u64);
        // Both detectors are O(n) against the O(nnz) kernel they guard:
        // under 10 % of one 27-point SpMV's bill.
        let kernel = spmv_csr(n, 27 * n, 8);
        assert!(check.bytes() * 10 < kernel.bytes());
        assert!(drift.bytes() * 10 < kernel.bytes());
    }

    #[test]
    fn blas1_shapes() {
        assert_eq!(axpy(10, 8).flops, 20);
        assert_eq!(axpy(10, 8).bytes(), 8 * 30);
        assert_eq!(dot(10, 8).bytes_written, 0);
        assert_eq!(scal(10, 4).bytes(), 4 * 20);
        assert_eq!(nrm2(10, 8).bytes_read, 80);
        assert_eq!(gemv(3, 5, 8).flops, 30);
        assert_eq!(trsm(4, 2, 8).flops, 32);
        assert_eq!(syrk(3, 2, 8).flops, 24);
    }
}
