//! Discrete-event simulation of task DAGs on modeled machines.
//!
//! Replays a dependence graph (edges + per-task costs) on `P` simulated
//! workers under list scheduling with critical-path priorities, optionally
//! charging a communication delay whenever a dependence crosses workers.
//! This is the substitute for the thousand-node testbeds the keynote's
//! scheduling claims were demonstrated on: the host machine caps out at a
//! few dozen threads, the simulator does not.

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Number of simulated workers.
    pub workers: usize,
    /// Delay added before a task may start for each predecessor that ran on
    /// a *different* worker (models moving the tile between memories).
    pub comm_delay: f64,
}

/// Simulation result.
#[derive(Debug, Clone)]
pub struct DesReport {
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Sum of task costs (serial time).
    pub total_work: f64,
    /// Critical path length through the DAG (no-comm lower bound).
    pub critical_path: f64,
    /// `total_work / (workers · makespan)`.
    pub utilization: f64,
    /// Speedup over serial execution (`total_work / makespan`).
    pub speedup: f64,
    /// Worker each task ran on.
    pub placement: Vec<usize>,
}

/// Simulates list-scheduled execution of a DAG.
///
/// * `n` — number of tasks (ids `0..n`);
/// * `edges` — dependence pairs `(from, to)` with `from < to`;
/// * `costs` — per-task execution time in seconds;
/// * `cfg` — worker count and communication delay.
pub fn simulate(n: usize, edges: &[(usize, usize)], costs: &[f64], cfg: DesConfig) -> DesReport {
    assert_eq!(costs.len(), n, "cost vector length mismatch");
    assert!(cfg.workers >= 1, "need at least one worker");
    for &(a, b) in edges {
        assert!(a < b && b < n, "edge ({a},{b}) invalid for {n} tasks");
    }

    let mut successors = vec![Vec::new(); n];
    for &(a, b) in edges {
        successors[a].push(b);
    }
    // Deduplicate so in-degrees count unique edges.
    let mut pending = vec![0usize; n];
    for succ in successors.iter_mut() {
        succ.sort_unstable();
        succ.dedup();
        for &b in succ.iter() {
            pending[b] += 1;
        }
    }

    // Critical-path priorities (reverse sweep works because edges go
    // forward in id order).
    let mut priority = vec![0.0f64; n];
    for id in (0..n).rev() {
        let best = successors[id]
            .iter()
            .map(|&s| priority[s])
            .fold(0.0f64, f64::max);
        priority[id] = costs[id] + best;
    }
    let critical_path = priority.iter().copied().fold(0.0f64, f64::max);

    // Event-driven list scheduling.
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
    let mut worker_free = vec![0.0f64; cfg.workers];
    let mut finish_time = vec![f64::INFINITY; n];
    let mut placement = vec![usize::MAX; n];
    let mut pred_info: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n]; // (worker, finish)
    let mut scheduled = 0usize;
    let mut makespan = 0.0f64;

    while scheduled < n {
        assert!(!ready.is_empty(), "cycle or disconnected pending tasks");
        // Pick the highest-priority ready task (deterministic tie-break on id).
        let (ri, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                priority[a]
                    .partial_cmp(&priority[b])
                    .unwrap()
                    .then(b.cmp(&a))
            })
            .expect("nonempty");
        let task = ready.swap_remove(ri);

        // Choose the worker with the earliest feasible start: its own free
        // time vs data arrival (predecessor finish + comm if cross-worker).
        let mut best_worker = 0;
        let mut best_start = f64::INFINITY;
        for w in 0..cfg.workers {
            let mut data_ready = 0.0f64;
            for &(pw, pf) in &pred_info[task] {
                let arrive = if pw == w { pf } else { pf + cfg.comm_delay };
                data_ready = data_ready.max(arrive);
            }
            let start = worker_free[w].max(data_ready);
            if start < best_start {
                best_start = start;
                best_worker = w;
            }
        }
        let finish = best_start + costs[task];
        worker_free[best_worker] = finish;
        finish_time[task] = finish;
        placement[task] = best_worker;
        makespan = makespan.max(finish);
        scheduled += 1;

        for &s in &successors[task] {
            pred_info[s].push((best_worker, finish));
            pending[s] -= 1;
            if pending[s] == 0 {
                ready.push(s);
            }
        }
    }

    let total_work: f64 = costs.iter().sum();
    DesReport {
        makespan,
        total_work,
        critical_path,
        utilization: if makespan > 0.0 {
            total_work / (cfg.workers as f64 * makespan)
        } else {
            0.0
        },
        speedup: if makespan > 0.0 {
            total_work / makespan
        } else {
            0.0
        },
        placement,
    }
}

/// Convenience: simulate the same graph over a sweep of worker counts.
pub fn strong_scaling_sweep(
    n: usize,
    edges: &[(usize, usize)],
    costs: &[f64],
    workers: &[usize],
    comm_delay: f64,
) -> Vec<(usize, DesReport)> {
    workers
        .iter()
        .map(|&w| {
            (
                w,
                simulate(
                    n,
                    edges,
                    costs,
                    DesConfig {
                        workers: w,
                        comm_delay,
                    },
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Vec<(usize, usize)>, Vec<f64>) {
        ((0..n - 1).map(|i| (i, i + 1)).collect(), vec![1.0; n])
    }

    #[test]
    fn chain_cannot_be_parallelized() {
        let (edges, costs) = chain(10);
        let rep = simulate(
            10,
            &edges,
            &costs,
            DesConfig {
                workers: 8,
                comm_delay: 0.0,
            },
        );
        assert!((rep.makespan - 10.0).abs() < 1e-12);
        assert!((rep.speedup - 1.0).abs() < 1e-12);
        assert!((rep.critical_path - 10.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_scale_perfectly() {
        let costs = vec![1.0; 16];
        let rep = simulate(
            16,
            &[],
            &costs,
            DesConfig {
                workers: 4,
                comm_delay: 0.0,
            },
        );
        assert!((rep.makespan - 4.0).abs() < 1e-12);
        assert!((rep.speedup - 4.0).abs() < 1e-12);
        assert!((rep.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_never_beats_critical_path_or_work_bound() {
        // Brent's bounds: makespan >= max(cp, work/P).
        let edges = vec![(0, 2), (1, 2), (2, 3), (1, 4)];
        let costs = vec![2.0, 1.0, 3.0, 1.0, 5.0];
        for workers in [1, 2, 3, 8] {
            let rep = simulate(
                5,
                &edges,
                &costs,
                DesConfig {
                    workers,
                    comm_delay: 0.0,
                },
            );
            let bound = rep.critical_path.max(rep.total_work / workers as f64);
            assert!(
                rep.makespan >= bound - 1e-12,
                "workers={workers}: makespan {} < bound {bound}",
                rep.makespan
            );
        }
    }

    #[test]
    fn single_worker_equals_total_work() {
        let edges = vec![(0, 3), (1, 3), (2, 4)];
        let costs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let rep = simulate(
            5,
            &edges,
            &costs,
            DesConfig {
                workers: 1,
                comm_delay: 0.0,
            },
        );
        assert!((rep.makespan - 15.0).abs() < 1e-12);
        assert!((rep.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn communication_delay_hurts_makespan() {
        // Fork-join diamond: comm charged when children land on other workers.
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        let costs = vec![1.0; 4];
        let free = simulate(
            4,
            &edges,
            &costs,
            DesConfig {
                workers: 2,
                comm_delay: 0.0,
            },
        );
        let slow = simulate(
            4,
            &edges,
            &costs,
            DesConfig {
                workers: 2,
                comm_delay: 0.5,
            },
        );
        assert!(slow.makespan >= free.makespan);
    }

    #[test]
    fn scheduler_avoids_needless_communication() {
        // With a huge comm delay, the best schedule keeps the chain on one
        // worker: makespan equals serial time, not serial + comm.
        let (edges, costs) = chain(6);
        let rep = simulate(
            6,
            &edges,
            &costs,
            DesConfig {
                workers: 4,
                comm_delay: 100.0,
            },
        );
        assert!(
            (rep.makespan - 6.0).abs() < 1e-12,
            "makespan {}",
            rep.makespan
        );
    }

    #[test]
    fn sweep_is_monotone_in_workers_without_comm() {
        // Wide fork-join graph.
        let mut edges = Vec::new();
        for i in 1..33 {
            edges.push((0, i));
            edges.push((i, 33));
        }
        let costs = vec![1.0; 34];
        let sweep = strong_scaling_sweep(34, &edges, &costs, &[1, 2, 4, 8, 16], 0.0);
        for w in sweep.windows(2) {
            assert!(w[1].1.makespan <= w[0].1.makespan + 1e-12);
        }
    }

    #[test]
    fn duplicate_edges_tolerated() {
        let edges = vec![(0, 1), (0, 1), (0, 1)];
        let costs = vec![1.0, 1.0];
        let rep = simulate(
            2,
            &edges,
            &costs,
            DesConfig {
                workers: 2,
                comm_delay: 0.0,
            },
        );
        assert!((rep.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn bad_edges_rejected() {
        simulate(
            2,
            &[(1, 1)],
            &[1.0, 1.0],
            DesConfig {
                workers: 1,
                comm_delay: 0.0,
            },
        );
    }
}
