//! Analytic models of collective communication — the cost of
//! synchronization at scale.
//!
//! The keynote's "avoid synchronization" rule is quantitative: a global
//! allreduce costs `O(log P)` network latencies, and a solver that needs
//! two *dependent* allreduces per iteration pays twice per iteration no
//! matter how fast the flops get. These latency/bandwidth (Hockney-style)
//! models price the collectives so experiment E13 can compare classic,
//! pipelined, and communication-avoiding Krylov formulations at scale.

use crate::model::MachineModel;

/// Collective algorithm being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Recursive-doubling allreduce: `log2(P) (α + n β)` for small n.
    AllReduceRecursiveDoubling,
    /// Ring allreduce: `2 (P-1) α / P`-ish latency, bandwidth-optimal
    /// `2 n β (P-1)/P` — wins for large payloads.
    AllReduceRing,
    /// Binomial-tree broadcast: `log2(P) (α + n β)`.
    BroadcastBinomial,
}

/// Predicted time of the collective over `p` ranks with an `n_bytes`
/// payload on machine `m` (α = `net_latency`, β = `1/net_bw`).
pub fn collective_time(c: Collective, m: &MachineModel, p: usize, n_bytes: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let alpha = m.net_latency;
    let beta = 1.0 / m.net_bw;
    let nb = n_bytes as f64;
    let pf = p as f64;
    let log_p = pf.log2().ceil();
    match c {
        Collective::AllReduceRecursiveDoubling => log_p * (alpha + nb * beta),
        Collective::AllReduceRing => 2.0 * (pf - 1.0) * (alpha + (nb / pf) * beta),
        Collective::BroadcastBinomial => log_p * (alpha + nb * beta),
    }
}

/// The cheapest allreduce for this payload/scale (the crossover the
/// MPI implementations also switch on).
pub fn best_allreduce(m: &MachineModel, p: usize, n_bytes: usize) -> (Collective, f64) {
    let rd = collective_time(Collective::AllReduceRecursiveDoubling, m, p, n_bytes);
    let ring = collective_time(Collective::AllReduceRing, m, p, n_bytes);
    if rd <= ring {
        (Collective::AllReduceRecursiveDoubling, rd)
    } else {
        (Collective::AllReduceRing, ring)
    }
}

/// Per-iteration time model of a distributed Krylov iteration: local SpMV
/// work overlapped (or not) with the iteration's reduction phases.
#[derive(Debug, Clone, Copy)]
pub struct KrylovIterModel {
    /// Seconds of local SpMV + vector work per iteration per rank.
    pub local_compute: f64,
    /// Number of *dependent* global reduction phases per iteration.
    pub reduction_phases: usize,
    /// Whether the formulation overlaps its reduction with the SpMV
    /// (pipelined variants).
    pub overlapped: bool,
    /// Reductions are amortized over this many iterations (s-step methods
    /// reduce once per `s` iterations; 1 = every iteration).
    pub amortize: usize,
}

impl KrylovIterModel {
    /// Classic CG: two dependent 8-byte allreduces, nothing overlapped.
    pub fn classic_cg(local_compute: f64) -> Self {
        KrylovIterModel {
            local_compute,
            reduction_phases: 2,
            overlapped: false,
            amortize: 1,
        }
    }

    /// Pipelined CG: one merged reduction, overlapped with the SpMV.
    pub fn pipelined_cg(local_compute: f64) -> Self {
        KrylovIterModel {
            local_compute,
            reduction_phases: 1,
            overlapped: true,
            amortize: 1,
        }
    }

    /// s-step CG: one (block) reduction every `s` iterations, not
    /// overlapped; local work grows slightly (matrix-powers basis and the
    /// extra block orthogonalization flops).
    pub fn s_step_cg(local_compute: f64, s: usize) -> Self {
        KrylovIterModel {
            local_compute: local_compute * 1.15,
            reduction_phases: 1,
            overlapped: false,
            amortize: s.max(1),
        }
    }

    /// Predicted seconds per iteration over `p` ranks on machine `m`.
    pub fn time_per_iteration(&self, m: &MachineModel, p: usize) -> f64 {
        let (_, reduce) = best_allreduce(m, p, 16); // two f64 scalars
        let total_reduce = self.reduction_phases as f64 * reduce / self.amortize as f64;
        if self.overlapped {
            self.local_compute.max(total_reduce)
        } else {
            self.local_compute + total_reduce
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_cost_nothing_on_one_rank() {
        let m = MachineModel::node_2016();
        for c in [
            Collective::AllReduceRecursiveDoubling,
            Collective::AllReduceRing,
            Collective::BroadcastBinomial,
        ] {
            assert_eq!(collective_time(c, &m, 1, 1024), 0.0);
        }
    }

    #[test]
    fn recursive_doubling_wins_small_payloads_ring_wins_large() {
        let m = MachineModel::node_2016();
        let p = 1024;
        let (small_winner, _) = best_allreduce(&m, p, 16);
        assert_eq!(small_winner, Collective::AllReduceRecursiveDoubling);
        let (large_winner, _) = best_allreduce(&m, p, 64 * 1024 * 1024);
        assert_eq!(large_winner, Collective::AllReduceRing);
    }

    #[test]
    fn allreduce_latency_grows_logarithmically() {
        let m = MachineModel::node_2016();
        let t1k = collective_time(Collective::AllReduceRecursiveDoubling, &m, 1024, 16);
        let t1m = collective_time(Collective::AllReduceRecursiveDoubling, &m, 1024 * 1024, 16);
        assert!((t1m / t1k - 2.0).abs() < 0.01, "log scaling: {}", t1m / t1k);
    }

    #[test]
    fn pipelined_cg_beats_classic_at_scale() {
        let m = MachineModel::node_2016();
        let local = 50e-6; // 50 us of local work per iteration
        let classic = KrylovIterModel::classic_cg(local);
        let piped = KrylovIterModel::pipelined_cg(local);
        // At small scale the difference is negligible.
        let small = classic.time_per_iteration(&m, 4) / piped.time_per_iteration(&m, 4);
        // At large scale the two dependent reductions dominate.
        let large = classic.time_per_iteration(&m, 1 << 20) / piped.time_per_iteration(&m, 1 << 20);
        assert!(
            large > small,
            "advantage must grow with scale: {small} -> {large}"
        );
        assert!(large > 1.5, "pipelined should win big at 1M ranks: {large}");
    }

    #[test]
    fn s_step_amortizes_reductions() {
        let m = MachineModel::node_2016();
        let local = 20e-6;
        let s4 = KrylovIterModel::s_step_cg(local, 4);
        let s1 = KrylovIterModel::s_step_cg(local, 1);
        let p = 1 << 18;
        assert!(
            s4.time_per_iteration(&m, p) < s1.time_per_iteration(&m, p),
            "s=4 must amortize the reduction"
        );
    }
}
