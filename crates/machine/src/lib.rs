//! # xsc-machine — modeled machines
//!
//! The keynote's quantitative claims (energy per operation, the widening
//! peak-vs-achieved gap across machine generations) concern hardware we do
//! not have. Per the reproduction's substitution rule, this crate provides
//! the closest synthetic equivalent:
//!
//! * [`model`] — an analytic machine model (flops, bandwidths, latencies,
//!   energy per operation) with presets for a 2008 petascale node, a
//!   2016-era node, and a projected exascale node, plus roofline-style
//!   predictions of time, energy, and %-of-peak for the repository's
//!   algorithms (experiments E05, E11);
//! * [`collectives`] — latency/bandwidth models of allreduce/broadcast
//!   algorithms, pricing the synchronization that pipelined and s-step
//!   Krylov methods exist to avoid (experiment E13);
//! * [`des`] — a discrete-event simulator that replays an `xsc-runtime`
//!   task DAG on `P` modeled workers with communication delays, predicting
//!   makespan and utilization at scales the host machine cannot run
//!   (experiment E02's extrapolation, E11).
//!
//! Measured counters from `xsc-metrics` can be placed on a model's roofline
//! via [`MachineModel::envelope`]:
//!
//! ```
//! use xsc_machine::MachineModel;
//! use xsc_metrics::{roofline, KernelCounters};
//!
//! let env = MachineModel::node_2016().envelope();
//! let spmv = KernelCounters {
//!     flops: 5_400, bytes_read: 51_000, bytes_written: 800,
//!     invocations: 1, ns: 2_000,
//! };
//! let point = roofline::analyze("spmv", &spmv, &env);
//! assert_eq!(point.verdict, xsc_metrics::BoundVerdict::Bandwidth);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-coupled updates across multiple slices are the clearest form for these kernels

pub mod collectives;
pub mod comm_optimal;
pub mod des;
pub mod model;

pub use collectives::{best_allreduce, collective_time, Collective, KrylovIterModel};
pub use des::{simulate, DesConfig, DesReport};
pub use model::{EnergyModel, KernelProfile, MachineModel, Prediction};
