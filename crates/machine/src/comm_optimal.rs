//! Communication lower bounds and communication-optimal matmul variants.
//!
//! The theory side of "the rules have changed": for matrix multiplication
//! on `P` processors with `M` words of memory each, *any* schedule must
//! move `Ω(n³ / (P·√M))` words per processor (Irony–Toledo–Tiskin / the
//! Ballard–Demmel–Holtz–Schwartz program the keynote cites). Classic 2-D
//! SUMMA sits a factor `√c` above the bound that 2.5-D algorithms reach by
//! replicating the matrices `c` times. These closed forms price that
//! trade for the experiment suite.

use crate::model::MachineModel;

/// Per-processor communication volume (in matrix *words*) of an `n × n`
/// matmul on `p` processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulAlgorithm {
    /// Classic 2-D block SUMMA / Cannon: `O(n² / √p)` words.
    Summa2d,
    /// 2.5-D with replication factor `c` (extra memory `c·n²/p` per rank):
    /// `O(n² / √(c·p))` words.
    TwoPointFiveD {
        /// Replication factor (1 = plain 2-D, p^(1/3) = full 3-D).
        c: usize,
    },
}

/// Per-processor words moved by the algorithm.
pub fn matmul_comm_words(alg: MatmulAlgorithm, n: usize, p: usize) -> f64 {
    let nf = n as f64;
    let pf = p as f64;
    match alg {
        MatmulAlgorithm::Summa2d => 2.0 * nf * nf / pf.sqrt(),
        MatmulAlgorithm::TwoPointFiveD { c } => {
            let cf = (c.max(1)) as f64;
            2.0 * nf * nf / (cf * pf).sqrt()
        }
    }
}

/// Number of messages (latency term) per processor.
pub fn matmul_messages(alg: MatmulAlgorithm, p: usize) -> f64 {
    let pf = p as f64;
    match alg {
        MatmulAlgorithm::Summa2d => pf.sqrt(),
        MatmulAlgorithm::TwoPointFiveD { c } => {
            let cf = (c.max(1)) as f64;
            (pf / cf.powi(3)).sqrt().max(1.0) + cf.log2().max(0.0)
        }
    }
}

/// The memory-independent per-processor bandwidth lower bound for matmul:
/// `n² / p^(2/3)` words (attained by 3-D algorithms).
pub fn matmul_lower_bound_words(n: usize, p: usize) -> f64 {
    let nf = n as f64;
    (nf * nf) / (p as f64).powf(2.0 / 3.0)
}

/// Modeled communication time of the matmul on machine `m` (per-processor
/// volume over the injection bandwidth plus message latencies).
pub fn matmul_comm_time(alg: MatmulAlgorithm, m: &MachineModel, n: usize, p: usize) -> f64 {
    let words = matmul_comm_words(alg, n, p);
    let msgs = matmul_messages(alg, p);
    words * 8.0 / m.net_bw + msgs * m.net_latency
}

/// Largest replication factor that fits in `mem_words` of per-rank memory
/// (`c ≤ p^(1/3)` is the useful ceiling — beyond it, 2.5-D degenerates
/// to 3-D).
pub fn max_replication(n: usize, p: usize, mem_words: usize) -> usize {
    let per_copy = 3.0 * (n as f64) * (n as f64) / p as f64; // A, B, C blocks
    let by_memory = (mem_words as f64 / per_copy).floor().max(1.0) as usize;
    // Exact integer cube root (powf(1/3) rounds below perfect cubes).
    let mut by_algorithm = (p as f64).cbrt().round().max(1.0) as usize;
    while by_algorithm > 1 && by_algorithm.pow(3) > p {
        by_algorithm -= 1;
    }
    by_memory.min(by_algorithm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_reduces_communication() {
        let n = 10_000;
        let p = 4096;
        let w2d = matmul_comm_words(MatmulAlgorithm::Summa2d, n, p);
        let w25 = matmul_comm_words(MatmulAlgorithm::TwoPointFiveD { c: 4 }, n, p);
        assert!(
            (w2d / w25 - 2.0).abs() < 1e-9,
            "c=4 halves the words: {}",
            w2d / w25
        );
    }

    #[test]
    fn c_equals_one_is_plain_2d() {
        let n = 1000;
        let p = 64;
        assert_eq!(
            matmul_comm_words(MatmulAlgorithm::Summa2d, n, p),
            matmul_comm_words(MatmulAlgorithm::TwoPointFiveD { c: 1 }, n, p)
        );
    }

    #[test]
    fn nothing_beats_the_lower_bound_at_max_replication() {
        let n = 10_000;
        let p = 512; // p^(1/3) = 8
        let bound = matmul_lower_bound_words(n, p);
        let w3d = matmul_comm_words(MatmulAlgorithm::TwoPointFiveD { c: 8 }, n, p);
        // Full replication attains the bound within its constant factor.
        assert!(w3d >= bound * 0.5, "w3d {w3d} vs bound {bound}");
        assert!(w3d <= bound * 4.0);
        // And 2-D sits a factor p^(1/6) above.
        let w2d = matmul_comm_words(MatmulAlgorithm::Summa2d, n, p);
        assert!(w2d / w3d > 2.0);
    }

    #[test]
    fn max_replication_respects_memory_and_cube_root() {
        // Plenty of memory: capped by p^(1/3).
        assert_eq!(max_replication(1000, 512, usize::MAX / 2), 8);
        // Tight memory: capped by what fits (ceil so 2 copies truly fit).
        let per_copy = (3.0 * 1000.0 * 1000.0 / 512.0f64).ceil() as usize;
        assert_eq!(max_replication(1000, 512, 2 * per_copy), 2);
        // Degenerate: at least 1.
        assert_eq!(max_replication(1000, 512, 1), 1);
    }

    #[test]
    fn comm_time_improves_with_replication_on_real_model() {
        let m = MachineModel::node_2016();
        let n = 20_000;
        let p = 4096;
        let t2d = matmul_comm_time(MatmulAlgorithm::Summa2d, &m, n, p);
        let t25 = matmul_comm_time(MatmulAlgorithm::TwoPointFiveD { c: 8 }, &m, n, p);
        assert!(t25 < t2d, "2.5D {t25} should beat 2D {t2d}");
    }
}
