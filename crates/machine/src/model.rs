//! Analytic machine and energy models.
//!
//! Parameter values follow the orders of magnitude in Dongarra's 2016 deck
//! (and the Exascale Computing Study report it draws on): a double-
//! precision flop costs picojoules, while moving its operands from DRAM
//! costs *nanojoules* — two to three orders of magnitude more — and the gap
//! widens with each generation. That inversion is the keynote's core
//! "rules have changed" claim, and everything here exists to expose it
//! quantitatively.

/// Energy cost per elementary operation, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One double-precision fused multiply-add counted as two flops.
    pub pj_per_flop: f64,
    /// Reading one byte from DRAM.
    pub pj_per_byte_dram: f64,
    /// Reading one byte from on-chip cache (for the table's contrast row).
    pub pj_per_byte_cache: f64,
    /// Moving one byte across the network fabric.
    pub pj_per_byte_network: f64,
}

/// A node-level machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Display name of the generation/preset.
    pub name: &'static str,
    /// Cores per node.
    pub cores: usize,
    /// Peak double-precision flop/s per core.
    pub flops_per_core: f64,
    /// Sustained DRAM bandwidth per node, bytes/s.
    pub mem_bw: f64,
    /// Network injection bandwidth per node, bytes/s.
    pub net_bw: f64,
    /// Network latency per message, seconds.
    pub net_latency: f64,
    /// Energy costs.
    pub energy: EnergyModel,
}

impl MachineModel {
    /// Peak node flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.flops_per_core
    }

    /// Machine balance in flops per byte of DRAM bandwidth — the arithmetic
    /// intensity a kernel must exceed to be compute-bound. The keynote's
    /// point: this threshold grows every generation.
    pub fn balance(&self) -> f64 {
        self.peak_flops() / self.mem_bw
    }

    /// A 2008-era petascale node (Roadrunner/Jaguar class).
    pub fn petascale_2008() -> Self {
        MachineModel {
            name: "petascale-2008",
            cores: 8,
            flops_per_core: 10e9, // ~10 Gflop/s per core
            mem_bw: 25e9,
            net_bw: 2e9,
            net_latency: 2e-6,
            energy: EnergyModel {
                pj_per_flop: 100.0,
                pj_per_byte_dram: 300.0,
                pj_per_byte_cache: 30.0,
                pj_per_byte_network: 1000.0,
            },
        }
    }

    /// A 2016-era node (Haswell/KNL class, the keynote's present day).
    pub fn node_2016() -> Self {
        MachineModel {
            name: "node-2016",
            cores: 32,
            flops_per_core: 40e9, // wide SIMD + FMA
            mem_bw: 100e9,
            net_bw: 12e9,
            net_latency: 1e-6,
            energy: EnergyModel {
                pj_per_flop: 10.0,
                pj_per_byte_dram: 150.0,
                pj_per_byte_cache: 8.0,
                pj_per_byte_network: 500.0,
            },
        }
    }

    /// The keynote's projected exascale node (~2020s): flops nearly free,
    /// bandwidth growth lags by an order of magnitude.
    pub fn exascale_projection() -> Self {
        MachineModel {
            name: "exascale-projection",
            cores: 1024,
            flops_per_core: 40e9,
            mem_bw: 1.6e12, // HBM-class, but 400x fewer bytes/flop than 2008
            net_bw: 50e9,
            net_latency: 0.5e-6,
            energy: EnergyModel {
                pj_per_flop: 1.5,
                pj_per_byte_dram: 100.0,
                pj_per_byte_cache: 3.0,
                pj_per_byte_network: 250.0,
            },
        }
    }

    /// The three generations in chronological order.
    pub fn generations() -> Vec<MachineModel> {
        vec![
            MachineModel::petascale_2008(),
            MachineModel::node_2016(),
            MachineModel::exascale_projection(),
        ]
    }

    /// This machine as an `xsc-metrics` roofline envelope (peak Gflop/s
    /// and DRAM GB/s), so measured counters can be placed on the same
    /// roofline the analytic predictions use.
    ///
    /// ```
    /// let m = xsc_machine::MachineModel::node_2016();
    /// let env = m.envelope();
    /// assert!((env.balance() - m.balance()).abs() < 1e-12);
    /// ```
    pub fn envelope(&self) -> xsc_metrics::MachineEnvelope {
        xsc_metrics::MachineEnvelope::new(self.name, self.peak_flops() / 1e9, self.mem_bw / 1e9)
    }

    /// Roofline-style prediction for a kernel profile on this machine.
    pub fn predict(&self, k: &KernelProfile) -> Prediction {
        let t_flops = k.flops / self.peak_flops();
        let t_mem = k.dram_bytes / self.mem_bw;
        let t_net = k.net_bytes / self.net_bw + k.messages * self.net_latency;
        // Compute and memory overlap (roofline); network serializes.
        let seconds = t_flops.max(t_mem) + t_net;
        let achieved = if seconds > 0.0 {
            k.flops / seconds
        } else {
            0.0
        };
        let energy_j = (k.flops * self.energy.pj_per_flop
            + k.dram_bytes * self.energy.pj_per_byte_dram
            + k.net_bytes * self.energy.pj_per_byte_network)
            * 1e-12;
        Prediction {
            seconds,
            achieved_flops: achieved,
            fraction_of_peak: achieved / self.peak_flops(),
            energy_joules: energy_j,
            bound: if t_mem > t_flops {
                Bound::Memory
            } else {
                Bound::Compute
            },
        }
    }
}

/// What limits a kernel on a given machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Flop-limited (HPL-like).
    Compute,
    /// Bandwidth-limited (HPCG-like).
    Memory,
}

/// Work/traffic profile of a kernel or full benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct KernelProfile {
    /// Total floating-point operations.
    pub flops: f64,
    /// Total bytes moved to/from DRAM.
    pub dram_bytes: f64,
    /// Total bytes crossing the network.
    pub net_bytes: f64,
    /// Number of network messages (latency term).
    pub messages: f64,
}

impl KernelProfile {
    /// HPL (dense LU) at size `n` with panel width `nb`: `2n³/3` flops; the
    /// trailing matrix is re-streamed once per panel, so DRAM traffic is
    /// about `8 · n³ / nb` bytes (the blocked-LU traffic lower bound shape).
    pub fn hpl(n: usize, nb: usize) -> Self {
        let nf = n as f64;
        KernelProfile {
            flops: 2.0 * nf * nf * nf / 3.0,
            dram_bytes: 8.0 * nf * nf * nf / nb as f64 / 3.0,
            net_bytes: 0.0,
            messages: 0.0,
        }
    }

    /// HPCG at `n` rows with `nnz` nonzeros for `iters` iterations: each
    /// iteration streams the matrix several times (~12 bytes/nonzero in
    /// CSR — an 8-byte value plus a 4-byte index — over SpMV and the MG
    /// smoother sweeps) and performs ~`10·nnz` flops.
    pub fn hpcg(n: usize, nnz: usize, iters: usize) -> Self {
        let it = iters as f64;
        let nnzf = nnz as f64;
        let nf = n as f64;
        KernelProfile {
            // SpMV (2) + MG pre/post smooth on the fine grid (4+4) ≈ 10·nnz,
            // coarse grids add ~15 %.
            flops: it * 1.15 * 10.0 * nnzf,
            // Matrix streamed ~5x per iteration (spmv + 4 GS sweeps),
            // vectors ~10x.
            dram_bytes: it * (5.0 * 12.0 * nnzf + 10.0 * 8.0 * nf),
            net_bytes: 0.0,
            messages: 0.0,
        }
    }

    /// Distributed TSQR of an `m × n` tall-skinny matrix over `p` nodes:
    /// local flops plus `log2(p)` rounds of `n²`-word messages.
    pub fn tsqr(m: usize, n: usize, p: usize) -> Self {
        let (mf, nf) = (m as f64, n as f64);
        let levels = (p as f64).log2().ceil().max(0.0);
        KernelProfile {
            flops: 2.0 * mf * nf * nf,
            dram_bytes: 8.0 * mf * nf,
            net_bytes: levels * 8.0 * nf * nf,
            messages: levels,
        }
    }

    /// Flat distributed Householder QR of the same matrix: the panel owner
    /// receives contributions from every node in every column step —
    /// `n` rounds of `m·8/p`-ish traffic; modeled as `m·n` words total.
    pub fn flat_qr(m: usize, n: usize, p: usize) -> Self {
        let (mf, nf) = (m as f64, n as f64);
        KernelProfile {
            flops: 2.0 * mf * nf * nf,
            dram_bytes: 8.0 * mf * nf,
            net_bytes: 8.0 * mf * nf / (p as f64).max(1.0),
            messages: nf * (p as f64).log2().ceil().max(1.0),
        }
    }
}

/// Model output for one kernel on one machine.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Predicted wall-clock seconds.
    pub seconds: f64,
    /// Achieved flop/s.
    pub achieved_flops: f64,
    /// Achieved / peak.
    pub fraction_of_peak: f64,
    /// Predicted energy in joules.
    pub energy_joules: f64,
    /// Limiting resource.
    pub bound: Bound,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_hierarchy_matches_keynote_table() {
        // The famous table: flop << cache byte << DRAM byte << network byte.
        for m in MachineModel::generations() {
            assert!(m.energy.pj_per_flop < m.energy.pj_per_byte_dram);
            assert!(m.energy.pj_per_byte_cache < m.energy.pj_per_byte_dram);
            assert!(m.energy.pj_per_byte_dram <= m.energy.pj_per_byte_network);
        }
    }

    #[test]
    fn flops_get_cheaper_faster_than_bytes() {
        let gens = MachineModel::generations();
        for w in gens.windows(2) {
            let flop_ratio = w[0].energy.pj_per_flop / w[1].energy.pj_per_flop;
            let byte_ratio = w[0].energy.pj_per_byte_dram / w[1].energy.pj_per_byte_dram;
            assert!(
                flop_ratio > byte_ratio,
                "{} -> {}: flops must cheapen faster",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn machine_balance_worsens_each_generation() {
        let gens = MachineModel::generations();
        for w in gens.windows(2) {
            assert!(
                w[1].balance() > w[0].balance(),
                "{} balance {} should exceed {} balance {}",
                w[1].name,
                w[1].balance(),
                w[0].name,
                w[0].balance()
            );
        }
    }

    #[test]
    fn hpl_is_compute_bound_hpcg_memory_bound() {
        let m = MachineModel::node_2016();
        let hpl = m.predict(&KernelProfile::hpl(50_000, 256));
        assert_eq!(hpl.bound, Bound::Compute);
        assert!(
            hpl.fraction_of_peak > 0.5,
            "HPL %peak {}",
            hpl.fraction_of_peak
        );

        let n = 104usize.pow(3);
        let hpcg = m.predict(&KernelProfile::hpcg(n, 27 * n, 50));
        assert_eq!(hpcg.bound, Bound::Memory);
        assert!(
            hpcg.fraction_of_peak < 0.05,
            "HPCG %peak {}",
            hpcg.fraction_of_peak
        );
        // The headline gap: at least an order of magnitude.
        assert!(hpl.fraction_of_peak / hpcg.fraction_of_peak > 10.0);
    }

    #[test]
    fn hpcg_gap_widens_towards_exascale() {
        let n = 104usize.pow(3);
        let frac = |m: &MachineModel| {
            m.predict(&KernelProfile::hpcg(n, 27 * n, 50))
                .fraction_of_peak
        };
        let gens = MachineModel::generations();
        assert!(
            frac(&gens[2]) < frac(&gens[1]) && frac(&gens[1]) < frac(&gens[0]),
            "HPCG fraction of peak must fall each generation: {} {} {}",
            frac(&gens[0]),
            frac(&gens[1]),
            frac(&gens[2])
        );
    }

    #[test]
    fn tsqr_beats_flat_qr_on_latency_bound_network() {
        let m = MachineModel::node_2016();
        let tsqr = m.predict(&KernelProfile::tsqr(1_000_000, 32, 1024));
        let flat = m.predict(&KernelProfile::flat_qr(1_000_000, 32, 1024));
        assert!(
            tsqr.seconds < flat.seconds,
            "TSQR {} should beat flat QR {}",
            tsqr.seconds,
            flat.seconds
        );
    }

    #[test]
    fn energy_dominated_by_movement_for_memory_bound_kernels() {
        let m = MachineModel::exascale_projection();
        let n = 104usize.pow(3);
        let k = KernelProfile::hpcg(n, 27 * n, 50);
        let flop_energy = k.flops * m.energy.pj_per_flop * 1e-12;
        let pred = m.predict(&k);
        assert!(
            pred.energy_joules > 3.0 * flop_energy,
            "movement must dominate: total {} vs flops {}",
            pred.energy_joules,
            flop_energy
        );
    }

    #[test]
    fn prediction_time_is_positive_and_consistent() {
        let m = MachineModel::petascale_2008();
        let k = KernelProfile::hpl(10_000, 128);
        let p = m.predict(&k);
        assert!(p.seconds > 0.0);
        assert!((p.achieved_flops * p.seconds - k.flops).abs() / k.flops < 1e-9);
        assert!(p.fraction_of_peak <= 1.0);
    }
}
