//! Flop-count formulas used for Gflop/s accounting.
//!
//! These are the standard LAPACK working-note formulas; HPL and HPCG rates
//! in this repository are computed with exactly these counts, so the
//! %-of-peak numbers are comparable with the published benchmarks'
//! methodology.

/// Flops of `C <- A(m×k) * B(k×n) + C`: `2 m n k`.
pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Flops of a triangular solve with `n × n` triangle and `m` right-hand
/// sides: `m n²`.
pub fn trsm(n: usize, m: usize) -> u64 {
    m as u64 * n as u64 * n as u64
}

/// Flops of a symmetric rank-k update `C(n×n) += A(n×k) Aᵀ`: `n (n+1) k`.
pub fn syrk(n: usize, k: usize) -> u64 {
    n as u64 * (n as u64 + 1) * k as u64
}

/// Flops of Cholesky factorization: `n³/3 + n²/2 + n/6`.
pub fn cholesky(n: usize) -> u64 {
    let n = n as u64;
    (n * n * n) / 3 + (n * n) / 2 + n / 6
}

/// Flops of LU factorization: `2n³/3 - n²/2 - n/6` (rounded).
pub fn lu(n: usize) -> u64 {
    let n = n as u64;
    (2 * n * n * n) / 3 - (n * n) / 2
}

/// Flops of the full HPL benchmark (factor + solve): `2n³/3 + 3n²/2`.
pub fn hpl(n: usize) -> u64 {
    let n = n as u64;
    (2 * n * n * n) / 3 + (3 * n * n) / 2
}

/// Flops of QR factorization of an `m × n` matrix (`m >= n`):
/// `2 n² (m - n/3)`.
pub fn qr(m: usize, n: usize) -> u64 {
    let (m, n) = (m as u64, n as u64);
    2 * n * n * m - (2 * n * n * n) / 3
}

/// Flops of one sparse matrix-vector product with `nnz` nonzeros: `2 nnz`.
pub fn spmv(nnz: usize) -> u64 {
    2 * nnz as u64
}

/// Gflop/s from a flop count and elapsed seconds.
pub fn gflops(flops: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    crate::cast::count_f64(flops) / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_terms_match() {
        let n = 1000usize;
        let nf = n as f64;
        assert!((cholesky(n) as f64 - nf.powi(3) / 3.0).abs() / nf.powi(3) < 0.01);
        assert!((lu(n) as f64 - 2.0 * nf.powi(3) / 3.0).abs() / nf.powi(3) < 0.01);
        assert!((hpl(n) as f64 - 2.0 * nf.powi(3) / 3.0).abs() / nf.powi(3) < 0.01);
        assert!((qr(n, n) as f64 - 4.0 * nf.powi(3) / 3.0).abs() / nf.powi(3) < 0.01);
    }

    #[test]
    fn gemm_count() {
        assert_eq!(gemm(2, 3, 4), 48);
        assert_eq!(spmv(100), 200);
        assert_eq!(trsm(4, 2), 32);
        assert_eq!(syrk(3, 2), 24);
    }

    #[test]
    fn gflops_helper() {
        assert_eq!(gflops(2_000_000_000, 1.0), 2.0);
        assert_eq!(gflops(100, 0.0), 0.0);
    }

    #[test]
    fn hpl_dominates_lu() {
        // HPL includes the solve, so it must exceed plain LU.
        assert!(hpl(500) > lu(500));
    }
}
