//! One-norm condition estimation (Hager's method, as in LAPACK `xLACON`).
//!
//! Mixed-precision refinement converges iff `κ(A) · u_low ≲ 1`, so a cheap
//! condition estimate is the dispatcher between classic IR, GMRES-IR, and
//! a full-precision fallback. Hager's estimator finds a lower bound on
//! `‖A⁻¹‖₁` with a handful of solves against the already-computed LU
//! factors — `O(n²)` against the factorization's `O(n³)`.

use crate::factor::{getrf_solve, getrf_solve_transpose};
use crate::matrix::Matrix;
use crate::norms;
use crate::scalar::Scalar;

/// Estimates `‖A⁻¹‖₁` from an LU factorization (`lu`, `piv` from
/// `getrf_*`). Returns a lower bound that is almost always within a small
/// factor of the truth.
pub fn inverse_one_norm_estimate<T: Scalar>(lu: &Matrix<T>, piv: &[usize]) -> f64 {
    let n = lu.rows();
    assert!(lu.is_square(), "need a square factorization");
    if n == 0 {
        return 0.0;
    }
    // Start from the uniform vector.
    let mut x: Vec<T> = vec![T::from_f64(1.0 / crate::cast::count_f64(n as u64)); n];
    let mut estimate = 0.0f64;
    for _iter in 0..5 {
        // y = A^{-1} x.
        let mut y = x.clone();
        getrf_solve(lu, piv, &mut y);
        let est = y.iter().map(|v| v.abs().to_f64()).sum::<f64>();
        // ξ = sign(y); z = A^{-T} ξ.
        let mut z: Vec<T> = y
            .iter()
            .map(|v| {
                if v.to_f64() >= 0.0 {
                    T::one()
                } else {
                    -T::one()
                }
            })
            .collect();
        getrf_solve_transpose(lu, piv, &mut z);
        // j = argmax |z_j|.
        let (j, zmax) = z
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs().to_f64()))
            .fold((0, 0.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
        let ztx: f64 = z
            .iter()
            .zip(x.iter())
            .fold(0.0, |acc, (a, b)| acc + a.to_f64() * b.to_f64());
        estimate = estimate.max(est);
        if zmax <= ztx {
            break; // converged: the current vector is (locally) optimal
        }
        // Next probe: the elementary vector at the maximizing index.
        x = vec![T::zero(); n];
        x[j] = T::one();
    }
    estimate
}

/// Estimates the one-norm condition number `κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁` from the
/// original matrix and its LU factorization.
pub fn condest<T: Scalar>(a: &Matrix<T>, lu: &Matrix<T>, piv: &[usize]) -> f64 {
    norms::one_norm(a) * inverse_one_norm_estimate(lu, piv)
}

/// `true` if iterative refinement at unit roundoff `u_low` can be expected
/// to converge for this condition estimate (`κ · u_low < threshold`,
/// threshold 0.1 leaves the customary safety margin).
pub fn ir_should_converge(cond_estimate: f64, u_low: f64) -> bool {
    cond_estimate * u_low < 0.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor;
    use crate::gen;

    fn factorize(a: &Matrix<f64>) -> (Matrix<f64>, Vec<usize>) {
        let mut f = a.clone();
        let piv = factor::getrf_blocked(&mut f, 16).unwrap();
        (f, piv)
    }

    #[test]
    fn identity_has_condition_one() {
        let a = Matrix::<f64>::identity(20);
        let (lu, piv) = factorize(&a);
        let k = condest(&a, &lu, &piv);
        assert!((k - 1.0).abs() < 1e-12, "κ(I) = {k}");
    }

    #[test]
    fn diagonal_matrix_estimate_is_exact() {
        // diag(1, 10, 100): ||A||_1 = 100, ||A^{-1}||_1 = 1 => κ = 100.
        let mut a = Matrix::<f64>::zeros(3, 3);
        a.set(0, 0, 1.0);
        a.set(1, 1, 10.0);
        a.set(2, 2, 100.0);
        let (lu, piv) = factorize(&a);
        let k = condest(&a, &lu, &piv);
        assert!((k - 100.0).abs() < 1e-9, "κ = {k}");
    }

    #[test]
    fn estimate_tracks_constructed_condition_number() {
        for target in [1e2, 1e5, 1e8] {
            let a = gen::ill_conditioned_spd::<f64>(48, target, 1);
            let (lu, piv) = factorize(&a);
            let k = condest(&a, &lu, &piv);
            // 2-norm condition = target; 1-norm within n of it. Hager's
            // estimate is a lower bound up to a modest factor.
            assert!(
                k > target / 100.0 && k < target * 100.0,
                "target {target:.0e}, estimate {k:.3e}"
            );
        }
    }

    #[test]
    fn estimate_is_a_lower_bound_for_small_cases() {
        // Exact ||A^{-1}||_1 by explicit inversion (solve for each e_j).
        let a = gen::random_matrix::<f64>(12, 12, 3);
        let (lu, piv) = factorize(&a);
        let mut exact = 0.0f64;
        for j in 0..12 {
            let mut e = vec![0.0; 12];
            e[j] = 1.0;
            factor::getrf_solve(&lu, &piv, &mut e);
            exact = exact.max(e.iter().map(|v| v.abs()).sum());
        }
        let est = inverse_one_norm_estimate(&lu, &piv);
        assert!(
            est <= exact * (1.0 + 1e-10),
            "estimate {est} exceeds exact {exact}"
        );
        assert!(
            est >= exact / 10.0,
            "estimate {est} far below exact {exact}"
        );
    }

    #[test]
    fn transpose_solve_is_consistent() {
        let n = 24;
        let a = gen::random_matrix::<f64>(n, n, 4);
        let (lu, piv) = factorize(&a);
        // Solve A^T x = b and verify against the residual on A^T.
        let at = a.transpose();
        let b = gen::random_vector::<f64>(n, 5);
        let mut x = b.clone();
        factor::getrf_solve_transpose(&lu, &piv, &mut x);
        assert!(norms::relative_residual(&at, &x, &b) < 1e-10);
    }

    #[test]
    fn ir_dispatcher_thresholds() {
        assert!(ir_should_converge(1e3, f32::EPSILON as f64));
        assert!(!ir_should_converge(1e8, f32::EPSILON as f64));
        assert!(!ir_should_converge(1e3, 1e-3)); // fp16-ish u on κ=1e3: 1.0 > 0.1
    }
}
