//! Householder QR kernels — the PLASMA-style tile kernel set
//! (`geqrt` / `gemqrt` / `tpqrt` / `tpmqrt`) plus full-matrix drivers.
//!
//! `tpqrt`/`tpmqrt` (QR of a triangle stacked on a dense block) are the
//! building blocks of the communication-avoiding TSQR and of the tiled QR
//! factorization in `xsc-dense`. Reflectors are stored as LAPACK does —
//! `v[0] = 1` implicit, tail below the diagonal — with an explicit `tau`
//! vector instead of the compact-WY `T` factor (simpler, and tile sizes keep
//! the flop difference small).

use crate::gemm::Transpose;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::trsm::{trsv, Diag, Uplo};

/// Computes a Householder reflector for the vector `(alpha, x)`:
/// returns `(beta, tau)` and overwrites `x` with the reflector tail `v[1..]`
/// (with `v[0] = 1` implicit), such that
/// `(I - tau * v * v^T) * (alpha, x) = (beta, 0)`.
pub fn reflector<T: Scalar>(alpha: T, x: &mut [T]) -> (T, T) {
    let sigma: f64 = x.iter().fold(0.0, |acc, &v| acc + v.to_f64() * v.to_f64());
    if sigma == 0.0 {
        // Already in triangular form; H = I.
        return (alpha, T::zero());
    }
    let a = alpha.to_f64();
    let norm = (a * a + sigma).sqrt();
    let beta = if a >= 0.0 { -norm } else { norm };
    let tau = (beta - a) / beta;
    let scale = 1.0 / (a - beta);
    for v in x.iter_mut() {
        *v = T::from_f64(v.to_f64() * scale);
    }
    (T::from_f64(beta), T::from_f64(tau))
}

/// QR factorization of an `m × n` tile (`m >= n`): overwrites `a` with `R`
/// on and above the diagonal and the reflector tails below it. Returns the
/// `tau` scalars, one per column.
pub fn geqrf<T: Scalar>(a: &mut Matrix<T>) -> Vec<T> {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "geqrf requires m >= n (got {m} x {n})");
    let mut taus = Vec::with_capacity(n);
    for j in 0..n {
        // Build the reflector from column j, rows j..m.
        let alpha = a.get(j, j);
        let mut tail: Vec<T> = (j + 1..m).map(|i| a.get(i, j)).collect();
        let (beta, tau) = reflector(alpha, &mut tail);
        a.set(j, j, beta);
        for (t, i) in tail.iter().zip(j + 1..m) {
            a.set(i, j, *t);
        }
        taus.push(tau);
        if tau == T::zero() {
            continue;
        }
        // Apply H = I - tau v v^T to the trailing columns.
        for c in j + 1..n {
            let mut w = a.get(j, c);
            for (t, i) in tail.iter().zip(j + 1..m) {
                w = t.mul_add(a.get(i, c), w);
            }
            let tw = tau * w;
            let v = a.get(j, c);
            a.set(j, c, v - tw);
            for (t, i) in tail.iter().zip(j + 1..m) {
                let v = a.get(i, c);
                a.set(i, c, (-tw).mul_add(*t, v));
            }
        }
    }
    taus
}

/// Applies `Q` or `Q^T` (from [`geqrf`] output) to `c` from the left.
pub fn ormqr<T: Scalar>(trans: Transpose, qr: &Matrix<T>, taus: &[T], c: &mut Matrix<T>) {
    let m = qr.rows();
    let k = taus.len();
    assert_eq!(c.rows(), m, "ormqr row mismatch");
    // Q = H_0 H_1 ... H_{k-1}; Q^T applies them in ascending order, Q in
    // descending order (each H is symmetric).
    let order: Vec<usize> = match trans {
        Transpose::Yes => (0..k).collect(),
        Transpose::No => (0..k).rev().collect(),
    };
    for &j in &order {
        let tau = taus[j];
        if tau == T::zero() {
            continue;
        }
        for col in 0..c.cols() {
            // w = v^T * C[:, col] with v = (1, qr[j+1.., j]).
            let mut w = c.get(j, col);
            for i in j + 1..m {
                w = qr.get(i, j).mul_add(c.get(i, col), w);
            }
            let tw = tau * w;
            let v = c.get(j, col);
            c.set(j, col, v - tw);
            for i in j + 1..m {
                let v = c.get(i, col);
                c.set(i, col, (-tw).mul_add(qr.get(i, j), v));
            }
        }
    }
}

/// Materializes the thin `Q` factor (`m × n`) from [`geqrf`] output.
pub fn build_q_thin<T: Scalar>(qr: &Matrix<T>, taus: &[T]) -> Matrix<T> {
    let m = qr.rows();
    let n = taus.len();
    let mut q = Matrix::from_fn(m, n, |i, j| if i == j { T::one() } else { T::zero() });
    ormqr(Transpose::No, qr, taus, &mut q);
    q
}

/// Extracts the upper-triangular `R` factor (`n × n`) from [`geqrf`] output.
pub fn extract_r<T: Scalar>(qr: &Matrix<T>) -> Matrix<T> {
    let n = qr.cols();
    Matrix::from_fn(n, n, |i, j| if i <= j { qr.get(i, j) } else { T::zero() })
}

/// QR of an upper triangle stacked on a dense block (`[R; B]`, the TSQR /
/// tiled-QR coupling kernel, LAPACK `tpqrt` with `L = 0`):
///
/// * `r` — `n × n`, upper triangular on entry; overwritten with the new `R`.
/// * `b` — `m × n` dense on entry; overwritten with the reflector tails
///   (the top part of each reflector is the identity column, held
///   implicitly).
///
/// Returns the `tau` scalars.
pub fn tpqrt<T: Scalar>(r: &mut Matrix<T>, b: &mut Matrix<T>) -> Vec<T> {
    let n = r.rows();
    assert!(r.is_square(), "tpqrt: R must be square");
    assert_eq!(b.cols(), n, "tpqrt: column count mismatch");
    let m = b.rows();
    let mut taus = Vec::with_capacity(n);
    for j in 0..n {
        let alpha = r.get(j, j);
        // The reflector tail is the whole of B[:, j] (top part is e_j).
        let mut tail: Vec<T> = (0..m).map(|i| b.get(i, j)).collect();
        let (beta, tau) = reflector(alpha, &mut tail);
        r.set(j, j, beta);
        for (i, t) in tail.iter().enumerate() {
            b.set(i, j, *t);
        }
        taus.push(tau);
        if tau == T::zero() {
            continue;
        }
        // Apply to trailing columns jj > j of the stacked [R; B].
        for jj in j + 1..n {
            let mut w = r.get(j, jj);
            for (i, t) in tail.iter().enumerate() {
                w = t.mul_add(b.get(i, jj), w);
            }
            let tw = tau * w;
            let v = r.get(j, jj);
            r.set(j, jj, v - tw);
            for (i, t) in tail.iter().enumerate() {
                let v = b.get(i, jj);
                b.set(i, jj, (-tw).mul_add(*t, v));
            }
        }
    }
    taus
}

/// Applies `Q` or `Q^T` from [`tpqrt`] to the stacked pair `[A; B]`:
/// `a_top` is `n × p` (aligned with the triangle), `b_bot` is `m × p`
/// (aligned with the dense block `v2` holding the reflector tails).
pub fn tpmqrt<T: Scalar>(
    trans: Transpose,
    v2: &Matrix<T>,
    taus: &[T],
    a_top: &mut Matrix<T>,
    b_bot: &mut Matrix<T>,
) {
    let n = taus.len();
    let m = v2.rows();
    assert_eq!(v2.cols(), n, "tpmqrt: reflector count mismatch");
    assert!(a_top.rows() >= n, "tpmqrt: top block too small");
    assert_eq!(b_bot.rows(), m, "tpmqrt: bottom block row mismatch");
    assert_eq!(a_top.cols(), b_bot.cols(), "tpmqrt: column count mismatch");
    let order: Vec<usize> = match trans {
        Transpose::Yes => (0..n).collect(),
        Transpose::No => (0..n).rev().collect(),
    };
    for &j in &order {
        let tau = taus[j];
        if tau == T::zero() {
            continue;
        }
        let vcol = v2.col(j);
        for c in 0..a_top.cols() {
            let mut w = a_top.get(j, c);
            for (i, &vi) in vcol.iter().enumerate() {
                w = vi.mul_add(b_bot.get(i, c), w);
            }
            let tw = tau * w;
            let v = a_top.get(j, c);
            a_top.set(j, c, v - tw);
            let bcol = b_bot.col_mut(c);
            for (bi, &vi) in bcol.iter_mut().zip(vcol.iter()) {
                *bi = (-tw).mul_add(vi, *bi);
            }
        }
    }
}

/// Least-squares solve `min ||A x - b||_2` for `m >= n` via `geqrf`:
/// returns `x` of length `n`. `A` is consumed as the factorization workspace.
pub fn qr_solve_ls<T: Scalar>(mut a: Matrix<T>, b: &[T]) -> Vec<T> {
    let m = a.rows();
    let n = a.cols();
    assert_eq!(b.len(), m, "qr_solve_ls rhs length mismatch");
    let taus = geqrf(&mut a);
    let mut bm = Matrix::from_col_major(m, 1, b.to_vec());
    ormqr(Transpose::Yes, &a, &taus, &mut bm);
    let mut x: Vec<T> = (0..n).map(|i| bm.get(i, 0)).collect();
    let r = extract_r(&a);
    trsv(Uplo::Upper, Transpose::No, Diag::NonUnit, &r, &mut x);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::gen;
    use crate::norms;

    fn orthogonality_error(q: &Matrix<f64>) -> f64 {
        let n = q.cols();
        let mut qtq = Matrix::<f64>::zeros(n, n);
        gemm(Transpose::Yes, Transpose::No, 1.0, q, q, 0.0, &mut qtq);
        qtq.max_abs_diff(&Matrix::identity(n))
    }

    #[test]
    fn geqrf_reconstructs_a() {
        for (m, n) in [(8, 8), (16, 5), (30, 30), (7, 1)] {
            let a = gen::random_matrix::<f64>(m, n, 1);
            let mut f = a.clone();
            let taus = geqrf(&mut f);
            let q = build_q_thin(&f, &taus);
            let r = extract_r(&f);
            let mut qr = Matrix::zeros(m, n);
            gemm(Transpose::No, Transpose::No, 1.0, &q, &r, 0.0, &mut qr);
            assert!(
                qr.approx_eq(&a, 1e-12),
                "({m},{n}) diff {}",
                qr.max_abs_diff(&a)
            );
            assert!(
                orthogonality_error(&q) < 1e-13,
                "({m},{n}) Q not orthogonal"
            );
        }
    }

    #[test]
    fn r_diagonal_handedness_is_consistent() {
        // R's diagonal must be the negated-sign convention from `reflector`,
        // and reconstruction must hold even when a column is already zeroed.
        let mut a = Matrix::<f64>::zeros(5, 3);
        a.set(0, 0, 2.0); // column 0 already upper-triangular -> tau = 0
        a.set(1, 1, 1.0);
        a.set(2, 2, 1.0);
        let orig = a.clone();
        let taus = geqrf(&mut a);
        assert_eq!(taus[0], 0.0);
        let q = build_q_thin(&a, &taus);
        let r = extract_r(&a);
        let mut qr = Matrix::zeros(5, 3);
        gemm(Transpose::No, Transpose::No, 1.0, &q, &r, 0.0, &mut qr);
        assert!(qr.approx_eq(&orig, 1e-13));
    }

    #[test]
    fn ormqr_transpose_then_notranspose_is_identity() {
        let a = gen::random_matrix::<f64>(12, 6, 2);
        let mut f = a.clone();
        let taus = geqrf(&mut f);
        let c0 = gen::random_matrix::<f64>(12, 4, 3);
        let mut c = c0.clone();
        ormqr(Transpose::Yes, &f, &taus, &mut c);
        ormqr(Transpose::No, &f, &taus, &mut c);
        assert!(c.approx_eq(&c0, 1e-12));
    }

    #[test]
    fn tpqrt_factors_stacked_matrix() {
        let n = 6;
        let m = 9;
        // Build [R0; B] where R0 is upper triangular.
        let a_top = gen::random_matrix::<f64>(n, n, 4);
        let r0 = Matrix::from_fn(n, n, |i, j| if i <= j { a_top.get(i, j) } else { 0.0 });
        let b0 = gen::random_matrix::<f64>(m, n, 5);

        let mut r = r0.clone();
        let mut b = b0.clone();
        let taus = tpqrt(&mut r, &mut b);

        // Applying Q to [R_new; 0] must reproduce [R0; B0].
        let mut top = Matrix::from_fn(n, n, |i, j| if i <= j { r.get(i, j) } else { 0.0 });
        let mut bot = Matrix::<f64>::zeros(m, n);
        tpmqrt(Transpose::No, &b, &taus, &mut top, &mut bot);
        assert!(
            top.approx_eq(&r0, 1e-12),
            "top diff {}",
            top.max_abs_diff(&r0)
        );
        assert!(
            bot.approx_eq(&b0, 1e-12),
            "bottom diff {}",
            bot.max_abs_diff(&b0)
        );
    }

    #[test]
    fn tpmqrt_transpose_annihilates_bottom() {
        let n = 5;
        let m = 7;
        let a_top = gen::random_matrix::<f64>(n, n, 6);
        let r0 = Matrix::from_fn(n, n, |i, j| {
            if i <= j {
                a_top.get(i, j) + if i == j { 3.0 } else { 0.0 }
            } else {
                0.0
            }
        });
        let b0 = gen::random_matrix::<f64>(m, n, 7);
        let mut r = r0.clone();
        let mut b = b0.clone();
        let taus = tpqrt(&mut r, &mut b);
        // Q^T applied to the original stacked matrix zeroes the bottom block.
        let mut top = r0.clone();
        let mut bot = b0.clone();
        tpmqrt(Transpose::Yes, &b, &taus, &mut top, &mut bot);
        assert!(
            norms::max_abs(&bot) < 1e-12,
            "bottom not annihilated: {}",
            norms::max_abs(&bot)
        );
        assert!(top.approx_eq(&r, 1e-12));
    }

    #[test]
    fn qr_solve_ls_square_system() {
        let a = gen::random_matrix::<f64>(10, 10, 8);
        let b = gen::rhs_for_unit_solution(&a);
        let x = qr_solve_ls(a.clone(), &b);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn qr_solve_ls_overdetermined_matches_normal_equations() {
        let m = 20;
        let n = 4;
        let a = gen::random_matrix::<f64>(m, n, 9);
        let b = gen::random_vector::<f64>(m, 10);
        let x = qr_solve_ls(a.clone(), &b);
        // Normal equations residual: A^T (A x - b) ~ 0.
        let mut ax = vec![0.0; m];
        crate::gemm::gemv(Transpose::No, 1.0, &a, &x, 0.0, &mut ax);
        for (axi, &bi) in ax.iter_mut().zip(b.iter()) {
            *axi -= bi;
        }
        let mut atr = vec![0.0; n];
        crate::gemm::gemv(Transpose::Yes, 1.0, &a, &ax, 0.0, &mut atr);
        assert!(norms::vec_inf_norm(&atr) < 1e-11);
    }

    #[test]
    fn reflector_zero_tail_is_identity() {
        let mut tail: [f64; 0] = [];
        let (beta, tau) = reflector(5.0, &mut tail[..]);
        assert_eq!(beta, 5.0);
        assert_eq!(tau, 0.0);
        let mut tail = [0.0f64, 0.0];
        let (beta, tau) = reflector(-3.0, &mut tail);
        assert_eq!(beta, -3.0);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn reflector_annihilates_tail() {
        let x0 = [3.0f64, 4.0];
        let mut tail = x0;
        let alpha = 0.0;
        let (beta, tau) = reflector(alpha, &mut tail);
        // ||(alpha, x)|| preserved: |beta| = 5.
        assert!((beta.abs() - 5.0).abs() < 1e-14);
        // Verify H * (alpha, x) = (beta, 0): v = (1, tail).
        let v = [1.0, tail[0], tail[1]];
        let orig = [alpha, x0[0], x0[1]];
        let w: f64 = v.iter().zip(orig.iter()).map(|(a, b)| a * b).sum();
        let hx: Vec<f64> = orig
            .iter()
            .zip(v.iter())
            .map(|(o, vi)| o - tau * w * vi)
            .collect();
        assert!((hx[0] - beta).abs() < 1e-14);
        assert!(hx[1].abs() < 1e-14);
        assert!(hx[2].abs() < 1e-14);
    }
}
