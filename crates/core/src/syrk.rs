//! Symmetric rank-k update: the trailing-update kernel of Cholesky.

use crate::gemm::Transpose;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::trsm::Uplo;

/// `C <- alpha * A * A^T + beta * C` (trans = No) or
/// `C <- alpha * A^T * A + beta * C` (trans = Yes), updating only the
/// `uplo` triangle of `C` (the other triangle is left untouched).
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Transpose,
    alpha: T,
    a: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let n = match trans {
        Transpose::No => a.rows(),
        Transpose::Yes => a.cols(),
    };
    let k = match trans {
        Transpose::No => a.cols(),
        Transpose::Yes => a.rows(),
    };
    assert!(c.is_square() && c.rows() == n, "syrk output shape mismatch");
    let _scope = xsc_metrics::record(
        "syrk",
        xsc_metrics::traffic::syrk(n, k, std::mem::size_of::<T>() as u64),
    );

    // Materialize Aᵀ for the trans case so updates stay stride-1.
    let at;
    let a_nn: &Matrix<T> = match trans {
        Transpose::No => a,
        Transpose::Yes => {
            at = a.transpose();
            &at
        }
    };

    for j in 0..n {
        // Scale the stored triangle of column j.
        let (lo, hi) = match uplo {
            Uplo::Lower => (j, n),
            Uplo::Upper => (0, j + 1),
        };
        {
            let ccol = &mut c.col_mut(j)[lo..hi];
            if beta == T::zero() {
                ccol.fill(T::zero());
            } else if beta != T::one() {
                for x in ccol.iter_mut() {
                    *x *= beta;
                }
            }
        }
        for l in 0..k {
            let s = alpha * a_nn.get(j, l);
            if s == T::zero() {
                continue;
            }
            let acol = &a_nn.col(l)[lo..hi];
            let ccol = &mut c.col_mut(j)[lo..hi];
            for (ci, &ai) in ccol.iter_mut().zip(acol.iter()) {
                *ci = s.mul_add(ai, *ci);
            }
        }
    }
}

/// Mirrors the stored triangle into the other one, making `C` explicitly
/// symmetric (handy after a sequence of `syrk` updates).
pub fn symmetrize_from<T: Scalar>(uplo: Uplo, c: &mut Matrix<T>) {
    assert!(c.is_square());
    let n = c.rows();
    for j in 0..n {
        for i in j + 1..n {
            match uplo {
                Uplo::Lower => {
                    let v = c.get(i, j);
                    c.set(j, i, v);
                }
                Uplo::Upper => {
                    let v = c.get(j, i);
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{naive_gemm, Transpose};
    use crate::gen;

    fn reference(
        trans: Transpose,
        alpha: f64,
        a: &Matrix<f64>,
        beta: f64,
        c0: &Matrix<f64>,
    ) -> Matrix<f64> {
        let mut full = c0.clone();
        match trans {
            Transpose::No => {
                naive_gemm(Transpose::No, Transpose::Yes, alpha, a, a, beta, &mut full)
            }
            Transpose::Yes => {
                naive_gemm(Transpose::Yes, Transpose::No, alpha, a, a, beta, &mut full)
            }
        }
        full
    }

    #[test]
    fn syrk_matches_gemm_on_stored_triangle() {
        for &trans in &[Transpose::No, Transpose::Yes] {
            for &uplo in &[Uplo::Lower, Uplo::Upper] {
                let a = gen::random_matrix::<f64>(9, 5, 1);
                let n = match trans {
                    Transpose::No => 9,
                    Transpose::Yes => 5,
                };
                let c0 = gen::random_matrix::<f64>(n, n, 2);
                let full = reference(trans, 1.5, &a, 0.5, &c0);
                let mut c = c0.clone();
                syrk(uplo, trans, 1.5, &a, 0.5, &mut c);
                for j in 0..n {
                    for i in 0..n {
                        let stored = match uplo {
                            Uplo::Lower => i >= j,
                            Uplo::Upper => i <= j,
                        };
                        let expect = if stored { full.get(i, j) } else { c0.get(i, j) };
                        assert!(
                            (c.get(i, j) - expect).abs() < 1e-12,
                            "mismatch at ({i},{j}) for {uplo:?} {trans:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn beta_zero_clears_stored_triangle_only() {
        let a = Matrix::<f64>::zeros(4, 3);
        let mut c = gen::random_matrix::<f64>(4, 4, 3);
        let c0 = c.clone();
        syrk(Uplo::Lower, Transpose::No, 1.0, &a, 0.0, &mut c);
        for j in 0..4 {
            for i in 0..4 {
                if i >= j {
                    assert_eq!(c.get(i, j), 0.0);
                } else {
                    assert_eq!(c.get(i, j), c0.get(i, j));
                }
            }
        }
    }

    #[test]
    fn symmetrize_from_lower() {
        let mut c = gen::random_matrix::<f64>(5, 5, 4);
        symmetrize_from(Uplo::Lower, &mut c);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
        }
    }
}
