//! # xsc-core — dense linear-algebra foundation for `xsc`
//!
//! `xsc` is a Rust reproduction of the system described in Jack Dongarra's
//! ICMS/HPDC 2016 invited talk *"With Extreme Scale Computing the Rules Have
//! Changed"*. This crate is the numerical foundation that every other `xsc`
//! crate builds on:
//!
//! * [`Scalar`] / [`Float`] — precision-generic scalar traits so the same
//!   kernels run in `f64`, `f32`, and the software-emulated half precision
//!   used by `xsc-precision`.
//! * [`Matrix`] — a column-major dense matrix, the storage format of the
//!   classic HPC libraries (LAPACK, PLASMA) this project mirrors.
//! * [`TileMatrix`] — a matrix partitioned into contiguous square tiles, the
//!   storage layout of PLASMA-style tiled algorithms executed by
//!   `xsc-runtime` task graphs.
//! * Sequential blocked kernels ([`gemm`], [`trsm`], [`syrk`], [`factor`],
//!   [`householder`]) — the node-level BLAS/LAPACK substrate the paper
//!   assumes, built from scratch.
//! * [`gen`] — reproducible random matrix generators (general, SPD,
//!   ill-conditioned, orthogonal) used by the test and benchmark suites.
//! * [`flops`] — the flop-count formulas used for Gflop/s accounting in
//!   the HPL-like and HPCG-like benchmarks.
//!
//! ## Quick example
//!
//! ```
//! use xsc_core::{gen, gemm, norms, Matrix, Transpose};
//!
//! let a = gen::random_matrix::<f64>(64, 32, 42);
//! let b = gen::random_matrix::<f64>(32, 16, 43);
//! let mut c = Matrix::<f64>::zeros(64, 16);
//! // C <- 1.0 * A * B + 0.0 * C
//! gemm::gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
//! assert!(norms::frobenius(&c) > 0.0);
//! ```

#![deny(missing_docs)]
// `unsafe` is denied workspace-style everywhere; the single sanctioned
// exception is the feature-gated SIMD micro-kernel module, which opts back
// in locally (every block there carries a `// SAFETY:` comment, enforced
// by xsc-lint rule S01). Without the `simd` feature the whole crate is
// `forbid(unsafe_code)` exactly as before.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-coupled updates across multiple slices are the clearest form for these kernels

pub mod blas1;
pub mod cast;
pub mod cond;
pub mod error;
pub mod factor;
pub mod flops;
pub mod gemm;
pub mod gen;
pub mod householder;
pub mod matrix;
pub mod microkernel;
pub mod norms;
pub mod scalar;
pub mod syrk;
pub mod tile;
pub mod trsm;

pub use error::{Error, Result};
pub use gemm::{GemmParams, Transpose};
pub use matrix::Matrix;
pub use microkernel::MicroKernel;
pub use scalar::{Float, Scalar};
pub use tile::{TileIndex, TileMatrix};
pub use trsm::{Diag, Side, Uplo};
