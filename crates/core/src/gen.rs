//! Reproducible random matrix and vector generators.
//!
//! Every generator takes an explicit seed so benchmarks and property tests
//! are bit-reproducible run to run — one of the keynote's "rules" is that
//! reproducibility must be engineered, not assumed.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform random matrix with entries in `[-1, 1)`.
pub fn random_matrix<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_range(-1.0..1.0)))
}

/// Uniform random vector with entries in `[-1, 1)`.
pub fn random_vector<T: Scalar>(n: usize, seed: u64) -> Vec<T> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| T::from_f64(rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Random symmetric positive-definite matrix: `A = B Bᵀ / n + I`.
///
/// The diagonal shift keeps the condition number moderate, so Cholesky and
/// CG converge reliably; use [`ill_conditioned_spd`] to stress precision.
pub fn random_spd<T: Scalar>(n: usize, seed: u64) -> Matrix<T> {
    let b = random_matrix::<f64>(n, n, seed);
    let mut a = Matrix::<f64>::zeros(n, n);
    crate::gemm::gemm(
        crate::gemm::Transpose::No,
        crate::gemm::Transpose::Yes,
        1.0 / crate::cast::count_f64(n as u64),
        &b,
        &b,
        0.0,
        &mut a,
    );
    for i in 0..n {
        let v = a.get(i, i) + 1.0;
        a.set(i, i, v);
    }
    a.symmetrize();
    a.convert()
}

/// Random diagonally dominant matrix (guaranteed non-singular, LU-safe even
/// without pivoting) — the matrix class HPL itself generates.
pub fn diag_dominant<T: Scalar>(n: usize, seed: u64) -> Matrix<T> {
    let mut a = random_matrix::<f64>(n, n, seed);
    for i in 0..n {
        let row_sum: f64 = (0..n).fold(0.0, |acc, j| acc + a.get(i, j).abs());
        a.set(i, i, row_sum + 1.0);
    }
    a.convert()
}

/// SPD matrix with prescribed 2-norm condition number `cond`:
/// `A = Q D Qᵀ` with log-spaced eigenvalues in `[1/cond, 1]`.
pub fn ill_conditioned_spd<T: Scalar>(n: usize, cond: f64, seed: u64) -> Matrix<T> {
    assert!(cond >= 1.0, "condition number must be >= 1");
    let q = random_orthogonal(n, seed);
    let mut a = Matrix::<f64>::zeros(n, n);
    // A = sum_k d_k q_k q_kᵀ, built column by column: A = Q D Qᵀ.
    let mut qd = q.clone();
    for k in 0..n {
        let t = if n == 1 {
            0.0
        } else {
            crate::cast::count_f64(k as u64) / crate::cast::count_f64((n - 1) as u64)
        };
        let d = cond.powf(-t); // eigenvalues from 1 down to 1/cond
        for i in 0..n {
            let v = qd.get(i, k) * d;
            qd.set(i, k, v);
        }
    }
    crate::gemm::gemm(
        crate::gemm::Transpose::No,
        crate::gemm::Transpose::Yes,
        1.0,
        &qd,
        &q,
        0.0,
        &mut a,
    );
    a.symmetrize();
    a.convert()
}

/// Random orthogonal matrix via Gram-Schmidt on a random Gaussian-ish matrix.
pub fn random_orthogonal(n: usize, seed: u64) -> Matrix<f64> {
    let mut q = random_matrix::<f64>(n, n, seed.wrapping_add(0x9e37_79b9));
    // Modified Gram-Schmidt, repeated twice for orthogonality to machine eps.
    for _pass in 0..2 {
        for j in 0..n {
            for i in 0..j {
                let mut dot = 0.0;
                for r in 0..n {
                    dot += q.get(r, i) * q.get(r, j);
                }
                for r in 0..n {
                    let v = q.get(r, j) - dot * q.get(r, i);
                    q.set(r, j, v);
                }
            }
            let mut nrm = 0.0;
            for r in 0..n {
                nrm += q.get(r, j) * q.get(r, j);
            }
            let nrm = nrm.sqrt();
            assert!(nrm > 0.0, "degenerate random matrix");
            for r in 0..n {
                let v = q.get(r, j) / nrm;
                q.set(r, j, v);
            }
        }
    }
    q
}

/// Right-hand side `b = A x_true` for a known solution `x_true = [1, 1, ...]`,
/// accumulated in `f64` — the standard way HPL-style drivers build a
/// verifiable system.
pub fn rhs_for_unit_solution<T: Scalar>(a: &Matrix<T>) -> Vec<T> {
    let n = a.rows();
    let mut b = vec![0.0f64; n];
    for j in 0..a.cols() {
        for (i, &aij) in a.col(j).iter().enumerate() {
            b[i] += aij.to_f64();
        }
    }
    b.into_iter().map(T::from_f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms;

    #[test]
    fn generators_are_reproducible() {
        let a = random_matrix::<f64>(10, 10, 7);
        let b = random_matrix::<f64>(10, 10, 7);
        assert!(a.approx_eq(&b, 0.0));
        let c = random_matrix::<f64>(10, 10, 8);
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn spd_is_symmetric_with_positive_diagonal() {
        let a = random_spd::<f64>(20, 3);
        for i in 0..20 {
            assert!(a.get(i, i) > 0.0);
            for j in 0..20 {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
        }
    }

    #[test]
    fn diag_dominant_dominates() {
        let a = diag_dominant::<f64>(15, 4);
        for i in 0..15 {
            let off: f64 = (0..15).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i).abs() > off);
        }
    }

    #[test]
    fn orthogonal_has_orthonormal_columns() {
        let q = random_orthogonal(16, 5);
        let mut qtq = Matrix::<f64>::zeros(16, 16);
        crate::gemm::gemm(
            crate::gemm::Transpose::Yes,
            crate::gemm::Transpose::No,
            1.0,
            &q,
            &q,
            0.0,
            &mut qtq,
        );
        assert!(qtq.approx_eq(&Matrix::identity(16), 1e-12));
    }

    #[test]
    fn ill_conditioned_spd_has_requested_extremes() {
        let cond = 1e6;
        let a = ill_conditioned_spd::<f64>(32, cond, 6);
        // Largest eigenvalue ~1 bounds the norms.
        let n1 = norms::one_norm(&a);
        assert!(n1 < 32.0 && n1 > 0.5, "one-norm {n1} out of expected range");
        for i in 0..32 {
            assert_eq!(a.get(i, 7), a.get(7, i));
        }
    }

    #[test]
    fn rhs_matches_unit_solution() {
        let a = random_matrix::<f64>(9, 9, 10);
        let b = rhs_for_unit_solution(&a);
        let x = vec![1.0f64; 9];
        assert!(norms::relative_residual(&a, &x, &b) < 1e-14);
    }

    #[test]
    fn f32_generators_work() {
        let a = random_spd::<f32>(8, 1);
        assert!(!a.has_non_finite());
        let v = random_vector::<f32>(5, 2);
        assert_eq!(v.len(), 5);
    }
}
