//! Micro-kernel variants for the blocked GEMM's `MR x NR` register tile.
//!
//! The blocked GEMM (see [`crate::gemm`]) spends essentially all of its
//! time in one routine: the micro-kernel that accumulates an `MR x NR`
//! tile of `C` from packed, zero-padded panels of `A` and `B`. This module
//! holds every implementation of that routine and the machinery to choose
//! between them:
//!
//! * [`MicroKernel::Scalar`] — the portable baseline: plain Rust, one
//!   multiply-add per element, vectorized only as far as the default
//!   target baseline (SSE2 on `x86_64`) allows.
//! * [`MicroKernel::Avx2`] / [`MicroKernel::Avx512`] — explicit
//!   `std::arch` intrinsic kernels (behind the `simd` cargo feature) that
//!   vectorize across the `MR` independent *rows* of the micro-tile.
//!
//! ## Bit-identity contract
//!
//! Every variant performs, for every output element `acc[j*MR + i]`, the
//! **same scalar operation sequence in the same `k` order**:
//!
//! ```text
//! for l in 0..kcb:  acc[j*MR+i] = a_panel[l*MR+i] * b_panel[l*NR+j] + acc[j*MR+i]
//! ```
//!
//! The SIMD kernels only change *which lanes execute together*, never the
//! per-element operand order or rounding (separate IEEE multiply and add,
//! exactly like [`crate::scalar::Scalar::mul_add`] for `f32`/`f64`, which
//! is deliberately unfused). Results are therefore bit-identical across
//! variants — the determinism suites assert this, and it is what lets the
//! autotuner swap kernels without renegotiating any numerical contract.
//!
//! Selection mirrors [`crate::gemm::GemmParams`]: a process-wide default
//! ([`set_global_microkernel`], typically installed by `xsc-autotune`) and
//! an explicit per-call override (`gemm_with_opts`). The default is
//! [`MicroKernel::best_available`] — the widest variant this binary *and*
//! this CPU support, falling back to scalar everywhere else.

use crate::gemm::{MR, NR};
use crate::scalar::Scalar;
use std::sync::atomic::{AtomicU8, Ordering};

/// Identifies one micro-kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MicroKernel {
    /// Portable scalar kernel (compiler-vectorized at the target baseline).
    Scalar,
    /// 256-bit AVX2 kernel: 4 `f64` (or 8 `f32`) lanes per vector op.
    /// Requires the `simd` feature, `x86_64`, and runtime AVX2 support.
    Avx2,
    /// 512-bit AVX-512F kernel: 8 `f64` lanes — one register per
    /// micro-tile column. Requires the `simd` feature, `x86_64`, and
    /// runtime AVX-512F support. `f32` problems fall back to the AVX2
    /// kernel (the `MR = 8` tile only fills half a 512-bit register).
    Avx512,
}

impl MicroKernel {
    /// Stable lower-case name used in benchmark tables and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            MicroKernel::Scalar => "scalar",
            MicroKernel::Avx2 => "avx2",
            MicroKernel::Avx512 => "avx512",
        }
    }

    /// `true` if this variant can run in this binary on this CPU.
    pub fn is_available(self) -> bool {
        match self {
            MicroKernel::Scalar => true,
            MicroKernel::Avx2 => simd::avx2_available(),
            MicroKernel::Avx512 => simd::avx512_available(),
        }
    }

    /// Every variant runnable in this binary on this CPU, scalar first.
    /// Without the `simd` feature this is always `[Scalar]`.
    pub fn available() -> Vec<MicroKernel> {
        [MicroKernel::Scalar, MicroKernel::Avx2, MicroKernel::Avx512]
            .into_iter()
            .filter(|k| k.is_available())
            .collect()
    }

    /// The widest available variant (the default when nothing is
    /// installed; bit-identity makes this swap safe). Falls back to the
    /// scalar kernel structurally — no panic path — since this is called
    /// from the GEMM dispatch hot path.
    pub fn best_available() -> MicroKernel {
        Self::available()
            .last()
            .copied()
            .unwrap_or(MicroKernel::Scalar)
    }
}

impl std::fmt::Display for MicroKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Global selection (0 = unset -> best_available). Mirrors the GemmParams
// global: any interleaving of valid stores is itself a valid selection.
static GLOBAL_MICROKERNEL: AtomicU8 = AtomicU8::new(0);

fn encode(mk: MicroKernel) -> u8 {
    match mk {
        MicroKernel::Scalar => 1,
        MicroKernel::Avx2 => 2,
        MicroKernel::Avx512 => 3,
    }
}

/// Installs `mk` as the process-wide default micro-kernel used by
/// [`crate::gemm::gemm`] / [`crate::gemm::par_gemm`]. Typically called
/// with an autotuned winner (see `xsc-autotune`). An unavailable variant
/// silently resolves to the scalar kernel at dispatch time.
pub fn set_global_microkernel(mk: MicroKernel) {
    GLOBAL_MICROKERNEL.store(encode(mk), Ordering::Relaxed);
}

/// Clears any installed override, restoring [`MicroKernel::best_available`].
pub fn clear_global_microkernel() {
    GLOBAL_MICROKERNEL.store(0, Ordering::Relaxed);
}

/// The micro-kernel `gemm`/`par_gemm` currently dispatch to: the installed
/// override if set, [`MicroKernel::best_available`] otherwise.
pub fn global_microkernel() -> MicroKernel {
    match GLOBAL_MICROKERNEL.load(Ordering::Relaxed) {
        1 => MicroKernel::Scalar,
        2 => MicroKernel::Avx2,
        3 => MicroKernel::Avx512,
        _ => MicroKernel::best_available(),
    }
}

/// A resolved micro-kernel entry point: accumulates `acc[MR x NR] +=
/// Ap * Bp` over `kcb` depth steps of packed panels (see
/// [`crate::gemm`]'s packing routines for the layout).
pub(crate) type MicroKernelFn<T> = fn(usize, &[T], &[T], &mut [T; MR * NR]);

/// Resolves `mk` to a concrete function for element type `T`, falling back
/// to the scalar kernel whenever the requested variant is not implemented
/// for `T` or not runnable on this CPU. The returned function is what the
/// macro-kernel calls in its inner loop, so resolution happens once per
/// GEMM invocation, not once per micro-tile.
pub(crate) fn resolve<T: Scalar>(mk: MicroKernel) -> MicroKernelFn<T> {
    match mk {
        MicroKernel::Scalar => scalar_kernel::<T>,
        MicroKernel::Avx2 | MicroKernel::Avx512 => simd::resolve::<T>(mk),
    }
}

/// The portable scalar micro-kernel (the former `micro_kernel` of
/// `gemm.rs`): both panels are contiguous and zero-padded, so the loop
/// body is branch-free and the accumulator tile stays in registers.
#[inline(always)]
pub(crate) fn scalar_kernel<T: Scalar>(kcb: usize, apan: &[T], bpan: &[T], acc: &mut [T; MR * NR]) {
    // Zip-structured (no slice indexing, rule P03): `chunks_exact_mut(MR)`
    // walks the accumulator in the same j-major, i-minor order as the
    // indexed form, so the FMA sequence — and the result bits — are
    // unchanged.
    for (av, bv) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)).take(kcb) {
        for (&bj, accj) in bv.iter().zip(acc.chunks_exact_mut(MR)) {
            for (&ai, cij) in av.iter().zip(accj.iter_mut()) {
                *cij = ai.mul_add(bj, *cij);
            }
        }
    }
}

/// Explicit-SIMD kernels (the `simd` cargo feature on `x86_64`).
///
/// Lint rule S01 requires a `// SAFETY:` comment on every `unsafe` block;
/// the soundness argument everywhere below is the same two-parter:
/// (1) the caller checked CPU support at runtime before dispatching here,
/// and (2) the packed panels are zero-padded to full `MR`/`NR` blocks, so
/// every vector load/store below stays inside its slice.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    // Keep every pointer operation inside an explicit `unsafe` block with
    // its own SAFETY comment, even inside `unsafe fn` bodies.
    #![deny(unsafe_op_in_unsafe_fn)]

    use super::{scalar_kernel, MicroKernel, MicroKernelFn, MR, NR};
    use crate::scalar::Scalar;
    use std::any::TypeId;
    use std::arch::x86_64::*;

    pub(super) fn avx2_available() -> bool {
        is_x86_feature_detected!("avx2")
    }

    pub(super) fn avx512_available() -> bool {
        is_x86_feature_detected!("avx512f")
    }

    /// Picks the concrete kernel for `(variant, T)`; anything without an
    /// implementation (or without CPU support) degrades to scalar, which
    /// is always safe because all variants are bit-identical.
    pub(super) fn resolve<T: Scalar>(mk: MicroKernel) -> MicroKernelFn<T> {
        let t = TypeId::of::<T>();
        if t == TypeId::of::<f64>() {
            match mk {
                MicroKernel::Avx512 if avx512_available() => return f64_avx512_entry::<T>,
                MicroKernel::Avx2 | MicroKernel::Avx512 if avx2_available() => {
                    return f64_avx2_entry::<T>
                }
                _ => {}
            }
        } else if t == TypeId::of::<f32>() && avx2_available() {
            // f32 has no 512-bit kernel (MR = 8 f32 is one 256-bit
            // register already); both SIMD selections use AVX2.
            return f32_avx2_entry::<T>;
        }
        scalar_kernel::<T>
    }

    /// Reinterprets the generic panels as `f64` slices and dispatches.
    fn f64_avx2_entry<T: Scalar>(kcb: usize, apan: &[T], bpan: &[T], acc: &mut [T; MR * NR]) {
        debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
        // SAFETY: `resolve` hands out this entry only when `T == f64`
        // (TypeId-checked above), so the casts reinterpret at identical
        // layout; AVX2 support was runtime-verified before dispatch.
        unsafe {
            f64_avx2(
                kcb,
                &*(apan as *const [T] as *const [f64]),
                &*(bpan as *const [T] as *const [f64]),
                &mut *(acc as *mut [T; MR * NR] as *mut [f64; MR * NR]),
            );
        }
    }

    /// Reinterprets the generic panels as `f64` slices and dispatches.
    fn f64_avx512_entry<T: Scalar>(kcb: usize, apan: &[T], bpan: &[T], acc: &mut [T; MR * NR]) {
        debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
        // SAFETY: same argument as `f64_avx2_entry`, with AVX-512F as the
        // runtime-verified feature.
        unsafe {
            f64_avx512(
                kcb,
                &*(apan as *const [T] as *const [f64]),
                &*(bpan as *const [T] as *const [f64]),
                &mut *(acc as *mut [T; MR * NR] as *mut [f64; MR * NR]),
            );
        }
    }

    /// Reinterprets the generic panels as `f32` slices and dispatches.
    fn f32_avx2_entry<T: Scalar>(kcb: usize, apan: &[T], bpan: &[T], acc: &mut [T; MR * NR]) {
        debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<f32>());
        // SAFETY: `resolve` only hands out this entry when `T == f32`
        // (checked via TypeId above); AVX2 support was verified with
        // `is_x86_feature_detected!` before dispatch.
        unsafe {
            f32_avx2(
                kcb,
                &*(apan as *const [T] as *const [f32]),
                &*(bpan as *const [T] as *const [f32]),
                &mut *(acc as *mut [T; MR * NR] as *mut [f32; MR * NR]),
            );
        }
    }

    /// AVX2 `f64` micro-kernel: each of the `NR = 4` accumulator columns
    /// is two 256-bit registers (rows 0..4 and 4..8); every depth step
    /// broadcasts one `B` element per column and performs the same
    /// unfused multiply-then-add as the scalar kernel, 4 rows per lane.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is supported on the running CPU and that
    /// `apan` holds at least `kcb * MR` and `bpan` at least `kcb * NR`
    /// elements (the packed-panel invariant of `crate::gemm`).
    // SAFETY: callers uphold the `# Safety` contract documented above.
    #[target_feature(enable = "avx2")]
    unsafe fn f64_avx2(kcb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]) {
        debug_assert!(apan.len() >= kcb * MR && bpan.len() >= kcb * NR);
        let ap = apan.as_ptr();
        let bp = bpan.as_ptr();
        let cp = acc.as_mut_ptr();
        // SAFETY: every pointer stays inside its slice — `ap` offsets
        // reach at most `kcb*MR - 4`, `bp` at most `kcb*NR - 1`, `cp` at
        // most `MR*NR - 4`, per the debug_assert and MR=8/NR=4 geometry.
        unsafe {
            let mut c: [[__m256d; 2]; NR] = [[_mm256_setzero_pd(); 2]; NR];
            for (j, cj) in c.iter_mut().enumerate() {
                cj[0] = _mm256_loadu_pd(cp.add(j * MR));
                cj[1] = _mm256_loadu_pd(cp.add(j * MR + 4));
            }
            for l in 0..kcb {
                let a_lo = _mm256_loadu_pd(ap.add(l * MR));
                let a_hi = _mm256_loadu_pd(ap.add(l * MR + 4));
                for (j, cj) in c.iter_mut().enumerate() {
                    let bj = _mm256_set1_pd(*bp.add(l * NR + j));
                    // Unfused mul+add, operand order matching the scalar
                    // kernel's `a.mul_add(b, acc)` = `a * b + acc`.
                    cj[0] = _mm256_add_pd(_mm256_mul_pd(a_lo, bj), cj[0]);
                    cj[1] = _mm256_add_pd(_mm256_mul_pd(a_hi, bj), cj[1]);
                }
            }
            for (j, cj) in c.iter().enumerate() {
                _mm256_storeu_pd(cp.add(j * MR), cj[0]);
                _mm256_storeu_pd(cp.add(j * MR + 4), cj[1]);
            }
        }
    }

    /// AVX-512F `f64` micro-kernel: one 512-bit register holds a full
    /// `MR = 8` accumulator column, so the tile is exactly `NR = 4`
    /// registers. Same unfused multiply-then-add as scalar, 8 rows/lane.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F is supported on the running CPU and
    /// the packed-panel length invariant of [`f64_avx2`] holds.
    // SAFETY: callers uphold the `# Safety` contract documented above.
    #[target_feature(enable = "avx512f")]
    unsafe fn f64_avx512(kcb: usize, apan: &[f64], bpan: &[f64], acc: &mut [f64; MR * NR]) {
        debug_assert!(apan.len() >= kcb * MR && bpan.len() >= kcb * NR);
        let ap = apan.as_ptr();
        let bp = bpan.as_ptr();
        let cp = acc.as_mut_ptr();
        // SAFETY: offsets bounded exactly as in `f64_avx2`, with whole
        // columns (8 f64 = one 512-bit register) loaded at `j * MR`.
        unsafe {
            let mut c: [__m512d; NR] = [_mm512_setzero_pd(); NR];
            for (j, cj) in c.iter_mut().enumerate() {
                *cj = _mm512_loadu_pd(cp.add(j * MR));
            }
            for l in 0..kcb {
                let a = _mm512_loadu_pd(ap.add(l * MR));
                for (j, cj) in c.iter_mut().enumerate() {
                    let bj = _mm512_set1_pd(*bp.add(l * NR + j));
                    *cj = _mm512_add_pd(_mm512_mul_pd(a, bj), *cj);
                }
            }
            for (j, cj) in c.iter().enumerate() {
                _mm512_storeu_pd(cp.add(j * MR), *cj);
            }
        }
    }

    /// AVX2 `f32` micro-kernel: `MR = 8` f32 rows fill one 256-bit
    /// register, so the accumulator tile is `NR = 4` registers.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is supported on the running CPU and the
    /// packed-panel length invariant of [`f64_avx2`] holds (in `f32`s).
    // SAFETY: callers uphold the `# Safety` contract documented above.
    #[target_feature(enable = "avx2")]
    unsafe fn f32_avx2(kcb: usize, apan: &[f32], bpan: &[f32], acc: &mut [f32; MR * NR]) {
        debug_assert!(apan.len() >= kcb * MR && bpan.len() >= kcb * NR);
        let ap = apan.as_ptr();
        let bp = bpan.as_ptr();
        let cp = acc.as_mut_ptr();
        // SAFETY: offsets bounded as in `f64_avx2`; each column is 8 f32
        // = one 256-bit register at `j * MR`.
        unsafe {
            let mut c: [__m256; NR] = [_mm256_setzero_ps(); NR];
            for (j, cj) in c.iter_mut().enumerate() {
                *cj = _mm256_loadu_ps(cp.add(j * MR));
            }
            for l in 0..kcb {
                let a = _mm256_loadu_ps(ap.add(l * MR));
                for (j, cj) in c.iter_mut().enumerate() {
                    let bj = _mm256_set1_ps(*bp.add(l * NR + j));
                    *cj = _mm256_add_ps(_mm256_mul_ps(a, bj), *cj);
                }
            }
            for (j, cj) in c.iter().enumerate() {
                _mm256_storeu_ps(cp.add(j * MR), *cj);
            }
        }
    }
}

/// Stub used when the `simd` feature is off (or the target is not
/// `x86_64`): no SIMD variant is ever available, and resolution always
/// lands on the scalar kernel.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod simd {
    use super::{scalar_kernel, MicroKernel, MicroKernelFn};
    use crate::scalar::Scalar;

    pub(super) fn avx2_available() -> bool {
        false
    }

    pub(super) fn avx512_available() -> bool {
        false
    }

    pub(super) fn resolve<T: Scalar>(_mk: MicroKernel) -> MicroKernelFn<T> {
        scalar_kernel::<T>
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(MicroKernel::Scalar.is_available());
        assert_eq!(MicroKernel::available()[0], MicroKernel::Scalar);
        assert!(MicroKernel::available().contains(&MicroKernel::best_available()));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MicroKernel::Scalar.name(), "scalar");
        assert_eq!(MicroKernel::Avx2.name(), "avx2");
        assert_eq!(MicroKernel::Avx512.name(), "avx512");
        assert_eq!(MicroKernel::Avx2.to_string(), "avx2");
    }

    #[test]
    fn global_selection_install_and_clear() {
        clear_global_microkernel();
        assert_eq!(global_microkernel(), MicroKernel::best_available());
        set_global_microkernel(MicroKernel::Scalar);
        assert_eq!(global_microkernel(), MicroKernel::Scalar);
        set_global_microkernel(MicroKernel::Avx2);
        assert_eq!(global_microkernel(), MicroKernel::Avx2);
        clear_global_microkernel();
        assert_eq!(global_microkernel(), MicroKernel::best_available());
    }

    /// Every selectable variant must produce bit-identical accumulators to
    /// the scalar kernel on an asymmetric panel (k straddling nothing in
    /// particular, values chosen to make rounding order visible).
    #[test]
    fn all_variants_match_scalar_bitwise_f64() {
        let kcb = 13;
        let apan: Vec<f64> = (0..kcb * MR)
            .map(|i| (i as f64).mul_add(0.37, -4.2) / 3.0)
            .collect();
        let bpan: Vec<f64> = (0..kcb * NR)
            .map(|i| (i as f64).mul_add(-0.91, 2.17) / 7.0)
            .collect();
        let mut want = [0.25f64; MR * NR];
        scalar_kernel(kcb, &apan, &bpan, &mut want);
        for mk in MicroKernel::available() {
            let mut got = [0.25f64; MR * NR];
            resolve::<f64>(mk)(kcb, &apan, &bpan, &mut got);
            for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    w.to_bits(),
                    g.to_bits(),
                    "variant {mk} differs from scalar at acc[{i}]"
                );
            }
        }
    }

    #[test]
    fn all_variants_match_scalar_bitwise_f32() {
        let kcb = 9;
        let apan: Vec<f32> = (0..kcb * MR).map(|i| (i as f32) * 0.311 - 7.3).collect();
        let bpan: Vec<f32> = (0..kcb * NR).map(|i| 1.0 / (i as f32 + 0.5)).collect();
        let mut want = [-1.5f32; MR * NR];
        scalar_kernel(kcb, &apan, &bpan, &mut want);
        for mk in MicroKernel::available() {
            let mut got = [-1.5f32; MR * NR];
            resolve::<f32>(mk)(kcb, &apan, &bpan, &mut got);
            for (w, g) in want.iter().zip(got.iter()) {
                assert_eq!(w.to_bits(), g.to_bits(), "variant {mk} differs (f32)");
            }
        }
    }

    #[test]
    fn kcb_zero_is_a_noop() {
        let mut acc = [3.25f64; MR * NR];
        for mk in MicroKernel::available() {
            resolve::<f64>(mk)(0, &[], &[], &mut acc);
            assert!(acc.iter().all(|&x| x == 3.25), "k == 0 must not touch acc");
        }
    }

    #[test]
    fn unavailable_variants_resolve_to_scalar() {
        // Installing a variant that this binary/CPU cannot run must not
        // change results — dispatch degrades to scalar.
        let kcb = 4;
        let apan = vec![1.5f64; kcb * MR];
        let bpan = vec![-0.25f64; kcb * NR];
        let mut want = [0.0f64; MR * NR];
        scalar_kernel(kcb, &apan, &bpan, &mut want);
        for mk in [MicroKernel::Avx2, MicroKernel::Avx512] {
            let mut got = [0.0f64; MR * NR];
            resolve::<f64>(mk)(kcb, &apan, &bpan, &mut got);
            assert_eq!(want, got);
        }
    }
}
