//! Triangular solve with multiple right-hand sides (all 16 BLAS variants).

use crate::gemm::Transpose;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Which side the triangular matrix multiplies from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A) X = alpha B`.
    Left,
    /// Solve `X op(A) = alpha B`.
    Right,
}

/// Which triangle of the matrix holds the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Whether the diagonal is implicitly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are read from the matrix.
    NonUnit,
    /// Diagonal entries are assumed to be one (LU's unit-lower factor).
    Unit,
}

/// Solves `op(A) X = alpha B` (left) or `X op(A) = alpha B` (right), with
/// `A` triangular; `X` overwrites `B`.
///
/// Entries of `A` outside the `uplo` triangle are never read.
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Transpose,
    diag: Diag,
    alpha: T,
    a: &Matrix<T>,
    b: &mut Matrix<T>,
) {
    assert!(a.is_square(), "triangular matrix must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trsm left: B row count mismatch"),
        Side::Right => assert_eq!(b.cols(), n, "trsm right: B col count mismatch"),
    }
    let nrhs = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    let _scope = xsc_metrics::record(
        "trsm",
        xsc_metrics::traffic::trsm(n, nrhs, std::mem::size_of::<T>() as u64),
    );
    if alpha != T::one() {
        b.scale(alpha);
    }
    match side {
        Side::Left => {
            for j in 0..b.cols() {
                let col = b.col_mut(j);
                trsv(uplo, trans, diag, a, col);
            }
        }
        Side::Right => trsm_right(uplo, trans, diag, a, b),
    }
}

/// Triangular solve for a single vector: `op(A) x = b`, `x` overwrites `b`.
pub fn trsv<T: Scalar>(uplo: Uplo, trans: Transpose, diag: Diag, a: &Matrix<T>, x: &mut [T]) {
    let n = a.rows();
    assert_eq!(x.len(), n, "trsv length mismatch");
    match (uplo, trans) {
        // Forward substitution, column-oriented.
        (Uplo::Lower, Transpose::No) => {
            for j in 0..n {
                if diag == Diag::NonUnit {
                    x[j] /= a.get(j, j);
                }
                let xj = x[j];
                let acol = a.col(j);
                for i in j + 1..n {
                    x[i] = (-xj).mul_add(acol[i], x[i]);
                }
            }
        }
        // L^T x = b: backward, dot-product form over columns of L.
        (Uplo::Lower, Transpose::Yes) => {
            for j in (0..n).rev() {
                let acol = a.col(j);
                let mut acc = x[j];
                for i in j + 1..n {
                    acc = (-acol[i]).mul_add(x[i], acc);
                }
                x[j] = if diag == Diag::NonUnit {
                    acc / acol[j]
                } else {
                    acc
                };
            }
        }
        // Backward substitution, column-oriented.
        (Uplo::Upper, Transpose::No) => {
            for j in (0..n).rev() {
                if diag == Diag::NonUnit {
                    x[j] /= a.get(j, j);
                }
                let xj = x[j];
                let acol = a.col(j);
                for i in 0..j {
                    x[i] = (-xj).mul_add(acol[i], x[i]);
                }
            }
        }
        // U^T x = b: forward, dot-product form over columns of U.
        (Uplo::Upper, Transpose::Yes) => {
            for j in 0..n {
                let acol = a.col(j);
                let mut acc = x[j];
                for (i, &aij) in acol.iter().enumerate().take(j) {
                    acc = (-aij).mul_add(x[i], acc);
                }
                x[j] = if diag == Diag::NonUnit {
                    acc / acol[j]
                } else {
                    acc
                };
            }
        }
    }
}

/// Right-side solve `X op(A) = B`, processed as a column recurrence so every
/// update is a stride-1 axpy on a column of `X`.
fn trsm_right<T: Scalar>(
    uplo: Uplo,
    trans: Transpose,
    diag: Diag,
    a: &Matrix<T>,
    b: &mut Matrix<T>,
) {
    let n = a.rows();
    let m = b.rows();
    // Effective upper/lower structure of op(A) as a right factor determines
    // the sweep direction: forward when op(A) is upper, backward when lower.
    // X * op(A) = B, column j of B: sum_k X[:,k] * op(A)[k,j].
    let forward = matches!(
        (uplo, trans),
        (Uplo::Upper, Transpose::No) | (Uplo::Lower, Transpose::Yes)
    );
    let opa = |k: usize, j: usize| -> T {
        match trans {
            Transpose::No => a.get(k, j),
            Transpose::Yes => a.get(j, k),
        }
    };
    let order: Vec<usize> = if forward {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    for &j in &order {
        // X[:,j] = (B[:,j] - sum_{k already solved} X[:,k] * op(A)[k,j]) / op(A)[j,j]
        let ks: Vec<usize> = if forward {
            (0..j).collect()
        } else {
            (j + 1..n).collect()
        };
        for k in ks {
            let s = opa(k, j);
            if s == T::zero() {
                continue;
            }
            let (xk, xj) = b.two_cols_mut(k, j);
            for i in 0..m {
                xj[i] = (-s).mul_add(xk[i], xj[i]);
            }
        }
        if diag == Diag::NonUnit {
            let d = opa(j, j);
            let xj = b.col_mut(j);
            for v in xj.iter_mut() {
                *v /= d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use crate::gen;

    /// Builds a well-conditioned triangular matrix with the other triangle
    /// filled with garbage (to verify it is never read).
    fn tri(n: usize, uplo: Uplo, unit: bool, seed: u64) -> Matrix<f64> {
        let mut a = gen::random_matrix::<f64>(n, n, seed);
        for i in 0..n {
            a.set(i, i, if unit { f64::NAN } else { 2.0 + i as f64 * 0.1 });
            for j in 0..n {
                let in_tri = match uplo {
                    Uplo::Lower => i >= j,
                    Uplo::Upper => i <= j,
                };
                if !in_tri && i != j {
                    a.set(i, j, f64::NAN); // poison: must never be read
                }
            }
        }
        a
    }

    /// Clean copy of the triangle for building reference products.
    fn tri_clean(a: &Matrix<f64>, uplo: Uplo, unit: bool) -> Matrix<f64> {
        let n = a.rows();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if unit {
                    1.0
                } else {
                    a.get(i, j)
                }
            } else {
                let in_tri = match uplo {
                    Uplo::Lower => i > j,
                    Uplo::Upper => i < j,
                };
                if in_tri {
                    a.get(i, j)
                } else {
                    0.0
                }
            }
        })
    }

    #[test]
    fn all_sixteen_variants_solve_correctly() {
        let n = 11;
        let m = 7;
        for &side in &[Side::Left, Side::Right] {
            for &uplo in &[Uplo::Lower, Uplo::Upper] {
                for &trans in &[Transpose::No, Transpose::Yes] {
                    for &diag in &[Diag::NonUnit, Diag::Unit] {
                        let a = tri(n, uplo, diag == Diag::Unit, 42);
                        let t = tri_clean(&a, uplo, diag == Diag::Unit);
                        let (br, bc) = match side {
                            Side::Left => (n, m),
                            Side::Right => (m, n),
                        };
                        let x_true = gen::random_matrix::<f64>(br, bc, 43);
                        // B = op(T) * X (left) or X * op(T) (right).
                        let mut b = Matrix::zeros(br, bc);
                        match side {
                            Side::Left => gemm(trans, Transpose::No, 1.0, &t, &x_true, 0.0, &mut b),
                            Side::Right => {
                                gemm(Transpose::No, trans, 1.0, &x_true, &t, 0.0, &mut b)
                            }
                        }
                        trsm(side, uplo, trans, diag, 1.0, &a, &mut b);
                        assert!(
                            b.approx_eq(&x_true, 1e-9),
                            "trsm failed for {side:?} {uplo:?} {trans:?} {diag:?}: diff {}",
                            b.max_abs_diff(&x_true)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alpha_scales_rhs() {
        let a = Matrix::<f64>::identity(3);
        let mut b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let expect = Matrix::from_fn(3, 2, |i, j| 2.0 * (i + j) as f64);
        trsm(
            Side::Left,
            Uplo::Lower,
            Transpose::No,
            Diag::NonUnit,
            2.0,
            &a,
            &mut b,
        );
        assert!(b.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn trsv_lower_forward_hand_checked() {
        // L = [[2, 0], [1, 4]], b = [2, 9] => x = [1, 2].
        let mut l = Matrix::<f64>::zeros(2, 2);
        l.set(0, 0, 2.0);
        l.set(1, 0, 1.0);
        l.set(1, 1, 4.0);
        let mut x = [2.0, 9.0];
        trsv(Uplo::Lower, Transpose::No, Diag::NonUnit, &l, &mut x);
        assert!((x[0] - 1.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square_triangle() {
        let a = Matrix::<f64>::zeros(3, 4);
        let mut b = Matrix::<f64>::zeros(3, 2);
        trsm(
            Side::Left,
            Uplo::Lower,
            Transpose::No,
            Diag::NonUnit,
            1.0,
            &a,
            &mut b,
        );
    }
}
