//! Precision-generic scalar traits.
//!
//! The keynote's mixed-precision thesis requires running the *same* kernels
//! at several precisions. [`Scalar`] captures the arithmetic surface the
//! kernels need; [`Float`] adds the floating-point metadata (machine epsilon,
//! conversions) that iterative refinement relies on.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Arithmetic surface required by every dense kernel in `xsc`.
///
/// Implemented for `f32` and `f64`; `xsc-precision` adds an emulated half
/// precision on top of the same trait.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Lossless widening to `f64` (used for norms and residual accounting).
    fn to_f64(self) -> f64;
    /// Narrowing conversion from `f64` (rounds to the target precision).
    fn from_f64(v: f64) -> Self;
    /// `true` if the value is NaN or infinite.
    fn not_finite(self) -> bool;
}

/// Floating-point metadata needed by iterative refinement and conditioning
/// analysis.
pub trait Float: Scalar {
    /// Machine epsilon (unit roundoff times two) of this precision.
    fn epsilon() -> Self;
    /// Human-readable precision name used in benchmark tables.
    fn precision_name() -> &'static str;
    /// Number of significand bits (including the implicit bit).
    fn mantissa_bits() -> u32;
}

impl Scalar for f64 {
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Plain multiply-add: letting LLVM keep separate mul/add vectorizes
        // better than forcing a fused instruction on targets without FMA.
        self * a + b
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn not_finite(self) -> bool {
        !self.is_finite()
    }
}

impl Scalar for f32 {
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn not_finite(self) -> bool {
        !self.is_finite()
    }
}

impl Float for f64 {
    fn epsilon() -> Self {
        f64::EPSILON
    }
    fn precision_name() -> &'static str {
        "fp64"
    }
    fn mantissa_bits() -> u32 {
        53
    }
}

impl Float for f32 {
    fn epsilon() -> Self {
        f32::EPSILON
    }
    fn precision_name() -> &'static str {
        "fp32"
    }
    fn mantissa_bits() -> u32 {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(xs: &[T]) -> T {
        xs.iter().copied().sum()
    }

    #[test]
    fn scalar_identities_f64() {
        assert_eq!(f64::zero() + f64::one(), 1.0);
        assert_eq!((-3.5f64).abs(), 3.5);
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!(2.0f64.mul_add(3.0, 1.0), 7.0);
    }

    #[test]
    fn scalar_identities_f32() {
        assert_eq!(f32::zero() + f32::one(), 1.0);
        assert_eq!((-3.5f32).abs(), 3.5);
        assert_eq!(4.0f32.sqrt(), 2.0);
        assert_eq!(2.0f32.mul_add(3.0, 1.0), 7.0);
    }

    #[test]
    fn generic_sum_works_for_both_precisions() {
        assert_eq!(generic_sum(&[1.0f64, 2.0, 3.0]), 6.0);
        assert_eq!(generic_sum(&[1.0f32, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn float_metadata() {
        assert!(f32::epsilon().to_f64() > f64::epsilon());
        assert_eq!(f64::precision_name(), "fp64");
        assert_eq!(f32::mantissa_bits(), 24);
    }

    #[test]
    fn conversions_round_trip_through_f64() {
        let x = 0.123456789f64;
        assert_eq!(f64::from_f64(x.to_f64()), x);
        let y = f32::from_f64(x);
        assert!((y.to_f64() - x).abs() < 1e-7);
    }

    #[test]
    fn not_finite_detects_nan_and_inf() {
        assert!(f64::NAN.not_finite());
        assert!(f64::INFINITY.not_finite());
        assert!(!1.0f64.not_finite());
        assert!(f32::NAN.not_finite());
    }
}
