//! Tiled matrix storage for PLASMA-style algorithms.
//!
//! A [`TileMatrix`] partitions an `m × n` matrix into `nb × nb` tiles, each
//! a contiguous column-major [`Matrix`] behind its own lock. Tasks in an
//! `xsc-runtime` graph reference tiles by [`TileIndex`]; the runtime's
//! dependence analysis guarantees lock acquisitions never contend along a
//! correct schedule, so the lock is a cheap safety net rather than a
//! synchronization mechanism.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use parking_lot::RwLock;
use std::sync::Arc;

/// `(row-tile, col-tile)` coordinate of a tile.
pub type TileIndex = (usize, usize);

/// A matrix stored as a grid of independent tiles.
pub struct TileMatrix<T> {
    m: usize,
    n: usize,
    nb: usize,
    mt: usize,
    nt: usize,
    tiles: Vec<Arc<RwLock<Matrix<T>>>>,
}

impl<T: Scalar> TileMatrix<T> {
    /// Creates a zero-filled tiled matrix.
    pub fn zeros(m: usize, n: usize, nb: usize) -> Self {
        assert!(nb > 0, "tile size must be positive");
        assert!(m > 0 && n > 0, "matrix dimensions must be positive");
        let mt = m.div_ceil(nb);
        let nt = n.div_ceil(nb);
        let mut tiles = Vec::with_capacity(mt * nt);
        for j in 0..nt {
            for i in 0..mt {
                let tm = nb.min(m - i * nb);
                let tn = nb.min(n - j * nb);
                tiles.push(Arc::new(RwLock::new(Matrix::zeros(tm, tn))));
            }
        }
        TileMatrix {
            m,
            n,
            nb,
            mt,
            nt,
            tiles,
        }
    }

    /// Partitions a dense matrix into tiles (copies the data).
    pub fn from_matrix(a: &Matrix<T>, nb: usize) -> Self {
        let tm = TileMatrix::zeros(a.rows(), a.cols(), nb);
        for ti in 0..tm.mt {
            for tj in 0..tm.nt {
                let (r0, c0) = (ti * nb, tj * nb);
                let (tr, tc) = tm.tile_dims(ti, tj);
                let mut tile = tm.tiles[tm.linear(ti, tj)].write();
                a.copy_block_into(r0, c0, tr, tc, &mut tile, 0, 0);
            }
        }
        tm
    }

    /// Gathers the tiles back into a dense matrix.
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.m, self.n);
        for ti in 0..self.mt {
            for tj in 0..self.nt {
                let (tr, tc) = self.tile_dims(ti, tj);
                let tile = self.tiles[self.linear(ti, tj)].read();
                tile.copy_block_into(0, 0, tr, tc, &mut out, ti * self.nb, tj * self.nb);
            }
        }
        out
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Total columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of tile rows.
    pub fn tile_rows(&self) -> usize {
        self.mt
    }

    /// Number of tile columns.
    pub fn tile_cols(&self) -> usize {
        self.nt
    }

    /// Dimensions of tile `(i, j)` (edge tiles may be smaller than `nb`).
    pub fn tile_dims(&self, i: usize, j: usize) -> (usize, usize) {
        assert!(i < self.mt && j < self.nt, "tile index out of range");
        (
            self.nb.min(self.m - i * self.nb),
            self.nb.min(self.n - j * self.nb),
        )
    }

    #[inline]
    fn linear(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.mt && j < self.nt);
        i + j * self.mt
    }

    /// Shared handle to tile `(i, j)`.
    pub fn tile(&self, i: usize, j: usize) -> Arc<RwLock<Matrix<T>>> {
        Arc::clone(&self.tiles[self.linear(i, j)])
    }

    /// Stable data id for tile `(i, j)`, for use as an `xsc-runtime`
    /// dependence-analysis key.
    pub fn data_id(&self, i: usize, j: usize) -> usize {
        self.linear(i, j)
    }

    /// Number of tiles (= one past the largest [`Self::data_id`]).
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }
}

impl<T: Scalar> Clone for TileMatrix<T> {
    /// Deep copy: the clone owns fresh tiles (handles are *not* shared).
    fn clone(&self) -> Self {
        TileMatrix {
            m: self.m,
            n: self.n,
            nb: self.nb,
            mt: self.mt,
            nt: self.nt,
            tiles: self
                .tiles
                .iter()
                .map(|t| Arc::new(RwLock::new(t.read().clone())))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip_exact_division() {
        let a = gen::random_matrix::<f64>(12, 8, 1);
        let t = TileMatrix::from_matrix(&a, 4);
        assert_eq!(t.tile_rows(), 3);
        assert_eq!(t.tile_cols(), 2);
        assert!(t.to_matrix().approx_eq(&a, 0.0));
    }

    #[test]
    fn round_trip_ragged_edges() {
        let a = gen::random_matrix::<f64>(13, 9, 2);
        let t = TileMatrix::from_matrix(&a, 5);
        assert_eq!(t.tile_rows(), 3);
        assert_eq!(t.tile_cols(), 2);
        assert_eq!(t.tile_dims(2, 1), (3, 4));
        assert!(t.to_matrix().approx_eq(&a, 0.0));
    }

    #[test]
    fn tile_contents_match_blocks() {
        let a = gen::random_matrix::<f64>(10, 10, 3);
        let t = TileMatrix::from_matrix(&a, 4);
        let tile = t.tile(1, 2);
        let tile = tile.read();
        assert_eq!(tile.rows(), 4);
        assert_eq!(tile.cols(), 2);
        assert_eq!(tile.get(0, 0), a.get(4, 8));
        assert_eq!(tile.get(3, 1), a.get(7, 9));
    }

    #[test]
    fn data_ids_are_unique_and_dense() {
        let t = TileMatrix::<f64>::zeros(9, 9, 3);
        let mut seen = vec![false; t.num_tiles()];
        for i in 0..t.tile_rows() {
            for j in 0..t.tile_cols() {
                let id = t.data_id(i, j);
                assert!(!seen[id], "duplicate id {id}");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mutating_a_tile_is_visible_in_gather() {
        let t = TileMatrix::<f64>::zeros(6, 6, 3);
        {
            let h = t.tile(1, 1);
            h.write().set(2, 2, 7.5);
        }
        let m = t.to_matrix();
        assert_eq!(m.get(5, 5), 7.5);
    }

    #[test]
    fn clone_is_deep() {
        let t = TileMatrix::<f64>::zeros(4, 4, 2);
        let c = t.clone();
        t.tile(0, 0).write().set(0, 0, 1.0);
        assert_eq!(c.tile(0, 0).read().get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn zero_tile_size_rejected() {
        let _ = TileMatrix::<f64>::zeros(4, 4, 0);
    }
}
