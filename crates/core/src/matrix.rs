//! Column-major dense matrix storage.
//!
//! Column-major order matches the classic HPC numerical stack (BLAS, LAPACK,
//! PLASMA, HPL) whose algorithms this project reproduces, so the blocked
//! kernels translate one-to-one from the literature.

use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix stored in column-major order.
///
/// Element `(i, j)` lives at linear offset `i + j * rows`.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![T::zero(); rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { data, rows, cols }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { T::one() } else { T::zero() })
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the underlying column-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying column-major buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Element read with bounds checking in debug builds.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Element write with bounds checking in debug builds.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// Column `j` as a slice (length `rows`).
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[T] {
        let r = self.rows;
        &self.data[j * r..(j + 1) * r]
    }

    /// Column `j` as a mutable slice (length `rows`).
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Two distinct mutable column slices (`ja != jb`).
    pub fn two_cols_mut(&mut self, ja: usize, jb: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(ja, jb, "two_cols_mut requires distinct columns");
        let r = self.rows;
        if ja < jb {
            let (lo, hi) = self.data.split_at_mut(jb * r);
            (&mut lo[ja * r..(ja + 1) * r], &mut hi[..r])
        } else {
            let (lo, hi) = self.data.split_at_mut(ja * r);
            let b = &mut lo[jb * r..(jb + 1) * r];
            (&mut hi[..r], b)
        }
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Copies the rectangular block starting at `(src_i, src_j)` of size
    /// `(m, n)` into `dst` at `(dst_i, dst_j)`.
    #[allow(clippy::too_many_arguments)] // two (matrix, i, j) anchors + a shape is the natural signature
    pub fn copy_block_into(
        &self,
        src_i: usize,
        src_j: usize,
        m: usize,
        n: usize,
        dst: &mut Matrix<T>,
        dst_i: usize,
        dst_j: usize,
    ) {
        assert!(
            src_i + m <= self.rows && src_j + n <= self.cols,
            "source block out of range"
        );
        assert!(
            dst_i + m <= dst.rows && dst_j + n <= dst.cols,
            "destination block out of range"
        );
        for j in 0..n {
            let src_col = &self.col(src_j + j)[src_i..src_i + m];
            let dst_col = &mut dst.col_mut(dst_j + j)[dst_i..dst_i + m];
            dst_col.copy_from_slice(src_col);
        }
    }

    /// Extracts the block starting at `(i, j)` of size `(m, n)` as a new matrix.
    pub fn block(&self, i: usize, j: usize, m: usize, n: usize) -> Matrix<T> {
        let mut out = Matrix::zeros(m, n);
        self.copy_block_into(i, j, m, n, &mut out, 0, 0);
        out
    }

    /// Swaps rows `ra` and `rb` across all columns (LU partial pivoting).
    pub fn swap_rows(&mut self, ra: usize, rb: usize) {
        if ra == rb {
            return;
        }
        assert!(ra < self.rows && rb < self.rows);
        for j in 0..self.cols {
            self.data.swap(ra + j * self.rows, rb + j * self.rows);
        }
    }

    /// Swaps rows `ra` and `rb` only within columns `[j0, j1)`.
    pub fn swap_rows_in_cols(&mut self, ra: usize, rb: usize, j0: usize, j1: usize) {
        if ra == rb {
            return;
        }
        assert!(ra < self.rows && rb < self.rows && j1 <= self.cols && j0 <= j1);
        for j in j0..j1 {
            self.data.swap(ra + j * self.rows, rb + j * self.rows);
        }
    }

    /// Adds `alpha * other` element-wise into `self`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: T, other: &Matrix<T>) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (x, &y) in self.data.iter_mut().zip(other.data.iter()) {
            *x = alpha.mul_add(y, *x);
        }
    }

    /// Largest absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// `true` if all corresponding entries differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix<T>, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }

    /// `true` if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| x.not_finite())
    }

    /// Converts every entry to another scalar type via `f64`.
    pub fn convert<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            data: self.data.iter().map(|x| U::from_f64(x.to_f64())).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Symmetrizes in place: `A <- (A + A^T) / 2`. Requires a square matrix.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        let half = T::from_f64(0.5);
        for j in 0..self.cols {
            for i in 0..j {
                let v = (self.get(i, j) + self.get(j, i)) * half;
                self.set(i, j, v);
                self.set(j, i, v);
            }
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i + j * self.rows]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i + j * self.rows]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>12.5} ", self.get(i, j))?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::<f64>::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 0), 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn column_major_layout() {
        // [[1, 3], [2, 4]] stored as [1, 2, 3, 4].
        let m = Matrix::from_col_major(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.col(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_col_major_checks_length() {
        let _ = Matrix::from_col_major(2, 2, vec![1.0f64, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        let mut m = m;
        m[(2, 1)] = -1.0;
        assert_eq!(m.get(2, 1), -1.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(4, 7, |i, j| (i * 100 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(5, 2), m.get(2, 5));
    }

    #[test]
    fn block_copy_round_trip() {
        let m = Matrix::from_fn(6, 6, |i, j| (i + 10 * j) as f64);
        let b = m.block(2, 3, 3, 2);
        assert_eq!(b.get(0, 0), m.get(2, 3));
        assert_eq!(b.get(2, 1), m.get(4, 4));

        let mut dst = Matrix::zeros(6, 6);
        b.copy_block_into(0, 0, 3, 2, &mut dst, 2, 3);
        assert_eq!(dst.get(4, 4), m.get(4, 4));
        assert_eq!(dst.get(0, 0), 0.0);
    }

    #[test]
    fn swap_rows_full_and_partial() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let orig = m.clone();
        m.swap_rows(0, 2);
        for j in 0..3 {
            assert_eq!(m.get(0, j), orig.get(2, j));
            assert_eq!(m.get(2, j), orig.get(0, j));
        }
        let mut m = orig.clone();
        m.swap_rows_in_cols(0, 2, 1, 3);
        assert_eq!(m.get(0, 0), orig.get(0, 0)); // column 0 untouched
        assert_eq!(m.get(0, 1), orig.get(2, 1));
    }

    #[test]
    fn axpy_and_diff() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut c = a.clone();
        c.axpy(2.0, &a);
        assert_eq!(c.get(1, 1), 6.0);
        assert_eq!(c.max_abs_diff(&a), 4.0);
        assert!(a.approx_eq(&a, 0.0));
        assert!(!c.approx_eq(&a, 1.0));
    }

    #[test]
    fn two_cols_mut_both_orders() {
        let mut m = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        {
            let (a, b) = m.two_cols_mut(0, 2);
            assert_eq!(a, &[0.0, 1.0]);
            assert_eq!(b, &[20.0, 21.0]);
            std::mem::swap(&mut a[0], &mut b[0]);
        }
        assert_eq!(m.get(0, 0), 20.0);
        let (b, a) = m.two_cols_mut(2, 0);
        assert_eq!(a[1], 1.0);
        assert_eq!(b[1], 21.0);
    }

    #[test]
    fn convert_between_precisions() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64 + 0.25);
        let s: Matrix<f32> = m.convert();
        let back: Matrix<f64> = s.convert();
        assert!(m.approx_eq(&back, 1e-6));
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut m = Matrix::from_fn(4, 4, |i, j| (3 * i + j) as f64);
        m.symmetrize();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(1, 0, f64::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn scale_and_fill() {
        let mut m = Matrix::from_fn(2, 2, |_, _| 2.0f64);
        m.scale(3.0);
        assert!(m.as_slice().iter().all(|&x| x == 6.0));
        m.fill(1.0);
        assert!(m.as_slice().iter().all(|&x| x == 1.0));
    }
}
