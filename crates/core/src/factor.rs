//! Sequential LAPACK-style factorizations: Cholesky (`potrf`) and LU
//! (`getrf`), unblocked and blocked, plus their solve drivers.
//!
//! These are the *reference engines*: `xsc-dense` layers the tiled/DAG and
//! fork-join parallel versions on top, and every parallel result is tested
//! against these.

use crate::error::{Error, Result};
use crate::gemm::{gemm, Transpose};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::syrk::syrk;
use crate::trsm::{trsm, trsv, Diag, Side, Uplo};

/// Unblocked right-looking Cholesky: overwrites the lower triangle of `a`
/// with `L` such that `A = L L^T`. The strict upper triangle is not
/// referenced or modified.
pub fn potrf_unblocked<T: Scalar>(a: &mut Matrix<T>) -> Result<()> {
    assert!(a.is_square(), "potrf requires a square matrix");
    let n = a.rows();
    for j in 0..n {
        let d = a.get(j, j);
        if d.to_f64() <= 0.0 || d.not_finite() {
            return Err(Error::NotPositiveDefinite { pivot: j });
        }
        let l = d.sqrt();
        a.set(j, j, l);
        let inv = T::one() / l;
        for i in j + 1..n {
            let v = a.get(i, j) * inv;
            a.set(i, j, v);
        }
        // Trailing update: A[j+1.., j+1..] -= l_j * l_j^T (lower part only).
        for k in j + 1..n {
            let s = a.get(k, j);
            if s == T::zero() {
                continue;
            }
            for i in k..n {
                let v = a.get(i, j);
                let c = a.get(i, k);
                a.set(i, k, (-s).mul_add(v, c));
            }
        }
    }
    Ok(())
}

/// Blocked right-looking Cholesky with panel width `nb`.
pub fn potrf_blocked<T: Scalar>(a: &mut Matrix<T>, nb: usize) -> Result<()> {
    assert!(a.is_square(), "potrf requires a square matrix");
    assert!(nb > 0, "block size must be positive");
    let n = a.rows();
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        // Diagonal block.
        let mut akk = a.block(k, k, kb, kb);
        potrf_unblocked(&mut akk).map_err(|e| match e {
            Error::NotPositiveDefinite { pivot } => Error::NotPositiveDefinite { pivot: k + pivot },
            other => other,
        })?;
        akk.copy_block_into(0, 0, kb, kb, a, k, k);
        let m2 = n - k - kb;
        if m2 > 0 {
            // Panel below: A21 <- A21 * L11^-T.
            let mut a21 = a.block(k + kb, k, m2, kb);
            trsm(
                Side::Right,
                Uplo::Lower,
                Transpose::Yes,
                Diag::NonUnit,
                T::one(),
                &akk,
                &mut a21,
            );
            a21.copy_block_into(0, 0, m2, kb, a, k + kb, k);
            // Trailing: A22 <- A22 - A21 * A21^T (lower triangle).
            let mut a22 = a.block(k + kb, k + kb, m2, m2);
            syrk(
                Uplo::Lower,
                Transpose::No,
                -T::one(),
                &a21,
                T::one(),
                &mut a22,
            );
            a22.copy_block_into(0, 0, m2, m2, a, k + kb, k + kb);
        }
        k += kb;
    }
    Ok(())
}

/// Solves `A x = b` given the Cholesky factor produced by `potrf_*`
/// (forward then backward substitution). `b` is overwritten with `x`.
pub fn potrf_solve<T: Scalar>(l: &Matrix<T>, b: &mut [T]) {
    trsv(Uplo::Lower, Transpose::No, Diag::NonUnit, l, b);
    trsv(Uplo::Lower, Transpose::Yes, Diag::NonUnit, l, b);
}

/// Unblocked right-looking LU with partial pivoting on columns
/// `[j0, j0+ncols)` of the full matrix `a`, pivoting over rows
/// `[j0, a.rows())`. Row swaps are applied to the *entire* row (HPL-style
/// full-row swaps) and recorded in `piv` as absolute row indices.
///
/// This in-place panel form is shared by the unblocked and blocked drivers
/// here and by the thread-parallel HPL driver in `xsc-dense`.
pub fn getrf_panel<T: Scalar>(
    a: &mut Matrix<T>,
    j0: usize,
    ncols: usize,
    piv: &mut [usize],
) -> Result<()> {
    let m = a.rows();
    for jj in 0..ncols {
        let j = j0 + jj;
        // Pivot search in column j, rows j..m.
        let (p, pmax) = {
            let col = &a.col(j)[j..m];
            let mut p = 0usize;
            let mut pmax = col[0].abs();
            for (i, &v) in col.iter().enumerate().skip(1) {
                let av = v.abs();
                if av > pmax {
                    pmax = av;
                    p = i;
                }
            }
            (j + p, pmax)
        };
        piv[j] = p;
        if pmax.to_f64() == 0.0 {
            return Err(Error::Singular { pivot: j });
        }
        a.swap_rows(j, p);
        {
            let col = &mut a.col_mut(j)[j..m];
            let inv = T::one() / col[0];
            for v in col[1..].iter_mut() {
                *v *= inv;
            }
        }
        // Rank-1 update restricted to the panel columns (stride-1 axpys).
        for c in jj + 1..ncols {
            let jc = j0 + c;
            let (lcol, ccol) = a.two_cols_mut(j, jc);
            let s = ccol[j];
            if s == T::zero() {
                continue;
            }
            let l = &lcol[j + 1..m];
            let x = &mut ccol[j + 1..m];
            for (xi, &li) in x.iter_mut().zip(l.iter()) {
                *xi = (-s).mul_add(li, *xi);
            }
        }
    }
    Ok(())
}

/// Unblocked LU with partial pivoting of a *rectangular* `m × b` panel
/// (`m >= b`): overwrites `a` with the factors of its first `b` columns and
/// returns the pivot swap sequence. Used by tournament pivoting (CALU) to
/// elect candidate rows.
pub fn getrf_unblocked_rect<T: Scalar>(a: &mut Matrix<T>) -> Result<Vec<usize>> {
    let b = a.cols();
    assert!(a.rows() >= b, "panel must be at least as tall as wide");
    let mut piv = vec![0usize; b];
    getrf_panel(a, 0, b, &mut piv)?;
    Ok(piv)
}

/// Unblocked LU with partial pivoting: overwrites `a` with `L` (unit lower)
/// and `U`; returns the pivot vector (`piv[k]` = row swapped with row `k`).
pub fn getrf_unblocked<T: Scalar>(a: &mut Matrix<T>) -> Result<Vec<usize>> {
    assert!(a.is_square(), "getrf requires a square matrix");
    let n = a.rows();
    let mut piv = vec![0usize; n];
    getrf_panel(a, 0, n, &mut piv)?;
    Ok(piv)
}

/// LU without pivoting (numerically safe only for special matrices such as
/// diagonally dominant or randomized/butterfly-preconditioned ones — the
/// keynote's motivation for randomization).
pub fn getrf_nopiv<T: Scalar>(a: &mut Matrix<T>) -> Result<()> {
    assert!(a.is_square(), "getrf requires a square matrix");
    let n = a.rows();
    for j in 0..n {
        let pivval = a.get(j, j);
        if pivval.abs().to_f64() == 0.0 {
            return Err(Error::Singular { pivot: j });
        }
        let inv = T::one() / pivval;
        for i in j + 1..n {
            let v = a.get(i, j) * inv;
            a.set(i, j, v);
        }
        for c in j + 1..n {
            let s = a.get(j, c);
            if s == T::zero() {
                continue;
            }
            for i in j + 1..n {
                let lv = a.get(i, j);
                let v = a.get(i, c);
                a.set(i, c, (-s).mul_add(lv, v));
            }
        }
    }
    Ok(())
}

/// Blocked right-looking LU with partial pivoting — the sequential core of
/// the HPL-like benchmark. Panel factorization, full-row swaps, `trsm` on
/// the row panel, `gemm` on the trailing submatrix.
pub fn getrf_blocked<T: Scalar>(a: &mut Matrix<T>, nb: usize) -> Result<Vec<usize>> {
    assert!(a.is_square(), "getrf requires a square matrix");
    assert!(nb > 0, "block size must be positive");
    let n = a.rows();
    let mut piv = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        // Panel columns [k, k+kb): factor with pivoting over rows [k, n).
        getrf_panel(a, k, kb, &mut piv)?;
        let n2 = n - k - kb;
        if n2 > 0 {
            // U12 <- L11^{-1} * A12 (unit lower triangular solve).
            let l11 = a.block(k, k, kb, kb);
            let mut a12 = a.block(k, k + kb, kb, n2);
            trsm(
                Side::Left,
                Uplo::Lower,
                Transpose::No,
                Diag::Unit,
                T::one(),
                &l11,
                &mut a12,
            );
            a12.copy_block_into(0, 0, kb, n2, a, k, k + kb);
            // A22 <- A22 - L21 * U12.
            let m2 = n - k - kb;
            let l21 = a.block(k + kb, k, m2, kb);
            let mut a22 = a.block(k + kb, k + kb, m2, n2);
            gemm(
                Transpose::No,
                Transpose::No,
                -T::one(),
                &l21,
                &a12,
                T::one(),
                &mut a22,
            );
            a22.copy_block_into(0, 0, m2, n2, a, k + kb, k + kb);
        }
        k += kb;
    }
    Ok(piv)
}

/// Applies the pivot row swaps from `getrf_*` to a right-hand-side vector.
pub fn apply_pivots<T: Scalar>(piv: &[usize], b: &mut [T]) {
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            b.swap(k, p);
        }
    }
}

/// Solves `A x = b` given `getrf_*` output (factor + pivots). `b` is
/// overwritten with `x`.
pub fn getrf_solve<T: Scalar>(lu: &Matrix<T>, piv: &[usize], b: &mut [T]) {
    apply_pivots(piv, b);
    trsv(Uplo::Lower, Transpose::No, Diag::Unit, lu, b);
    trsv(Uplo::Upper, Transpose::No, Diag::NonUnit, lu, b);
}

/// Solves `Aᵀ x = b` given `getrf_*` output. With the convention
/// `P A = L U`, we have `Aᵀ = Uᵀ Lᵀ P`, so the solve is the two transposed
/// triangular solves followed by the *inverse* pivot permutation.
pub fn getrf_solve_transpose<T: Scalar>(lu: &Matrix<T>, piv: &[usize], b: &mut [T]) {
    trsv(Uplo::Upper, Transpose::Yes, Diag::NonUnit, lu, b);
    trsv(Uplo::Lower, Transpose::Yes, Diag::Unit, lu, b);
    for (k, &p) in piv.iter().enumerate().rev() {
        if p != k {
            b.swap(k, p);
        }
    }
}

/// Solves `A x = b` for a no-pivot factorization.
pub fn getrf_nopiv_solve<T: Scalar>(lu: &Matrix<T>, b: &mut [T]) {
    trsv(Uplo::Lower, Transpose::No, Diag::Unit, lu, b);
    trsv(Uplo::Upper, Transpose::No, Diag::NonUnit, lu, b);
}

/// Reconstructs `L * L^T` from a Cholesky factor (testing helper).
pub fn reconstruct_from_cholesky<T: Scalar>(l_packed: &Matrix<T>) -> Matrix<T> {
    let n = l_packed.rows();
    let l = Matrix::from_fn(n, n, |i, j| {
        if i >= j {
            l_packed.get(i, j)
        } else {
            T::zero()
        }
    });
    let mut out = Matrix::zeros(n, n);
    gemm(
        Transpose::No,
        Transpose::Yes,
        T::one(),
        &l,
        &l,
        T::zero(),
        &mut out,
    );
    out
}

/// Reconstructs `P^T L U` (i.e. the original `A`) from LU output
/// (testing helper).
pub fn reconstruct_from_lu<T: Scalar>(lu: &Matrix<T>, piv: &[usize]) -> Matrix<T> {
    let n = lu.rows();
    let l = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            T::one()
        } else if i > j {
            lu.get(i, j)
        } else {
            T::zero()
        }
    });
    let u = Matrix::from_fn(n, n, |i, j| if i <= j { lu.get(i, j) } else { T::zero() });
    let mut plu = Matrix::zeros(n, n);
    gemm(
        Transpose::No,
        Transpose::No,
        T::one(),
        &l,
        &u,
        T::zero(),
        &mut plu,
    );
    // Undo the pivoting: swaps were applied in order k = 0..n, so invert in
    // reverse order.
    for k in (0..n).rev() {
        plu.swap_rows(k, piv[k]);
    }
    plu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::norms;

    #[test]
    fn potrf_unblocked_reconstructs() {
        let a = gen::random_spd::<f64>(24, 1);
        let mut f = a.clone();
        potrf_unblocked(&mut f).unwrap();
        let r = reconstruct_from_cholesky(&f);
        assert!(r.approx_eq(&a, 1e-10), "diff {}", r.max_abs_diff(&a));
    }

    #[test]
    fn potrf_blocked_matches_unblocked() {
        for nb in [1, 3, 8, 64] {
            let a = gen::random_spd::<f64>(25, 2);
            let mut f1 = a.clone();
            let mut f2 = a.clone();
            potrf_unblocked(&mut f1).unwrap();
            potrf_blocked(&mut f2, nb).unwrap();
            // Compare lower triangles.
            for j in 0..25 {
                for i in j..25 {
                    assert!(
                        (f1.get(i, j) - f2.get(i, j)).abs() < 1e-10,
                        "nb={nb} mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = Matrix::<f64>::identity(4);
        a.set(2, 2, -1.0);
        let err = potrf_unblocked(&mut a).unwrap_err();
        assert_eq!(err, Error::NotPositiveDefinite { pivot: 2 });
        // Blocked form reports the same absolute pivot.
        let mut a = Matrix::<f64>::identity(4);
        a.set(2, 2, -1.0);
        let err = potrf_blocked(&mut a, 2).unwrap_err();
        assert_eq!(err, Error::NotPositiveDefinite { pivot: 2 });
    }

    #[test]
    fn potrf_solve_gives_small_residual() {
        let a = gen::random_spd::<f64>(30, 3);
        let b = gen::rhs_for_unit_solution(&a);
        let mut f = a.clone();
        potrf_blocked(&mut f, 8).unwrap();
        let mut x = b.clone();
        potrf_solve(&f, &mut x);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-10);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn getrf_unblocked_reconstructs() {
        let a = gen::random_matrix::<f64>(20, 20, 4);
        let mut f = a.clone();
        let piv = getrf_unblocked(&mut f).unwrap();
        let r = reconstruct_from_lu(&f, &piv);
        assert!(r.approx_eq(&a, 1e-11), "diff {}", r.max_abs_diff(&a));
    }

    #[test]
    fn getrf_blocked_matches_unblocked() {
        for nb in [1, 4, 7, 32] {
            let a = gen::random_matrix::<f64>(23, 23, 5);
            let mut f1 = a.clone();
            let mut f2 = a.clone();
            let p1 = getrf_unblocked(&mut f1).unwrap();
            let p2 = getrf_blocked(&mut f2, nb).unwrap();
            assert_eq!(p1, p2, "nb={nb} pivot sequence differs");
            assert!(f1.approx_eq(&f2, 1e-10), "nb={nb} factors differ");
        }
    }

    #[test]
    fn getrf_solve_recovers_solution() {
        let a = gen::random_matrix::<f64>(40, 40, 6);
        let b = gen::rhs_for_unit_solution(&a);
        let mut f = a.clone();
        let piv = getrf_blocked(&mut f, 8).unwrap();
        let mut x = b.clone();
        getrf_solve(&f, &piv, &mut x);
        assert!(norms::hpl_scaled_residual(&a, &x, &b) < 16.0);
    }

    #[test]
    fn getrf_detects_singularity() {
        let mut a = Matrix::<f64>::zeros(3, 3);
        a.set(0, 0, 1.0);
        a.set(1, 1, 1.0);
        // Column 2 is all zeros.
        let err = getrf_unblocked(&mut a).unwrap_err();
        assert!(matches!(err, Error::Singular { .. }));
    }

    #[test]
    fn nopiv_works_on_diag_dominant() {
        let a = gen::diag_dominant::<f64>(25, 7);
        let b = gen::rhs_for_unit_solution(&a);
        let mut f = a.clone();
        getrf_nopiv(&mut f).unwrap();
        let mut x = b.clone();
        getrf_nopiv_solve(&f, &mut x);
        assert!(norms::relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn pivoting_beats_nopiv_on_adversarial_matrix() {
        // Small leading pivot forces element growth without pivoting.
        let n = 16;
        let mut a = gen::random_matrix::<f64>(n, n, 8);
        a.set(0, 0, 1e-14);
        let b = gen::rhs_for_unit_solution(&a);

        let mut fp = a.clone();
        let piv = getrf_unblocked(&mut fp).unwrap();
        let mut xp = b.clone();
        getrf_solve(&fp, &piv, &mut xp);

        let mut fn_ = a.clone();
        getrf_nopiv(&mut fn_).unwrap();
        let mut xn = b.clone();
        getrf_nopiv_solve(&fn_, &mut xn);

        let rp = norms::relative_residual(&a, &xp, &b);
        let rn = norms::relative_residual(&a, &xn, &b);
        assert!(rp < rn, "pivoted {rp} should beat non-pivoted {rn}");
        assert!(rp < 1e-12);
    }

    #[test]
    fn f32_factorizations_work() {
        let a = gen::random_spd::<f32>(16, 9);
        let mut f = a.clone();
        potrf_blocked(&mut f, 4).unwrap();
        let r = reconstruct_from_cholesky(&f);
        assert!(r.approx_eq(&a, 1e-4));
    }
}
