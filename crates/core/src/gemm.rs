//! General matrix-matrix multiply (the flop furnace of HPL).
//!
//! `gemm` is the compute-bound kernel whose measured rate defines "machine
//! peak" for every %-of-peak experiment in this repository (E01, E10, E11).
//! The implementation is a cache-friendly column-sweep with a 4-way unrolled
//! rank-1 inner loop that LLVM auto-vectorizes; transposed operands are
//! materialized once (an `O(n²)` copy against an `O(n³)` multiply).

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Whether an operand enters the product transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Reference triple-loop multiply: `C <- alpha * op(A) * op(B) + beta * C`.
///
/// Slow but obviously correct; the test suites compare every optimized
/// kernel against this.
pub fn naive_gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = op_shape(transa, a);
    let (kb, n) = op_shape(transb, b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::zero();
            for l in 0..k {
                acc += op_get(transa, a, i, l) * op_get(transb, b, l, j);
            }
            let cij = c.get(i, j);
            c.set(i, j, alpha * acc + beta * cij);
        }
    }
}

#[inline(always)]
fn op_shape<T: Scalar>(t: Transpose, a: &Matrix<T>) -> (usize, usize) {
    match t {
        Transpose::No => (a.rows(), a.cols()),
        Transpose::Yes => (a.cols(), a.rows()),
    }
}

#[inline(always)]
fn op_get<T: Scalar>(t: Transpose, a: &Matrix<T>, i: usize, j: usize) -> T {
    match t {
        Transpose::No => a.get(i, j),
        Transpose::Yes => a.get(j, i),
    }
}

/// Sequential optimized multiply: `C <- alpha * op(A) * op(B) + beta * C`.
pub fn gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = op_shape(transa, a);
    let (kb, n) = op_shape(transb, b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    // Materialize transposed operands so the hot loop is always the
    // stride-1 no-transpose case.
    let at;
    let a_nn = match transa {
        Transpose::No => a,
        Transpose::Yes => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_nn = match transb {
        Transpose::No => b,
        Transpose::Yes => {
            bt = b.transpose();
            &bt
        }
    };
    gemm_nn(alpha, a_nn, b_nn, beta, c);
}

/// Core no-transpose kernel. For each output column `j`, sweeps the columns
/// of `A` scaled by `B(l, j)` — stride-1 axpy updates, unrolled 4-way over
/// `l` so each pass over `C(:, j)` does four fused updates.
fn gemm_nn<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    debug_assert_eq!((c.rows(), c.cols()), (m, n));
    for j in 0..n {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        if beta != T::one() {
            if beta == T::zero() {
                ccol.fill(T::zero());
            } else {
                for x in ccol.iter_mut() {
                    *x *= beta;
                }
            }
        }
        let mut l = 0;
        while l + 4 <= k {
            let s0 = alpha * bcol[l];
            let s1 = alpha * bcol[l + 1];
            let s2 = alpha * bcol[l + 2];
            let s3 = alpha * bcol[l + 3];
            let a0 = a.col(l);
            let a1 = a.col(l + 1);
            let a2 = a.col(l + 2);
            let a3 = a.col(l + 3);
            let ccol = c.col_mut(j);
            for i in 0..m {
                let mut v = ccol[i];
                v = s0.mul_add(a0[i], v);
                v = s1.mul_add(a1[i], v);
                v = s2.mul_add(a2[i], v);
                v = s3.mul_add(a3[i], v);
                ccol[i] = v;
            }
            l += 4;
        }
        while l < k {
            let s = alpha * bcol[l];
            let acol = a.col(l);
            let ccol = c.col_mut(j);
            for i in 0..m {
                ccol[i] = s.mul_add(acol[i], ccol[i]);
            }
            l += 1;
        }
    }
}

/// Thread-parallel multiply (rayon over output-column blocks).
///
/// Used as the "compute-bound kernel" side of the strong-scaling experiment
/// (E10): unlike SpMV, this scales nearly linearly with cores.
pub fn par_gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = op_shape(transa, a);
    let (kb, n) = op_shape(transb, b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");

    let at;
    let a_nn = match transa {
        Transpose::No => a,
        Transpose::Yes => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_nn = match transb {
        Transpose::No => b,
        Transpose::Yes => {
            bt = b.transpose();
            &bt
        }
    };

    // Each worker owns a disjoint block of C's columns.
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, ccol)| {
            let bcol = b_nn.col(j);
            if beta != T::one() {
                if beta == T::zero() {
                    ccol.fill(T::zero());
                } else {
                    for x in ccol.iter_mut() {
                        *x *= beta;
                    }
                }
            }
            for (l, &blj) in bcol.iter().enumerate() {
                let s = alpha * blj;
                let acol = a_nn.col(l);
                for i in 0..m {
                    ccol[i] = s.mul_add(acol[i], ccol[i]);
                }
            }
        });
}

/// Matrix-vector multiply: `y <- alpha * op(A) * x + beta * y`.
pub fn gemv<T: Scalar>(trans: Transpose, alpha: T, a: &Matrix<T>, x: &[T], beta: T, y: &mut [T]) {
    let (m, n) = op_shape(trans, a);
    assert_eq!(x.len(), n, "gemv x length mismatch");
    assert_eq!(y.len(), m, "gemv y length mismatch");
    match trans {
        Transpose::No => {
            for yi in y.iter_mut() {
                *yi *= beta;
            }
            for (j, &xj) in x.iter().enumerate() {
                let s = alpha * xj;
                let acol = a.col(j);
                for i in 0..m {
                    y[i] = s.mul_add(acol[i], y[i]);
                }
            }
        }
        Transpose::Yes => {
            for (i, yi) in y.iter_mut().enumerate() {
                let acol = a.col(i);
                let mut acc = T::zero();
                for (l, &al) in acol.iter().enumerate() {
                    acc = al.mul_add(x[l], acc);
                }
                *yi = alpha * acc + beta * *yi;
            }
        }
    }
}

/// Rank-1 update: `A <- A + alpha * x * y^T`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], a: &mut Matrix<T>) {
    assert_eq!(x.len(), a.rows(), "ger x length mismatch");
    assert_eq!(y.len(), a.cols(), "ger y length mismatch");
    for (j, &yj) in y.iter().enumerate() {
        let s = alpha * yj;
        let acol = a.col_mut(j);
        for (i, &xi) in x.iter().enumerate() {
            acol[i] = s.mul_add(xi, acol[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_against_naive(
        m: usize,
        k: usize,
        n: usize,
        ta: Transpose,
        tb: Transpose,
        alpha: f64,
        beta: f64,
    ) {
        let (ar, ac) = match ta {
            Transpose::No => (m, k),
            Transpose::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let a = gen::random_matrix::<f64>(ar, ac, 1);
        let b = gen::random_matrix::<f64>(br, bc, 2);
        let c0 = gen::random_matrix::<f64>(m, n, 3);

        let mut c_ref = c0.clone();
        naive_gemm(ta, tb, alpha, &a, &b, beta, &mut c_ref);

        let mut c_opt = c0.clone();
        gemm(ta, tb, alpha, &a, &b, beta, &mut c_opt);
        assert!(
            c_ref.approx_eq(&c_opt, 1e-11),
            "gemm mismatch m={m} k={k} n={n} ta={ta:?} tb={tb:?}"
        );

        let mut c_par = c0.clone();
        par_gemm(ta, tb, alpha, &a, &b, beta, &mut c_par);
        assert!(c_ref.approx_eq(&c_par, 1e-11), "par_gemm mismatch");
    }

    #[test]
    fn gemm_all_transpose_combinations() {
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                check_against_naive(13, 7, 9, ta, tb, 1.5, -0.5);
            }
        }
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan() {
        // beta = 0 must not propagate pre-existing NaN in C.
        let a = Matrix::<f64>::identity(2);
        let b = Matrix::<f64>::identity(2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        c.set(0, 0, f64::NAN);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&Matrix::identity(2), 0.0));
    }

    #[test]
    fn gemm_sizes_around_unroll_boundary() {
        for k in [1, 3, 4, 5, 8, 11] {
            check_against_naive(6, k, 5, Transpose::No, Transpose::No, 1.0, 0.0);
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = gen::random_matrix::<f64>(8, 8, 11);
        let i = Matrix::<f64>::identity(8);
        let mut c = Matrix::<f64>::zeros(8, 8);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &i, 0.0, &mut c);
        assert!(c.approx_eq(&a, 1e-14));
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn gemm_rejects_bad_shapes() {
        let a = Matrix::<f64>::zeros(3, 4);
        let b = Matrix::<f64>::zeros(5, 2);
        let mut c = Matrix::<f64>::zeros(3, 2);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn gemv_matches_gemm() {
        let a = gen::random_matrix::<f64>(6, 4, 5);
        let x = gen::random_vector::<f64>(4, 6);
        let xm = Matrix::from_col_major(4, 1, x.clone());
        let mut y = vec![0.0; 6];
        gemv(Transpose::No, 1.0, &a, &x, 0.0, &mut y);
        let mut ym = Matrix::zeros(6, 1);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &xm, 0.0, &mut ym);
        for i in 0..6 {
            assert!((y[i] - ym.get(i, 0)).abs() < 1e-13);
        }
        // Transposed.
        let mut yt = vec![1.0; 4];
        gemv(
            Transpose::Yes,
            2.0,
            &a,
            &gen::random_vector::<f64>(6, 7),
            0.5,
            &mut yt,
        );
        assert!(yt.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ger_is_rank_one_update() {
        let mut a = Matrix::<f64>::zeros(3, 2);
        ger(2.0, &[1.0, 2.0, 3.0], &[10.0, 20.0], &mut a);
        assert_eq!(a.get(2, 1), 2.0 * 3.0 * 20.0);
        assert_eq!(a.get(0, 0), 2.0 * 1.0 * 10.0);
    }
}
