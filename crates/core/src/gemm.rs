//! General matrix-matrix multiply (the flop furnace of HPL).
//!
//! `gemm` is the compute-bound kernel whose measured rate defines "machine
//! peak" for every %-of-peak experiment in this repository (E01, E10, E11),
//! so it is organized the way the keynote says extreme-scale kernels must
//! be: around data movement, not flops.
//!
//! The optimized path is a BLIS-style blocked algorithm:
//!
//! ```text
//! for jc in 0..n step NC            // C column macro-tiles   (L3 / parallel axis)
//!   for pc in 0..k step KC          // pack B(pc..,jc..) into contiguous panels
//!     for ic in 0..m step MC        // pack alpha*A(ic..,pc..) into panels
//!       for jr in 0..NC step NR     // micro-tile columns
//!         for ir in 0..MC step MR   // micro-tile rows
//!           C(ir..,jr..) += Ap * Bp // MR x NR register micro-kernel
//! ```
//!
//! Operands are packed **once per macro-tile** into contiguous, zero-padded
//! panel buffers (`MR`-row panels of `A`, `NR`-column panels of `B`), so the
//! `MR x NR` micro-kernel streams both operands with unit stride and keeps
//! the whole accumulator tile in registers across the `KC` loop.
//! [`par_gemm`] parallelizes over `NC`-wide column macro-tiles of `C`
//! (each worker re-packing and reusing its own `A` panel across the whole
//! tile) instead of over single columns.
//!
//! Blocking parameters default to [`GemmParams::DEFAULT`] and can be
//! overridden per call ([`gemm_with_params`]) or globally
//! ([`set_global_params`]) — `xsc-autotune` sweeps `MC/KC/NC` empirically
//! and installs the winner. The `MR x NR` micro-kernel itself is also a
//! tuning axis: [`crate::microkernel`] provides bit-identical scalar and
//! explicit-SIMD implementations, selected per call
//! ([`gemm_with_opts`]) or globally
//! ([`crate::microkernel::set_global_microkernel`]). The pre-blocking
//! column-sweep kernel survives as [`colsweep_gemm`], both as the
//! small-problem fast path (packing does not pay below
//! [`SMALL_GEMM_FLOPS`]) and as the measured baseline the benchmark suite
//! compares against.

use crate::matrix::Matrix;
use crate::microkernel::{self, MicroKernel, MicroKernelFn};
use crate::scalar::Scalar;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Whether an operand enters the product transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Rows of the register micro-tile (micro-kernel computes `MR x NR`).
pub const MR: usize = 8;
/// Columns of the register micro-tile.
pub const NR: usize = 4;

/// Problems with at most this many multiply-adds (`m * n * k`) skip the
/// blocked path: below this size the packing traffic is not amortized and
/// the column-sweep kernel wins.
pub const SMALL_GEMM_FLOPS: usize = 32 * 32 * 32;

/// Cache-blocking parameters of the blocked GEMM loop nest.
///
/// `mc`/`kc` size the packed `A` panel (targets L2), `kc`/`nc` the packed
/// `B` panel (targets L3); `nc` is also the width of the column macro-tiles
/// [`par_gemm`] distributes across workers. Values are normalized before
/// use: `mc` is rounded up to a multiple of [`MR`], `nc` to a multiple of
/// [`NR`], and all three are at least one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmParams {
    /// Row-block height of the packed `A` panel.
    pub mc: usize,
    /// Depth (shared dimension) of both packed panels.
    pub kc: usize,
    /// Column-block width of the packed `B` panel.
    pub nc: usize,
}

impl GemmParams {
    /// Hand-picked defaults: `A` panel 128x256 f64 = 256 KiB (~L2),
    /// `B` panel 256x512 f64 = 1 MiB (~L3 slice). Autotuning (E08)
    /// overrides these per machine via [`set_global_params`].
    pub const DEFAULT: GemmParams = GemmParams {
        mc: 128,
        kc: 256,
        nc: 512,
    };

    /// Rounds the parameters onto the micro-tile grid (`mc` to a multiple
    /// of [`MR`], `nc` to a multiple of [`NR`], everything at least one
    /// block).
    pub fn normalized(self) -> GemmParams {
        GemmParams {
            mc: self.mc.max(1).div_ceil(MR) * MR,
            kc: self.kc.max(1),
            nc: self.nc.max(1).div_ceil(NR) * NR,
        }
    }
}

// Global blocking override (0 = unset, use DEFAULT). Reads are not a single
// atomic snapshot; any interleaving of valid stores is itself a valid
// parameter set after normalization, so a torn read is harmless.
static GLOBAL_MC: AtomicUsize = AtomicUsize::new(0);
static GLOBAL_KC: AtomicUsize = AtomicUsize::new(0);
static GLOBAL_NC: AtomicUsize = AtomicUsize::new(0);

/// Installs `p` as the process-wide default blocking parameters used by
/// [`gemm`] and [`par_gemm`]. Typically called with an autotuned winner
/// (see `xsc-autotune`).
pub fn set_global_params(p: GemmParams) {
    let p = p.normalized();
    GLOBAL_MC.store(p.mc, Ordering::Relaxed);
    GLOBAL_KC.store(p.kc, Ordering::Relaxed);
    GLOBAL_NC.store(p.nc, Ordering::Relaxed);
}

/// Clears any installed global override, restoring [`GemmParams::DEFAULT`].
pub fn clear_global_params() {
    GLOBAL_MC.store(0, Ordering::Relaxed);
    GLOBAL_KC.store(0, Ordering::Relaxed);
    GLOBAL_NC.store(0, Ordering::Relaxed);
}

/// The blocking parameters [`gemm`]/[`par_gemm`] currently use: the global
/// override if one was installed, [`GemmParams::DEFAULT`] otherwise.
pub fn global_params() -> GemmParams {
    let mc = GLOBAL_MC.load(Ordering::Relaxed);
    if mc == 0 {
        return GemmParams::DEFAULT;
    }
    GemmParams {
        mc,
        kc: GLOBAL_KC.load(Ordering::Relaxed).max(1),
        nc: GLOBAL_NC.load(Ordering::Relaxed).max(1),
    }
}

/// Reference triple-loop multiply: `C <- alpha * op(A) * op(B) + beta * C`.
///
/// Slow but obviously correct; the test suites compare every optimized
/// kernel against this.
pub fn naive_gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k) = op_shape(transa, a);
    let (kb, n) = op_shape(transb, b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::zero();
            for l in 0..k {
                acc += op_get(transa, a, i, l) * op_get(transb, b, l, j);
            }
            let cij = c.get(i, j);
            c.set(i, j, alpha * acc + beta * cij);
        }
    }
}

#[inline(always)]
fn op_shape<T: Scalar>(t: Transpose, a: &Matrix<T>) -> (usize, usize) {
    match t {
        Transpose::No => (a.rows(), a.cols()),
        Transpose::Yes => (a.cols(), a.rows()),
    }
}

#[inline(always)]
fn op_get<T: Scalar>(t: Transpose, a: &Matrix<T>, i: usize, j: usize) -> T {
    match t {
        Transpose::No => a.get(i, j),
        Transpose::Yes => a.get(j, i),
    }
}

fn check_shapes<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &Matrix<T>,
) -> (usize, usize, usize) {
    let (m, k) = op_shape(transa, a);
    let (kb, n) = op_shape(transb, b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    (m, k, n)
}

/// Applies `beta` to a slice of `C` (`beta == 0` overwrites, so pre-existing
/// NaN/Inf never propagate).
fn scale_by_beta<T: Scalar>(c: &mut [T], beta: T) {
    if beta == T::one() {
        return;
    }
    if beta == T::zero() {
        c.fill(T::zero());
    } else {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// Sequential optimized multiply: `C <- alpha * op(A) * op(B) + beta * C`.
///
/// Dispatches to the blocked packed kernel (see the module docs) with the
/// current [`global_params`]; small problems take the column-sweep path.
/// Degenerate shapes are handled: `m == 0` or `n == 0` is a no-op, and
/// `k == 0` (or `alpha == 0`) reduces to the pure `beta`-scale of `C`.
pub fn gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    gemm_with_params(transa, transb, alpha, a, b, beta, c, global_params());
}

/// [`gemm`] with explicit blocking parameters (the autotuner's measurement
/// entry point); dispatches to the currently installed micro-kernel.
#[allow(clippy::too_many_arguments)] // the BLAS gemm signature plus the tuning knob
pub fn gemm_with_params<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
    params: GemmParams,
) {
    gemm_with_opts(
        transa,
        transb,
        alpha,
        a,
        b,
        beta,
        c,
        params,
        microkernel::global_microkernel(),
    );
}

/// [`gemm`] with explicit blocking parameters *and* micro-kernel variant —
/// the fully-pinned entry point the autotuner and the E18 per-variant
/// roofline arm measure through. An unavailable `kernel` silently degrades
/// to the scalar micro-kernel (results are bit-identical either way).
#[allow(clippy::too_many_arguments)] // the BLAS gemm signature plus both tuning knobs
pub fn gemm_with_opts<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
    params: GemmParams,
    kernel: MicroKernel,
) {
    let (m, k, n) = check_shapes(transa, transb, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == T::zero() {
        scale_by_beta(c.as_mut_slice(), beta);
        return;
    }
    let small = n < NR || m.saturating_mul(n).saturating_mul(k) <= SMALL_GEMM_FLOPS;
    let w = std::mem::size_of::<T>() as u64;
    let p = params.normalized();
    let _scope = xsc_metrics::record(
        "gemm",
        if small {
            xsc_metrics::traffic::gemm_colsweep(m, n, k, w)
        } else {
            xsc_metrics::traffic::gemm_packed(m, n, k, p.mc, p.kc, p.nc, w)
        },
    );

    // Materialize transposed operands so the hot loop is always the
    // stride-1 no-transpose case (an O(n^2) copy against O(n^3) work).
    let at;
    let a_nn = match transa {
        Transpose::No => a,
        Transpose::Yes => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_nn = match transb {
        Transpose::No => b,
        Transpose::Yes => {
            bt = b.transpose();
            &bt
        }
    };
    if small {
        colsweep_nn(alpha, a_nn, b_nn, beta, c);
    } else {
        blocked_nn(
            alpha,
            a_nn,
            b_nn,
            beta,
            c.as_mut_slice(),
            0,
            n,
            params,
            kernel,
        );
    }
}

/// The pre-blocking column-sweep kernel: for each output column `j`, sweeps
/// the columns of `A` scaled by `B(l, j)` — stride-1 axpy updates, unrolled
/// 4-way over `l`.
///
/// Kept public for two reasons: it is the small-problem fast path of
/// [`gemm`], and it is the measured baseline the E01 experiment (and the
/// `gemm_perf` regression test) compare the blocked kernel against.
pub fn colsweep_gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, _k, n) = check_shapes(transa, transb, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    let _scope = xsc_metrics::record(
        "colsweep_gemm",
        xsc_metrics::traffic::gemm_colsweep(m, n, _k, std::mem::size_of::<T>() as u64),
    );
    let at;
    let a_nn = match transa {
        Transpose::No => a,
        Transpose::Yes => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_nn = match transb {
        Transpose::No => b,
        Transpose::Yes => {
            bt = b.transpose();
            &bt
        }
    };
    colsweep_nn(alpha, a_nn, b_nn, beta, c);
}

/// Column-sweep no-transpose kernel (see [`colsweep_gemm`]).
fn colsweep_nn<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    debug_assert_eq!((c.rows(), c.cols()), (m, n));
    for j in 0..n {
        let bcol = b.col(j);
        scale_by_beta(c.col_mut(j), beta);
        let mut l = 0;
        while l + 4 <= k {
            let s0 = alpha * bcol[l];
            let s1 = alpha * bcol[l + 1];
            let s2 = alpha * bcol[l + 2];
            let s3 = alpha * bcol[l + 3];
            let a0 = a.col(l);
            let a1 = a.col(l + 1);
            let a2 = a.col(l + 2);
            let a3 = a.col(l + 3);
            let ccol = c.col_mut(j);
            for i in 0..m {
                let mut v = ccol[i];
                v = s0.mul_add(a0[i], v);
                v = s1.mul_add(a1[i], v);
                v = s2.mul_add(a2[i], v);
                v = s3.mul_add(a3[i], v);
                ccol[i] = v;
            }
            l += 4;
        }
        while l < k {
            let s = alpha * bcol[l];
            let acol = a.col(l);
            let ccol = c.col_mut(j);
            for i in 0..m {
                ccol[i] = s.mul_add(acol[i], ccol[i]);
            }
            l += 1;
        }
    }
}

/// Packs the `mcb x kcb` block of `A` at `(ic, pc)` into `MR`-row panels:
/// panel `ir/MR` stores, for each depth `l`, the `MR` row entries
/// contiguously (`ap[panel + l*MR + i]`), pre-scaled by `alpha` and
/// zero-padded past the matrix edge so the micro-kernel never branches.
fn pack_a<T: Scalar>(
    a: &Matrix<T>,
    ic: usize,
    pc: usize,
    mcb: usize,
    kcb: usize,
    alpha: T,
    ap: &mut [T],
) {
    let mut off = 0;
    for ir in (0..mcb).step_by(MR) {
        let mr_eff = MR.min(mcb - ir);
        for l in 0..kcb {
            let src = &a.col(pc + l)[ic + ir..ic + ir + mr_eff];
            let dst = &mut ap[off + l * MR..off + (l + 1) * MR];
            for i in 0..mr_eff {
                dst[i] = alpha * src[i];
            }
            for x in dst.iter_mut().skip(mr_eff) {
                *x = T::zero();
            }
        }
        off += kcb * MR;
    }
}

/// Packs the `kcb x ncb` block of `B` at `(pc, jc)` into `NR`-column
/// panels: panel `jr/NR` stores, for each depth `l`, the `NR` column
/// entries contiguously (`bp[panel + l*NR + j]`), zero-padded at the edge.
fn pack_b<T: Scalar>(b: &Matrix<T>, pc: usize, jc: usize, kcb: usize, ncb: usize, bp: &mut [T]) {
    let mut off = 0;
    for jr in (0..ncb).step_by(NR) {
        let nr_eff = NR.min(ncb - jr);
        for j in 0..nr_eff {
            let src = &b.col(jc + jr + j)[pc..pc + kcb];
            for (l, &v) in src.iter().enumerate() {
                bp[off + l * NR + j] = v;
            }
        }
        for j in nr_eff..NR {
            for l in 0..kcb {
                bp[off + l * NR + j] = T::zero();
            }
        }
        off += kcb * NR;
    }
}

/// Macro-kernel: sweeps the packed `mcb x kcb` `A` panels against the
/// packed `kcb x ncb` `B` panels, accumulating each `MR x NR` micro-tile
/// into the column-major block `cblock` (leading dimension `ldc`) at offset
/// `(ic, jc)`. `beta` has already been applied to `cblock`. `mk` is the
/// micro-kernel implementation resolved once per GEMM call (see
/// [`crate::microkernel`] — every variant is bit-identical).
#[allow(clippy::too_many_arguments)] // packed panels + block geometry; splitting obscures the loop nest
fn macro_kernel<T: Scalar>(
    ap: &[T],
    bp: &[T],
    mcb: usize,
    ncb: usize,
    kcb: usize,
    cblock: &mut [T],
    ldc: usize,
    ic: usize,
    jc: usize,
    mk: MicroKernelFn<T>,
) {
    for jr in (0..ncb).step_by(NR) {
        let nr_eff = NR.min(ncb - jr);
        let bpan = &bp[(jr / NR) * kcb * NR..][..kcb * NR];
        for ir in (0..mcb).step_by(MR) {
            let mr_eff = MR.min(mcb - ir);
            let apan = &ap[(ir / MR) * kcb * MR..][..kcb * MR];
            let mut acc = [T::zero(); MR * NR];
            mk(kcb, apan, bpan, &mut acc);
            for j in 0..nr_eff {
                let dst = &mut cblock[(jc + jr + j) * ldc + ic + ir..][..mr_eff];
                for (i, x) in dst.iter_mut().enumerate() {
                    *x += acc[j * MR + i];
                }
            }
        }
    }
}

/// Blocked no-transpose kernel over a contiguous column block of `C`:
/// computes `C(:, j0..j0+ncols) <- alpha*A*B(:, j0..) + beta*C(:, j0..)`
/// where `cblock` is the column-major storage of those columns. This is the
/// unit of work [`par_gemm`] hands each worker, so every level of the loop
/// nest (including packing) runs worker-locally.
#[allow(clippy::too_many_arguments)] // the gemm operand set plus the block's column window
fn blocked_nn<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    cblock: &mut [T],
    j0: usize,
    ncols: usize,
    params: GemmParams,
    kernel: MicroKernel,
) {
    let m = a.rows();
    let k = a.cols();
    debug_assert_eq!(cblock.len(), m * ncols);
    scale_by_beta(cblock, beta);
    if k == 0 || alpha == T::zero() || ncols == 0 || m == 0 {
        return;
    }
    let mk = microkernel::resolve::<T>(kernel);
    let p = params.normalized();
    // Clamp panel buffers to the (micro-tile-rounded) problem so tiny
    // multiplies do not allocate full-size panels.
    let kc = p.kc.min(k);
    let mc = p.mc.min(m.div_ceil(MR) * MR);
    let nc = p.nc.min(ncols.div_ceil(NR) * NR);
    let mut ap = vec![T::zero(); mc * kc];
    let mut bp = vec![T::zero(); kc * nc];
    for jc in (0..ncols).step_by(nc) {
        let ncb = nc.min(ncols - jc);
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            pack_b(b, pc, j0 + jc, kcb, ncb, &mut bp);
            for ic in (0..m).step_by(mc) {
                let mcb = mc.min(m - ic);
                pack_a(a, ic, pc, mcb, kcb, alpha, &mut ap);
                macro_kernel(&ap, &bp, mcb, ncb, kcb, cblock, m, ic, jc, mk);
            }
        }
    }
}

/// Thread-parallel multiply over `NC`-wide column macro-tiles of `C`.
///
/// Each worker owns a contiguous block of `C`'s columns and runs the full
/// blocked loop nest on it — packing its own `A` panel once per `MC x KC`
/// block and reusing it across the whole macro-tile — instead of the old
/// one-column-per-task sweep. The macro-tile width adapts: `NC` when that
/// yields at least one tile per worker, `ceil(n / workers)` (rounded to
/// [`NR`]) otherwise, so every worker gets work at any shape. This is the
/// "compute-bound kernel" side of the strong-scaling experiment (E10).
pub fn par_gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    par_gemm_with_params(transa, transb, alpha, a, b, beta, c, global_params());
}

/// [`par_gemm`] with explicit blocking parameters; dispatches to the
/// currently installed micro-kernel.
#[allow(clippy::too_many_arguments)] // the BLAS gemm signature plus the tuning knob
pub fn par_gemm_with_params<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
    params: GemmParams,
) {
    par_gemm_with_opts(
        transa,
        transb,
        alpha,
        a,
        b,
        beta,
        c,
        params,
        microkernel::global_microkernel(),
    );
}

/// [`par_gemm`] with explicit blocking parameters and micro-kernel variant
/// (see [`gemm_with_opts`]).
#[allow(clippy::too_many_arguments)] // the BLAS gemm signature plus both tuning knobs
pub fn par_gemm_with_opts<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
    params: GemmParams,
    kernel: MicroKernel,
) {
    let (m, k, n) = check_shapes(transa, transb, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == T::zero() {
        scale_by_beta(c.as_mut_slice(), beta);
        return;
    }
    if m.saturating_mul(n).saturating_mul(k) <= SMALL_GEMM_FLOPS {
        // Fork-join overhead dominates below the packing cutoff.
        // (Records under "gemm" there, so no double-count here.)
        gemm_with_opts(transa, transb, alpha, a, b, beta, c, params, kernel);
        return;
    }
    let pn = params.normalized();
    let _scope = xsc_metrics::record(
        "par_gemm",
        xsc_metrics::traffic::gemm_packed(
            m,
            n,
            k,
            pn.mc,
            pn.kc,
            pn.nc,
            std::mem::size_of::<T>() as u64,
        ),
    );

    let at;
    let a_nn = match transa {
        Transpose::No => a,
        Transpose::Yes => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_nn = match transb {
        Transpose::No => b,
        Transpose::Yes => {
            bt = b.transpose();
            &bt
        }
    };

    let p = params.normalized();
    let workers = rayon::current_num_threads().max(1);
    // Macro-tile width: NC if that already feeds every worker, otherwise an
    // even NR-aligned split of the columns.
    let bw = if n.div_ceil(p.nc) >= workers {
        p.nc
    } else {
        (n.div_ceil(workers).div_ceil(NR) * NR).min(n.div_ceil(NR) * NR)
    };
    c.as_mut_slice()
        .par_chunks_mut(m * bw)
        .enumerate()
        .for_each(|(bi, cblock)| {
            let ncols = cblock.len() / m;
            blocked_nn(alpha, a_nn, b_nn, beta, cblock, bi * bw, ncols, p, kernel);
        });
}

/// Matrix-vector multiply: `y <- alpha * op(A) * x + beta * y`.
pub fn gemv<T: Scalar>(trans: Transpose, alpha: T, a: &Matrix<T>, x: &[T], beta: T, y: &mut [T]) {
    let (m, n) = op_shape(trans, a);
    assert_eq!(x.len(), n, "gemv x length mismatch");
    assert_eq!(y.len(), m, "gemv y length mismatch");
    let _scope = xsc_metrics::record(
        "gemv",
        xsc_metrics::traffic::gemv(m, n, std::mem::size_of::<T>() as u64),
    );
    match trans {
        Transpose::No => {
            for yi in y.iter_mut() {
                *yi *= beta;
            }
            for (j, &xj) in x.iter().enumerate() {
                let s = alpha * xj;
                let acol = a.col(j);
                for i in 0..m {
                    y[i] = s.mul_add(acol[i], y[i]);
                }
            }
        }
        Transpose::Yes => {
            for (i, yi) in y.iter_mut().enumerate() {
                let acol = a.col(i);
                let mut acc = T::zero();
                for (l, &al) in acol.iter().enumerate() {
                    acc = al.mul_add(x[l], acc);
                }
                *yi = alpha * acc + beta * *yi;
            }
        }
    }
}

/// Rank-1 update: `A <- A + alpha * x * y^T`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], a: &mut Matrix<T>) {
    assert_eq!(x.len(), a.rows(), "ger x length mismatch");
    assert_eq!(y.len(), a.cols(), "ger y length mismatch");
    for (j, &yj) in y.iter().enumerate() {
        let s = alpha * yj;
        let acol = a.col_mut(j);
        for (i, &xi) in x.iter().enumerate() {
            acol[i] = s.mul_add(xi, acol[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_against_naive(
        m: usize,
        k: usize,
        n: usize,
        ta: Transpose,
        tb: Transpose,
        alpha: f64,
        beta: f64,
    ) {
        check_against_naive_with(m, k, n, ta, tb, alpha, beta, global_params());
    }

    #[allow(clippy::too_many_arguments)]
    fn check_against_naive_with(
        m: usize,
        k: usize,
        n: usize,
        ta: Transpose,
        tb: Transpose,
        alpha: f64,
        beta: f64,
        params: GemmParams,
    ) {
        let (ar, ac) = match ta {
            Transpose::No => (m, k),
            Transpose::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let a = gen::random_matrix::<f64>(ar, ac, 1);
        let b = gen::random_matrix::<f64>(br, bc, 2);
        let c0 = gen::random_matrix::<f64>(m, n, 3);

        let mut c_ref = c0.clone();
        naive_gemm(ta, tb, alpha, &a, &b, beta, &mut c_ref);

        let tol = 1e-11 * (k as f64 + 1.0);
        let mut c_opt = c0.clone();
        gemm_with_params(ta, tb, alpha, &a, &b, beta, &mut c_opt, params);
        assert!(
            c_ref.approx_eq(&c_opt, tol),
            "gemm mismatch m={m} k={k} n={n} ta={ta:?} tb={tb:?} params={params:?}"
        );

        let mut c_par = c0.clone();
        par_gemm_with_params(ta, tb, alpha, &a, &b, beta, &mut c_par, params);
        assert!(
            c_ref.approx_eq(&c_par, tol),
            "par_gemm mismatch m={m} k={k} n={n} ta={ta:?} tb={tb:?} params={params:?}"
        );

        let mut c_sweep = c0.clone();
        colsweep_gemm(ta, tb, alpha, &a, &b, beta, &mut c_sweep);
        assert!(
            c_ref.approx_eq(&c_sweep, tol),
            "colsweep_gemm mismatch m={m} k={k} n={n}"
        );
    }

    #[test]
    fn gemm_all_transpose_combinations() {
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                check_against_naive(13, 7, 9, ta, tb, 1.5, -0.5);
            }
        }
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan() {
        // beta = 0 must not propagate pre-existing NaN in C.
        let a = Matrix::<f64>::identity(2);
        let b = Matrix::<f64>::identity(2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        c.set(0, 0, f64::NAN);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&Matrix::identity(2), 0.0));
    }

    #[test]
    fn gemm_sizes_around_unroll_boundary() {
        for k in [1, 3, 4, 5, 8, 11] {
            check_against_naive(6, k, 5, Transpose::No, Transpose::No, 1.0, 0.0);
        }
    }

    #[test]
    fn blocked_path_straddles_every_micro_and_macro_boundary() {
        // Small macro-tiles so block-1/block/block+1 shapes are cheap: the
        // blocked path is forced by sizing every dim past the small cutoff.
        let p = GemmParams {
            mc: 16,
            kc: 12,
            nc: 8,
        };
        for &m in &[15, 16, 17, MR - 1, MR, MR + 1] {
            for &k in &[11, 12, 13] {
                for &n in &[7, 8, 9, NR - 1, NR, NR + 1] {
                    check_against_naive_with(
                        m + 32,
                        k + 32,
                        n + 32,
                        Transpose::No,
                        Transpose::No,
                        1.25,
                        -0.5,
                        p,
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_path_straddles_default_macro_boundaries() {
        // One shape just past each DEFAULT macro-tile edge, on the real
        // parameters (m = MC+1, k = KC+1, n = NC+1).
        let d = GemmParams::DEFAULT;
        check_against_naive_with(
            d.mc + 1,
            d.kc + 1,
            d.nc + 1,
            Transpose::No,
            Transpose::No,
            1.0,
            1.0,
            d,
        );
    }

    #[test]
    fn degenerate_shapes_are_noops_or_beta_scales() {
        // m == 0: no output rows — must not panic (par_chunks_mut(0) did).
        let a = Matrix::<f64>::zeros(0, 3);
        let b = gen::random_matrix::<f64>(3, 5, 1);
        let mut c = Matrix::<f64>::zeros(0, 5);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c.rows(), 0);

        // n == 0: no output columns.
        let a = gen::random_matrix::<f64>(4, 3, 1);
        let b = Matrix::<f64>::zeros(3, 0);
        let mut c = Matrix::<f64>::zeros(4, 0);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 1.0, &mut c);
        par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 1.0, &mut c);

        // k == 0: the product is empty, so the call is a pure beta-scale.
        let a = Matrix::<f64>::zeros(4, 0);
        let b = Matrix::<f64>::zeros(0, 5);
        let c0 = gen::random_matrix::<f64>(4, 5, 9);
        for kernel in [gemm::<f64>, par_gemm::<f64>, naive_gemm::<f64>] {
            let mut c = c0.clone();
            kernel(Transpose::No, Transpose::No, 1.0, &a, &b, -2.0, &mut c);
            let mut want = c0.clone();
            want.scale(-2.0);
            assert!(c.approx_eq(&want, 1e-15), "k==0 must be a beta-scale");
        }
        // ... and beta == 0 with k == 0 must overwrite NaN.
        let mut c = c0.clone();
        c.set(1, 1, f64::NAN);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&Matrix::zeros(4, 5), 0.0));
        let mut c = c0.clone();
        c.set(2, 3, f64::NAN);
        par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.approx_eq(&Matrix::zeros(4, 5), 0.0));
    }

    #[test]
    fn alpha_zero_is_beta_scale_even_with_nan_operands() {
        let mut a = gen::random_matrix::<f64>(4, 4, 1);
        a.set(0, 0, f64::NAN);
        let b = gen::random_matrix::<f64>(4, 4, 2);
        let c0 = gen::random_matrix::<f64>(4, 4, 3);
        let mut c = c0.clone();
        gemm(Transpose::No, Transpose::No, 0.0, &a, &b, 2.0, &mut c);
        let mut want = c0.clone();
        want.scale(2.0);
        assert!(c.approx_eq(&want, 1e-15));
    }

    #[test]
    fn params_normalize_onto_micro_grid() {
        let p = GemmParams {
            mc: 1,
            kc: 0,
            nc: 13,
        }
        .normalized();
        assert_eq!(p.mc % MR, 0);
        assert_eq!(p.nc % NR, 0);
        assert!(p.mc >= MR && p.kc >= 1 && p.nc >= NR);
        assert_eq!(p.nc, 16);
    }

    #[test]
    fn global_params_install_and_clear() {
        clear_global_params();
        assert_eq!(global_params(), GemmParams::DEFAULT);
        let tuned = GemmParams {
            mc: 64,
            kc: 128,
            nc: 256,
        };
        set_global_params(tuned);
        assert_eq!(global_params(), tuned);
        // The kernel still matches the reference under the override.
        check_against_naive(40, 40, 40, Transpose::No, Transpose::No, 1.0, 0.5);
        clear_global_params();
        assert_eq!(global_params(), GemmParams::DEFAULT);
    }

    #[test]
    fn microkernel_variants_are_bitwise_identical_through_gemm() {
        // The full blocked path (packing included) must produce the same
        // bits under every available micro-kernel, on shapes that straddle
        // the micro- and macro-tile boundaries and on k == 0.
        let p = GemmParams {
            mc: 16,
            kc: 12,
            nc: 8,
        };
        for &(m, k, n) in &[
            (33, 35, 37),
            (MR * 5 + 3, 13, NR * 9 + 1),
            (40, 0, 40), // k == 0: pure beta-scale on every variant
        ] {
            let a = gen::random_matrix::<f64>(m, k, 5);
            let b = gen::random_matrix::<f64>(k, n, 6);
            let c0 = gen::random_matrix::<f64>(m, n, 7);
            let mut want = c0.clone();
            gemm_with_opts(
                Transpose::No,
                Transpose::No,
                1.5,
                &a,
                &b,
                -0.5,
                &mut want,
                p,
                MicroKernel::Scalar,
            );
            for mk in MicroKernel::available() {
                let mut got = c0.clone();
                gemm_with_opts(
                    Transpose::No,
                    Transpose::No,
                    1.5,
                    &a,
                    &b,
                    -0.5,
                    &mut got,
                    p,
                    mk,
                );
                for (i, (w, g)) in want
                    .as_slice()
                    .iter()
                    .zip(got.as_slice().iter())
                    .enumerate()
                {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "variant {mk} differs at element {i} (m={m} k={k} n={n})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = gen::random_matrix::<f64>(8, 8, 11);
        let i = Matrix::<f64>::identity(8);
        let mut c = Matrix::<f64>::zeros(8, 8);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &i, 0.0, &mut c);
        assert!(c.approx_eq(&a, 1e-14));
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn gemm_rejects_bad_shapes() {
        let a = Matrix::<f64>::zeros(3, 4);
        let b = Matrix::<f64>::zeros(5, 2);
        let mut c = Matrix::<f64>::zeros(3, 2);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn gemv_matches_gemm() {
        let a = gen::random_matrix::<f64>(6, 4, 5);
        let x = gen::random_vector::<f64>(4, 6);
        let xm = Matrix::from_col_major(4, 1, x.clone());
        let mut y = vec![0.0; 6];
        gemv(Transpose::No, 1.0, &a, &x, 0.0, &mut y);
        let mut ym = Matrix::zeros(6, 1);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &xm, 0.0, &mut ym);
        for i in 0..6 {
            assert!((y[i] - ym.get(i, 0)).abs() < 1e-13);
        }
        // Transposed.
        let mut yt = vec![1.0; 4];
        gemv(
            Transpose::Yes,
            2.0,
            &a,
            &gen::random_vector::<f64>(6, 7),
            0.5,
            &mut yt,
        );
        assert!(yt.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ger_is_rank_one_update() {
        let mut a = Matrix::<f64>::zeros(3, 2);
        ger(2.0, &[1.0, 2.0, 3.0], &[10.0, 20.0], &mut a);
        assert_eq!(a.get(2, 1), 2.0 * 3.0 * 20.0);
        assert_eq!(a.get(0, 0), 2.0 * 1.0 * 10.0);
    }
}
