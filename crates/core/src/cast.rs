//! Named numeric-cast chokepoints (lint rule X01).
//!
//! The mixed-precision roadmap (three-precision iterative refinement,
//! fp16/fp32 kernels behind fp64 interfaces) needs every representation
//! change in the kernel crates to be auditable: a stray `as f32` is
//! exactly where a future precision migration silently loses bits. Rule
//! X01 therefore forbids bare `as f32` / `as f64` / `as usize` in the
//! numeric crates outside a short manifest of named chokepoint functions —
//! this module, [`crate::scalar::Scalar::to_f64`] / `from_f64`, and
//! `xsc_sparse`'s index widener. Each chokepoint states its invariant
//! once, instead of every call site restating (or forgetting) it.

/// Converts a count (dimension, nnz, flop, iteration number) to `f64` for
/// ratio/rate arithmetic.
///
/// Exact for counts below 2⁵³ (~9·10¹⁵); anything this workspace counts —
/// matrix dimensions, nonzeros, flops of a run — is far below that, so
/// the conversion never rounds in practice. Pass `usize` counts as
/// `count_f64(n as u64)` (lossless).
#[inline(always)]
pub fn count_f64(n: u64) -> f64 {
    n as f64
}

/// Demotes an `f64` to `f32`, rounding to nearest — the *one* deliberate
/// precision-loss point for future fp32 kernel paths.
///
/// Use only where the loss is part of the algorithm (building an fp32
/// operand from fp64 data, as three-precision refinement does); for the
/// lossless direction use `f64::from(x)`.
#[inline(always)]
pub fn demote_f32(x: f64) -> f32 {
    x as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_convert_exactly() {
        assert_eq!(count_f64(0), 0.0);
        assert_eq!(count_f64(1 << 52), 4503599627370496.0);
        assert_eq!(count_f64(123_456_789), 123_456_789.0);
    }

    #[test]
    fn demotion_rounds_to_nearest() {
        assert_eq!(demote_f32(1.0), 1.0f32);
        let x = 1.0 + f64::from(f32::EPSILON) / 4.0;
        assert_eq!(demote_f32(x), 1.0f32, "below half-ulp rounds down");
    }
}
