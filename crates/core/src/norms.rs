//! Matrix norms and the residual metrics used by the HPL-style correctness
//! checks.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Frobenius norm, accumulated in `f64`.
pub fn frobenius<T: Scalar>(a: &Matrix<T>) -> f64 {
    a.as_slice()
        .iter()
        .map(|&x| x.to_f64() * x.to_f64())
        .sum::<f64>()
        .sqrt()
}

/// One-norm (maximum absolute column sum).
pub fn one_norm<T: Scalar>(a: &Matrix<T>) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|&x| x.abs().to_f64()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity-norm (maximum absolute row sum).
pub fn inf_norm<T: Scalar>(a: &Matrix<T>) -> f64 {
    let mut row_sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, &x) in a.col(j).iter().enumerate() {
            row_sums[i] += x.abs().to_f64();
        }
    }
    row_sums.into_iter().fold(0.0, f64::max)
}

/// Largest absolute entry.
pub fn max_abs<T: Scalar>(a: &Matrix<T>) -> f64 {
    a.as_slice()
        .iter()
        .map(|&x| x.abs().to_f64())
        .fold(0.0, f64::max)
}

/// Infinity-norm of a vector.
pub fn vec_inf_norm<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|&v| v.abs().to_f64()).fold(0.0, f64::max)
}

/// The scaled residual used by HPL to accept a solve:
/// `||b - A x||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n)`.
///
/// A value of O(1)–O(10) means the solve is backward stable.
pub fn hpl_scaled_residual<T: Scalar>(a: &Matrix<T>, x: &[T], b: &[T]) -> f64 {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);
    // r = b - A x, accumulated in f64.
    let mut r = vec![0.0f64; n];
    for (i, &bi) in b.iter().enumerate() {
        r[i] = bi.to_f64();
    }
    for j in 0..n {
        let xj = x[j].to_f64();
        for (i, &aij) in a.col(j).iter().enumerate() {
            r[i] -= aij.to_f64() * xj;
        }
    }
    let rnorm = r.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let denom = f64::EPSILON
        * (inf_norm(a) * vec_inf_norm(x) + vec_inf_norm(b))
        * crate::cast::count_f64(n as u64);
    if denom == 0.0 {
        return if rnorm == 0.0 { 0.0 } else { f64::INFINITY };
    }
    rnorm / denom
}

/// Relative residual `||b - A x||_2 / ||b||_2` (used by the iterative
/// solvers), accumulated in `f64`.
pub fn relative_residual<T: Scalar>(a: &Matrix<T>, x: &[T], b: &[T]) -> f64 {
    let n = a.rows();
    let mut r = vec![0.0f64; n];
    for (i, &bi) in b.iter().enumerate() {
        r[i] = bi.to_f64();
    }
    for j in 0..a.cols() {
        let xj = x[j].to_f64();
        for (i, &aij) in a.col(j).iter().enumerate() {
            r[i] -= aij.to_f64() * xj;
        }
    }
    let rn = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    let bn = b
        .iter()
        .map(|&v| v.to_f64() * v.to_f64())
        .sum::<f64>()
        .sqrt();
    if bn == 0.0 {
        rn
    } else {
        rn / bn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<f64> {
        // [[1, -2], [3, 4]]
        Matrix::from_fn(2, 2, |i, j| match (i, j) {
            (0, 0) => 1.0,
            (0, 1) => -2.0,
            (1, 0) => 3.0,
            (1, 1) => 4.0,
            _ => unreachable!(),
        })
    }

    #[test]
    fn norm_values() {
        let a = sample();
        assert!((frobenius(&a) - (30.0f64).sqrt()).abs() < 1e-14);
        assert_eq!(one_norm(&a), 6.0); // column 1: |-2| + |4| = 6
        assert_eq!(inf_norm(&a), 7.0); // row 1: |3| + |4| = 7
        assert_eq!(max_abs(&a), 4.0);
    }

    #[test]
    fn norms_of_identity() {
        let i = Matrix::<f64>::identity(5);
        assert_eq!(one_norm(&i), 1.0);
        assert_eq!(inf_norm(&i), 1.0);
        assert!((frobenius(&i) - 5.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn exact_solve_has_tiny_scaled_residual() {
        let a = sample();
        // x = [1, 1] => b = [-1, 7]
        let x = [1.0, 1.0];
        let b = [-1.0, 7.0];
        assert!(hpl_scaled_residual(&a, &x, &b) < 1.0);
        assert!(relative_residual(&a, &x, &b) < 1e-15);
    }

    #[test]
    fn wrong_solve_has_large_residual() {
        let a = sample();
        let x = [10.0, -10.0];
        let b = [-1.0, 7.0];
        assert!(hpl_scaled_residual(&a, &x, &b) > 1e10);
        assert!(relative_residual(&a, &x, &b) > 1.0);
    }

    #[test]
    fn vec_inf_norm_basic() {
        assert_eq!(vec_inf_norm(&[1.0f64, -3.0, 2.0]), 3.0);
        assert_eq!(vec_inf_norm::<f64>(&[]), 0.0);
    }
}
