//! Level-1 vector kernels, including reproducible (pairwise) reductions.
//!
//! Dongarra's keynote lists *bit-level reproducibility under re-association*
//! as one of the rules that changed: naive parallel reductions give
//! run-to-run different answers. [`dot_pairwise`] and [`sum_pairwise`]
//! provide deterministic, more accurate fixed-tree reductions that the
//! iterative solvers use for their convergence tests.

use crate::scalar::Scalar;

/// Element width in bytes, for the traffic models.
#[inline(always)]
fn w<T: Scalar>() -> u64 {
    std::mem::size_of::<T>() as u64
}

/// `y <- alpha * x + y`.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let _scope = xsc_metrics::record("axpy", xsc_metrics::traffic::axpy(x.len(), w::<T>()));
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// `x <- alpha * x`.
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    let _scope = xsc_metrics::record("scal", xsc_metrics::traffic::scal(x.len(), w::<T>()));
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Sequential left-to-right dot product (the BLAS reference order).
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let _scope = xsc_metrics::record("dot", xsc_metrics::traffic::dot(x.len(), w::<T>()));
    dot_seq(x, y)
}

/// Uninstrumented sequential dot: the leaf kernel shared by [`dot`] and the
/// [`dot_pairwise`] recursion (which records once at its public entry, not
/// once per 64-element leaf).
#[inline]
fn dot_seq<T: Scalar>(x: &[T], y: &[T]) -> T {
    let mut acc = T::zero();
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        acc = xi.mul_add(yi, acc);
    }
    acc
}

/// Pairwise (fixed binary tree) dot product.
///
/// Deterministic regardless of thread count, and with error growth
/// `O(log n)` instead of the `O(n)` of the sequential order.
pub fn dot_pairwise<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let _scope = xsc_metrics::record("dot", xsc_metrics::traffic::dot(x.len(), w::<T>()));
    fn rec<T: Scalar>(x: &[T], y: &[T]) -> T {
        if x.len() <= 64 {
            return dot_seq(x, y);
        }
        let mid = x.len() / 2;
        let (xl, xr) = x.split_at(mid);
        let (yl, yr) = y.split_at(mid);
        rec(xl, yl) + rec(xr, yr)
    }
    rec(x, y)
}

/// Pairwise (fixed binary tree) sum.
pub fn sum_pairwise<T: Scalar>(x: &[T]) -> T {
    if x.len() <= 64 {
        let mut acc = T::zero();
        for &v in x {
            acc += v;
        }
        return acc;
    }
    let mid = x.len() / 2;
    let (l, r) = x.split_at(mid);
    sum_pairwise(l) + sum_pairwise(r)
}

/// Euclidean norm computed in `f64` accumulation (safe against overflow for
/// the magnitudes used here).
pub fn nrm2<T: Scalar>(x: &[T]) -> f64 {
    let _scope = xsc_metrics::record("nrm2", xsc_metrics::traffic::nrm2(x.len(), w::<T>()));
    x.iter()
        .map(|&v| v.to_f64() * v.to_f64())
        .sum::<f64>()
        .sqrt()
}

/// Index of the entry with the largest absolute value (first on ties).
///
/// Returns `None` for an empty slice.
pub fn iamax<T: Scalar>(x: &[T]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_val = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > best_val {
            best_val = a;
            best = i;
        }
    }
    Some(best)
}

/// `x <- x - y` element-wise.
pub fn sub_assign<T: Scalar>(x: &mut [T], y: &[T]) {
    assert_eq!(x.len(), y.len());
    for (xi, &yi) in x.iter_mut().zip(y.iter()) {
        *xi -= yi;
    }
}

/// Copies `src` into `dst`.
pub fn copy<T: Scalar>(src: &[T], dst: &mut [T]) {
    dst.copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_matches_pairwise_exactly_on_integers() {
        // Integer-valued doubles are exact, so both orders must agree.
        let x: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        assert_eq!(dot(&x, &y), dot_pairwise(&x, &y));
    }

    #[test]
    fn pairwise_sum_is_more_accurate() {
        // Classic ill-conditioned sum: many tiny values after a large one.
        let mut x = vec![1e16f64];
        x.extend(vec![1.0f64; 1 << 16]);
        x.push(-1e16);
        let exact = (1u64 << 16) as f64;
        let seq: f64 = {
            let mut acc = 0.0;
            for &v in &x {
                acc += v;
            }
            acc
        };
        let pw = sum_pairwise(&x);
        assert!((pw - exact).abs() <= (seq - exact).abs());
    }

    #[test]
    fn pairwise_is_deterministic() {
        let x: Vec<f64> = (0..10_000).map(|i| ((i * 37 % 113) as f64).sin()).collect();
        let a = sum_pairwise(&x);
        let b = sum_pairwise(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn nrm2_matches_hand_value() {
        assert!((nrm2(&[3.0f64, 4.0]) - 5.0).abs() < 1e-15);
        assert!((nrm2(&[3.0f32, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn iamax_finds_largest_magnitude() {
        assert_eq!(iamax(&[1.0f64, -5.0, 3.0]), Some(1));
        assert_eq!(iamax::<f64>(&[]), None);
        // First index wins ties.
        assert_eq!(iamax(&[2.0f64, -2.0]), Some(0));
    }

    #[test]
    fn scal_and_sub() {
        let mut x = [1.0f64, 2.0];
        scal(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0]);
        sub_assign(&mut x, &[1.0, 1.0]);
        assert_eq!(x, [2.0, 5.0]);
    }
}
