//! Error type shared across the `xsc` workspace.

use std::fmt;

/// Convenient result alias used throughout `xsc`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by `xsc` numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Operand shapes are incompatible (e.g. `gemm` inner dimensions differ).
    DimensionMismatch {
        /// Human-readable description of the offending operation.
        context: String,
    },
    /// Cholesky factorization found a non-positive pivot at this index;
    /// the matrix is not (numerically) symmetric positive definite.
    NotPositiveDefinite {
        /// Zero-based index of the failing pivot.
        pivot: usize,
    },
    /// LU factorization found an exactly (or numerically) zero pivot.
    Singular {
        /// Zero-based index of the zero pivot.
        pivot: usize,
    },
    /// An iterative method exhausted its iteration budget before reaching
    /// the requested tolerance.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual (or error estimate) at the last iteration.
        residual: f64,
    },
    /// A parameter value is outside its valid range.
    InvalidArgument {
        /// Human-readable description of the offending parameter.
        context: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            Error::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            Error::Singular { pivot } => write!(f, "matrix is singular (pivot {pivot})"),
            Error::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            Error::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds a [`Error::DimensionMismatch`] with a formatted context string.
    pub fn dims(context: impl Into<String>) -> Self {
        Error::DimensionMismatch {
            context: context.into(),
        }
    }

    /// Builds a [`Error::InvalidArgument`] with a formatted context string.
    pub fn invalid(context: impl Into<String>) -> Self {
        Error::InvalidArgument {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::dims("gemm: a is 3x4, b is 5x6");
        assert!(e.to_string().contains("gemm"));
        let e = Error::NotPositiveDefinite { pivot: 7 };
        assert!(e.to_string().contains('7'));
        let e = Error::DidNotConverge {
            iterations: 50,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("50"));
        let e = Error::Singular { pivot: 2 };
        assert!(e.to_string().contains("singular"));
        let e = Error::invalid("nb must be positive");
        assert!(e.to_string().contains("nb"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Singular { pivot: 1 }, Error::Singular { pivot: 1 });
        assert_ne!(
            Error::Singular { pivot: 1 },
            Error::NotPositiveDefinite { pivot: 1 }
        );
    }
}
