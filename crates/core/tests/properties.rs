//! Property-based tests for the core kernels: algebraic identities that
//! must hold for arbitrary shapes, seeds, and block sizes.

use proptest::prelude::*;
use xsc_core::gemm::{gemm, naive_gemm, par_gemm};
use xsc_core::trsm::{trsm, Diag, Side, Uplo};
use xsc_core::{factor, gen, householder, norms, Matrix, Transpose};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// C <- A(B1 + B2) == A B1 + A B2 (distributivity through the kernel).
    #[test]
    fn gemm_is_distributive(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..10_000,
    ) {
        let a = gen::random_matrix::<f64>(m, k, seed);
        let b1 = gen::random_matrix::<f64>(k, n, seed + 1);
        let b2 = gen::random_matrix::<f64>(k, n, seed + 2);
        let mut bsum = b1.clone();
        bsum.axpy(1.0, &b2);

        let mut lhs = Matrix::zeros(m, n);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &bsum, 0.0, &mut lhs);

        let mut rhs = Matrix::zeros(m, n);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b1, 0.0, &mut rhs);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b2, 1.0, &mut rhs);
        prop_assert!(lhs.approx_eq(&rhs, 1e-10 * (k as f64)));
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn gemm_transpose_identity(
        m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0u64..10_000,
    ) {
        let a = gen::random_matrix::<f64>(m, k, seed);
        let b = gen::random_matrix::<f64>(k, n, seed + 7);
        let mut ab = Matrix::zeros(m, n);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut ab);
        let mut btat = Matrix::zeros(n, m);
        gemm(Transpose::Yes, Transpose::Yes, 1.0, &b, &a, 0.0, &mut btat);
        prop_assert!(ab.transpose().approx_eq(&btat, 1e-11 * (k as f64)));
    }

    /// Optimized and parallel gemm agree with the naive reference for all
    /// transpose combinations.
    #[test]
    fn gemm_variants_agree(
        m in 1usize..20, k in 1usize..20, n in 1usize..20,
        ta in 0..2usize, tb in 0..2usize, seed in 0u64..10_000,
    ) {
        let t = |x: usize| if x == 0 { Transpose::No } else { Transpose::Yes };
        let (ar, ac) = if ta == 0 { (m, k) } else { (k, m) };
        let (br, bc) = if tb == 0 { (k, n) } else { (n, k) };
        let a = gen::random_matrix::<f64>(ar, ac, seed);
        let b = gen::random_matrix::<f64>(br, bc, seed + 3);
        let c0 = gen::random_matrix::<f64>(m, n, seed + 4);
        let mut c_naive = c0.clone();
        naive_gemm(t(ta), t(tb), 0.75, &a, &b, -1.25, &mut c_naive);
        let mut c_fast = c0.clone();
        gemm(t(ta), t(tb), 0.75, &a, &b, -1.25, &mut c_fast);
        let mut c_par = c0.clone();
        par_gemm(t(ta), t(tb), 0.75, &a, &b, -1.25, &mut c_par);
        prop_assert!(c_naive.approx_eq(&c_fast, 1e-10 * (k as f64 + 1.0)));
        prop_assert!(c_naive.approx_eq(&c_par, 1e-10 * (k as f64 + 1.0)));
    }

    /// The blocked kernel and its parallel driver agree with the naive
    /// reference on shapes that straddle every micro- and macro-tile
    /// boundary (1, block-1, block, block+1 for MR/NR/MC/KC/NC at the
    /// default blocking), for all four transpose combinations and
    /// beta in {0, 1, other}.
    #[test]
    fn blocked_gemm_agrees_on_tile_boundaries(
        mi in 0..7usize, ki in 0..4usize, ni in 0..7usize,
        ta in 0..2usize, tb in 0..2usize, bi in 0..3usize, seed in 0u64..10_000,
    ) {
        const M_VALS: [usize; 7] = [1, 7, 8, 9, 127, 128, 129]; // 1, MR+-1, MC+-1
        const K_VALS: [usize; 4] = [1, 255, 256, 257]; // 1, KC+-1
        const N_VALS: [usize; 7] = [1, 3, 4, 5, 511, 512, 513]; // 1, NR+-1, NC+-1
        let (m, k, n) = (M_VALS[mi], K_VALS[ki], N_VALS[ni]);
        let beta = [0.0, 1.0, -0.75][bi];
        let t = |x: usize| if x == 0 { Transpose::No } else { Transpose::Yes };
        let (ar, ac) = if ta == 0 { (m, k) } else { (k, m) };
        let (br, bc) = if tb == 0 { (k, n) } else { (n, k) };
        let a = gen::random_matrix::<f64>(ar, ac, seed);
        let b = gen::random_matrix::<f64>(br, bc, seed + 3);
        let c0 = gen::random_matrix::<f64>(m, n, seed + 4);
        let mut c_naive = c0.clone();
        naive_gemm(t(ta), t(tb), 0.75, &a, &b, beta, &mut c_naive);
        let mut c_fast = c0.clone();
        gemm(t(ta), t(tb), 0.75, &a, &b, beta, &mut c_fast);
        let mut c_par = c0.clone();
        par_gemm(t(ta), t(tb), 0.75, &a, &b, beta, &mut c_par);
        let tol = 1e-10 * (k as f64 + 1.0);
        prop_assert!(c_naive.approx_eq(&c_fast, tol), "gemm diff {}", c_naive.max_abs_diff(&c_fast));
        prop_assert!(c_naive.approx_eq(&c_par, tol), "par_gemm diff {}", c_naive.max_abs_diff(&c_par));
    }

    /// trsm really inverts trmm: X := op(T)^{-1} (op(T) X).
    #[test]
    fn trsm_inverts_triangular_product(
        n in 1usize..16, nrhs in 1usize..8,
        uplo in 0..2usize, trans in 0..2usize, diag in 0..2usize,
        seed in 0u64..10_000,
    ) {
        let uplo = if uplo == 0 { Uplo::Lower } else { Uplo::Upper };
        let trans = if trans == 0 { Transpose::No } else { Transpose::Yes };
        let diag = if diag == 0 { Diag::NonUnit } else { Diag::Unit };
        // Well-conditioned triangle.
        let mut t = gen::random_matrix::<f64>(n, n, seed);
        for i in 0..n {
            t.set(i, i, 3.0 + i as f64 * 0.25);
        }
        let t_clean = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if diag == Diag::Unit { 1.0 } else { t.get(i, j) }
            } else {
                let stored = match uplo { Uplo::Lower => i > j, Uplo::Upper => i < j };
                if stored { t.get(i, j) } else { 0.0 }
            }
        });
        let x_true = gen::random_matrix::<f64>(n, nrhs, seed + 5);
        let mut b = Matrix::zeros(n, nrhs);
        gemm(trans, Transpose::No, 1.0, &t_clean, &x_true, 0.0, &mut b);
        trsm(Side::Left, uplo, trans, diag, 1.0, &t, &mut b);
        prop_assert!(b.approx_eq(&x_true, 1e-8), "diff {}", b.max_abs_diff(&x_true));
    }

    /// LU reconstruction: P^T L U == A for every size and block size.
    #[test]
    fn lu_reconstructs_for_any_blocking(
        n in 1usize..32, nb in 1usize..16, seed in 0u64..10_000,
    ) {
        let a = gen::random_matrix::<f64>(n, n, seed);
        let mut f = a.clone();
        let piv = factor::getrf_blocked(&mut f, nb).unwrap();
        let r = factor::reconstruct_from_lu(&f, &piv);
        prop_assert!(r.approx_eq(&a, 1e-9 * (n as f64 + 1.0)),
            "diff {}", r.max_abs_diff(&a));
    }

    /// Cholesky reconstruction: L L^T == A.
    #[test]
    fn cholesky_reconstructs(
        n in 1usize..32, nb in 1usize..16, seed in 0u64..10_000,
    ) {
        let a = gen::random_spd::<f64>(n, seed);
        let mut f = a.clone();
        factor::potrf_blocked(&mut f, nb).unwrap();
        let r = factor::reconstruct_from_cholesky(&f);
        prop_assert!(r.approx_eq(&a, 1e-9 * (n as f64 + 1.0)));
    }

    /// QR: the thin Q is orthonormal and Q R == A, for any shape m >= n.
    #[test]
    fn qr_orthogonality_and_reconstruction(
        m in 1usize..32, n in 1usize..16, seed in 0u64..10_000,
    ) {
        prop_assume!(m >= n);
        let a = gen::random_matrix::<f64>(m, n, seed);
        let mut f = a.clone();
        let taus = householder::geqrf(&mut f);
        let q = householder::build_q_thin(&f, &taus);
        let r = householder::extract_r(&f);
        let mut qtq = Matrix::zeros(n, n);
        gemm(Transpose::Yes, Transpose::No, 1.0, &q, &q, 0.0, &mut qtq);
        prop_assert!(qtq.approx_eq(&Matrix::identity(n), 1e-11 * (m as f64)));
        let mut qr = Matrix::zeros(m, n);
        gemm(Transpose::No, Transpose::No, 1.0, &q, &r, 0.0, &mut qr);
        prop_assert!(qr.approx_eq(&a, 1e-10 * (m as f64)));
    }

    /// Solves satisfy the HPL acceptance criterion for arbitrary systems.
    #[test]
    fn lu_solve_passes_hpl_criterion(n in 2usize..48, seed in 0u64..10_000) {
        let a = gen::random_matrix::<f64>(n, n, seed);
        let b = gen::random_vector::<f64>(n, seed + 9);
        let mut f = a.clone();
        let piv = factor::getrf_blocked(&mut f, 8).unwrap();
        let mut x = b.clone();
        factor::getrf_solve(&f, &piv, &mut x);
        prop_assert!(norms::hpl_scaled_residual(&a, &x, &b) < 16.0);
    }

    /// Pairwise reductions are permutation-stable enough: the pairwise dot
    /// of a vector against itself equals the norm squared to high accuracy.
    #[test]
    fn pairwise_dot_matches_norm(n in 1usize..2000, seed in 0u64..10_000) {
        let x = gen::random_vector::<f64>(n, seed);
        let d = xsc_core::blas1::dot_pairwise(&x, &x);
        let nrm = xsc_core::blas1::nrm2(&x);
        prop_assert!((d - nrm * nrm).abs() <= 1e-12 * (1.0 + nrm * nrm));
    }
}
