//! Performance regression gate for the blocked GEMM (ISSUE 2 acceptance):
//! the packed blocked kernel must beat the pre-blocking column-sweep on a
//! 512x512x512 f64 multiply. `#[ignore]`d by default because wall-clock
//! assertions are hardware-sensitive; run explicitly with
//! `cargo test -q -p xsc-core --test gemm_perf -- --ignored`.

use xsc_core::gemm::{colsweep_gemm, gemm, par_gemm, Transpose};
use xsc_core::{gen, Matrix};
use xsc_metrics::Stopwatch;

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Stopwatch::start();
            f();
            t.seconds()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
#[ignore = "wall-clock perf gate; run with --ignored on quiet hardware"]
fn blocked_gemm_beats_colsweep_at_512() {
    let s = 512;
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);

    let t_sweep = best_of(5, || {
        colsweep_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c)
    });
    let t_blocked = best_of(5, || {
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c)
    });
    let gf = |t: f64| 2.0 * (s as f64).powi(3) / t / 1e9;
    eprintln!(
        "colsweep: {:.3}s ({:.2} GF/s)  blocked: {:.3}s ({:.2} GF/s)  speedup {:.2}x",
        t_sweep,
        gf(t_sweep),
        t_blocked,
        gf(t_blocked),
        t_sweep / t_blocked
    );
    assert!(
        t_blocked < t_sweep,
        "blocked gemm ({t_blocked:.3}s) must beat the column sweep ({t_sweep:.3}s) at {s}^3"
    );
}

#[test]
#[ignore = "wall-clock perf gate; run with --ignored on quiet hardware"]
fn par_gemm_macro_tiles_beat_sequential_blocked_at_512() {
    let s = 512;
    let a = gen::random_matrix::<f64>(s, s, 1);
    let b = gen::random_matrix::<f64>(s, s, 2);
    let mut c = Matrix::<f64>::zeros(s, s);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads < 2 {
        eprintln!("single-core host; skipping parallel perf gate");
        return;
    }
    let t_seq = best_of(5, || {
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c)
    });
    let t_par = best_of(5, || {
        par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, &mut c)
    });
    eprintln!("seq blocked: {t_seq:.3}s  par blocked ({threads} threads): {t_par:.3}s");
    assert!(
        t_par < t_seq,
        "par_gemm ({t_par:.3}s) must beat sequential blocked gemm ({t_seq:.3}s) on {threads} cores"
    );
}
