//! Exhaustive schedule-space checking for the work-stealing executor.
//!
//! PR 8's executor replaced one locked heap with per-worker heaps,
//! affinity-guided stealing, and a sleep-lock/condvar protocol. Its
//! correctness argument — no lost wakeups, deadlock freedom, and
//! bit-identical task outputs across every schedule — lives in comments
//! and stress tests; stress tests sample the schedule space, they do not
//! cover it. This module is a loom-style bounded model checker that
//! *enumerates* it: a faithful small-state transcription of the worker
//! loop (own-pop, steal scan/pop split at the racy boundary, sleep-lock
//! acquisition separated from the under-lock re-checks, condvar wakeup
//! sets) is explored exhaustively over every interleaving on small task
//! graphs (≤ [`MAX_WORKERS`] workers, ≤ [`MAX_TASKS`] tasks), asserting:
//!
//! * **deadlock freedom** — from every reachable state some worker can
//!   step, or every worker has exited;
//! * **completion** — every terminal state ran all tasks and drained all
//!   queues (a lost wakeup shows up as sleepers nobody will ever wake);
//! * **dependence order** — no task ever runs before its predecessors
//!   (the superscalar-semantics guarantee);
//! * **bit-identity** — every datum's writes happen in serial id order in
//!   every schedule, so final bit patterns equal the serial execution's
//!   (schedule-independent results, the property E17/E19/E21 assert at
//!   runtime).
//!
//! The transcription is kept honest by *mutants* ([`Protocol`]): known
//! single-decision corruptions of the sleep protocol that the checker
//! must catch (see `check-schedules --self-test` and
//! `crates/runtime/tests/schedule_space.rs`). One mutant —
//! [`Protocol::NoQueueRecheck`] — is deliberately *not* a bug: because
//! workers only push to their own queue and drain it before sleeping, the
//! under-lock queue re-scan is defense-in-depth, and the checker proves
//! it (see DESIGN.md, "Schedule-space checking").
//!
//! Granularity: one transition per atomic read-modify-write or
//! lock-bracketed section. The executor's sleep lock exists to make three
//! sections atomic — (re-check world + register as sleeper) inside the
//! wait loop, (notify sleepers) in `wake_all`, and the wait-return
//! re-acquire/release pair — so the model treats each as one transition
//! and carries no explicit mutex: a single mutex cannot deadlock by
//! itself (lock *ordering* across the executor's several mutexes is
//! checked statically by lint rule C03), and every interleaving that
//! observes the lock held mid-section is stutter-equivalent to one that
//! orders the observer before or after the whole section. What the lock
//! can **not** make atomic — the gap between a thief's "all queues empty"
//! observation and its sleeper registration, i.e. the lost-wakeup window —
//! stays a separate transition, as does the steal's scan/pop split (the
//! benign drained-victim race). Successor release (atomic in-degree
//! decrements plus own-queue pushes under one queue lock) is one step;
//! the decrements are individually atomic in the real code, and
//! cross-worker interleavings of whole release steps are still explored.

use crate::SchedPolicy;
use std::collections::BTreeSet;

/// Bound on workers the checker models (the executor takes any count; the
/// schedule space is exhaustive only at small bounds).
pub const MAX_WORKERS: usize = 4;
/// Bound on tasks per checked graph.
pub const MAX_TASKS: usize = 8;
/// Bound on distinct data a checked graph writes.
pub const MAX_DATA: usize = 8;
/// Default cap on explored states before the checker gives up (the widest
/// standard configuration — `random7s1` at 4 workers — reaches ~4.6M
/// states; exceeding the cap is reported as a failure, never silently
/// truncated).
pub const DEFAULT_STATE_CAP: u64 = 8_000_000;

/// Worker-local affinity encoding inside the compact state (`0xFF` =
/// none, mirroring [`NO_AFFINITY`](crate::NO_AFFINITY)).
const NOAFF: u8 = 0xFF;

/// A small task graph in checker form: the *finalized* view the executor
/// sees (edges already include the hazard-analysis ordering).
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Display name for reports.
    pub name: String,
    /// Task count (≤ [`MAX_TASKS`]).
    pub n: usize,
    /// Dependence edges `(from, to)` with `from < to`.
    pub edges: Vec<(usize, usize)>,
    /// The datum each task writes (< [`MAX_DATA`]); the bit-identity hash
    /// folds writer order per datum.
    pub datum: Vec<usize>,
    /// Task cost, feeding the critical-path priority.
    pub cost: Vec<u64>,
    /// Caller-assigned keys for [`SchedPolicy::Explicit`].
    pub explicit: Vec<u64>,
    /// Affinity tag per task (`0xFF` = none), steering steal victims.
    pub affinity: Vec<u8>,
}

impl GraphSpec {
    fn validate(&self) {
        assert!(self.n >= 1 && self.n <= MAX_TASKS, "task bound");
        assert_eq!(self.datum.len(), self.n);
        assert_eq!(self.cost.len(), self.n);
        assert_eq!(self.explicit.len(), self.n);
        assert_eq!(self.affinity.len(), self.n);
        assert!(self.datum.iter().all(|&d| d < MAX_DATA), "datum bound");
        for &(a, b) in &self.edges {
            assert!(a < b && b < self.n, "edges must be forward and in range");
        }
    }

    /// A serial dependence chain `0 -> 1 -> ... -> n-1`.
    pub fn chain(n: usize) -> GraphSpec {
        GraphSpec {
            name: format!("chain{n}"),
            n,
            edges: (1..n).map(|i| (i - 1, i)).collect(),
            datum: vec![0; n],
            cost: (0..n).map(|i| 1 + (i as u64 % 3)).collect(),
            explicit: (0..n).map(|i| (i as u64 * 7) % 5).collect(),
            affinity: vec![NOAFF; n],
        }
    }

    /// `n` fully independent tasks, each writing its own datum — the
    /// worst case for the interleaving count.
    pub fn independent(n: usize) -> GraphSpec {
        GraphSpec {
            name: format!("indep{n}"),
            n,
            edges: Vec::new(),
            datum: (0..n).collect(),
            cost: vec![1; n],
            explicit: (0..n).map(|i| (i as u64 * 3) % 4).collect(),
            affinity: vec![NOAFF; n],
        }
    }

    /// The 4-task diamond `0 -> {1, 2} -> 3` with tasks 1 and 2 writing
    /// different data and 3 reading both.
    pub fn diamond() -> GraphSpec {
        GraphSpec {
            name: "diamond".to_string(),
            n: 4,
            edges: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            datum: vec![0, 1, 2, 0],
            cost: vec![1, 4, 1, 1],
            explicit: vec![0, 2, 1, 3],
            affinity: vec![NOAFF; 4],
        }
    }

    /// Fork-join: source `0`, `width` independent middles, sink
    /// `width + 1`.
    pub fn fork_join(width: usize) -> GraphSpec {
        let n = width + 2;
        let mut edges = Vec::new();
        for i in 1..=width {
            edges.push((0, i));
            edges.push((i, n - 1));
        }
        GraphSpec {
            name: format!("forkjoin{width}"),
            n,
            edges,
            datum: (0..n).map(|i| i % MAX_DATA).collect(),
            cost: (0..n).map(|i| 1 + (i as u64 % 2) * 3).collect(),
            explicit: (0..n).map(|i| i as u64 % 3).collect(),
            affinity: vec![NOAFF; n],
        }
    }

    /// Two independent chains of `len` tasks with distinct affinity tags —
    /// exercises affinity-guided victim selection in the steal scan.
    pub fn two_chains_affine(len: usize) -> GraphSpec {
        let n = 2 * len;
        let mut edges = Vec::new();
        for i in 1..len {
            edges.push((2 * (i - 1), 2 * i)); // chain A on even ids
            edges.push((2 * i - 1, 2 * i + 1)); // chain B on odd ids
        }
        GraphSpec {
            name: format!("twochain{len}"),
            n,
            edges,
            datum: (0..n).map(|i| i % 2).collect(),
            cost: vec![2; n],
            explicit: (0..n).map(|i| i as u64 % 2).collect(),
            affinity: (0..n).map(|i| 1 + (i % 2) as u8).collect(),
        }
    }

    /// Adversarial: two writers of one datum with **no** ordering edge —
    /// the hazard the graph builder's WAW analysis exists to prevent. The
    /// checker must find the bit divergence.
    pub fn unordered_writers() -> GraphSpec {
        GraphSpec {
            name: "unordered-writers".to_string(),
            n: 2,
            edges: Vec::new(),
            datum: vec![0, 0],
            cost: vec![1, 1],
            explicit: vec![0, 0],
            affinity: vec![NOAFF; 2],
        }
    }

    /// A seeded pseudo-random DAG: extra forward edges sampled from a
    /// deterministic LCG stream, then writers of each datum chained in id
    /// order exactly as the graph builder's WAW analysis would.
    pub fn seeded_random(n: usize, seed: u64) -> GraphSpec {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut edges = BTreeSet::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if next() % 100 < 25 {
                    edges.insert((a, b));
                }
            }
        }
        let datum: Vec<usize> = (0..n)
            .map(|_| (next() as usize) % MAX_DATA.min(n))
            .collect();
        // Total WAW order between same-datum writers, as finalize() makes.
        for d in 0..MAX_DATA {
            let writers: Vec<usize> = (0..n).filter(|&t| datum[t] == d).collect();
            for w in writers.windows(2) {
                edges.insert((w[0], w[1]));
            }
        }
        GraphSpec {
            name: format!("random{n}s{seed}"),
            n,
            edges: edges.into_iter().collect(),
            datum,
            cost: (0..n).map(|_| 1 + next() % 4).collect(),
            explicit: (0..n).map(|_| next() % 4).collect(),
            affinity: (0..n)
                .map(|_| [NOAFF, 1, 2][(next() as usize) % 3])
                .collect(),
        }
    }
}

/// The sleep-protocol variant under check. `Correct` is the shipped
/// executor; the rest are deliberate single-decision corruptions used as
/// checker self-tests (each is caught — or, for `NoQueueRecheck`,
/// *proven benign* — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The shipped protocol, as written in `executor.rs`.
    Correct,
    /// Skip the `finished()` re-check under the sleep lock: a worker that
    /// raced the final wake then waits forever — deadlock.
    NoFinishedRecheck,
    /// Skip the all-queues re-scan under the sleep lock. Benign in this
    /// design (workers drain their own queues before sleeping), and the
    /// checker proves it.
    NoQueueRecheck,
    /// The finishing worker exits without the final wake-all: sleepers
    /// never wake — deadlock.
    SkipFinalWake,
    /// The final wake notifies one sleeper instead of all: with two or
    /// more sleepers, the rest never wake — deadlock.
    NotifyOneFinal,
    /// Release successors *before* running the task: a successor can run
    /// against unwritten inputs — dependence-order violation.
    EagerRelease,
}

/// Worker program counters in the model, mirroring the executor loop.
/// The loop top folds the own-queue pop and the steal scan (both read
/// state no other worker can change adversarially between them: only the
/// owner pushes to its own queue); the steal *pop* and the sleep
/// registration stay separate, because those gaps are where the races
/// live (drained victim, lost wakeup).
mod pc {
    pub const TOP: u8 = 0;
    pub const STEAL_POP: u8 = 1;
    /// Observed everything empty; about to (atomically) re-check and
    /// register as a sleeper. The TOP → SLEEP gap is the lost-wakeup
    /// window.
    pub const SLEEP: u8 = 2;
    pub const WAITING: u8 = 3;
    pub const RUN: u8 = 4;
    pub const RELEASE: u8 = 5;
    pub const NOTIFY: u8 = 6;
    pub const DEC: u8 = 7;
    pub const FINAL_WAKE: u8 = 8;
    pub const EXITED: u8 = 9;
}

/// One worker's slice of the model state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Wk {
    pc: u8,
    /// Task in flight (RUN/RELEASE/NOTIFY/DEC), else 0xFF.
    task: u8,
    /// Chosen steal victim (STEAL_POP), else 0xFF.
    victim: u8,
    /// Last affinity tag of a task this worker ran.
    aff: u8,
}

/// The full model state. Derives `Ord` so the visited set is a `BTreeSet`
/// (deterministic iteration, no hash containers in numeric crates).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct St {
    /// Ready-task bitmask per worker queue.
    queues: [u8; MAX_WORKERS],
    /// Unsatisfied in-degree per task.
    pending: [u8; MAX_TASKS],
    /// Completed-task bitmask.
    done: u8,
    /// The executor's `remaining` counter.
    remaining: u8,
    /// Bitmask of workers parked in `wait`.
    sleepers: u8,
    /// Bitmask of notified workers whose `wait` has not yet returned.
    woken: u8,
    w: [Wk; MAX_WORKERS],
}

/// Why a check failed, with the interleaving that reaches it (one line
/// per step, from the initial state).
#[derive(Debug, Clone)]
pub enum Violation {
    /// Some workers can never step again (a lost wakeup).
    Deadlock {
        /// Steps from the initial state into the dead state.
        trace: Vec<String>,
    },
    /// A task ran before one of its predecessors completed.
    OrderViolation {
        /// The task that ran early.
        task: usize,
        /// Steps from the initial state to the premature run.
        trace: Vec<String>,
    },
    /// A datum's writers ran out of serial order in some schedule, so its
    /// final bit pattern would differ from the serial execution's. (The
    /// state itself carries no value hashes: for a graph whose same-datum
    /// writers are WAW-chained, the write *sequence* per datum is a
    /// function of the `done` set, so checking each write happens in
    /// serial id order at its run step is exactly terminal hash equality —
    /// and it pinpoints the first divergent write.)
    BitDivergence {
        /// The datum whose writer order diverged.
        datum: usize,
        /// Steps from the initial state to the first out-of-order write.
        trace: Vec<String>,
    },
    /// A terminal state left tasks unrun or queues non-empty.
    IncompleteRun {
        /// Steps from the initial state to the bad terminal.
        trace: Vec<String>,
    },
    /// The exploration exceeded its state cap (configuration too large —
    /// never expected within the documented bounds).
    StateSpaceExceeded {
        /// The cap that was hit.
        cap: u64,
    },
}

impl Violation {
    /// Short machine-stable kind tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Deadlock { .. } => "deadlock",
            Violation::OrderViolation { .. } => "order-violation",
            Violation::BitDivergence { .. } => "bit-divergence",
            Violation::IncompleteRun { .. } => "incomplete-run",
            Violation::StateSpaceExceeded { .. } => "state-space-exceeded",
        }
    }

    /// The counterexample interleaving (empty for state-cap failures).
    pub fn trace(&self) -> &[String] {
        match self {
            Violation::Deadlock { trace }
            | Violation::OrderViolation { trace, .. }
            | Violation::BitDivergence { trace, .. }
            | Violation::IncompleteRun { trace } => trace,
            Violation::StateSpaceExceeded { .. } => &[],
        }
    }
}

/// The result of exhaustively checking one configuration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Graph name (from [`GraphSpec::name`]).
    pub graph: String,
    /// Task count.
    pub tasks: usize,
    /// Worker count.
    pub workers: usize,
    /// Scheduling policy checked.
    pub policy: SchedPolicy,
    /// Protocol variant checked.
    pub protocol: Protocol,
    /// Distinct states explored.
    pub states: u64,
    /// Transitions taken (edges of the state graph).
    pub transitions: u64,
    /// Distinct terminal (all-workers-exited) states reached.
    pub terminals: u64,
    /// Deepest DFS path, in steps.
    pub max_depth: usize,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
}

impl CheckReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let verdict = match &self.violation {
            None => "ok".to_string(),
            Some(v) => format!("FAIL({})", v.kind()),
        };
        format!(
            "{graph} w={w} {policy:?} {proto:?}: {verdict} states={s} transitions={t} \
             terminals={term} depth={d}",
            graph = self.graph,
            w = self.workers,
            policy = self.policy,
            proto = self.protocol,
            s = self.states,
            t = self.transitions,
            term = self.terminals,
            d = self.max_depth,
        )
    }
}

/// Immutable model context shared across the exploration.
struct Model<'a> {
    spec: &'a GraphSpec,
    workers: usize,
    protocol: Protocol,
    /// Scheduling key per task under `policy` (max-heap, ties to low id).
    keys: Vec<u64>,
    /// Successor lists.
    succs: Vec<Vec<usize>>,
    /// For each task, the same-datum writers with smaller id: the set that
    /// must be `done` before this task writes, or the datum's bit pattern
    /// diverges from the serial execution.
    writers_before: Vec<u8>,
}

impl<'a> Model<'a> {
    fn new(spec: &'a GraphSpec, workers: usize, policy: SchedPolicy, protocol: Protocol) -> Self {
        spec.validate();
        assert!((1..=MAX_WORKERS).contains(&workers), "worker bound");
        let n = spec.n;
        let mut succs = vec![Vec::new(); n];
        for &(a, b) in &spec.edges {
            succs[a].push(b);
        }
        // Critical-path priority: cost + max successor priority (the
        // reverse sweep finalize() performs).
        let mut prio = vec![0u64; n];
        for t in (0..n).rev() {
            let best = succs[t].iter().map(|&s| prio[s]).max().unwrap_or(0);
            prio[t] = spec.cost[t] + best;
        }
        let keys = (0..n)
            .map(|t| match policy {
                SchedPolicy::Fifo => u64::MAX - t as u64,
                SchedPolicy::CriticalPath => prio[t],
                SchedPolicy::Explicit => spec.explicit[t],
            })
            .collect();
        let writers_before = (0..n)
            .map(|t| {
                (0..t)
                    .filter(|&u| spec.datum[u] == spec.datum[t])
                    .fold(0u8, |m, u| m | (1 << u))
            })
            .collect();
        Model {
            spec,
            workers,
            protocol,
            keys,
            succs,
            writers_before,
        }
    }

    /// The task a heap over `mask` would pop: max key, ties to lowest id
    /// (mirrors `ReadyTask`'s ordering).
    fn top(&self, mask: u8) -> Option<usize> {
        let mut best: Option<usize> = None;
        for t in 0..self.spec.n {
            if mask & (1 << t) == 0 {
                continue;
            }
            best = match best {
                None => Some(t),
                Some(b) if self.keys[t] > self.keys[b] => Some(t),
                Some(b) => Some(b),
            };
        }
        best
    }

    /// Mirrors `Shared::try_steal`'s victim choice from a snapshot of the
    /// queue tops: first affine victim in scan order, else the best
    /// `(key, lowest id)` top.
    fn choose_victim(&self, st: &St, thief: usize) -> Option<usize> {
        let mut affine: Option<usize> = None;
        let mut best: Option<(usize, u64, usize)> = None;
        for off in 1..self.workers {
            let v = (thief + off) % self.workers;
            if let Some(top) = self.top(st.queues[v]) {
                let aff = st.w[thief].aff;
                if affine.is_none() && aff != NOAFF && self.spec.affinity[top] == aff {
                    affine = Some(v);
                }
                let better = match best {
                    None => true,
                    Some((_, key, id)) => {
                        self.keys[top] > key || (self.keys[top] == key && top < id)
                    }
                };
                if better {
                    best = Some((v, self.keys[top], top));
                }
            }
        }
        affine.or(best.map(|(v, _, _)| v))
    }

    /// The initial state: sources seeded round-robin, workers at TOP.
    fn init(&self) -> St {
        let mut st = St {
            queues: [0; MAX_WORKERS],
            pending: [0; MAX_TASKS],
            done: 0,
            remaining: self.spec.n as u8,
            sleepers: 0,
            woken: 0,
            w: [Wk {
                pc: pc::TOP,
                task: 0xFF,
                victim: 0xFF,
                aff: NOAFF,
            }; MAX_WORKERS],
        };
        for &(_, b) in &self.spec.edges {
            st.pending[b] += 1;
        }
        let mut sources = 0usize;
        for t in 0..self.spec.n {
            if st.pending[t] == 0 {
                st.queues[sources % self.workers] |= 1 << t;
                sources += 1;
            }
        }
        st
    }

    /// Marks worker `w` as having acquired `task` and routes to the next
    /// phase (RUN, or RELEASE first under the EagerRelease mutant).
    fn acquired(&self, st: &mut St, w: usize, task: usize) {
        st.w[w].task = task as u8;
        if self.spec.affinity[task] != NOAFF {
            st.w[w].aff = self.spec.affinity[task];
        }
        st.w[w].pc = if self.protocol == Protocol::EagerRelease {
            pc::RELEASE
        } else {
            pc::RUN
        };
    }

    /// Computes worker `w`'s unique enabled transition from `st`, if any.
    /// Per-worker transitions are deterministic; all nondeterminism is in
    /// *which* worker steps.
    fn step(&self, st: &St, w: usize) -> Step {
        let me = 1u8 << w;
        let cur = st.w[w];
        let mut nx = st.clone();
        match cur.pc {
            pc::TOP => {
                if nx.remaining == 0 {
                    nx.w[w] = EXITED_WK;
                    return Step::Go(nx, format!("w{w}: observes finished, exits"));
                }
                if let Some(t) = self.top(nx.queues[w]) {
                    nx.queues[w] &= !(1 << t);
                    self.acquired(&mut nx, w, t);
                    return Step::Go(nx, format!("w{w}: pops t{t} from own queue"));
                }
                // Own queue is empty and stays so (only the owner pushes),
                // so the scan folds into this step without losing
                // interleavings.
                match self.choose_victim(st, w) {
                    Some(v) => {
                        nx.w[w].pc = pc::STEAL_POP;
                        nx.w[w].victim = v as u8;
                        Step::Go(nx, format!("w{w}: own queue empty, picks victim w{v}"))
                    }
                    None => {
                        nx.w[w].pc = pc::SLEEP;
                        Step::Go(nx, format!("w{w}: sees all queues empty, heads to sleep"))
                    }
                }
            }
            pc::STEAL_POP => {
                let v = cur.victim as usize;
                nx.w[w].victim = 0xFF;
                match self.top(st.queues[v]) {
                    Some(t) => {
                        nx.queues[v] &= !(1 << t);
                        self.acquired(&mut nx, w, t);
                        Step::Go(nx, format!("w{w}: steals t{t} from w{v}"))
                    }
                    None => {
                        // The benign race: the victim drained between scan
                        // and pop; rescan from the top of the loop.
                        nx.w[w].pc = pc::TOP;
                        Step::Go(nx, format!("w{w}: victim w{v} drained, rescans"))
                    }
                }
            }
            pc::SLEEP => {
                // The lock-bracketed wait-loop body, as one atomic step:
                // re-check the world, then register as a sleeper. Anything
                // that changed since the TOP observation is caught here —
                // unless a mutant disables the corresponding re-check.
                if self.protocol != Protocol::NoFinishedRecheck && st.remaining == 0 {
                    nx.w[w] = EXITED_WK;
                    return Step::Go(nx, format!("w{w}: finished under lock, exits"));
                }
                if self.protocol != Protocol::NoQueueRecheck
                    && st.queues[..self.workers].iter().any(|&q| q != 0)
                {
                    nx.w[w].pc = pc::TOP;
                    return Step::Go(nx, format!("w{w}: sees work under lock, retries"));
                }
                nx.sleepers |= me;
                nx.w[w].pc = pc::WAITING;
                Step::Go(nx, format!("w{w}: waits on condvar"))
            }
            pc::WAITING => {
                // `wait` returns (re-acquire + predicate-loop re-entry via
                // TOP) once notified.
                if st.woken & me == 0 {
                    return Step::Blocked;
                }
                nx.woken &= !me;
                nx.w[w].pc = pc::TOP;
                Step::Go(nx, format!("w{w}: wakes, rescans"))
            }
            pc::RUN => {
                let t = cur.task as usize;
                // Dependence order: every predecessor must have completed.
                for &(a, b) in &self.spec.edges {
                    if b == t && st.done & (1 << a) == 0 {
                        return Step::Premature(t);
                    }
                }
                // Bit-identity: this write must be the next same-datum
                // write in serial id order (see `Violation::BitDivergence`).
                if st.done & self.writers_before[t] != self.writers_before[t] {
                    return Step::Diverge(t);
                }
                nx.done |= 1 << t;
                nx.w[w].pc = if self.protocol == Protocol::EagerRelease {
                    pc::DEC
                } else {
                    pc::RELEASE
                };
                Step::Go(nx, format!("w{w}: runs t{t}"))
            }
            pc::RELEASE => {
                let t = cur.task as usize;
                let mut pushed = false;
                for &s in &self.succs[t] {
                    nx.pending[s] -= 1;
                    if nx.pending[s] == 0 {
                        nx.queues[w] |= 1 << s;
                        pushed = true;
                    }
                }
                nx.w[w].pc = if pushed && self.workers > 1 {
                    pc::NOTIFY
                } else if self.protocol == Protocol::EagerRelease {
                    pc::RUN
                } else {
                    pc::DEC
                };
                Step::Go(nx, format!("w{w}: releases successors of t{t}"))
            }
            pc::NOTIFY => {
                // wake_all(): acquire sleep lock, notify_all, release —
                // one atomic section.
                nx.woken |= st.sleepers;
                nx.sleepers = 0;
                nx.w[w].pc = if self.protocol == Protocol::EagerRelease {
                    pc::RUN
                } else {
                    pc::DEC
                };
                Step::Go(nx, format!("w{w}: wake_all after push"))
            }
            pc::DEC => {
                nx.remaining -= 1;
                nx.w[w].task = 0xFF;
                if nx.remaining == 0 {
                    if self.protocol == Protocol::SkipFinalWake {
                        nx.w[w] = EXITED_WK;
                        return Step::Go(nx, format!("w{w}: last task, exits (no final wake)"));
                    }
                    nx.w[w].pc = pc::FINAL_WAKE;
                    return Step::Go(nx, format!("w{w}: decrements remaining to 0"));
                }
                nx.w[w].pc = pc::TOP;
                Step::Go(nx, format!("w{w}: decrements remaining"))
            }
            pc::FINAL_WAKE => {
                if self.protocol == Protocol::NotifyOneFinal {
                    let low = st.sleepers & st.sleepers.wrapping_neg();
                    nx.woken |= low;
                    nx.sleepers &= !low;
                } else {
                    nx.woken |= st.sleepers;
                    nx.sleepers = 0;
                }
                nx.w[w] = EXITED_WK;
                Step::Go(nx, format!("w{w}: final wake_all, exits"))
            }
            _ => Step::Blocked, // EXITED
        }
    }
}

/// The canonical exited-worker slot: all per-worker scratch (task, victim,
/// affinity) cleared, so states differing only in dead history merge.
const EXITED_WK: Wk = Wk {
    pc: pc::EXITED,
    task: 0xFF,
    victim: 0xFF,
    aff: NOAFF,
};

/// One worker-step outcome.
enum Step {
    /// The worker can step to this state.
    Go(St, String),
    /// The worker is blocked (parked without a wakeup, or exited).
    Blocked,
    /// The worker would run `task` before its predecessors — a
    /// dependence-order violation.
    Premature(usize),
    /// The worker would write `task`'s datum out of serial writer order —
    /// a bit-identity violation.
    Diverge(usize),
}

/// A DFS frame: a state plus its generated successors.
struct Frame {
    /// The label of the step that entered this state (None at the root).
    incoming: Option<String>,
    /// Generated successor states and labels.
    succs: Vec<(St, String)>,
    next: usize,
}

/// Exhaustively explores every interleaving of `spec` on `workers`
/// workers under `policy` and `protocol`, up to `state_cap` distinct
/// states. Returns the full exploration report; `violation` is `None`
/// exactly when every reachable schedule is deadlock-free, complete,
/// dependence-respecting, and bit-identical to the serial execution.
pub fn check(
    spec: &GraphSpec,
    workers: usize,
    policy: SchedPolicy,
    protocol: Protocol,
    state_cap: u64,
) -> CheckReport {
    let model = Model::new(spec, workers, policy, protocol);
    let mut report = CheckReport {
        graph: spec.name.clone(),
        tasks: spec.n,
        workers,
        policy,
        protocol,
        states: 1,
        transitions: 0,
        terminals: 0,
        max_depth: 0,
        violation: None,
    };

    let init = model.init();
    let mut visited: BTreeSet<St> = BTreeSet::new();
    visited.insert(init.clone());
    let mut stack: Vec<Frame> = Vec::new();

    let trace_of = |stack: &[Frame], extra: Option<String>| -> Vec<String> {
        let mut t: Vec<String> = stack.iter().filter_map(|f| f.incoming.clone()).collect();
        if let Some(e) = extra {
            t.push(e);
        }
        t
    };

    // Expands a state into a frame, or reports a terminal/deadlock/order
    // violation. Returns None when a violation ended the exploration.
    let expand = |st: &St,
                  incoming: Option<String>,
                  stack: &[Frame],
                  report: &mut CheckReport|
     -> Option<Frame> {
        let mut succs = Vec::new();
        for w in 0..model.workers {
            match model.step(st, w) {
                Step::Go(nx, label) => succs.push((nx, label)),
                Step::Blocked => {}
                Step::Premature(task) => {
                    let mut trace = trace_of(stack, incoming.clone());
                    trace.push(format!(
                        "t{task} is scheduled before its predecessors finished"
                    ));
                    report.violation = Some(Violation::OrderViolation { task, trace });
                    return None;
                }
                Step::Diverge(task) => {
                    let mut trace = trace_of(stack, incoming.clone());
                    trace.push(format!(
                        "t{task} writes datum {} before an earlier writer ran",
                        model.spec.datum[task]
                    ));
                    report.violation = Some(Violation::BitDivergence {
                        datum: model.spec.datum[task],
                        trace,
                    });
                    return None;
                }
            }
        }
        let all_exited = (0..model.workers).all(|w| st.w[w].pc == pc::EXITED);
        if succs.is_empty() {
            if !all_exited {
                report.violation = Some(Violation::Deadlock {
                    trace: trace_of(stack, incoming),
                });
                return None;
            }
            report.terminals += 1;
            // Terminal invariants: everything ran, queues drained. (Writer
            // order was checked at every run step; a complete run with no
            // Diverge is bit-identical to the serial schedule.)
            let full = ((1u32 << model.spec.n) - 1) as u8;
            if st.done != full || st.queues[..model.workers].iter().any(|&q| q != 0) {
                report.violation = Some(Violation::IncompleteRun {
                    trace: trace_of(stack, incoming),
                });
                return None;
            }
        }
        Some(Frame {
            incoming,
            succs,
            next: 0,
        })
    };

    match expand(&init, None, &stack, &mut report) {
        Some(f) => stack.push(f),
        None => return report,
    }

    while let Some(top) = stack.last_mut() {
        if top.next >= top.succs.len() {
            stack.pop();
            continue;
        }
        let (st, label) = top.succs[top.next].clone();
        top.next += 1;
        report.transitions += 1;
        if !visited.insert(st.clone()) {
            continue;
        }
        report.states += 1;
        if report.states > state_cap {
            report.violation = Some(Violation::StateSpaceExceeded { cap: state_cap });
            return report;
        }
        match expand(&st, Some(label), &stack, &mut report) {
            Some(f) => {
                stack.push(f);
                report.max_depth = report.max_depth.max(stack.len());
            }
            None => return report,
        }
    }
    report
}

/// The standard graph family the CLI and CI sweep: every shape the
/// executor's protocol must survive, each within the documented bounds.
pub fn standard_specs() -> Vec<GraphSpec> {
    vec![
        GraphSpec::chain(8),
        GraphSpec::diamond(),
        GraphSpec::independent(6),
        GraphSpec::fork_join(5),
        GraphSpec::two_chains_affine(4),
        GraphSpec::seeded_random(7, 1),
        GraphSpec::seeded_random(7, 2),
        GraphSpec::seeded_random(8, 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_is_clean_and_tiny() {
        let r = check(
            &GraphSpec::chain(4),
            1,
            SchedPolicy::Fifo,
            Protocol::Correct,
            DEFAULT_STATE_CAP,
        );
        assert!(r.violation.is_none(), "{}", r.summary());
        assert_eq!(r.terminals, 1, "one worker, one schedule");
    }

    #[test]
    fn unordered_writers_diverge() {
        let r = check(
            &GraphSpec::unordered_writers(),
            2,
            SchedPolicy::Fifo,
            Protocol::Correct,
            DEFAULT_STATE_CAP,
        );
        match r.violation {
            Some(Violation::BitDivergence { datum: 0, .. }) => {}
            other => panic!("expected bit divergence on datum 0, got {other:?}"),
        }
    }

    #[test]
    fn eager_release_breaks_dependence_order() {
        let r = check(
            &GraphSpec::chain(3),
            2,
            SchedPolicy::Fifo,
            Protocol::EagerRelease,
            DEFAULT_STATE_CAP,
        );
        match &r.violation {
            Some(Violation::OrderViolation { trace, .. }) => {
                assert!(!trace.is_empty(), "counterexample must carry a trace");
            }
            other => panic!("expected order violation, got {other:?}"),
        }
    }

    #[test]
    fn skip_final_wake_deadlocks() {
        let r = check(
            &GraphSpec::chain(3),
            2,
            SchedPolicy::Fifo,
            Protocol::SkipFinalWake,
            DEFAULT_STATE_CAP,
        );
        match &r.violation {
            Some(Violation::Deadlock { trace }) => assert!(!trace.is_empty()),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
