//! Multithreaded DAG executor.

use crate::graph::{TaskGraph, TaskId};
use crate::trace::{Trace, TraceEvent};
use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ready-queue ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-in first-out (insertion order among ready tasks).
    Fifo,
    /// Highest critical-path-to-sink first — keeps the long chain moving,
    /// the default in PLASMA-style runtimes.
    CriticalPath,
}

/// A dataflow executor with a fixed worker count and scheduling policy.
pub struct Executor {
    threads: usize,
    policy: SchedPolicy,
}

#[derive(PartialEq, Eq)]
struct ReadyTask {
    key: u64,
    /// Tie-break on insertion order (earlier first) so FIFO is exact and
    /// critical-path is deterministic.
    id: TaskId,
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on key, then min on id.
        self.key
            .cmp(&other.key)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

type KernelSlot = Mutex<Option<Box<dyn FnOnce() + Send>>>;

struct Shared {
    ready: Mutex<BinaryHeap<ReadyTask>>,
    available: Condvar,
    remaining: AtomicUsize,
    abort: std::sync::atomic::AtomicBool,
    panicked: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Executor {
    /// Creates an executor with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize, policy: SchedPolicy) -> Self {
        Executor {
            threads: threads.max(1),
            policy,
        }
    }

    /// An executor using every available hardware thread.
    pub fn with_all_cores(policy: SchedPolicy) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Executor::new(threads, policy)
    }

    /// Number of worker threads this executor spawns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every task in the graph, respecting its dependence edges.
    /// Blocks until all tasks have run. Panics from task kernels are
    /// propagated to the caller after all workers have stopped.
    pub fn execute(&self, graph: TaskGraph) -> Trace {
        self.run(graph, false)
    }

    /// Like [`Executor::execute`], but records a per-worker execution trace
    /// (start/end timestamps per task) for utilization analysis.
    pub fn execute_traced(&self, graph: TaskGraph) -> Trace {
        self.run(graph, true)
    }

    fn run(&self, mut graph: TaskGraph, record: bool) -> Trace {
        let n = graph.len();
        if n == 0 {
            return Trace::empty(self.threads);
        }
        let fin = graph.finalize();
        let successors = Arc::new(fin.successors);
        let priority = Arc::new(fin.priority);
        let names: Arc<Vec<String>> = Arc::new(graph.tasks.iter().map(|t| t.name.clone()).collect());

        // Kernels move into per-task slots the workers take from.
        let kernels: Arc<Vec<KernelSlot>> = Arc::new(
            graph
                .tasks
                .iter_mut()
                .map(|t| Mutex::new(t.kernel.take()))
                .collect(),
        );
        let pending: Arc<Vec<AtomicUsize>> = Arc::new(
            fin.in_degree
                .iter()
                .map(|&d| AtomicUsize::new(d))
                .collect(),
        );

        let shared = Arc::new(Shared {
            ready: Mutex::new(BinaryHeap::new()),
            available: Condvar::new(),
            remaining: AtomicUsize::new(n),
            abort: std::sync::atomic::AtomicBool::new(false),
            panicked: Mutex::new(None),
        });

        // Seed the ready queue with the sources.
        {
            let mut q = shared.ready.lock();
            for id in 0..n {
                if pending[id].load(Ordering::Relaxed) == 0 {
                    q.push(ReadyTask {
                        key: self.key(&priority, id),
                        id,
                    });
                }
            }
        }

        let epoch = Instant::now();
        let mut handles = Vec::with_capacity(self.threads);
        for worker in 0..self.threads {
            let shared = Arc::clone(&shared);
            let successors = Arc::clone(&successors);
            let priority = Arc::clone(&priority);
            let kernels = Arc::clone(&kernels);
            let pending = Arc::clone(&pending);
            let policy = self.policy;
            let handle = std::thread::Builder::new()
                .name(format!("xsc-worker-{worker}"))
                .spawn(move || {
                    let mut events = Vec::new();
                    loop {
                        let task = {
                            let mut q = shared.ready.lock();
                            loop {
                                if shared.remaining.load(Ordering::Acquire) == 0
                                    || shared.abort.load(Ordering::Acquire)
                                {
                                    return events;
                                }
                                if let Some(t) = q.pop() {
                                    break t;
                                }
                                shared.available.wait(&mut q);
                            }
                        };
                        let id = task.id;
                        let kernel = kernels[id].lock().take();
                        let start = epoch.elapsed();
                        if let Some(k) = kernel {
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(k)) {
                                let mut slot = shared.panicked.lock();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                // Abort flag (not `remaining`) makes the
                                // other workers exit: a worker mid-kernel
                                // will still decrement `remaining` once, and
                                // zeroing it here would underflow.
                                shared.abort.store(true, Ordering::Release);
                                shared.available.notify_all();
                                return events;
                            }
                        }
                        let end = epoch.elapsed();
                        if record {
                            events.push(TraceEvent {
                                task: id,
                                worker,
                                start,
                                end,
                            });
                        }
                        // Release successors.
                        let mut newly_ready = Vec::new();
                        for &s in &successors[id] {
                            if pending[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                newly_ready.push(s);
                            }
                        }
                        if !newly_ready.is_empty() {
                            let mut q = shared.ready.lock();
                            for s in newly_ready {
                                let key = match policy {
                                    SchedPolicy::Fifo => u64::MAX - s as u64,
                                    SchedPolicy::CriticalPath => priority[s],
                                };
                                q.push(ReadyTask { key, id: s });
                                shared.available.notify_one();
                            }
                        }
                        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            shared.available.notify_all();
                            return events;
                        }
                    }
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }

        let mut all_events = Vec::new();
        for h in handles {
            match h.join() {
                Ok(events) => all_events.extend(events),
                Err(payload) => resume_unwind(payload),
            }
        }
        if let Some(payload) = shared.panicked.lock().take() {
            resume_unwind(payload);
        }
        let wall = epoch.elapsed();
        Trace::new(self.threads, wall, all_events, names)
    }

    fn key(&self, priority: &[u64], id: TaskId) -> u64 {
        match self.policy {
            SchedPolicy::Fifo => u64::MAX - id as u64,
            SchedPolicy::CriticalPath => priority[id],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Access;
    use parking_lot::Mutex as PlMutex;
    use std::sync::Arc;

    fn run_counter_chain(threads: usize, policy: SchedPolicy, n: usize) -> Vec<usize> {
        let log = Arc::new(PlMutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for i in 0..n {
            let log = Arc::clone(&log);
            g.add_task(format!("t{i}"), [Access::Write(0)], move || {
                log.lock().push(i);
            });
        }
        Executor::new(threads, policy).execute(g);
        Arc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn chain_preserves_program_order() {
        for threads in [1, 2, 8] {
            for policy in [SchedPolicy::Fifo, SchedPolicy::CriticalPath] {
                let order = run_counter_chain(threads, policy, 50);
                assert_eq!(order, (0..50).collect::<Vec<_>>(), "threads={threads}");
            }
        }
    }

    #[test]
    fn independent_tasks_all_run() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..1000 {
            let c = Arc::clone(&counter);
            g.add_task("t", [Access::Write(i)], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        Executor::new(4, SchedPolicy::CriticalPath).execute(g);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_graph_is_ok() {
        let g = TaskGraph::new();
        let trace = Executor::new(4, SchedPolicy::Fifo).execute(g);
        assert_eq!(trace.tasks_run(), 0);
    }

    #[test]
    fn diamond_respects_dependencies() {
        // a -> (b, c) -> d : d must observe both b's and c's effects.
        let state = Arc::new(PlMutex::new((0i32, 0i32, 0i32)));
        let mut g = TaskGraph::new();
        let s = Arc::clone(&state);
        g.add_task("a", [Access::Write(0)], move || {
            s.lock().0 = 1;
        });
        let s = Arc::clone(&state);
        g.add_task("b", [Access::Read(0), Access::Write(1)], move || {
            let mut st = s.lock();
            assert_eq!(st.0, 1);
            st.1 = 2;
        });
        let s = Arc::clone(&state);
        g.add_task("c", [Access::Read(0), Access::Write(2)], move || {
            let mut st = s.lock();
            assert_eq!(st.0, 1);
            st.2 = 3;
        });
        let s = Arc::clone(&state);
        g.add_task("d", [Access::Read(1), Access::Read(2)], move || {
            let st = s.lock();
            assert_eq!((st.1, st.2), (2, 3));
        });
        Executor::new(4, SchedPolicy::CriticalPath).execute(g);
    }

    #[test]
    fn trace_records_all_tasks() {
        let mut g = TaskGraph::new();
        for i in 0..16 {
            g.add_task("t", [Access::Write(i % 4)], move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        }
        let trace = Executor::new(4, SchedPolicy::CriticalPath).execute_traced(g);
        assert_eq!(trace.tasks_run(), 16);
        assert!(trace.makespan().as_nanos() > 0);
        let u = trace.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn task_panic_propagates() {
        let mut g = TaskGraph::new();
        g.add_task("ok", [Access::Write(0)], || {});
        g.add_task("boom", [Access::Write(0)], || panic!("kernel failure"));
        for i in 0..32 {
            g.add_task("later", [Access::Write(i % 3)], || {});
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4, SchedPolicy::Fifo).execute(g);
        }));
        assert!(result.is_err(), "panic must propagate to caller");
    }

    #[test]
    fn single_thread_matches_serial_semantics() {
        let acc = Arc::new(PlMutex::new(1i64));
        let build = |acc: Arc<PlMutex<i64>>| {
            let mut g = TaskGraph::new();
            for i in 1..=6i64 {
                let acc = Arc::clone(&acc);
                g.add_task("mul", [Access::Write(0)], move || {
                    let mut v = acc.lock();
                    *v = *v * 3 + i; // non-commutative update
                });
            }
            g
        };
        build(Arc::clone(&acc)).execute_serial();
        let serial = *acc.lock();

        let acc2 = Arc::new(PlMutex::new(1i64));
        Executor::new(8, SchedPolicy::CriticalPath).execute(build(Arc::clone(&acc2)));
        assert_eq!(*acc2.lock(), serial);
    }
}
