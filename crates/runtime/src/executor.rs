//! Multithreaded work-stealing DAG executor.
//!
//! Two execution modes share one worker loop:
//!
//! * **fail-stop** ([`Executor::execute`]) — the first kernel panic or
//!   task fault aborts the run and propagates to the caller, the
//!   pre-resilience semantics;
//! * **resilient** ([`Executor::execute_resilient`]) — failed attempts of
//!   fallible kernels are retried under a [`RecoveryPolicy`], and a task
//!   that exhausts its budget either aborts the run or has its dependent
//!   subtree skipped, with full telemetry in the returned trace.
//!
//! ## Ready-queue organization: per-worker heaps + stealing
//!
//! Each worker owns a private priority heap ordered by the [`SchedPolicy`]
//! key. Tasks a worker makes ready go into *its own* heap (the successor's
//! inputs were just produced on this core, so its cache is the warm one);
//! a worker whose heap drains *steals* from a victim's heap instead of
//! blocking on a global lock. Victim selection is affinity-guided: the
//! thief scans every victim's top task and prefers one whose
//! [`TaskGraph::set_affinity`] tag matches the affinity of the task the
//! thief last ran (same macro-tile ⇒ packed panels still cached), falling
//! back to the highest scheduling key among all tops. Steals are counted
//! in [`Trace::steals`].
//!
//! With one worker there is exactly one heap and every push lands in it,
//! so execution order is *identical* to the old global-heap executor —
//! the deterministic ready-order guarantees of the scheduling policies
//! are preserved exactly (the PR-5 determinism suites run unchanged).

use crate::graph::{Kernel, TaskGraph, TaskId, NO_AFFINITY};
use crate::resilience::{Attempt, ExhaustedAction, RecoveryPolicy, ResilienceStats, TaskOutcome};
use crate::trace::{Trace, TraceEvent};
use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xsc_metrics::Stopwatch;

/// Ready-queue ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-in first-out (insertion order among ready tasks).
    Fifo,
    /// Highest critical-path-to-sink first — keeps the long chain moving,
    /// the default in PLASMA-style runtimes.
    CriticalPath,
    /// Highest caller-assigned priority first ([`TaskGraph::set_priority`]),
    /// ties breaking on insertion order. Used when urgency is decided
    /// outside the graph — e.g. a serving front-end scheduling launches by
    /// tenant priority class.
    Explicit,
}

/// A dataflow executor with a fixed worker count and scheduling policy.
pub struct Executor {
    threads: usize,
    policy: SchedPolicy,
}

struct ReadyTask {
    key: u64,
    /// Tie-break on insertion order (earlier first) so FIFO is exact and
    /// critical-path is deterministic.
    id: TaskId,
    /// Locality tag ([`TaskGraph::set_affinity`]) consulted during victim
    /// selection; never part of the heap order.
    affinity: u64,
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on key, then min on id.
        self.key
            .cmp(&other.key)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// Keep `Eq` consistent with the key-only `Ord` (task ids are unique, so
// two distinct ready entries never compare equal anyway).
impl PartialEq for ReadyTask {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}
impl Eq for ReadyTask {}

type KernelSlot = Mutex<Option<Kernel>>;

struct Shared {
    /// One ready heap per worker. A worker pushes the tasks it makes ready
    /// to its own heap and steals from the others when its heap drains.
    queues: Vec<Mutex<BinaryHeap<ReadyTask>>>,
    /// Sleep coordination. A worker that finds *every* queue empty waits on
    /// [`Shared::available`] under this lock; anyone who makes work
    /// available (or ends the run) notifies under the same lock. Queue
    /// locks are never held while taking this lock, and the sleeper
    /// re-checks all queues after acquiring it, so wakeups cannot be lost.
    sleep: Mutex<()>,
    available: Condvar,
    remaining: AtomicUsize,
    abort: AtomicBool,
    panicked: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    steals: AtomicU64,
}

impl Shared {
    /// `true` once the run is over: all tasks done, or aborted.
    fn finished(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0 || self.abort.load(Ordering::Acquire)
    }

    /// Wakes every sleeping worker. Taking the sleep lock first means a
    /// worker between its "queues are empty" check and `wait` cannot miss
    /// the notification.
    fn wake_all(&self) {
        let _sleep = self.sleep.lock();
        self.available.notify_all();
    }

    /// Steals one task for `thief`. Scans every victim's top task (one
    /// brief lock each) and picks the victim whose top matches the thief's
    /// `last_affinity`, falling back to the highest scheduling key (ties
    /// toward the lowest task id). Returns `None` when nothing was
    /// stealable — including the benign race where the chosen victim's
    /// queue drained between the scan and the pop (the caller just
    /// rescans).
    fn try_steal(&self, thief: usize, last_affinity: u64) -> Option<ReadyTask> {
        let n = self.queues.len();
        let mut affine: Option<usize> = None;
        let mut best: Option<(usize, u64, TaskId)> = None;
        for off in 1..n {
            let victim = (thief + off) % n;
            if let Some(top) = self.queues[victim].lock().peek() {
                if affine.is_none() && last_affinity != NO_AFFINITY && top.affinity == last_affinity
                {
                    affine = Some(victim);
                }
                let better = match best {
                    None => true,
                    Some((_, key, id)) => top.key > key || (top.key == key && top.id < id),
                };
                if better {
                    best = Some((victim, top.key, top.id));
                }
            }
        }
        let victim = affine.or_else(|| best.map(|(v, _, _)| v))?;
        let stolen = self.queues[victim].lock().pop();
        if stolen.is_some() {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        stolen
    }
}

/// Per-task outcome codes stored in [`Resilient::outcome`].
const OUT_NOT_RUN: u8 = 0;
const OUT_SUCCEEDED: u8 = 1;
const OUT_FAILED: u8 = 2;
const OUT_SKIPPED: u8 = 3;

/// Shared state for a resilient execution.
struct Resilient {
    policy: RecoveryPolicy,
    /// Final execution count per task.
    attempts: Vec<AtomicU32>,
    /// Final disposition per task (`OUT_*` codes).
    outcome: Vec<AtomicU8>,
    /// Set on every transitive successor of a permanently failed task
    /// (under [`ExhaustedAction::SkipSubtree`]); tainted tasks are skipped.
    tainted: Vec<AtomicBool>,
    /// Accumulated simulated backoff, in nanoseconds.
    backoff_nanos: AtomicU64,
    /// Accumulated wall time of failed attempts, in nanoseconds.
    wasted_nanos: AtomicU64,
}

impl Resilient {
    fn new(policy: RecoveryPolicy, n: usize) -> Self {
        Resilient {
            policy,
            attempts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            outcome: (0..n).map(|_| AtomicU8::new(OUT_NOT_RUN)).collect(),
            tainted: (0..n).map(|_| AtomicBool::new(false)).collect(),
            backoff_nanos: AtomicU64::new(0),
            wasted_nanos: AtomicU64::new(0),
        }
    }

    fn into_stats(self) -> ResilienceStats {
        let mut stats = ResilienceStats {
            simulated_backoff: Duration::from_nanos(self.backoff_nanos.into_inner()),
            wasted_time: Duration::from_nanos(self.wasted_nanos.into_inner()),
            ..ResilienceStats::default()
        };
        for (a, o) in self.attempts.into_iter().zip(self.outcome) {
            let attempts = a.into_inner();
            let outcome = match o.into_inner() {
                OUT_SUCCEEDED => {
                    if attempts > 1 {
                        stats.recoveries += 1;
                    }
                    TaskOutcome::Succeeded { attempts }
                }
                OUT_FAILED => {
                    stats.permanent_failures += 1;
                    TaskOutcome::Failed { attempts }
                }
                OUT_SKIPPED => {
                    stats.skipped += 1;
                    TaskOutcome::Skipped
                }
                _ => TaskOutcome::NotRun,
            };
            stats.retries += u64::from(attempts.saturating_sub(1));
            stats.outcomes.push(outcome);
        }
        stats
    }
}

/// Result of running one task's kernel to its final disposition.
enum TaskRun {
    Succeeded,
    /// All attempts failed (budget exhausted or kernel not re-runnable).
    FailedPermanently,
}

impl Executor {
    /// Creates an executor with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize, policy: SchedPolicy) -> Self {
        Executor {
            threads: threads.max(1),
            policy,
        }
    }

    /// An executor using every available hardware thread.
    pub fn with_all_cores(policy: SchedPolicy) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Executor::new(threads, policy)
    }

    /// Number of worker threads this executor spawns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every task in the graph, respecting its dependence edges.
    /// Blocks until all tasks have run. Panics from task kernels — and
    /// faults from fallible kernels — are propagated to the caller after
    /// all workers have stopped (fail-stop).
    pub fn execute(&self, graph: TaskGraph) -> Trace {
        self.run(graph, false, None)
    }

    /// Like [`Executor::execute`], but records a per-worker execution trace
    /// (start/end timestamps per task) for utilization analysis.
    pub fn execute_traced(&self, graph: TaskGraph) -> Trace {
        self.run(graph, true, None)
    }

    /// Executes the graph with task-level fault recovery: failed attempts
    /// of fallible kernels ([`TaskGraph::add_fallible_task`]) are retried
    /// up to `policy.max_attempts`, with deterministic simulated backoff.
    /// Kernel *panics* are contained to the task as well; a panicking
    /// infallible (`add_task`) kernel cannot be re-run, so it fails
    /// permanently on its first attempt.
    ///
    /// The returned trace always carries [`ResilienceStats`] (via
    /// [`Trace::resilience`]); this method never panics on task failure —
    /// inspect `stats.completed()` / `stats.aborted` instead.
    pub fn execute_resilient(&self, graph: TaskGraph, policy: RecoveryPolicy) -> Trace {
        self.run(graph, false, Some(policy))
    }

    /// [`Executor::execute_resilient`] with per-attempt trace events (one
    /// event per attempt, carrying its attempt number).
    pub fn execute_resilient_traced(&self, graph: TaskGraph, policy: RecoveryPolicy) -> Trace {
        self.run(graph, true, Some(policy))
    }

    fn run(&self, mut graph: TaskGraph, record: bool, recovery: Option<RecoveryPolicy>) -> Trace {
        let n = graph.len();
        if n == 0 {
            let trace = Trace::empty(self.threads);
            return match recovery {
                Some(policy) => trace.with_resilience(Resilient::new(policy, 0).into_stats()),
                None => trace,
            };
        }
        let fin = graph.finalize();
        let successors = Arc::new(fin.successors);
        let priority = Arc::new(fin.priority);
        let explicit = Arc::new(fin.explicit);
        let affinity = Arc::new(fin.affinity);
        let names: Arc<Vec<String>> =
            Arc::new(graph.tasks.iter().map(|t| t.name.clone()).collect());

        // Kernels move into per-task slots the workers take from.
        let kernels: Arc<Vec<KernelSlot>> = Arc::new(
            graph
                .tasks
                .iter_mut()
                .map(|t| Mutex::new(t.kernel.take()))
                .collect(),
        );
        let pending: Arc<Vec<AtomicUsize>> =
            Arc::new(fin.in_degree.iter().map(|&d| AtomicUsize::new(d)).collect());

        let shared = Arc::new(Shared {
            queues: (0..self.threads)
                .map(|_| Mutex::new(BinaryHeap::new()))
                .collect(),
            sleep: Mutex::new(()),
            available: Condvar::new(),
            remaining: AtomicUsize::new(n),
            abort: AtomicBool::new(false),
            panicked: Mutex::new(None),
            steals: AtomicU64::new(0),
        });
        let resilient = recovery.map(|policy| Arc::new(Resilient::new(policy, n)));

        // Seed the sources round-robin across the worker queues (with one
        // worker this is exactly the old single-heap seeding).
        {
            let mut sources = 0usize;
            for id in 0..n {
                if pending[id].load(Ordering::Relaxed) == 0 {
                    shared.queues[sources % self.threads]
                        .lock()
                        .push(ReadyTask {
                            key: ready_key(self.policy, &priority, &explicit, id),
                            id,
                            affinity: affinity[id],
                        });
                    sources += 1;
                }
            }
        }

        let epoch = Stopwatch::start();
        let mut handles = Vec::with_capacity(self.threads);
        for worker in 0..self.threads {
            let shared = Arc::clone(&shared);
            let successors = Arc::clone(&successors);
            let priority = Arc::clone(&priority);
            let explicit = Arc::clone(&explicit);
            let affinity = Arc::clone(&affinity);
            let kernels = Arc::clone(&kernels);
            let pending = Arc::clone(&pending);
            let resilient = resilient.clone();
            let policy = self.policy;
            let threads = self.threads;
            let handle = std::thread::Builder::new()
                .name(format!("xsc-worker-{worker}"))
                .spawn(move || {
                    let mut events = Vec::new();
                    // Affinity of the last affinity-tagged task this worker
                    // ran; steers victim selection when stealing.
                    let mut last_affinity = NO_AFFINITY;
                    loop {
                        let task = loop {
                            if shared.finished() {
                                return events;
                            }
                            // Own heap first (tasks this worker released —
                            // their inputs are warm in this core's cache)…
                            if let Some(t) = shared.queues[worker].lock().pop() {
                                break t;
                            }
                            // …then steal from a victim…
                            if let Some(t) = shared.try_steal(worker, last_affinity) {
                                break t;
                            }
                            // …and only sleep once every queue is verifiably
                            // empty while holding the sleep lock (anyone who
                            // pushes after our scan blocks on that lock until
                            // `wait` releases it, so their wakeup reaches us).
                            let mut sleep = shared.sleep.lock();
                            if shared.finished() {
                                return events;
                            }
                            if shared.queues.iter().all(|q| q.lock().is_empty()) {
                                shared.available.wait(&mut sleep);
                            }
                        };
                        let id = task.id;
                        if task.affinity != NO_AFFINITY {
                            last_affinity = task.affinity;
                        }
                        let kernel = kernels[id].lock().take();

                        let disposition = match &resilient {
                            Some(res) => {
                                if res.tainted[id].load(Ordering::Acquire) {
                                    // A transitive predecessor failed:
                                    // drop the kernel without running it.
                                    res.outcome[id].store(OUT_SKIPPED, Ordering::Release);
                                    drop(kernel);
                                    TaskRun::FailedPermanently
                                } else {
                                    let run = run_resilient(
                                        kernel,
                                        id,
                                        worker,
                                        res,
                                        &epoch,
                                        record,
                                        &mut events,
                                    );
                                    if matches!(run, TaskRun::FailedPermanently)
                                        && res.policy.on_exhausted == ExhaustedAction::Abort
                                    {
                                        shared.abort.store(true, Ordering::Release);
                                        shared.wake_all();
                                        return events;
                                    }
                                    run
                                }
                            }
                            None => {
                                // Fail-stop: the first panic or fault ends
                                // the whole execution.
                                let start = epoch.elapsed();
                                let (f0, b0) = xsc_metrics::thread_totals();
                                let failure: Option<Box<dyn std::any::Any + Send>> = match kernel {
                                    None => None,
                                    Some(Kernel::Once(k)) => {
                                        catch_unwind(AssertUnwindSafe(k)).err()
                                    }
                                    Some(Kernel::Fallible(k)) => {
                                        match catch_unwind(AssertUnwindSafe(|| {
                                            k(Attempt {
                                                task: id,
                                                attempt: 1,
                                            })
                                        })) {
                                            Ok(Ok(())) => None,
                                            Ok(Err(fault)) => {
                                                Some(Box::new(format!("task {id} failed: {fault}")))
                                            }
                                            Err(payload) => Some(payload),
                                        }
                                    }
                                };
                                if let Some(payload) = failure {
                                    let mut slot = shared.panicked.lock();
                                    if slot.is_none() {
                                        *slot = Some(payload);
                                    }
                                    // Abort flag (not `remaining`) makes the
                                    // other workers exit: a worker mid-kernel
                                    // will still decrement `remaining` once,
                                    // and zeroing it here would underflow.
                                    shared.abort.store(true, Ordering::Release);
                                    shared.wake_all();
                                    return events;
                                }
                                if record {
                                    let (f1, b1) = xsc_metrics::thread_totals();
                                    events.push(TraceEvent {
                                        task: id,
                                        worker,
                                        start,
                                        end: epoch.elapsed(),
                                        attempt: 1,
                                        flops: f1 - f0,
                                        bytes: b1 - b0,
                                    });
                                }
                                TaskRun::Succeeded
                            }
                        };

                        // Release successors; a permanent failure (or skip)
                        // taints them so the subtree is abandoned, not run
                        // against bad data.
                        let taint = matches!(disposition, TaskRun::FailedPermanently);
                        let mut newly_ready = Vec::new();
                        for &s in &successors[id] {
                            if taint {
                                if let Some(res) = &resilient {
                                    res.tainted[s].store(true, Ordering::Release);
                                }
                            }
                            if pending[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                newly_ready.push(s);
                            }
                        }
                        if !newly_ready.is_empty() {
                            // Push to this worker's own heap: the successor's
                            // inputs were just written on this core. Idle
                            // workers pick them up by stealing.
                            {
                                let mut q = shared.queues[worker].lock();
                                for &s in &newly_ready {
                                    q.push(ReadyTask {
                                        key: ready_key(policy, &priority, &explicit, s),
                                        id: s,
                                        affinity: affinity[s],
                                    });
                                }
                            }
                            if threads > 1 {
                                shared.wake_all();
                            }
                        }
                        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            shared.wake_all();
                            return events;
                        }
                    }
                })
                // xsc-lint: allow(P01, reason = "spawn failure happens before any task runs; failing fast at launch is the contract")
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }

        let mut all_events = Vec::new();
        for h in handles {
            match h.join() {
                Ok(events) => all_events.extend(events),
                Err(payload) => resume_unwind(payload),
            }
        }
        if let Some(payload) = shared.panicked.lock().take() {
            resume_unwind(payload);
        }
        let wall = epoch.elapsed();
        let trace = Trace::new(self.threads, wall, all_events, names)
            .with_steals(shared.steals.load(Ordering::Relaxed));
        match resilient {
            Some(res) => {
                let aborted = shared.abort.load(Ordering::Acquire);
                let res = Arc::try_unwrap(res)
                    // xsc-lint: allow(P02, reason = "all clones live in worker closures joined above; this Arc is provably sole owner")
                    .unwrap_or_else(|_| unreachable!("workers joined; sole Arc owner"));
                let mut stats = res.into_stats();
                stats.aborted = aborted;
                trace.with_resilience(stats)
            }
            None => trace,
        }
    }
}

/// Ready-queue key for `id`: the heap is a max-heap on this value with ties
/// broken toward the lowest task id, so FIFO inverts the id, critical-path
/// uses the graph-derived priority, and explicit uses the caller's value.
fn ready_key(policy: SchedPolicy, priority: &[u64], explicit: &[u64], id: TaskId) -> u64 {
    match policy {
        SchedPolicy::Fifo => u64::MAX - id as u64,
        SchedPolicy::CriticalPath => priority[id],
        SchedPolicy::Explicit => explicit[id],
    }
}

/// Runs one task under the recovery policy: retries fallible kernels up to
/// the budget, contains panics to the task, and accounts wasted time and
/// simulated backoff. Returns the task's final disposition.
fn run_resilient(
    kernel: Option<Kernel>,
    id: TaskId,
    worker: usize,
    res: &Resilient,
    epoch: &Stopwatch,
    record: bool,
    events: &mut Vec<TraceEvent>,
) -> TaskRun {
    match kernel {
        None => {
            res.outcome[id].store(OUT_SUCCEEDED, Ordering::Release);
            TaskRun::Succeeded
        }
        Some(Kernel::Once(k)) => {
            // A FnOnce kernel cannot be re-run: one attempt, no retry.
            res.attempts[id].store(1, Ordering::Release);
            let start = epoch.elapsed();
            let (f0, b0) = xsc_metrics::thread_totals();
            let result = catch_unwind(AssertUnwindSafe(k));
            let end = epoch.elapsed();
            if record {
                let (f1, b1) = xsc_metrics::thread_totals();
                events.push(TraceEvent {
                    task: id,
                    worker,
                    start,
                    end,
                    attempt: 1,
                    flops: f1 - f0,
                    bytes: b1 - b0,
                });
            }
            match result {
                Ok(()) => {
                    res.outcome[id].store(OUT_SUCCEEDED, Ordering::Release);
                    TaskRun::Succeeded
                }
                Err(_) => {
                    add_nanos(&res.wasted_nanos, end - start);
                    res.outcome[id].store(OUT_FAILED, Ordering::Release);
                    TaskRun::FailedPermanently
                }
            }
        }
        Some(Kernel::Fallible(k)) => {
            let mut attempt = 1u32;
            loop {
                let start = epoch.elapsed();
                let (f0, b0) = xsc_metrics::thread_totals();
                let result = catch_unwind(AssertUnwindSafe(|| k(Attempt { task: id, attempt })));
                let end = epoch.elapsed();
                if record {
                    let (f1, b1) = xsc_metrics::thread_totals();
                    events.push(TraceEvent {
                        task: id,
                        worker,
                        start,
                        end,
                        attempt,
                        flops: f1 - f0,
                        bytes: b1 - b0,
                    });
                }
                match result {
                    Ok(Ok(())) => {
                        res.attempts[id].store(attempt, Ordering::Release);
                        res.outcome[id].store(OUT_SUCCEEDED, Ordering::Release);
                        return TaskRun::Succeeded;
                    }
                    // A returned fault and a panic are the same event: the
                    // attempt produced no trustworthy output.
                    Ok(Err(_)) | Err(_) => {
                        add_nanos(&res.wasted_nanos, end - start);
                        if attempt >= res.policy.max_attempts {
                            res.attempts[id].store(attempt, Ordering::Release);
                            res.outcome[id].store(OUT_FAILED, Ordering::Release);
                            return TaskRun::FailedPermanently;
                        }
                        let delay = res.policy.backoff.delay(id, attempt, res.policy.seed);
                        add_nanos(&res.backoff_nanos, delay);
                        attempt += 1;
                    }
                }
            }
        }
    }
}

fn add_nanos(counter: &AtomicU64, d: Duration) {
    counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Access;
    use crate::resilience::{Backoff, TaskFault};
    use parking_lot::Mutex as PlMutex;
    use std::sync::Arc;

    fn run_counter_chain(threads: usize, policy: SchedPolicy, n: usize) -> Vec<usize> {
        let log = Arc::new(PlMutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for i in 0..n {
            let log = Arc::clone(&log);
            g.add_task(format!("t{i}"), [Access::Write(0)], move || {
                log.lock().push(i);
            });
        }
        Executor::new(threads, policy).execute(g);
        Arc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn chain_preserves_program_order() {
        for threads in [1, 2, 8] {
            for policy in [SchedPolicy::Fifo, SchedPolicy::CriticalPath] {
                let order = run_counter_chain(threads, policy, 50);
                assert_eq!(order, (0..50).collect::<Vec<_>>(), "threads={threads}");
            }
        }
    }

    #[test]
    fn independent_tasks_all_run() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..1000 {
            let c = Arc::clone(&counter);
            g.add_task("t", [Access::Write(i)], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        Executor::new(4, SchedPolicy::CriticalPath).execute(g);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_graph_is_ok() {
        let g = TaskGraph::new();
        let trace = Executor::new(4, SchedPolicy::Fifo).execute(g);
        assert_eq!(trace.tasks_run(), 0);
    }

    #[test]
    fn diamond_respects_dependencies() {
        // a -> (b, c) -> d : d must observe both b's and c's effects.
        let state = Arc::new(PlMutex::new((0i32, 0i32, 0i32)));
        let mut g = TaskGraph::new();
        let s = Arc::clone(&state);
        g.add_task("a", [Access::Write(0)], move || {
            s.lock().0 = 1;
        });
        let s = Arc::clone(&state);
        g.add_task("b", [Access::Read(0), Access::Write(1)], move || {
            let mut st = s.lock();
            assert_eq!(st.0, 1);
            st.1 = 2;
        });
        let s = Arc::clone(&state);
        g.add_task("c", [Access::Read(0), Access::Write(2)], move || {
            let mut st = s.lock();
            assert_eq!(st.0, 1);
            st.2 = 3;
        });
        let s = Arc::clone(&state);
        g.add_task("d", [Access::Read(1), Access::Read(2)], move || {
            let st = s.lock();
            assert_eq!((st.1, st.2), (2, 3));
        });
        Executor::new(4, SchedPolicy::CriticalPath).execute(g);
    }

    #[test]
    fn trace_records_all_tasks() {
        let mut g = TaskGraph::new();
        for i in 0..16 {
            g.add_task("t", [Access::Write(i % 4)], move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        }
        let trace = Executor::new(4, SchedPolicy::CriticalPath).execute_traced(g);
        assert_eq!(trace.tasks_run(), 16);
        assert!(trace.makespan().as_nanos() > 0);
        let u = trace.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn task_panic_propagates() {
        let mut g = TaskGraph::new();
        g.add_task("ok", [Access::Write(0)], || {});
        g.add_task("boom", [Access::Write(0)], || panic!("kernel failure"));
        for i in 0..32 {
            g.add_task("later", [Access::Write(i % 3)], || {});
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4, SchedPolicy::Fifo).execute(g);
        }));
        assert!(result.is_err(), "panic must propagate to caller");
    }

    #[test]
    fn single_thread_matches_serial_semantics() {
        let acc = Arc::new(PlMutex::new(1i64));
        let build = |acc: Arc<PlMutex<i64>>| {
            let mut g = TaskGraph::new();
            for i in 1..=6i64 {
                let acc = Arc::clone(&acc);
                g.add_task("mul", [Access::Write(0)], move || {
                    let mut v = acc.lock();
                    *v = *v * 3 + i; // non-commutative update
                });
            }
            g
        };
        build(Arc::clone(&acc)).execute_serial();
        let serial = *acc.lock();

        let acc2 = Arc::new(PlMutex::new(1i64));
        Executor::new(8, SchedPolicy::CriticalPath).execute(build(Arc::clone(&acc2)));
        assert_eq!(*acc2.lock(), serial);
    }

    #[test]
    fn explicit_policy_runs_highest_priority_first() {
        // Independent tasks, one worker, all ready at seed time: execution
        // order must follow the caller-assigned priorities, with ties
        // breaking on insertion order.
        let log = Arc::new(PlMutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let prios = [3u64, 1, 7, 3, 9];
        for (i, &p) in prios.iter().enumerate() {
            let log = Arc::clone(&log);
            let id = g.add_task(format!("t{i}"), [Access::Write(i)], move || {
                log.lock().push(i);
            });
            g.set_priority(id, p);
        }
        Executor::new(1, SchedPolicy::Explicit).execute(g);
        let order = Arc::try_unwrap(log).unwrap().into_inner();
        assert_eq!(order, vec![4, 2, 0, 3, 1]);
    }

    #[test]
    fn explicit_priorities_default_to_zero_and_keep_insertion_order() {
        let log = Arc::new(PlMutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for i in 0..6usize {
            let log = Arc::clone(&log);
            g.add_task(format!("t{i}"), [Access::Write(i)], move || {
                log.lock().push(i);
            });
        }
        Executor::new(1, SchedPolicy::Explicit).execute(g);
        let order = Arc::try_unwrap(log).unwrap().into_inner();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    // ---- work-stealing tests --------------------------------------------

    /// Builds a graph of `chains` independent non-commutative update
    /// chains (each `len` long) plus a final task combining them all —
    /// enough parallel slack that multi-worker runs must steal.
    fn contended_graph(
        chains: usize,
        len: usize,
        state: &Arc<PlMutex<Vec<i64>>>,
        out: &Arc<AtomicU64>,
    ) -> TaskGraph {
        let mut g = TaskGraph::new();
        for c in 0..chains {
            for i in 0..len {
                let s = Arc::clone(state);
                let id = g.add_task(format!("u{c}.{i}"), [Access::Write(c)], move || {
                    let mut v = s.lock();
                    v[c] = v[c].wrapping_mul(3).wrapping_add((c * len + i) as i64);
                });
                g.set_affinity(id, c as u64);
            }
        }
        let s = Arc::clone(state);
        let out = Arc::clone(out);
        let accesses: Vec<Access> = (0..chains).map(Access::Read).collect();
        g.add_task("combine", accesses, move || {
            let v = s.lock();
            let mut h = 0xcbf29ce484222325u64;
            for &x in v.iter() {
                h = h.wrapping_mul(0x100000001b3).wrapping_add(x as u64);
            }
            out.store(h, Ordering::Relaxed);
        });
        g
    }

    #[test]
    fn stealing_is_result_deterministic_across_worker_counts() {
        // Same task set, any worker count, every policy: the dependence
        // edges fully determine the result, so the combined hash must be
        // identical no matter how tasks were distributed or stolen.
        let mut reference = None;
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::CriticalPath,
            SchedPolicy::Explicit,
        ] {
            for threads in [1, 2, 3, 4, 8] {
                let state = Arc::new(PlMutex::new(vec![1i64; 6]));
                let out = Arc::new(AtomicU64::new(0));
                let g = contended_graph(6, 25, &state, &out);
                Executor::new(threads, policy).execute(g);
                let h = out.load(Ordering::Relaxed);
                match reference {
                    None => reference = Some(h),
                    Some(want) => {
                        assert_eq!(h, want, "policy {policy:?} x {threads} workers diverged")
                    }
                }
            }
        }
    }

    #[test]
    fn single_worker_never_steals() {
        let state = Arc::new(PlMutex::new(vec![1i64; 4]));
        let out = Arc::new(AtomicU64::new(0));
        let g = contended_graph(4, 10, &state, &out);
        let trace = Executor::new(1, SchedPolicy::CriticalPath).execute(g);
        assert_eq!(trace.steals(), 0, "one worker has no victims");
    }

    #[test]
    fn contended_run_records_steals() {
        // 8 independent chains seeded round-robin over 4 workers, but all
        // sources ready at once: the workers that drain their seeds first
        // must steal to stay busy. Steals are possible but not guaranteed
        // on any single run (timing), so retry a few times — the assert is
        // on "ever observed", which converges immediately in practice.
        for _ in 0..20 {
            let state = Arc::new(PlMutex::new(vec![1i64; 8]));
            let out = Arc::new(AtomicU64::new(0));
            let g = contended_graph(8, 40, &state, &out);
            let trace = Executor::new(4, SchedPolicy::CriticalPath).execute(g);
            assert!(trace.tasks_run() == 0, "untraced run records no events");
            if trace.steals() > 0 {
                return;
            }
        }
        panic!("4 workers x 8 contended chains never stole in 20 runs");
    }

    #[test]
    fn affinity_is_a_hint_not_a_constraint() {
        // Tasks tagged with an affinity no worker will ever have "last
        // run" still execute; untagged (NO_AFFINITY) tasks never match a
        // thief's preference but still execute.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..64 {
            let c = Arc::clone(&counter);
            let id = g.add_task("t", [Access::Write(i)], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            if i.is_multiple_of(2) {
                g.set_affinity(id, 1_000_000 + i as u64);
            }
        }
        Executor::new(4, SchedPolicy::Fifo).execute(g);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    // ---- resilient-mode tests -------------------------------------------

    /// A fallible task that fails its first `fail_count` attempts.
    fn flaky(g: &mut TaskGraph, name: &str, data: usize, fail_count: u32) -> TaskId {
        g.add_fallible_task(name, [Access::Write(data)], move |a: Attempt| {
            if a.attempt <= fail_count {
                Err(TaskFault::new(format!("induced failure {}", a.attempt)))
            } else {
                Ok(())
            }
        })
    }

    #[test]
    fn fallible_fault_is_fail_stop_under_plain_execute() {
        let mut g = TaskGraph::new();
        flaky(&mut g, "always-fails", 0, u32::MAX);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Executor::new(2, SchedPolicy::Fifo).execute(g);
        }));
        assert!(result.is_err(), "fault must abort a fail-stop execution");
    }

    #[test]
    fn retry_recovers_flaky_task() {
        let mut g = TaskGraph::new();
        flaky(&mut g, "flaky", 0, 2); // fails attempts 1 and 2
        g.add_task("after", [Access::Read(0)], || {});
        let policy =
            RecoveryPolicy::with_max_attempts(3).backoff(Backoff::Fixed(Duration::from_millis(1)));
        let trace = Executor::new(2, SchedPolicy::Fifo).execute_resilient(g, policy);
        let stats = trace.resilience().expect("resilient trace has stats");
        assert!(stats.completed(), "{}", stats.summary());
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.attempts(0), 3);
        assert_eq!(stats.attempts(1), 1);
        assert_eq!(stats.simulated_backoff, Duration::from_millis(2));
        assert!(stats.wasted_time > Duration::ZERO);
    }

    #[test]
    fn traced_attempts_are_numbered() {
        let mut g = TaskGraph::new();
        flaky(&mut g, "flaky", 0, 1);
        let policy = RecoveryPolicy::with_max_attempts(2);
        let trace = Executor::new(1, SchedPolicy::Fifo).execute_resilient_traced(g, policy);
        let attempts: Vec<u32> = trace.events().iter().map(|e| e.attempt).collect();
        assert_eq!(attempts, vec![1, 2]);
        assert!(trace.to_chrome_json().contains("attempt 2"));
    }

    #[test]
    fn exhausted_budget_aborts_by_default() {
        let mut g = TaskGraph::new();
        flaky(&mut g, "doomed", 0, u32::MAX);
        let ran_after = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&ran_after);
        g.add_task("after", [Access::Read(0)], move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let policy = RecoveryPolicy::with_max_attempts(3);
        let trace = Executor::new(2, SchedPolicy::Fifo).execute_resilient(g, policy);
        let stats = trace.resilience().unwrap();
        assert!(stats.aborted);
        assert!(!stats.completed());
        assert_eq!(stats.permanent_failures, 1);
        assert_eq!(stats.attempts(0), 3);
        assert_eq!(stats.outcomes[1], TaskOutcome::NotRun);
        assert_eq!(ran_after.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn skip_subtree_contains_failure() {
        // doomed -> dep1 -> dep2 (all tainted); independent chain completes.
        let mut g = TaskGraph::new();
        flaky(&mut g, "doomed", 0, u32::MAX);
        g.add_task("dep1", [Access::Read(0), Access::Write(1)], || {});
        g.add_task("dep2", [Access::Read(1)], || {});
        let ok_count = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = Arc::clone(&ok_count);
            g.add_task("independent", [Access::Write(7)], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        let policy =
            RecoveryPolicy::with_max_attempts(2).on_exhausted(ExhaustedAction::SkipSubtree);
        let trace = Executor::new(4, SchedPolicy::Fifo).execute_resilient(g, policy);
        let stats = trace.resilience().unwrap();
        assert!(!stats.aborted, "skip-subtree must not abort");
        assert_eq!(stats.permanent_failures, 1);
        assert_eq!(stats.skipped, 2, "{:?}", stats.outcomes);
        assert_eq!(stats.outcomes[1], TaskOutcome::Skipped);
        assert_eq!(stats.outcomes[2], TaskOutcome::Skipped);
        assert_eq!(ok_count.load(Ordering::Relaxed), 8);
        assert!(!stats.completed());
    }

    #[test]
    fn panicking_once_kernel_fails_permanently_without_retry() {
        let mut g = TaskGraph::new();
        g.add_task("boom", [Access::Write(0)], || panic!("not re-runnable"));
        g.add_task("dep", [Access::Read(0)], || {});
        let policy =
            RecoveryPolicy::with_max_attempts(5).on_exhausted(ExhaustedAction::SkipSubtree);
        let trace = Executor::new(2, SchedPolicy::Fifo).execute_resilient(g, policy);
        let stats = trace.resilience().unwrap();
        assert_eq!(stats.attempts(0), 1, "FnOnce gets exactly one attempt");
        assert_eq!(stats.permanent_failures, 1);
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn panicking_fallible_kernel_is_retried() {
        let mut g = TaskGraph::new();
        g.add_fallible_task("panics-once", [Access::Write(0)], |a: Attempt| {
            if a.attempt == 1 {
                panic!("first attempt dies");
            }
            Ok(())
        });
        let policy = RecoveryPolicy::with_max_attempts(2);
        let trace = Executor::new(2, SchedPolicy::Fifo).execute_resilient(g, policy);
        let stats = trace.resilience().unwrap();
        assert!(stats.completed(), "{}", stats.summary());
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recoveries, 1);
    }

    #[test]
    fn resilient_clean_run_reports_no_retries() {
        let mut g = TaskGraph::new();
        for i in 0..20 {
            g.add_task("t", [Access::Write(i % 4)], || {});
        }
        let trace = Executor::new(4, SchedPolicy::CriticalPath)
            .execute_resilient(g, RecoveryPolicy::default());
        let stats = trace.resilience().unwrap();
        assert!(stats.completed());
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.recoveries, 0);
        assert_eq!(stats.simulated_backoff, Duration::ZERO);
    }

    #[test]
    fn resilient_chain_preserves_program_order_through_retries() {
        let log = Arc::new(PlMutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for i in 0..30usize {
            let log = Arc::clone(&log);
            g.add_fallible_task(format!("t{i}"), [Access::Write(0)], move |a: Attempt| {
                // Every third task fails its first attempt.
                if i.is_multiple_of(3) && a.attempt == 1 {
                    return Err("transient".into());
                }
                log.lock().push(i);
                Ok(())
            });
        }
        let policy = RecoveryPolicy::with_max_attempts(2);
        let trace = Executor::new(4, SchedPolicy::Fifo).execute_resilient(g, policy);
        let stats = trace.resilience().unwrap();
        assert!(stats.completed());
        assert_eq!(stats.retries, 10);
        assert_eq!(*log.lock(), (0..30).collect::<Vec<_>>());
    }
}
