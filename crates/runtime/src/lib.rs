//! # xsc-runtime — superscalar dataflow task scheduling
//!
//! Dongarra's keynote argues that bulk-synchronous (fork-join) parallelism
//! cannot keep an extreme-scale machine busy: every algorithmic step ends in
//! a barrier where most workers idle. The remedy — demonstrated by
//! PLASMA/QUARK, StarPU, and PaRSEC — is *superscalar dataflow execution*:
//! tasks are inserted in sequential program order, each declaring which data
//! it reads and writes; the runtime derives the dependence DAG automatically
//! and executes any task the moment its inputs are ready.
//!
//! This crate is a from-scratch Rust implementation of that model:
//!
//! * [`TaskGraph`] — sequential-order task insertion with `Read`/`Write`
//!   access declarations; RAW, WAR, and WAW hazards become DAG edges.
//! * [`Executor`] — a multithreaded work-stealing executor with FIFO,
//!   critical-path, or explicit priority scheduling ([`SchedPolicy`]):
//!   per-worker ready heaps, affinity-guided stealing
//!   ([`TaskGraph::set_affinity`]), and exact single-worker determinism.
//! * [`trace::Trace`] — per-worker execution traces with utilization,
//!   makespan, and critical-path statistics, used by experiment E02 to show
//!   the dataflow-vs-fork-join utilization gap.
//! * [`resilience`] — task-level fault domains: fallible kernels
//!   ([`TaskGraph::add_fallible_task`]) are retried under a per-execution
//!   [`RecoveryPolicy`] with deterministic simulated backoff, and the trace
//!   reports retries, recoveries, and skipped subtrees ([`ResilienceStats`]).
//!
//! ```
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//! use xsc_runtime::{Access, Executor, SchedPolicy, TaskGraph};
//!
//! let x = Arc::new(Mutex::new(0u64));
//! let mut g = TaskGraph::new();
//! for _ in 0..4 {
//!     let x = Arc::clone(&x);
//!     // All four tasks write the same datum, so they are serialized.
//!     g.add_task("incr", [Access::Write(0)], move || {
//!         *x.lock() += 1;
//!     });
//! }
//! let exec = Executor::new(2, SchedPolicy::Fifo);
//! exec.execute(g);
//! assert_eq!(*x.lock(), 4);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-coupled updates across multiple slices are the clearest form for these kernels

mod executor;
mod graph;
pub mod resilience;
pub mod schedule_check;
pub mod trace;

pub use executor::{Executor, SchedPolicy};
pub use graph::{Access, DataId, TaskGraph, TaskId, NO_AFFINITY};
pub use resilience::{
    Attempt, Backoff, ExhaustedAction, RecoveryPolicy, ResilienceStats, TaskFault, TaskOutcome,
};
