//! Task-level fault domains: retry policies, deterministic backoff, and
//! per-run resilience telemetry.
//!
//! The keynote's premise is that at extreme scale faults are *routine* —
//! the mean time between failures shrinks below the runtime of a single
//! job, so global restart (the checkpoint/restart tradition) stops being
//! viable and the runtime itself must contain failures. The natural
//! containment unit in a dataflow runtime is the **task**: it has declared
//! inputs and outputs, so a failed task can be re-executed (or its
//! dependent subtree abandoned) without touching the rest of the DAG.
//!
//! This module defines the vocabulary the executor uses for that:
//!
//! * [`TaskFault`] — the error a fallible kernel returns to signal that its
//!   attempt produced bad data (e.g. an ABFT checksum mismatch).
//! * [`Attempt`] — per-call context handed to a fallible kernel so it can
//!   restore inputs on a retry and vary fault-injection decisions.
//! * [`RecoveryPolicy`] — per-execution retry budget, backoff schedule, and
//!   the action to take when the budget is exhausted.
//! * [`ResilienceStats`] — what actually happened: retries, recoveries,
//!   permanent failures, skipped subtrees, wasted and backoff time.
//!
//! Backoff is **simulated**: the executor never sleeps. Delays are
//! computed deterministically (seeded, per task and attempt) and
//! accumulated into [`ResilienceStats::simulated_backoff`], which keeps
//! chaos campaigns bit-reproducible and fast while still exercising and
//! reporting the policy.

use crate::graph::TaskId;
use std::time::Duration;

/// Error returned by a fallible task kernel: this attempt failed and the
/// task's outputs must not be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFault {
    message: String,
}

impl TaskFault {
    /// Creates a fault with a human-readable cause.
    pub fn new(message: impl Into<String>) -> Self {
        TaskFault {
            message: message.into(),
        }
    }

    /// The cause description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TaskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task fault: {}", self.message)
    }
}

impl std::error::Error for TaskFault {}

impl From<String> for TaskFault {
    fn from(message: String) -> Self {
        TaskFault { message }
    }
}

impl From<&str> for TaskFault {
    fn from(message: &str) -> Self {
        TaskFault::new(message)
    }
}

/// Execution context passed to a fallible kernel on every call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Id of the task being executed.
    pub task: TaskId,
    /// 1-based attempt number (1 = first execution, 2 = first retry, ...).
    pub attempt: u32,
}

impl Attempt {
    /// `true` on every call after the first — the kernel should restore
    /// any output data it may have clobbered on the failed attempt.
    pub fn is_retry(&self) -> bool {
        self.attempt > 1
    }
}

/// Deterministic backoff schedule between retry attempts (simulated time —
/// see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// The same delay before every retry.
    Fixed(Duration),
    /// `base * factor^(attempt-1)`, capped at `max`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Multiplier applied per additional failed attempt.
        factor: f64,
        /// Upper bound on the delay.
        max: Duration,
    },
    /// Exponential with deterministic jitter in `[0.5x, 1.5x)`, derived
    /// from the policy seed, the task id, and the attempt number — two
    /// runs with the same seed see identical "jitter".
    Jittered {
        /// Delay before the first retry (pre-jitter).
        base: Duration,
        /// Multiplier applied per additional failed attempt.
        factor: f64,
        /// Upper bound on the delay (post-jitter).
        max: Duration,
    },
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

impl Backoff {
    /// Delay to simulate after attempt number `failed_attempt` of `task`
    /// fails (before attempt `failed_attempt + 1` runs).
    pub fn delay(&self, task: TaskId, failed_attempt: u32, seed: u64) -> Duration {
        match *self {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, factor, max } => {
                scale_capped(base, factor, failed_attempt, max)
            }
            Backoff::Jittered { base, factor, max } => {
                let raw = scale_capped(base, factor, failed_attempt, max);
                let h = mix(seed ^ mix(task as u64 ^ ((failed_attempt as u64) << 32)));
                // Uniform in [0.5, 1.5) with 53-bit resolution.
                let u = 0.5 + (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                Duration::from_secs_f64((raw.as_secs_f64() * u).min(max.as_secs_f64()))
            }
        }
    }
}

fn scale_capped(base: Duration, factor: f64, failed_attempt: u32, max: Duration) -> Duration {
    let exp = factor
        .max(0.0)
        .powi(failed_attempt.saturating_sub(1) as i32);
    Duration::from_secs_f64((base.as_secs_f64() * exp).min(max.as_secs_f64()))
}

/// What the executor does with a task whose retry budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExhaustedAction {
    /// Stop the whole execution: remaining tasks are left unrun and the
    /// trace reports `aborted` (fail-stop at the job level, but only after
    /// local recovery was tried).
    #[default]
    Abort,
    /// Contain the failure: mark every transitive successor of the failed
    /// task as tainted and skip it, but run the rest of the DAG to
    /// completion. Models partial results / partial re-submission.
    SkipSubtree,
}

/// Per-execution recovery policy for [`Executor::execute_resilient`].
///
/// [`Executor::execute_resilient`]: crate::Executor::execute_resilient
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum executions per task (>= 1; 1 means no retries).
    pub max_attempts: u32,
    /// Simulated delay schedule between attempts.
    pub backoff: Backoff,
    /// Action when `max_attempts` failures accumulate on one task.
    pub on_exhausted: ExhaustedAction,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff: Backoff::None,
            on_exhausted: ExhaustedAction::Abort,
            seed: 0,
        }
    }
}

impl RecoveryPolicy {
    /// A policy with the given retry budget and defaults elsewhere.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RecoveryPolicy {
            max_attempts: max_attempts.max(1),
            ..RecoveryPolicy::default()
        }
    }

    /// The standard bounded-rollback policy: `max_attempts` consecutive
    /// recoveries of one fault domain, with capped exponential backoff and
    /// deterministic jitter (`base · factor^(k−1)` for the `k`-th retry,
    /// jittered into `[0.5x, 1.5x)` from `seed`, never exceeding `max`).
    /// One constructor instead of four builder calls, because this is the
    /// shape every chaos campaign and the protected Krylov loop want.
    pub fn capped_exponential(
        max_attempts: u32,
        base: Duration,
        factor: f64,
        max: Duration,
        seed: u64,
    ) -> Self {
        RecoveryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Backoff::Jittered { base, factor, max },
            on_exhausted: ExhaustedAction::Abort,
            seed,
        }
    }

    /// Sets the backoff schedule.
    pub fn backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the exhausted-budget action.
    pub fn on_exhausted(mut self, action: ExhaustedAction) -> Self {
        self.on_exhausted = action;
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Final disposition of one task in a resilient execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskOutcome {
    /// Never reached (the execution aborted first).
    NotRun,
    /// Ran to success on attempt number `attempts`.
    Succeeded {
        /// Total executions (1 = clean first run).
        attempts: u32,
    },
    /// Every attempt failed.
    Failed {
        /// Total executions, all failed.
        attempts: u32,
    },
    /// Skipped because a transitive predecessor failed permanently
    /// (under [`ExhaustedAction::SkipSubtree`]).
    Skipped,
}

/// Aggregate resilience telemetry for one execution, available from
/// [`Trace::resilience`](crate::trace::Trace::resilience).
#[derive(Debug, Clone, Default)]
pub struct ResilienceStats {
    /// Re-executions performed (attempts beyond each task's first).
    pub retries: u64,
    /// Tasks that failed at least once and then succeeded.
    pub recoveries: u64,
    /// Tasks whose retry budget was exhausted.
    pub permanent_failures: u64,
    /// Tasks skipped because they depended on a permanent failure.
    pub skipped: u64,
    /// `true` if the execution stopped early ([`ExhaustedAction::Abort`]).
    pub aborted: bool,
    /// Total simulated backoff delay (never actually slept).
    pub simulated_backoff: Duration,
    /// Wall time consumed by attempts that ended in failure.
    pub wasted_time: Duration,
    /// Per-task disposition, indexed by task id.
    pub outcomes: Vec<TaskOutcome>,
}

impl ResilienceStats {
    /// `true` when every task ran to success (possibly after retries).
    pub fn completed(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, TaskOutcome::Succeeded { .. }))
    }

    /// Number of executions of `task` (0 if it never ran).
    pub fn attempts(&self, task: TaskId) -> u32 {
        match self.outcomes.get(task) {
            Some(TaskOutcome::Succeeded { attempts }) | Some(TaskOutcome::Failed { attempts }) => {
                *attempts
            }
            _ => 0,
        }
    }

    /// One-line human summary (for experiment tables and logs).
    pub fn summary(&self) -> String {
        format!(
            "retries {} recoveries {} permanent {} skipped {} aborted {} backoff {:.3}ms wasted {:.3}ms",
            self.retries,
            self.recoveries,
            self.permanent_failures,
            self.skipped,
            self.aborted,
            self.simulated_backoff.as_secs_f64() * 1e3,
            self.wasted_time.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_none_is_zero() {
        assert_eq!(Backoff::None.delay(3, 1, 42), Duration::ZERO);
    }

    #[test]
    fn backoff_fixed_ignores_attempt() {
        let b = Backoff::Fixed(Duration::from_millis(5));
        assert_eq!(b.delay(0, 1, 0), Duration::from_millis(5));
        assert_eq!(b.delay(9, 7, 0), Duration::from_millis(5));
    }

    #[test]
    fn backoff_exponential_grows_and_caps() {
        let b = Backoff::Exponential {
            base: Duration::from_millis(1),
            factor: 2.0,
            max: Duration::from_millis(6),
        };
        assert_eq!(b.delay(0, 1, 0), Duration::from_millis(1));
        assert_eq!(b.delay(0, 2, 0), Duration::from_millis(2));
        assert_eq!(b.delay(0, 3, 0), Duration::from_millis(4));
        assert_eq!(b.delay(0, 4, 0), Duration::from_millis(6)); // capped
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let b = Backoff::Jittered {
            base: Duration::from_millis(2),
            factor: 2.0,
            max: Duration::from_secs(1),
        };
        for task in 0..16 {
            for attempt in 1..5 {
                let d1 = b.delay(task, attempt, 99);
                let d2 = b.delay(task, attempt, 99);
                assert_eq!(d1, d2, "same seed must give same delay");
                let raw = 2e-3 * 2f64.powi(attempt as i32 - 1);
                let s = d1.as_secs_f64();
                assert!(
                    s >= raw * 0.5 - 1e-12 && s < raw * 1.5 + 1e-12,
                    "jitter bounds: {s}"
                );
            }
        }
        // Different seeds should (generically) differ somewhere.
        let any_diff = (0..16).any(|t| b.delay(t, 2, 1) != b.delay(t, 2, 2));
        assert!(any_diff);
    }

    #[test]
    fn attempt_retry_flag() {
        assert!(!Attempt {
            task: 0,
            attempt: 1
        }
        .is_retry());
        assert!(Attempt {
            task: 0,
            attempt: 2
        }
        .is_retry());
    }

    #[test]
    fn policy_builder_clamps_attempts() {
        let p = RecoveryPolicy::with_max_attempts(0);
        assert_eq!(p.max_attempts, 1);
    }

    #[test]
    fn capped_exponential_schedule_is_deterministic_and_golden() {
        let p = RecoveryPolicy::capped_exponential(
            5,
            Duration::from_micros(100),
            2.0,
            Duration::from_millis(1),
            0xE20,
        );
        assert_eq!(p.max_attempts, 5);
        assert_eq!(p.on_exhausted, ExhaustedAction::Abort);
        // The schedule for one fault domain (task 7): raw delays
        // 100us, 200us, 400us, 800us, then capped at 1ms — each jittered
        // into [0.5x, 1.5x), never past the cap, and identical on replay.
        let schedule: Vec<Duration> = (1..=5).map(|k| p.backoff.delay(7, k, p.seed)).collect();
        let replay: Vec<Duration> = (1..=5).map(|k| p.backoff.delay(7, k, p.seed)).collect();
        assert_eq!(schedule, replay, "same seed, same schedule");
        for (k, d) in schedule.iter().enumerate() {
            let raw = (100e-6 * 2f64.powi(k as i32)).min(1e-3);
            let s = d.as_secs_f64();
            assert!(
                s >= raw * 0.5 - 1e-12 && s < (raw * 1.5).min(1e-3) + 1e-12,
                "retry {}: {s}s outside jitter window of {raw}s",
                k + 1
            );
        }
        // Monotone growth until the cap region: the jitter band of retry
        // k+2 starts above the band of retry k ((2^2)·0.5 > 1.5).
        assert!(schedule[2] > schedule[0]);
        assert!(schedule[3] > schedule[1]);
        // Zero attempts still clamps to one.
        assert_eq!(
            RecoveryPolicy::capped_exponential(0, Duration::ZERO, 2.0, Duration::ZERO, 0)
                .max_attempts,
            1
        );
    }

    #[test]
    fn stats_queries() {
        let stats = ResilienceStats {
            outcomes: vec![
                TaskOutcome::Succeeded { attempts: 1 },
                TaskOutcome::Succeeded { attempts: 3 },
            ],
            retries: 2,
            recoveries: 1,
            ..ResilienceStats::default()
        };
        assert!(stats.completed());
        assert_eq!(stats.attempts(1), 3);
        assert_eq!(stats.attempts(7), 0);
        let failed = ResilienceStats {
            outcomes: vec![TaskOutcome::Failed { attempts: 2 }, TaskOutcome::Skipped],
            ..ResilienceStats::default()
        };
        assert!(!failed.completed());
        assert_eq!(failed.attempts(0), 2);
        assert_eq!(failed.attempts(1), 0);
        assert!(!failed.summary().is_empty());
    }

    #[test]
    fn task_fault_display_and_from() {
        let f: TaskFault = "checksum mismatch".into();
        assert_eq!(f.message(), "checksum mismatch");
        assert!(format!("{f}").contains("checksum mismatch"));
        let g = TaskFault::from(String::from("x"));
        assert_eq!(g.message(), "x");
    }
}
